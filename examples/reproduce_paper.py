#!/usr/bin/env python
"""Reproduce every experiment table (E1-E11, A1-A2) from the paper mapping.

Usage::

    python examples/reproduce_paper.py                # quick profile, all
    python examples/reproduce_paper.py --standard     # full-size runs
    python examples/reproduce_paper.py E3 E7          # a subset
"""

from __future__ import annotations

import sys
import time

from repro.harness.experiments import EXPERIMENTS, registry_order, run_experiment


def main() -> None:
    args = [a for a in sys.argv[1:]]
    profile = "standard" if "--standard" in args else "quick"
    wanted = [a for a in args if not a.startswith("--")] or registry_order()
    for exp_id in wanted:
        exp = EXPERIMENTS[exp_id]
        print(f"\n### {exp_id} — {exp.claim}  [{profile}]")
        t0 = time.time()
        table = run_experiment(exp_id, profile)
        print(table.render())
        print(f"(completed in {time.time() - t0:.1f}s)")


if __name__ == "__main__":
    main()
