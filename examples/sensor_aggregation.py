#!/usr/bin/env python
"""Sensor aggregation: computing a crowd average over phone-to-phone links.

The paper's conclusion proposes data aggregation as a problem the mobile
telephone model opens. Scenario: phones in a disaster zone each measure a
local reading (temperature, signal strength, headcount estimate) and the
mesh must agree on the average with no infrastructure.

Pairwise averaging gossip fits the single-connection model natively: each
round, connected pairs replace their values with the mean. The global sum
is conserved, so every node converges to the true average; the topology's
expansion sets the speed. This example runs the aggregation over group
mobility (clusters of people moving together) and prints the error decay.

Usage::

    python examples/sensor_aggregation.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.algorithms import AveragingVectorized
from repro.analysis.progress import sparkline
from repro.core import VectorizedEngine
from repro.graphs.mobility import GroupWaypointDynamicGraph
from repro.harness.tables import Table
from repro.util.rng import make_rng


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    tau = 6
    trials = 5
    eps = 1e-3

    table = Table(
        title=f"Averaging {n} sensor readings over group mobility (tau={tau})",
        columns=["groups", "median rounds", "final error", "error decay (log scale)"],
        notes=[
            "error = max |value - true mean|; readings ~ N(20, 5) degrees",
            "fewer groups = denser local clusters but sparser global contact",
        ],
    )
    for groups in (1, 2, 4, 8):
        rounds, final_err, last_curve = [], [], None
        for t in range(trials):
            readings = make_rng(100 + t, "readings").normal(20.0, 5.0, size=n)
            dg = GroupWaypointDynamicGraph(
                n, tau=tau, groups=groups, radius=0.3, speed=0.06, seed=200 + t
            )
            algo = AveragingVectorized(readings, eps=eps)
            engine = VectorizedEngine(dg, algo, seed=t)
            errors = []
            for r in range(1, 2_000_000):
                engine.step(r)
                errors.append(algo.max_deviation(engine.state))
                if algo.converged(engine.state):
                    break
            rounds.append(r)
            final_err.append(errors[-1])
            last_curve = errors
        log_errs = np.log10(np.maximum(last_curve, 1e-12))
        table.add_row(
            groups,
            float(np.median(rounds)),
            float(np.median(final_err)),
            sparkline(log_errs, width=40),
        )
    print(table.render())


if __name__ == "__main__":
    main()
