#!/usr/bin/env python
"""Censorship-resilient broadcast: spreading a message without infrastructure.

The paper cites the Hong Kong protest use of phone-to-phone chat: a
message must reach everyone using only direct device links.  This example
compares the paper's rumor spreading strategies on a crowd topology with
an adversarially placed source (the far end of a line of dense clusters —
the paper's own hard instance):

* b=0 PUSH-PULL (no advertising bits — Corollary VI.6), and
* b=1 PPUSH (one advertising bit — Theorem V.2 machinery),

plus the classical telephone model baseline, which is what the same
strategy would cost if phones could accept unlimited simultaneous
connections (they cannot — that is the point of the mobile model).

Usage::

    python examples/censorship_resilient_broadcast.py [clusters]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.algorithms import PPushVectorized, PushPullVectorized
from repro.core import VectorizedEngine, classical_push_pull_rumor
from repro.graphs import StaticDynamicGraph, families
from repro.harness.tables import Table


def main() -> None:
    clusters = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    trials = 7

    table = Table(
        title="Broadcast to a chain of crowds (line of stars), source at one end",
        columns=[
            "cluster size",
            "n",
            "Delta",
            "classical model",
            "mobile b=0 (PUSH-PULL)",
            "mobile b=1 (PPUSH)",
        ],
        notes=[
            "rounds until every device knows the message (median of trials)",
            "the b=0/b=1 gap is the paper's headline: one advertising bit "
            "turns Delta^2 hub crossings into focused, near-constant ones",
        ],
    )

    for size in (clusters, clusters + 2, clusters + 4):
        g = families.line_of_stars(size, size)
        dg = StaticDynamicGraph(g)
        n, delta = g.n, g.max_degree
        source = np.array([g.n - 1])  # a point of the last star: worst case

        classical = [
            classical_push_pull_rumor(dg, int(source[0]), max_rounds=10**6, seed=t).rounds
            for t in range(trials)
        ]
        b0 = []
        b1 = []
        for t in range(trials):
            eng = VectorizedEngine(dg, PushPullVectorized(source), seed=t)
            res = eng.run(10**6)
            assert res.stabilized
            b0.append(res.rounds)
            eng = VectorizedEngine(dg, PPushVectorized(source), seed=t)
            res = eng.run(10**6)
            assert res.stabilized
            b1.append(res.rounds)
        table.add_row(
            size,
            n,
            delta,
            float(np.median(classical)),
            float(np.median(b0)),
            float(np.median(b1)),
        )
    print(table.render())


if __name__ == "__main__":
    main()
