#!/usr/bin/env python
"""Quickstart: elect a leader in a simulated smartphone peer-to-peer network.

Runs all three of the paper's leader election algorithms on the same
topology and prints rounds-to-stabilization side by side, then shows the
same election under maximum topology churn (τ = 1).

Usage::

    python examples/quickstart.py [n] [degree]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.algorithms import (
    AsyncBitConvergenceVectorized,
    BitConvergenceConfig,
    BitConvergenceVectorized,
    BlindGossipVectorized,
)
from repro.core import VectorizedEngine
from repro.graphs import PeriodicRelabelDynamicGraph, StaticDynamicGraph, families
from repro.harness.experiments import uid_keys_random
from repro.harness.tables import Table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    degree = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    seed = 7

    topology = families.random_regular(n, degree, seed=seed)
    keys = uid_keys_random(n, seed)  # opaque UID keys, one per device
    config = BitConvergenceConfig(n_upper=n, delta_bound=degree, beta=1.0)

    def algorithms(trial_seed: int):
        return [
            ("blind gossip (b=0)", BlindGossipVectorized(keys)),
            (
                "bit convergence (b=1)",
                BitConvergenceVectorized(
                    keys, config, tag_seed=trial_seed, unique_tags=True
                ),
            ),
            (
                "async bit convergence (b=loglog n)",
                AsyncBitConvergenceVectorized(
                    keys, config, tag_seed=trial_seed, unique_tags=True
                ),
            ),
        ]

    table = Table(
        title=f"Leader election on a {degree}-regular network of {n} devices",
        columns=["algorithm", "static rounds", "tau=1 churn rounds"],
        notes=["median over 5 trials; every run elects the same leader"],
    )
    for name, _ in algorithms(0):
        static_rounds, churn_rounds = [], []
        for t in range(5):
            algo = dict(algorithms(t))[name]
            eng = VectorizedEngine(StaticDynamicGraph(topology), algo, seed=t)
            res = eng.run(500_000)
            assert res.stabilized, f"{name} did not stabilize"
            static_rounds.append(res.rounds)

            algo = dict(algorithms(t))[name]
            eng = VectorizedEngine(
                PeriodicRelabelDynamicGraph(topology, 1, seed=t), algo, seed=t
            )
            res = eng.run(500_000)
            assert res.stabilized
            churn_rounds.append(res.rounds)
        table.add_row(
            name, float(np.median(static_rounds)), float(np.median(churn_rounds))
        )
    print(table.render())


if __name__ == "__main__":
    main()
