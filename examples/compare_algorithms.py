#!/usr/bin/env python
"""Head-to-head: every leader election algorithm on every topology regime.

A one-stop comparison of the paper's three leader election algorithms
(plus the classical-model baseline) across the four topology regimes the
theory distinguishes, reporting both latency (rounds) and radio work
(connections).

Usage::

    python examples/compare_algorithms.py [scale]

``scale`` multiplies the base sizes (default 1).
"""

from __future__ import annotations

import math
import sys

import numpy as np

from repro.algorithms import (
    AsyncBitConvergenceVectorized,
    BitConvergenceConfig,
    BitConvergenceVectorized,
    BlindGossipVectorized,
)
from repro.core import VectorizedEngine, classical_push_pull_leader
from repro.graphs import StaticDynamicGraph, families
from repro.harness.experiments import uid_keys_random
from repro.harness.tables import Table


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    trials = 5
    topologies = [
        ("clique (alpha~1)", families.clique(24 * scale)),
        ("regular d=6", families.random_regular(24 * scale, 6, seed=1)),
        ("ring (alpha~1/n)", families.ring(24 * scale)),
        ("double star (Delta~n/2)", families.double_star(11 * scale)),
    ]

    for topo_name, g in topologies:
        n = g.n
        keys = uid_keys_random(n, 7)
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=g.max_degree, beta=1.0)
        algos = {
            "blind gossip (b=0)": lambda ts: BlindGossipVectorized(keys),
            "bit convergence (b=1)": lambda ts: BitConvergenceVectorized(
                keys, cfg, tag_seed=ts, unique_tags=True
            ),
            "async bit convergence": lambda ts: AsyncBitConvergenceVectorized(
                keys, cfg, tag_seed=ts, unique_tags=True
            ),
        }
        table = Table(
            title=f"{topo_name}: n={n}, Delta={g.max_degree}",
            columns=["algorithm", "median rounds", "median connections"],
        )
        for name, make in algos.items():
            rounds, conns = [], []
            for t in range(trials):
                eng = VectorizedEngine(StaticDynamicGraph(g), make(t), seed=t)
                res = eng.run(2_000_000)
                assert res.stabilized, (topo_name, name)
                rounds.append(res.rounds)
                conns.append(eng.connections_made)
            table.add_row(name, float(np.median(rounds)), float(np.median(conns)))
        classical = [
            classical_push_pull_leader(
                StaticDynamicGraph(g), keys, max_rounds=2_000_000, seed=t
            ).rounds
            for t in range(trials)
        ]
        table.add_row(
            "classical baseline (unbounded accepts)",
            float(np.median(classical)),
            float("nan"),
        )
        table.notes.append(
            "classical baseline ignores the one-connection limit; its "
            "connection count is not comparable."
        )
        print(table.render())
        print()


if __name__ == "__main__":
    main()
