#!/usr/bin/env python
"""Adversarial churn: when mobility actually hurts.

The mobile telephone model lets the topology change arbitrarily every τ
rounds — an *adversarial* dynamic graph. This example contrasts three
τ=1 regimes on the same double-star topology for b=0 rumor spreading:

* **static** — no churn at all;
* **oblivious churn** — fresh random relabeling every round (α, Δ
  preserved). Counter-intuitively this *helps*: mixing relocates the
  informed set past the hub bottleneck;
* **adaptive churn** — a worst-case adversary that watches who is
  informed and relabels every round to pack the informed set behind a
  single boundary vertex (α, Δ still preserved).

The gap between the oblivious and adaptive columns is the gap between
"random mobility" and the worst case the paper's theorems price.

Usage::

    python examples/adversarial_churn.py [leaves]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.algorithms import PushPullVectorized
from repro.analysis.progress import SpreadCurve
from repro.core import VectorizedEngine
from repro.graphs import (
    PackingAdversary,
    PeriodicRelabelDynamicGraph,
    StaticDynamicGraph,
    families,
)
from repro.harness.tables import Table


def run_once(dg, n, seed):
    algo = PushPullVectorized(np.array([2]))
    engine = VectorizedEngine(dg, algo, seed=seed)
    curve = SpreadCurve()
    curve.record(1)
    for r in range(1, 2_000_000):
        engine.step(r)
        curve.record(algo.informed_count(engine.state))
        if algo.converged(engine.state):
            return r, curve
    raise RuntimeError("did not complete")


def main() -> None:
    leaves = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    trials = 5
    base = families.double_star(leaves)
    n = base.n

    table = Table(
        title=f"b=0 rumor spreading on a double star (n={n}, Delta={leaves + 1})",
        columns=["churn regime", "median rounds", "spread curve (informed count)"],
        notes=[
            "all three regimes present identical per-round alpha, Delta, tau=1",
            "adaptive = packing adversary observing the informed set each round",
        ],
    )
    regimes = [
        ("static", lambda t: StaticDynamicGraph(base)),
        ("oblivious tau=1", lambda t: PeriodicRelabelDynamicGraph(base, 1, seed=t)),
        ("adaptive tau=1", lambda t: PackingAdversary(base, tau=1)),
    ]
    for name, make_dg in regimes:
        rounds, last_curve = [], None
        for t in range(trials):
            r, curve = run_once(make_dg(t), n, seed=t)
            rounds.append(r)
            last_curve = curve
        table.add_row(name, float(np.median(rounds)), last_curve.spark(width=40))
    print(table.render())


if __name__ == "__main__":
    main()
