#!/usr/bin/env python
"""Network merge: two isolated meshes discover each other and re-elect.

Section VIII's self-stabilization scenario: two groups (say, two sides of
a collapsed bridge in a disaster zone) each ran leader election for a long
time and settled on their own leaders.  When connectivity is restored, the
combined network must converge to a *single* leader without any restart —
the non-synchronized bit convergence algorithm does this natively.

The example runs both components to convergence in isolation, bridges
them, continues from the exact per-device states, and reports the
re-stabilization time against a fresh-start baseline.

Usage::

    python examples/network_merge.py [component_size]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.algorithms import AsyncBitConvergenceVectorized, BitConvergenceConfig
from repro.algorithms.bit_convergence import draw_id_tags
from repro.core import VectorizedEngine
from repro.graphs import StaticDynamicGraph, families
from repro.harness.experiments import uid_keys_random
from repro.harness.tables import Table


def main() -> None:
    comp_n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    degree = 4
    trials = 5
    n = 2 * comp_n
    config = BitConvergenceConfig(n_upper=n, delta_bound=degree + 1, beta=1.0)

    table = Table(
        title=f"Merging two converged meshes of {comp_n} devices each",
        columns=["trial", "comp A rounds", "comp B rounds", "merge rounds", "fresh union rounds"],
        notes=[
            "merge continues from the devices' converged states (no restart);",
            "Section VIII: the merged network re-stabilizes in ordinary "
            "stabilization time — same order as a fresh start.",
        ],
    )

    for t in range(trials):
        keys = uid_keys_random(n, 50 + t)
        tags = draw_id_tags(n, config, 60 + t, unique=True)
        g1 = families.random_regular(comp_n, degree, seed=70 + t)
        g2 = families.random_regular(comp_n, degree, seed=80 + t)

        comp_rounds = []
        states = []
        for comp, g, sl in ((0, g1, slice(0, comp_n)), (1, g2, slice(comp_n, n))):
            algo = AsyncBitConvergenceVectorized(
                keys[sl], config, initial_pairs=(tags[sl], keys[sl])
            )
            eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=90 + 2 * t + comp)
            res = eng.run(1_000_000)
            assert res.stabilized
            comp_rounds.append(res.rounds)
            states.append((eng.state.ctag.copy(), eng.state.ckey.copy()))

        union = g1.union(g2, [(0, 0), (comp_n // 2, comp_n // 2)])
        init = (
            np.concatenate([states[0][0], states[1][0]]),
            np.concatenate([states[0][1], states[1][1]]),
        )
        algo = AsyncBitConvergenceVectorized(keys, config, initial_pairs=init)
        eng = VectorizedEngine(StaticDynamicGraph(union), algo, seed=200 + t)
        merged = eng.run(1_000_000)
        assert merged.stabilized

        fresh_algo = AsyncBitConvergenceVectorized(
            keys, config, initial_pairs=(tags, keys)
        )
        fresh_eng = VectorizedEngine(StaticDynamicGraph(union), fresh_algo, seed=300 + t)
        fresh = fresh_eng.run(1_000_000)
        assert fresh.stabilized

        table.add_row(t, comp_rounds[0], comp_rounds[1], merged.rounds, fresh.rounds)

    print(table.render())


if __name__ == "__main__":
    main()
