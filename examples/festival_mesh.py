#!/usr/bin/env python
"""Festival mesh: leader election over a mobile crowd with no infrastructure.

The paper's motivating scenario: phones at a festival (or protest, or
disaster zone) form direct peer-to-peer links with whoever is in radio
range.  People move, so the topology churns; the crowd needs to agree on a
coordinator (e.g. to anchor message ordering for a mesh chat).

This example uses the random-waypoint mobility model: devices wander a
unit square, connect within a radio radius, and the unit-disk topology is
re-sampled every τ rounds.  We sweep the crowd's movement speed and watch
how stabilization time responds, and confirm that every run agrees on the
same single leader.

Usage::

    python examples/festival_mesh.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.algorithms import AsyncBitConvergenceVectorized, BitConvergenceConfig
from repro.core import VectorizedEngine
from repro.graphs import RandomWaypointDynamicGraph
from repro.harness.experiments import uid_keys_random
from repro.harness.tables import Table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    tau = 8              # topology holds for 8 rounds between re-scans
    radius = 0.35        # radio range as a fraction of the festival grounds
    trials = 5

    # Phones join the mesh as people arrive: activations are staggered.
    config = BitConvergenceConfig(n_upper=n, delta_bound=n - 1, beta=1.0)
    keys = uid_keys_random(n, 11)

    table = Table(
        title=f"Festival mesh: {n} phones, radio radius {radius}, tau={tau}",
        columns=[
            "speed (area/epoch)",
            "median rounds",
            "median rounds after last join",
            "agreed on one leader",
        ],
        notes=[
            "async bit convergence (Section VIII): no synchronized starts, "
            "self-stabilizing, b = loglog(n)+O(1) advertising bits",
        ],
    )

    for speed in (0.0, 0.02, 0.05, 0.15):
        rounds, rounds_after = [], []
        agreed = True
        for t in range(trials):
            mobility = RandomWaypointDynamicGraph(
                n, tau=tau, radius=radius, speed=speed, seed=100 + t
            )
            rng = np.random.default_rng(200 + t)
            activations = rng.integers(1, 41, size=n)  # arrivals over 40 rounds
            activations[rng.integers(0, n)] = 1
            algo = AsyncBitConvergenceVectorized(
                keys, config, tag_seed=300 + t, unique_tags=True
            )
            engine = VectorizedEngine(
                mobility, algo, seed=t, activation_rounds=activations
            )
            res = engine.run(2_000_000)
            assert res.stabilized, "mesh failed to elect a leader"
            rounds.append(res.rounds)
            rounds_after.append(res.rounds_after_last_activation)
            agreed &= bool(
                (algo.leaders(engine.state) == engine.state.target_key).all()
            )
        table.add_row(
            f"{speed:g}",
            float(np.median(rounds)),
            float(np.median(rounds_after)),
            agreed,
        )
    print(table.render())


if __name__ == "__main__":
    main()
