"""E4 — Section VI: Omega(Delta^2/sqrt(alpha)) on the line of stars."""

from _common import bench_and_verify


def test_e4_line_of_stars_lower_bound(benchmark):
    bench_and_verify(benchmark, "E4")
