#!/usr/bin/env python
"""CI gate: SIGKILL a quick-profile campaign partway, resume it, and diff
the resumed tables against an uninterrupted run.

This is the executable form of the durability acceptance criterion:
killing ``repro experiments run-all`` at an arbitrary point and re-running
with ``--resume`` must complete the remaining experiments and produce
tables *bit-identical* to a campaign that was never interrupted (every
cell is deterministically seeded, so cell-set identity implies table
identity; per-cell wall times live in checkpoint ``extra`` metadata and
are excluded from the diff).

With ``--pool-workers K`` the killed and resumed campaigns run on the
parallel execution plane (persistent worker pool + shared graphs); the
uninterrupted reference stays serial, so the diff simultaneously proves
kill-resume durability *and* pooled/serial table parity.

Usage::

    PYTHONPATH=src python benchmarks/check_kill_resume.py [--cells E1,A3,E13]
        [--pool-workers K]

Exit status 0 when every resumed table matches the clean run, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_CELLS = "E1,A3,E19,E13"


def spawn_campaign(
    checkpoint_dir: Path,
    cells: str,
    *,
    resume: bool,
    pool_workers: int | None = None,
) -> subprocess.Popen:
    cmd = [
        sys.executable, "-m", "repro", "experiments", "run-all",
        "--only", cells, "--checkpoint-dir", str(checkpoint_dir),
        "--backoff-base", "0",
    ]
    if pool_workers is not None:
        cmd += ["--pool-workers", str(pool_workers)]
    if resume:
        cmd.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", default=DEFAULT_CELLS)
    parser.add_argument(
        "--kill-after", type=int, default=1, metavar="N",
        help="SIGKILL the campaign once N checkpoints exist",
    )
    parser.add_argument(
        "--pool-workers", type=int, default=None, metavar="K",
        help="run the killed/resumed campaigns on a K-worker pool "
        "(the clean reference stays serial)",
    )
    args = parser.parse_args()
    sys.path.insert(0, str(REPO / "src"))
    from repro.harness.campaign import (
        CampaignConfig,
        checkpoint_path,
        run_campaign,
    )
    from repro.harness.persistence import load_document

    cells = tuple(args.cells.split(","))

    with tempfile.TemporaryDirectory(prefix="kill-resume-") as tmp:
        tmp = Path(tmp)

        # 1. Uninterrupted reference campaign.
        clean_dir = tmp / "clean"
        report = run_campaign(
            CampaignConfig(checkpoint_dir=clean_dir, exp_ids=cells, backoff_base=0.0),
            progress=lambda line: print(f"[clean] {line}", flush=True),
        )
        if not report.ok:
            print(f"FAIL: clean campaign did not complete: {report.summary()}")
            return 1
        clean = {
            c: load_document(checkpoint_path(clean_dir, c, "quick")).table.render()
            for c in cells
        }

        # 2. Campaign killed partway through.
        killed_dir = tmp / "killed"
        proc = spawn_campaign(
            killed_dir, args.cells, resume=False, pool_workers=args.pool_workers
        )
        deadline = time.monotonic() + 300
        try:
            while time.monotonic() < deadline and proc.poll() is None:
                done = sum(
                    checkpoint_path(killed_dir, c, "quick").exists() for c in cells
                )
                if done >= args.kill_after:
                    break
                time.sleep(0.02)
            if proc.poll() is None:
                print(f"[kill] SIGKILL after {done} checkpoint(s)", flush=True)
                proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=120)
        survivors = [c for c in cells if checkpoint_path(killed_dir, c, "quick").exists()]
        print(f"[kill] checkpoints surviving the kill: {survivors}", flush=True)
        if not survivors:
            print("FAIL: campaign produced no checkpoint before the kill")
            return 1

        # 3. Resume and diff.
        resume = spawn_campaign(
            killed_dir, args.cells, resume=True, pool_workers=args.pool_workers
        )
        out, _ = resume.communicate(timeout=600)
        print("\n".join(f"[resume] {line}" for line in out.strip().splitlines()), flush=True)
        if resume.returncode != 0:
            print(f"FAIL: resume exited {resume.returncode}")
            return 1
        mismatches = []
        for c in cells:
            resumed = load_document(
                checkpoint_path(killed_dir, c, "quick")
            ).table.render()
            if resumed != clean[c]:
                mismatches.append(c)
        if mismatches:
            print(f"FAIL: resumed tables differ from the clean run: {mismatches}")
            return 1
        print(
            f"PASS: {len(cells)} resumed tables bit-identical to the clean run "
            f"({len(survivors)} cell(s) survived the kill, "
            f"{len(cells) - len(survivors)} re-ran on resume)"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
