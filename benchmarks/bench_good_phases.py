"""E13 — Lemma VII.5: good phases occur with constant probability."""

from _common import bench_and_verify


def test_e13_good_phase_frequency(benchmark):
    bench_and_verify(benchmark, "E13")
