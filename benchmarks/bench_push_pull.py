"""E5 — Corollary VI.6: b=0 PUSH-PULL rumor spreading scales ~Delta^2."""

from _common import bench_and_verify


def test_e5_push_pull(benchmark):
    bench_and_verify(benchmark, "E5")
