"""CI gate: fail on >30% engine-throughput regression vs the committed baseline.

``benchmarks/bench_engine.py -k "churn or fault or campaign"`` appends one
record per run to ``BENCH_engine.json`` at the repo root.  This script
compares the newest record (the current run) against the newest
*committed* record (the one before it) on dimensionless ratios — machine
speed cancels out of each, so the gate is meaningful across runner
hardware:

- ``churn_trial_speedup``   (batched sweep over per-trial loop; higher is
  better) must not drop below 70% of the baseline;
- ``permuted_over_static``  (fast-path round cost over static round cost;
  lower is better) must not grow above 130% of the baseline;
- ``empty_plan_overhead``   (batched round cost with an empty FaultPlan
  over the faultless engine; ~1.0 by construction) must not grow above
  130% of the baseline, and never above the absolute 1.05 cap the bench
  itself asserts;
- ``campaign_checkpoint_overhead`` (durable checkpointed campaign over a
  raw experiment loop on the same cells) — same 130%-of-baseline rule
  and the same absolute 1.05 cap: checkpointing must stay ≤5% overhead;
- ``trace_disabled_overhead``  (batched round cost with
  ``collect_trace=False`` over the default engine; ~1.0 by construction)
  — same 130%-of-baseline rule and the same absolute 1.05 cap:
  opt-in trace capture must cost nothing when not opted into.

A ratio present in the current record but absent from the baseline is a
*new metric* (added after the baseline was committed): it is reported and
passes; the next committed record becomes its baseline.  A ratio missing
from the *current* record is a failure — the bench that produces it did
not run.

Usage::

    python benchmarks/check_engine_regression.py [BENCH_engine.json]

Exit status 0 on pass (or when no baseline exists yet), 1 on regression.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Allowed relative slack before a ratio counts as a regression.
TOLERANCE = 0.30

#: Hard ceilings independent of any baseline (mirror the bench asserts).
ABSOLUTE_MAX = {
    "empty_plan_overhead": 1.05,
    "campaign_checkpoint_overhead": 1.05,
    "trace_disabled_overhead": 1.05,
}


def check(path: Path) -> int:
    data = json.loads(path.read_text())
    records = data.get("records", [])
    if not records:
        print(f"{path}: no records; nothing to check")
        return 1
    current = records[-1]
    if len(records) == 1:
        print(f"{path}: single record (no committed baseline); pass")
        return 0
    baseline = records[-2]
    print(
        f"baseline {baseline['commit']} ({baseline['date']}) vs "
        f"current {current['commit']} ({current['date']})"
    )
    failures = []
    for key, higher_is_better in (
        ("churn_trial_speedup", True),
        ("permuted_over_static", False),
        ("empty_plan_overhead", False),
        ("campaign_checkpoint_overhead", False),
        ("trace_disabled_overhead", False),
    ):
        base, cur = baseline.get(key), current.get(key)
        if cur is None:
            failures.append(f"{key}: missing from current record")
            continue
        cap = ABSOLUTE_MAX.get(key)
        if cap is not None and cur > cap:
            print(f"  {key}: {cur:.3f} exceeds absolute cap {cap:.3f} REGRESSION")
            failures.append(f"{key}: {cur:.3f} > absolute cap {cap:.3f}")
            continue
        if base is None:
            # Metric newer than the baseline record: nothing to compare
            # against yet; the next committed record becomes its baseline.
            print(f"  {key}: {cur:.3f} (new metric; no baseline) ok")
            continue
        if higher_is_better:
            limit = base * (1 - TOLERANCE)
            ok = cur >= limit
            direction = ">="
        else:
            limit = base * (1 + TOLERANCE)
            ok = cur <= limit
            direction = "<="
        status = "ok" if ok else "REGRESSION"
        print(f"  {key}: {cur:.3f} vs baseline {base:.3f} (need {direction} {limit:.3f}) {status}")
        if not ok:
            failures.append(f"{key}: {cur:.3f} vs baseline {base:.3f}")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    default = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else default
    sys.exit(check(target))
