"""CI gate: fail on >30% engine-throughput regression vs the committed baseline.

``benchmarks/bench_engine.py -k "churn or fault or campaign"`` appends one
record per run to ``BENCH_engine.json`` at the repo root.  This script
compares the newest record (the current run) against the *per-metric
median of all committed prior records* on dimensionless ratios — machine
speed cancels out of each, so the gate is meaningful across runner
hardware, and the median baseline keeps one anomalously lucky (or
unlucky) committed run from poisoning the gate for every later run:

- ``churn_trial_speedup``   (batched sweep over per-trial loop; higher is
  better) must not drop below 70% of the baseline;
- ``permuted_over_static``  (fast-path round cost over static round cost;
  lower is better) must not grow above 130% of the baseline;
- ``empty_plan_overhead``   (batched round cost with an empty FaultPlan
  over the faultless engine; ~1.0 by construction) must not grow above
  130% of the baseline, and never above the absolute 1.05 cap the bench
  itself asserts;
- ``campaign_checkpoint_overhead`` (durable checkpointed campaign over a
  raw experiment loop on the same cells) — same 130%-of-baseline rule
  and the same absolute 1.05 cap: checkpointing must stay ≤5% overhead;
- ``trace_disabled_overhead``  (batched round cost with
  ``collect_trace=False`` over the default engine; ~1.0 by construction)
  — same 130%-of-baseline rule and the same absolute 1.05 cap:
  opt-in trace capture must cost nothing when not opted into;
- ``sparse_frontier_speedup`` (dense endgame round over sparse-frontier
  endgame round at n=10^5; higher is better) must not drop below 70% of
  the baseline, and never below the absolute 5.0 floor the bench itself
  asserts;
- ``largen_ms_ratio_n1e6_over_n1e5`` (chunked-engine per-round cost at
  n=10^6 over n=10^5; lower is better) — 130%-of-baseline rule plus an
  absolute 25.0 cap: a 10× network must not cost superlinearly more per
  round.  The absolute ``ms_per_round_n1e5`` / ``ms_per_round_n1e6``
  times are recorded alongside as machine-dependent context and must be
  present, but only their ratio is gated.

A ratio present in the current record but absent from every prior record
is a *new metric* (added after the baselines were committed): it is
reported and passes; the next committed record becomes its baseline.  A ratio missing
from the *current* record is a failure — the bench that produces it did
not run.

Usage::

    python benchmarks/check_engine_regression.py [BENCH_engine.json]

Exit status 0 on pass (or when no baseline exists yet), 1 on regression.
"""

from __future__ import annotations

import json
import statistics
import sys
from pathlib import Path

#: Allowed relative slack before a ratio counts as a regression.
TOLERANCE = 0.30

#: Hard ceilings independent of any baseline (mirror the bench asserts).
ABSOLUTE_MAX = {
    "empty_plan_overhead": 1.05,
    "campaign_checkpoint_overhead": 1.05,
    "trace_disabled_overhead": 1.05,
    "largen_ms_ratio_n1e6_over_n1e5": 25.0,
}

#: Hard floors independent of any baseline (mirror the bench asserts).
ABSOLUTE_MIN = {
    "sparse_frontier_speedup": 5.0,
}

#: Absolute (machine-dependent) context values that must exist in the
#: current record — their producing benches must have run — but whose
#: magnitudes are not compared against the baseline.
REQUIRED_PRESENT = ("ms_per_round_n1e5", "ms_per_round_n1e6")


def check(path: Path) -> int:
    data = json.loads(path.read_text())
    records = data.get("records", [])
    if not records:
        print(f"{path}: no records; nothing to check")
        return 1
    current = records[-1]
    if len(records) == 1:
        print(f"{path}: single record (no committed baseline); pass")
        return 0
    prior = records[:-1]
    print(
        f"baseline: per-metric median of {len(prior)} committed record(s) "
        f"({prior[0]['commit']}..{prior[-1]['commit']}) vs "
        f"current {current['commit']} ({current['date']})"
    )

    def baseline_for(key: str) -> float | None:
        values = [r[key] for r in prior if r.get(key) is not None]
        return statistics.median(values) if values else None

    failures = []
    for key in REQUIRED_PRESENT:
        if current.get(key) is None:
            failures.append(f"{key}: missing from current record")
        else:
            print(f"  {key}: {current[key]:.3f} (context; not gated) ok")
    for key, higher_is_better in (
        ("churn_trial_speedup", True),
        ("permuted_over_static", False),
        ("empty_plan_overhead", False),
        ("campaign_checkpoint_overhead", False),
        ("trace_disabled_overhead", False),
        ("sparse_frontier_speedup", True),
        ("largen_ms_ratio_n1e6_over_n1e5", False),
    ):
        base, cur = baseline_for(key), current.get(key)
        if cur is None:
            failures.append(f"{key}: missing from current record")
            continue
        cap = ABSOLUTE_MAX.get(key)
        if cap is not None and cur > cap:
            print(f"  {key}: {cur:.3f} exceeds absolute cap {cap:.3f} REGRESSION")
            failures.append(f"{key}: {cur:.3f} > absolute cap {cap:.3f}")
            continue
        floor = ABSOLUTE_MIN.get(key)
        if floor is not None and cur < floor:
            print(f"  {key}: {cur:.3f} below absolute floor {floor:.3f} REGRESSION")
            failures.append(f"{key}: {cur:.3f} < absolute floor {floor:.3f}")
            continue
        if base is None:
            # Metric newer than the baseline record: nothing to compare
            # against yet; the next committed record becomes its baseline.
            print(f"  {key}: {cur:.3f} (new metric; no baseline) ok")
            continue
        if higher_is_better:
            limit = base * (1 - TOLERANCE)
            ok = cur >= limit
            direction = ">="
        else:
            limit = base * (1 + TOLERANCE)
            ok = cur <= limit
            direction = "<="
        status = "ok" if ok else "REGRESSION"
        print(f"  {key}: {cur:.3f} vs baseline {base:.3f} (need {direction} {limit:.3f}) {status}")
        if not ok:
            failures.append(f"{key}: {cur:.3f} vs baseline {base:.3f}")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    default = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else default
    sys.exit(check(target))
