"""CI gate: fail on >30% engine-throughput regression vs the committed baseline.

``benchmarks/bench_engine.py -k "churn or fault or campaign or trace or
sparse or large or pool or memo or async"`` appends one record per run to
``BENCH_engine.json`` at the repo root.  This script compares the newest
record (the current run) against the *per-metric median of all committed
prior records* on dimensionless ratios — machine speed cancels out of
each, so the gate is meaningful across runner hardware, and the median
baseline keeps one anomalously lucky (or unlucky) committed run from
poisoning the gate for every later run.  Output is a per-metric trend
table: median baseline, current value, percent delta, verdict.

Gated ratios (and their absolute caps/floors, mirroring the bench
asserts):

- ``churn_trial_speedup``   (batched sweep over per-trial loop; higher is
  better) must not drop below 70% of the baseline;
- ``permuted_over_static``  (fast-path round cost over static round cost;
  lower is better) must not grow above 130% of the baseline;
- ``empty_plan_overhead``, ``campaign_checkpoint_overhead``,
  ``trace_disabled_overhead`` (~1.0 by construction; lower is better) —
  130%-of-baseline rule plus an absolute 1.05 cap;
- ``sparse_frontier_speedup`` (dense endgame round over sparse-frontier
  endgame round at n=10^5; higher is better) — 70%-of-baseline rule plus
  an absolute 5.0 floor;
- ``largen_ms_ratio_n1e6_over_n1e5`` (chunked-engine per-round cost at
  n=10^6 over n=10^5; lower is better) — 130%-of-baseline rule plus an
  absolute 25.0 cap;
- ``pool_reuse_overhead``   (warm persistent-pool wave over fork-per-unit
  wave; lower is better) — 130%-of-baseline rule plus an absolute 1.0
  cap: dispatching through the reused pool must never cost more than the
  forking it replaces;
- ``graph_memo_hit_ratio``  (shared-graph memo hits over total builds in
  the bench sweep; higher is better) — absolute 0.85 floor;
- ``graph_memo_warm_speedup`` (cold graph build over warm mmap attach;
  higher is better) — 70%-of-baseline rule plus an absolute 5.0 floor;
- ``async_vs_sync_round_ratio`` (event-tier stabilization ticks at Δ=1
  over sync vectorized rounds on the same workload; lower is better) —
  130%-of-baseline rule plus an absolute 6.0 cap: the Δ=1 cadence is a
  structural constant of the event tier, so a jump means the timer→
  connect→deliver unrolling changed, not the machine;
- ``campaign_parallel_speedup`` (serial campaign wall time over the
  pooled campaign) is gated **conditionally**: the absolute 2.0 floor
  applies only when the record's ``pool_cpu_count`` is ≥4 — a
  single-core runner records the (possibly <1×) ratio as context and
  passes, because the parallel plane cannot beat serial without cores.
  It is never compared against the baseline median, which may mix
  runners with different core counts.

Absolute context values (``ms_per_round_n1e5``, ``ms_per_round_n1e6``,
``pool_cpu_count``, ``async_events_per_sec``, ``live_rounds_per_sec_n64``,
``live_rounds_per_sec_n256``) must be present — their producing benches
must have run — but their magnitudes are machine-dependent and not gated.

All files are parsed with a *strict* RFC 8259 parser (``parse_constant``
raising), so a non-finite ``Infinity``/``NaN`` token leaking into any
harness-written JSON fails the gate immediately.  Extra paths after the
BENCH file (e.g. tournament leaderboard/checkpoint documents) are
strict-parsed the same way without being gated.

A ratio present in the current record but absent from every prior record
is a *new metric* (added after the baselines were committed): it is
reported and passes; the next committed record becomes its baseline.  A
ratio missing from the *current* record is a failure — the bench that
produces it did not run.

Usage::

    python benchmarks/check_engine_regression.py [BENCH_engine.json] [EXTRA_JSON...]

Exit status 0 on pass (or when no baseline exists yet), 1 on regression
or on any strict-parse failure.
"""

from __future__ import annotations

import json
import statistics
import sys
from pathlib import Path

#: Allowed relative slack before a ratio counts as a regression.
TOLERANCE = 0.30

#: Hard ceilings independent of any baseline (mirror the bench asserts).
ABSOLUTE_MAX = {
    "empty_plan_overhead": 1.05,
    "campaign_checkpoint_overhead": 1.05,
    "trace_disabled_overhead": 1.05,
    "largen_ms_ratio_n1e6_over_n1e5": 25.0,
    "pool_reuse_overhead": 1.0,
    "async_vs_sync_round_ratio": 6.0,
}

#: Hard floors independent of any baseline (mirror the bench asserts).
ABSOLUTE_MIN = {
    "sparse_frontier_speedup": 5.0,
    "graph_memo_hit_ratio": 0.85,
    "graph_memo_warm_speedup": 5.0,
}

#: (metric, higher_is_better) pairs gated against the baseline median.
GATED = (
    ("churn_trial_speedup", True),
    ("permuted_over_static", False),
    ("empty_plan_overhead", False),
    ("campaign_checkpoint_overhead", False),
    ("trace_disabled_overhead", False),
    ("sparse_frontier_speedup", True),
    ("largen_ms_ratio_n1e6_over_n1e5", False),
    ("pool_reuse_overhead", False),
    ("graph_memo_hit_ratio", True),
    ("graph_memo_warm_speedup", True),
    ("async_vs_sync_round_ratio", False),
    ("tournament_cell_throughput", True),
)

#: Absolute (machine-dependent) context values that must exist in the
#: current record — their producing benches must have run — but whose
#: magnitudes are not compared against the baseline.
REQUIRED_PRESENT = (
    "ms_per_round_n1e5",
    "ms_per_round_n1e6",
    "pool_cpu_count",
    "async_events_per_sec",
    "live_rounds_per_sec_n64",
    "live_rounds_per_sec_n256",
)


def _reject_constant(token: str):
    raise ValueError(f"non-standard JSON constant {token!r} is not RFC 8259")


def strict_loads(text: str):
    """Parse ``text`` as strict RFC 8259 JSON (``Infinity``/``NaN`` raise)."""
    return json.loads(text, parse_constant=_reject_constant)


def strict_parse_files(paths: list[Path]) -> int:
    """Strict-parse each file; report per-file verdicts, return #failures."""
    failures = 0
    for extra in paths:
        try:
            strict_loads(extra.read_text())
        except (OSError, ValueError) as exc:
            print(f"STRICT-PARSE FAIL {extra}: {exc}")
            failures += 1
        else:
            print(f"strict-parse ok {extra}")
    return failures

#: The pooled-campaign floor only applies on runners with this many CPUs.
PARALLEL_SPEEDUP_MIN = 2.0
PARALLEL_MIN_CPUS = 4


def _trend_table(rows: list[tuple[str, str, str, str, str]]) -> str:
    """Render ``(metric, baseline, current, delta, status)`` rows aligned."""
    header = ("metric", "baseline", "current", "delta", "status")
    table = [header, *rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = []
    for i, row in enumerate(table):
        lines.append(
            "  ".join(
                cell.ljust(widths[j]) if j == 0 else cell.rjust(widths[j])
                for j, cell in enumerate(row)
            ).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def check(path: Path) -> int:
    try:
        data = strict_loads(path.read_text())
    except ValueError as exc:
        print(f"{path}: not strict RFC 8259 JSON: {exc}")
        return 1
    records = data.get("records", [])
    if not records:
        print(f"{path}: no records; nothing to check")
        return 1
    current = records[-1]
    if len(records) == 1:
        print(f"{path}: single record (no committed baseline); pass")
        return 0
    prior = records[:-1]
    print(
        f"baseline: per-metric median of {len(prior)} committed record(s) "
        f"({prior[0]['commit']}..{prior[-1]['commit']}) vs "
        f"current {current['commit']} ({current['date']})"
    )

    def baseline_for(key: str) -> float | None:
        values = [r[key] for r in prior if r.get(key) is not None]
        return statistics.median(values) if values else None

    failures: list[str] = []
    rows: list[tuple[str, str, str, str, str]] = []

    def row(key, base, cur, status):
        delta = "-" if base is None or cur is None else f"{(cur - base) / base * 100:+.1f}%"
        rows.append(
            (
                key,
                "-" if base is None else f"{base:.3f}",
                "-" if cur is None else f"{cur:.3f}",
                delta,
                status,
            )
        )

    for key in REQUIRED_PRESENT:
        if current.get(key) is None:
            failures.append(f"{key}: missing from current record")
            row(key, None, None, "MISSING")
        else:
            row(key, baseline_for(key), current[key], "context")

    for key, higher_is_better in GATED:
        base, cur = baseline_for(key), current.get(key)
        if cur is None:
            failures.append(f"{key}: missing from current record")
            row(key, base, None, "MISSING")
            continue
        cap = ABSOLUTE_MAX.get(key)
        if cap is not None and cur > cap:
            failures.append(f"{key}: {cur:.3f} > absolute cap {cap:.3f}")
            row(key, base, cur, f"REGRESSION (cap {cap:g})")
            continue
        floor = ABSOLUTE_MIN.get(key)
        if floor is not None and cur < floor:
            failures.append(f"{key}: {cur:.3f} < absolute floor {floor:.3f}")
            row(key, base, cur, f"REGRESSION (floor {floor:g})")
            continue
        if base is None:
            # Metric newer than the baseline record: nothing to compare
            # against yet; the next committed record becomes its baseline.
            row(key, None, cur, "ok (new metric)")
            continue
        if higher_is_better:
            ok = cur >= base * (1 - TOLERANCE)
        else:
            ok = cur <= base * (1 + TOLERANCE)
        row(key, base, cur, "ok" if ok else "REGRESSION")
        if not ok:
            failures.append(f"{key}: {cur:.3f} vs baseline {base:.3f}")

    # The parallel-plane speedup: absolute conditional floor, never
    # baseline-relative (the baseline may mix runners with different core
    # counts).
    key = "campaign_parallel_speedup"
    cur, cpus = current.get(key), current.get("pool_cpu_count")
    if cur is None:
        failures.append(f"{key}: missing from current record")
        row(key, None, None, "MISSING")
    elif cpus is not None and cpus >= PARALLEL_MIN_CPUS:
        if cur >= PARALLEL_SPEEDUP_MIN:
            row(key, None, cur, f"ok ({cpus:g} CPUs)")
        else:
            failures.append(
                f"{key}: {cur:.3f} < floor {PARALLEL_SPEEDUP_MIN:.1f} "
                f"on a {cpus:g}-CPU runner"
            )
            row(key, None, cur, f"REGRESSION (floor {PARALLEL_SPEEDUP_MIN:g})")
    else:
        row(key, None, cur, f"context (<{PARALLEL_MIN_CPUS} CPUs)")

    print(_trend_table(rows))
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    default = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else default
    status = check(target)
    if strict_parse_files([Path(p) for p in sys.argv[2:]]):
        status = 1
    sys.exit(status)
