"""A1 — ablation: the 2*log(Delta) group length of bit convergence."""

from _common import bench_and_verify


def test_a1_group_length(benchmark):
    bench_and_verify(benchmark, "A1")
