"""E19 — Lemmas VI.4/VI.5: blind gossip phases are productive w.h.p."""

from _common import bench_and_verify


def test_e19_productive_phases(benchmark):
    bench_and_verify(benchmark, "E19")
