"""E15 — communication cost: total connections until stabilization."""

from _common import bench_and_verify


def test_e15_communication_cost(benchmark):
    bench_and_verify(benchmark, "E15")
