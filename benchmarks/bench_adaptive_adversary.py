"""E12 — extension: adaptive worst-case churn vs oblivious churn."""

from _common import bench_and_verify


def test_e12_adaptive_adversary(benchmark):
    bench_and_verify(benchmark, "E12")
