"""E6 — Theorem VII.2: bit convergence vs the stability factor tau."""

from _common import bench_and_verify


def test_e6_bit_convergence_tau(benchmark):
    bench_and_verify(benchmark, "E6")
