"""A2 — ablation: async bit convergence tag width k (position-sampling cost)."""

from _common import bench_and_verify


def test_a2_async_tag_width(benchmark):
    bench_and_verify(benchmark, "A2")
