"""A3 — ablation: PUSH-only / PULL-only vs symmetric PUSH-PULL at b=0."""

from _common import bench_and_verify


def test_a3_direction(benchmark):
    bench_and_verify(benchmark, "A3")
