"""E18 — extension: consensus via leader election."""

from _common import bench_and_verify


def test_e18_consensus(benchmark):
    bench_and_verify(benchmark, "E18")
