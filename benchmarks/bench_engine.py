"""Microbenchmarks: round throughput of the engines and CSR primitives.

These are conventional pytest-benchmark measurements (many iterations)
quantifying the simulator itself — the substrate every experiment rides
on — and documenting the reference-vs-vectorized speed gap plus the
batched-vs-per-trial trial-throughput gap.
"""

import numpy as np

from repro.algorithms.bit_convergence import BitConvergenceConfig, BitConvergenceVectorized
from repro.algorithms.blind_gossip import (
    BlindGossipBatched,
    BlindGossipVectorized,
    make_blind_gossip_nodes,
)
from repro.core.batched import BatchedVectorizedEngine
from repro.core.engine import ReferenceEngine
from repro.core.payload import UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.harness.experiments import uid_keys_random
from repro.harness.runner import run_trials, run_trials_batched, trial_seeds_for
from repro.util.csrops import (
    batched_random_pick,
    segmented_random_pick,
    segmented_uniform_accept,
)

N = 256
DEGREE = 8
REPLICAS = 32


def test_vectorized_engine_round(benchmark):
    g = families.random_regular(N, DEGREE, seed=0)
    keys = uid_keys_random(N, 0)
    eng = VectorizedEngine(StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=0)
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_vectorized_bit_convergence_round(benchmark):
    g = families.random_regular(N, DEGREE, seed=0)
    keys = uid_keys_random(N, 0)
    cfg = BitConvergenceConfig(n_upper=N, delta_bound=DEGREE, beta=1.0)
    eng = VectorizedEngine(
        StaticDynamicGraph(g),
        BitConvergenceVectorized(keys, cfg, tag_seed=0, unique_tags=True),
        seed=0,
    )
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_reference_engine_round(benchmark):
    g = families.random_regular(64, DEGREE, seed=0)
    us = UIDSpace(64, seed=0)
    eng = ReferenceEngine(StaticDynamicGraph(g), make_blind_gossip_nodes(us), seed=0)
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_vectorized_engine_round_large(benchmark):
    """Scalability point: one vectorized round at n=4096."""
    g = families.random_regular(4096, 16, seed=0)
    keys = uid_keys_random(4096, 0)
    eng = VectorizedEngine(StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=0)
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_batched_engine_round(benchmark):
    """One batched round advances all 32 replicas at once."""
    g = families.random_regular(N, DEGREE, seed=0)
    keys = uid_keys_random(N, 0)
    eng = BatchedVectorizedEngine(
        StaticDynamicGraph(g),
        BlindGossipBatched(keys),
        seeds=trial_seeds_for(0, REPLICAS),
    )
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def _trial_throughput_setup(n: int):
    g = families.random_regular(n, DEGREE, seed=0)
    dg = StaticDynamicGraph(g)
    keys = uid_keys_random(n, 0)
    return dg, keys


def _bench_trials_single(dg, keys):
    return run_trials(
        lambda ts: VectorizedEngine(dg, BlindGossipVectorized(keys), seed=ts),
        trials=REPLICAS,
        max_rounds=100_000,
        seed=0,
    )


def _bench_trials_batched(dg, keys):
    return run_trials_batched(
        lambda seeds: (dg, BlindGossipBatched(keys)),
        trials=REPLICAS,
        max_rounds=100_000,
        seed=0,
    )


def test_trial_throughput_single_n256(benchmark):
    """Baseline: 32 blind-gossip trials as 32 separate engine loops."""
    dg, keys = _trial_throughput_setup(N)
    out = benchmark(_bench_trials_single, dg, keys)
    assert all(o.stabilized for o in out)


def test_trial_throughput_batched_n256(benchmark):
    """Fast path: the same 32 trials as one batched (T, n) computation.

    The acceptance target for the batched engine is ≥5× the
    single-engine loop above (compare the two means in the saved
    benchmark JSON).
    """
    dg, keys = _trial_throughput_setup(N)
    out = benchmark(_bench_trials_batched, dg, keys)
    assert all(o.stabilized for o in out)


def test_trial_throughput_single_n1024(benchmark):
    dg, keys = _trial_throughput_setup(1024)
    out = benchmark(_bench_trials_single, dg, keys)
    assert all(o.stabilized for o in out)


def test_trial_throughput_batched_n1024(benchmark):
    dg, keys = _trial_throughput_setup(1024)
    out = benchmark(_bench_trials_batched, dg, keys)
    assert all(o.stabilized for o in out)


def test_segmented_random_pick(benchmark):
    g = families.random_regular(1024, 16, seed=0)
    rng = np.random.default_rng(0)
    mask = rng.random(1024) < 0.5

    benchmark(
        lambda: segmented_random_pick(g.indptr, g.indices, rng, neighbor_mask=mask)
    )


def test_segmented_uniform_accept(benchmark):
    rng = np.random.default_rng(0)
    senders = rng.permutation(4096).astype(np.int64)
    targets = rng.integers(0, 512, size=4096)

    benchmark(lambda: segmented_uniform_accept(senders, targets, 4096, rng))


def test_batched_random_pick(benchmark):
    """32 replicas' picks over one shared CSR in a single kernel call."""
    g = families.random_regular(1024, 16, seed=0)
    rng = np.random.default_rng(0)
    active = rng.random((REPLICAS, 1024)) < 0.5

    benchmark(lambda: batched_random_pick(g.indptr, g.indices, rng, active))
