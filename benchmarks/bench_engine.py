"""Microbenchmarks: round throughput of the engines and CSR primitives.

These are conventional pytest-benchmark measurements (many iterations)
quantifying the simulator itself — the substrate every experiment rides
on — and documenting the reference-vs-vectorized speed gap plus the
batched-vs-per-trial trial-throughput gap.
"""

import numpy as np

from repro.algorithms.bit_convergence import BitConvergenceConfig, BitConvergenceVectorized
from repro.algorithms.blind_gossip import (
    BlindGossipBatched,
    BlindGossipVectorized,
    make_blind_gossip_nodes,
)
from repro.core.batched import BatchedVectorizedEngine
from repro.core.engine import ReferenceEngine
from repro.core.payload import UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.harness.experiments import uid_keys_random
from repro.harness.runner import run_trials, run_trials_batched, trial_seeds_for
from repro.util.csrops import (
    batched_random_pick,
    segmented_random_pick,
    segmented_uniform_accept,
)

N = 256
DEGREE = 8
REPLICAS = 32


def test_vectorized_engine_round(benchmark):
    g = families.random_regular(N, DEGREE, seed=0)
    keys = uid_keys_random(N, 0)
    eng = VectorizedEngine(StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=0)
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_vectorized_bit_convergence_round(benchmark):
    g = families.random_regular(N, DEGREE, seed=0)
    keys = uid_keys_random(N, 0)
    cfg = BitConvergenceConfig(n_upper=N, delta_bound=DEGREE, beta=1.0)
    eng = VectorizedEngine(
        StaticDynamicGraph(g),
        BitConvergenceVectorized(keys, cfg, tag_seed=0, unique_tags=True),
        seed=0,
    )
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_reference_engine_round(benchmark):
    g = families.random_regular(64, DEGREE, seed=0)
    us = UIDSpace(64, seed=0)
    eng = ReferenceEngine(StaticDynamicGraph(g), make_blind_gossip_nodes(us), seed=0)
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_vectorized_engine_round_large(benchmark):
    """Scalability point: one vectorized round at n=4096."""
    g = families.random_regular(4096, 16, seed=0)
    keys = uid_keys_random(4096, 0)
    eng = VectorizedEngine(StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=0)
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_batched_engine_round(benchmark):
    """One batched round advances all 32 replicas at once."""
    g = families.random_regular(N, DEGREE, seed=0)
    keys = uid_keys_random(N, 0)
    eng = BatchedVectorizedEngine(
        StaticDynamicGraph(g),
        BlindGossipBatched(keys),
        seeds=trial_seeds_for(0, REPLICAS),
    )
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def _trial_throughput_setup(n: int):
    g = families.random_regular(n, DEGREE, seed=0)
    dg = StaticDynamicGraph(g)
    keys = uid_keys_random(n, 0)
    return dg, keys


def _bench_trials_single(dg, keys):
    return run_trials(
        lambda ts: VectorizedEngine(dg, BlindGossipVectorized(keys), seed=ts),
        trials=REPLICAS,
        max_rounds=100_000,
        seed=0,
    )


def _bench_trials_batched(dg, keys):
    return run_trials_batched(
        lambda seeds: (dg, BlindGossipBatched(keys)),
        trials=REPLICAS,
        max_rounds=100_000,
        seed=0,
    )


def test_trial_throughput_single_n256(benchmark):
    """Baseline: 32 blind-gossip trials as 32 separate engine loops."""
    dg, keys = _trial_throughput_setup(N)
    out = benchmark(_bench_trials_single, dg, keys)
    assert all(o.stabilized for o in out)


def test_trial_throughput_batched_n256(benchmark):
    """Fast path: the same 32 trials as one batched (T, n) computation.

    The acceptance target for the batched engine is ≥5× the
    single-engine loop above (compare the two means in the saved
    benchmark JSON).
    """
    dg, keys = _trial_throughput_setup(N)
    out = benchmark(_bench_trials_batched, dg, keys)
    assert all(o.stabilized for o in out)


def test_trial_throughput_single_n1024(benchmark):
    dg, keys = _trial_throughput_setup(1024)
    out = benchmark(_bench_trials_single, dg, keys)
    assert all(o.stabilized for o in out)


def test_trial_throughput_batched_n1024(benchmark):
    dg, keys = _trial_throughput_setup(1024)
    out = benchmark(_bench_trials_batched, dg, keys)
    assert all(o.stabilized for o in out)


def test_segmented_random_pick(benchmark):
    g = families.random_regular(1024, 16, seed=0)
    rng = np.random.default_rng(0)
    mask = rng.random(1024) < 0.5

    benchmark(
        lambda: segmented_random_pick(g.indptr, g.indices, rng, neighbor_mask=mask)
    )


def test_segmented_uniform_accept(benchmark):
    rng = np.random.default_rng(0)
    senders = rng.permutation(4096).astype(np.int64)
    targets = rng.integers(0, 512, size=4096)

    benchmark(lambda: segmented_uniform_accept(senders, targets, 4096, rng))


def test_batched_random_pick(benchmark):
    """32 replicas' picks over one shared CSR in a single kernel call."""
    g = families.random_regular(1024, 16, seed=0)
    rng = np.random.default_rng(0)
    active = rng.random((REPLICAS, 1024)) < 0.5

    benchmark(lambda: batched_random_pick(g.indptr, g.indices, rng, active))


# ---------------------------------------------------------------------------
# Churn + fault tier: cross-configuration ratios with asserted targets
# ---------------------------------------------------------------------------
#
# These tests time with perf_counter instead of the ``benchmark`` fixture
# because they *assert* cross-configuration ratios (one fixture call cannot
# compare two workloads) and they must run under plain pytest in CI (the
# ``--benchmark-only`` pass skips them).  Run them with::
#
#     pytest benchmarks/bench_engine.py -k "churn or fault or campaign"
#
# Passing runs append one trajectory record to ``BENCH_engine.json`` at the
# repo root; ``benchmarks/check_engine_regression.py`` gates CI on the
# dimensionless ratios in that record staying within 30% of the committed
# baseline.

import json
import subprocess
import time
from datetime import date
from pathlib import Path

from repro.graphs.dynamic import PeriodicRelabelDynamicGraph

CHURN_N_LEAVES = 15  # double star: n = 32
TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Ratio targets asserted below (and re-checked by the regression gate).
PERMUTED_OVER_STATIC_MAX = 3.0
CHURN_TRIAL_SPEEDUP_MIN = 10.0

_measurements: dict[str, float] = {}


def _churn_setup():
    base = families.double_star(CHURN_N_LEAVES)
    keys = uid_keys_random(base.n, 0)
    return base, keys


def _ms_per_round(make_engine, rounds: int = 300, repeats: int = 5) -> float:
    """Median-of-repeats per-round wall time of a fresh engine, in ms."""
    samples = []
    for _ in range(repeats):
        eng = make_engine()
        eng.step(1)  # one warm-up round: caches, first-epoch setup
        t0 = time.perf_counter()
        for r in range(2, rounds + 2):
            eng.step(r)
        samples.append((time.perf_counter() - t0) / rounds * 1000.0)
    samples.sort()
    return samples[len(samples) // 2]


def _timed(fn, repeats: int = 3) -> float:
    """Median-of-repeats wall time of ``fn()``, in seconds."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2]


def test_churn_round_cost_tiers():
    """Permutation-native churn rounds cost ≤3× static shared-CSR rounds.

    The three tiers run the same blind-gossip workload (double star n=32,
    T=32): one shared static CSR; per-replica τ=1 relabelings of a shared
    base (permutation-native fast path); the same relabelings over
    *distinct* base objects (stacked block-diagonal CSR fallback).
    """
    base, keys = _churn_setup()
    seeds = trial_seeds_for(0, REPLICAS)

    static_ms = _ms_per_round(
        lambda: BatchedVectorizedEngine(
            StaticDynamicGraph(base), BlindGossipBatched(keys), seeds=seeds
        )
    )
    permuted_ms = _ms_per_round(
        lambda: BatchedVectorizedEngine(
            [PeriodicRelabelDynamicGraph(base, 1, seed=int(ts)) for ts in seeds],
            BlindGossipBatched(keys),
            seeds=seeds,
        )
    )
    stacked_ms = _ms_per_round(
        lambda: BatchedVectorizedEngine(
            [
                PeriodicRelabelDynamicGraph(
                    families.double_star(CHURN_N_LEAVES), 1, seed=int(ts)
                )
                for ts in seeds
            ],
            BlindGossipBatched(keys),
            seeds=seeds,
        )
    )

    _measurements.update(
        static_ms_per_round=static_ms,
        permuted_ms_per_round=permuted_ms,
        stacked_ms_per_round=stacked_ms,
        permuted_over_static=permuted_ms / static_ms,
    )
    assert permuted_ms / static_ms <= PERMUTED_OVER_STATIC_MAX, (
        f"permutation-native churn round {permuted_ms:.3f} ms is "
        f"{permuted_ms / static_ms:.1f}x the static round {static_ms:.3f} ms "
        f"(target <= {PERMUTED_OVER_STATIC_MAX}x)"
    )
    # The fast path must also clearly beat the stacked fallback it replaces.
    assert permuted_ms < stacked_ms


def test_churn_trial_throughput():
    """Batched τ=1 churn sweeps run ≥10× faster than the per-trial loop."""
    base, keys = _churn_setup()

    def single():
        out = run_trials(
            lambda ts: VectorizedEngine(
                PeriodicRelabelDynamicGraph(base, 1, seed=ts),
                BlindGossipVectorized(keys),
                seed=ts,
            ),
            trials=REPLICAS,
            max_rounds=100_000,
            seed=0,
        )
        assert all(o.stabilized for o in out)

    def batched():
        out = run_trials_batched(
            lambda seeds: (
                [PeriodicRelabelDynamicGraph(base, 1, seed=int(ts)) for ts in seeds],
                BlindGossipBatched(keys),
            ),
            trials=REPLICAS,
            max_rounds=100_000,
            seed=0,
        )
        assert all(o.stabilized for o in out)

    single_s = _timed(single)
    batched_s = _timed(batched)
    speedup = single_s / batched_s
    _measurements.update(
        churn_single_trials_s=single_s,
        churn_batched_trials_s=batched_s,
        churn_trial_speedup=speedup,
    )
    assert speedup >= CHURN_TRIAL_SPEEDUP_MIN, (
        f"batched churn sweep is only {speedup:.1f}x the per-trial loop "
        f"(target >= {CHURN_TRIAL_SPEEDUP_MIN}x): "
        f"{single_s:.2f}s vs {batched_s:.2f}s"
    )


#: Max tolerated round-cost ratio of an empty FaultPlan over no plan.
EMPTY_PLAN_OVERHEAD_MAX = 1.05


def test_fault_empty_plan_overhead():
    """An engine built with an empty ``FaultPlan`` costs ≤5% per round.

    Engines normalize an empty plan to no plan at construction, so the
    hot loop is the very same code path; this bench pins that guarantee
    against future fault hooks leaking into the faultless path.
    """
    from repro.faults import FaultPlan

    g = families.random_regular(N, DEGREE, seed=0)
    keys = uid_keys_random(N, 0)
    seeds = trial_seeds_for(0, REPLICAS)

    def make(plan):
        return lambda: BatchedVectorizedEngine(
            StaticDynamicGraph(g),
            BlindGossipBatched(keys),
            seeds=seeds,
            fault_plan=plan,
        )

    # Paired passes, then the min ratio: with a gate this tight the
    # signal is ~1.0 by construction and the rest is scheduler noise,
    # which paired medians plus a min across passes filter out.
    ratios = []
    for _ in range(3):
        base_ms = _ms_per_round(make(None), rounds=200, repeats=3)
        plan_ms = _ms_per_round(make(FaultPlan()), rounds=200, repeats=3)
        ratios.append(plan_ms / base_ms)
    overhead = min(ratios)
    _measurements["empty_plan_overhead"] = overhead
    assert overhead <= EMPTY_PLAN_OVERHEAD_MAX, (
        f"empty-FaultPlan rounds cost {overhead:.3f}x the faultless rounds "
        f"(target <= {EMPTY_PLAN_OVERHEAD_MAX}x)"
    )


#: Max tolerated round-cost ratio of ``collect_trace=False`` over default.
TRACE_DISABLED_OVERHEAD_MAX = 1.05


def test_trace_disabled_overhead():
    """An engine built with ``collect_trace=False`` costs ≤5% per round.

    Trace capture is opt-in: disabled, the round loop is the pre-capture
    loop plus per-round guard branches that never take (``self.trace`` is
    ``None``).  Like the empty-FaultPlan gate above, the ratio is ~1.0 by
    construction today; the gate pins that guarantee against future trace
    work leaking outside the ``collect_trace`` guard (eager per-round
    array materialization, unconditional copies).  The enabled/disabled
    ratio is recorded alongside as context — it is *allowed* to be large.
    """
    g = families.random_regular(N, DEGREE, seed=0)
    keys = uid_keys_random(N, 0)
    seeds = trial_seeds_for(0, REPLICAS)

    def make(**kwargs):
        return lambda: BatchedVectorizedEngine(
            StaticDynamicGraph(g),
            BlindGossipBatched(keys),
            seeds=seeds,
            **kwargs,
        )

    # Paired passes, min ratio: same noise-filtering rationale as the
    # empty-plan overhead gate above.
    ratios = []
    for _ in range(3):
        default_ms = _ms_per_round(make(), rounds=200, repeats=3)
        disabled_ms = _ms_per_round(make(collect_trace=False), rounds=200, repeats=3)
        ratios.append(disabled_ms / default_ms)
    overhead = min(ratios)
    enabled_ms = _ms_per_round(make(collect_trace=True), rounds=200, repeats=3)
    _measurements["trace_disabled_overhead"] = overhead
    _measurements["trace_enabled_over_disabled"] = enabled_ms / disabled_ms
    assert overhead <= TRACE_DISABLED_OVERHEAD_MAX, (
        f"trace-disabled rounds cost {overhead:.3f}x the default rounds "
        f"(target <= {TRACE_DISABLED_OVERHEAD_MAX}x)"
    )


#: Max tolerated wall-time ratio of a checkpointed campaign over a raw loop.
CAMPAIGN_CHECKPOINT_OVERHEAD_MAX = 1.05


def test_campaign_checkpoint_overhead():
    """A durable campaign costs ≤5% over a raw ``run_experiment`` loop.

    Same cells, same profile; the campaign additionally writes one
    atomic, fsynced, content-hashed checkpoint per cell.  The checkpoint
    cost is per-cell constant, so the quick E1+A3 pair (fractions of a
    second of real compute) is the *unfavourable* case — a standard
    campaign amortizes the same bytes over minutes of compute.
    """
    import tempfile

    from repro.harness.campaign import CampaignConfig, run_campaign
    from repro.harness.experiments import run_experiment

    cells = ("E1", "A3")

    def raw():
        for exp_id in cells:
            run_experiment(exp_id, "quick")

    def campaign():
        with tempfile.TemporaryDirectory() as d:
            report = run_campaign(
                CampaignConfig(checkpoint_dir=d, exp_ids=cells, verify=False)
            )
            assert report.ok

    # Paired passes, min ratio: the same noise-filtering rationale as
    # the empty-plan overhead gate above.
    ratios = []
    for _ in range(3):
        raw_s = _timed(raw, repeats=3)
        campaign_s = _timed(campaign, repeats=3)
        ratios.append(campaign_s / raw_s)
    overhead = min(ratios)
    _measurements["campaign_checkpoint_overhead"] = overhead
    assert overhead <= CAMPAIGN_CHECKPOINT_OVERHEAD_MAX, (
        f"checkpointed campaign costs {overhead:.3f}x the raw experiment loop "
        f"(target <= {CAMPAIGN_CHECKPOINT_OVERHEAD_MAX}x)"
    )


# ---------------------------------------------------------------------------
# Large-n tier: chunked-engine round cost and sparse-frontier endgame speedup
# ---------------------------------------------------------------------------

LARGE_DEGREE = 8
SPARSE_UNDONE = 128

#: Endgame speedup target asserted below (and re-checked by the gate).
SPARSE_FRONTIER_SPEEDUP_MIN = 5.0


def _large_setup(n: int, seed: int = 0):
    g = families.random_regular(n, LARGE_DEGREE, seed=seed)
    keys = uid_keys_random(n, seed)
    return StaticDynamicGraph(g), keys


def _endgame_engine(dg, keys, sparse: str):
    """A vectorized engine positioned near stabilization.

    All but :data:`SPARSE_UNDONE` nodes already hold the winner; the
    stragglers hold distinct non-winning values.  This is the regime the
    sparse frontier targets: the undone set and its 2-hop closure are a
    few percent of the network.
    """
    eng = VectorizedEngine(
        dg, BlindGossipVectorized(keys), seed=1, sparse=sparse
    )
    st = eng.state
    n = st.best.size
    undone = np.random.default_rng(7).choice(n, size=SPARSE_UNDONE, replace=False)
    st.best[:] = st.target
    st.best[undone] = st.target + 1 + np.arange(SPARSE_UNDONE)
    if sparse != "off":
        # Materialize the frontier up front: a real run builds it once at
        # the first sparse round, not once per measured round.
        eng._ensure_frontier()
    return eng


def _first_round_ms(make_engine, repeats: int = 9) -> float:
    """Median cost of round 1 on a fresh engine, in ms.

    The churn benches time long streaks (:func:`_ms_per_round`); here the
    endgame state must be identical for every measured round, so each
    sample re-builds the engine and times exactly one round.
    """
    samples = []
    for _ in range(repeats):
        eng = make_engine()
        t0 = time.perf_counter()
        eng.step(1)
        samples.append((time.perf_counter() - t0) * 1000.0)
    samples.sort()
    return samples[len(samples) // 2]


def test_sparse_frontier_speedup():
    """Endgame rounds on the sparse frontier run ≥5× the dense rounds.

    Same n=10^5 endgame state (128 undone nodes) for both engines; the
    dense round touches all 10^5 rows, the sparse round only the ~1%
    2-hop closure of the undone set.
    """
    dg, keys = _large_setup(100_000)

    dense_ms = _first_round_ms(lambda: _endgame_engine(dg, keys, "off"))
    sparse_ms = _first_round_ms(lambda: _endgame_engine(dg, keys, "auto"))
    speedup = dense_ms / sparse_ms
    _measurements.update(
        endgame_dense_ms_per_round=dense_ms,
        endgame_sparse_ms_per_round=sparse_ms,
        sparse_frontier_speedup=speedup,
    )
    assert speedup >= SPARSE_FRONTIER_SPEEDUP_MIN, (
        f"sparse endgame round {sparse_ms:.3f} ms is only {speedup:.1f}x "
        f"faster than the dense round {dense_ms:.3f} ms "
        f"(target >= {SPARSE_FRONTIER_SPEEDUP_MIN}x)"
    )


def test_large_n_round_cost():
    """Chunked-engine round cost at n=10^5 and n=10^6 from the initial state.

    Records absolute per-round wall times (machine-dependent context) and
    their dimensionless n=10^6 / n=10^5 ratio, which the regression gate
    caps: a 10× larger network must not cost disproportionately more per
    round (superlinear blowup means the chunking or frontier logic broke).
    """
    from repro.core.largen import LargeNEngine

    dg5, keys5 = _large_setup(100_000)
    ms_1e5 = _ms_per_round(
        lambda: LargeNEngine(dg5, BlindGossipVectorized(keys5), seed=2),
        rounds=20,
        repeats=3,
    )
    dg6, keys6 = _large_setup(1_000_000)
    ms_1e6 = _ms_per_round(
        lambda: LargeNEngine(dg6, BlindGossipVectorized(keys6), seed=2),
        rounds=5,
        repeats=2,
    )
    _measurements.update(
        ms_per_round_n1e5=ms_1e5,
        ms_per_round_n1e6=ms_1e6,
        largen_ms_ratio_n1e6_over_n1e5=ms_1e6 / ms_1e5,
    )
    # Sanity only (the gate holds the real cap): 10x nodes should cost
    # within ~25x per round, not e.g. 100x.
    assert ms_1e6 / ms_1e5 <= 25.0, (
        f"n=1e6 round {ms_1e6:.1f} ms is {ms_1e6 / ms_1e5:.1f}x the "
        f"n=1e5 round {ms_1e5:.1f} ms (superlinear blowup)"
    )


# ---------------------------------------------------------------------------
# Parallel execution plane: pool reuse, shared-graph memo, campaign speedup
# ---------------------------------------------------------------------------

import os

#: Warm pooled waves must not cost more than fork-per-unit waves.
POOL_REUSE_OVERHEAD_MAX = 1.0
#: Cross-store graph memo: hit ratio over an 8-call sweep and the
#: mmap-attach speedup over a cold rebuild.
GRAPH_MEMO_HIT_RATIO_MIN = 0.85
GRAPH_MEMO_WARM_SPEEDUP_MIN = 5.0
#: Whole-campaign speedup target, asserted only on multi-core runners
#: (the regression gate applies the same condition via pool_cpu_count).
CAMPAIGN_PARALLEL_SPEEDUP_MIN = 2.0
CAMPAIGN_PARALLEL_MIN_CPUS = 4


def _pool_overhead_task(reps: int = 40) -> int:
    """A few milliseconds of real numpy work (what a trial chunk does)."""
    total = 0
    for i in range(reps):
        total += int(np.arange(20_000, dtype=np.int64).sum()) % 7
    return total


def test_pool_reuse_overhead():
    """Warm persistent-pool waves cost ≤1.0× fork-per-unit waves.

    Both sides run the same 6-unit wave of numpy work with the same
    concurrency (pool size = wave width = forked children).  The fork
    path pays one fork + teardown per unit per wave; the pool pays only
    a pipe round-trip per unit — so dispatching through the persistent
    pool must never be slower than what it replaces.
    """
    from repro.harness.durable import _run_wave
    from repro.harness.pool import PoolUnit, WorkerPool

    width, waves = 6, 3

    def forked():
        for _ in range(waves):
            results, failures = _run_wave(
                {
                    i: (f"u{i}", _pool_overhead_task, None)
                    for i in range(width)
                }
            )
            assert not failures and len(results) == width

    with WorkerPool(width) as pool:

        def pooled():
            for _ in range(waves):
                results, failures = pool.run_units(
                    [PoolUnit(f"u{i}", _pool_overhead_task) for i in range(width)]
                )
                assert not failures and len(results) == width

        pooled()  # warm-up: the metric is steady-state reuse, not startup
        ratios = []
        for _ in range(3):
            forked_s = _timed(forked, repeats=3)
            pooled_s = _timed(pooled, repeats=3)
            ratios.append(pooled_s / forked_s)
    overhead = min(ratios)
    _measurements["pool_reuse_overhead"] = overhead
    assert overhead <= POOL_REUSE_OVERHEAD_MAX, (
        f"warm pooled wave costs {overhead:.3f}x the fork-per-unit wave "
        f"(target <= {POOL_REUSE_OVERHEAD_MAX}x)"
    )


def test_graph_memo_warm_speedup_and_hit_ratio():
    """Shared-graph memo: warm attach ≥5× faster than a cold build, and
    an 8-call (family, args, seed) sweep hits the memo ≥85% of the time.

    Each warm call attaches a *fresh* store (empty in-process cache), so
    the measured path is the real cross-process one: name derivation +
    mmap of the published segment.
    """
    import pytest

    from repro.util import shm

    if not shm.shared_memory_supported():
        pytest.skip("no /dev/shm on this platform")

    build = lambda: families.random_regular(4096, 8, seed=123)  # noqa: E731
    cold_s = _timed(build, repeats=3)

    store = shm.SharedGraphStore.create()
    try:
        with shm.use_graph_store(store):
            build()  # the one miss: builds and publishes
        hits, misses = store.hits, store.misses

        def warm():
            attach = shm.SharedGraphStore(store.prefix, owner=False)
            with shm.use_graph_store(attach):
                build()
            return attach

        attaches = [warm() for _ in range(4)]  # 3 more timed below
        warm_s = _timed(lambda: attaches.append(warm()), repeats=3)
        for attach in attaches:
            hits += attach.hits
            misses += attach.misses
    finally:
        store.cleanup()

    ratio = hits / (hits + misses)
    speedup = cold_s / warm_s
    _measurements.update(
        graph_memo_hit_ratio=ratio,
        graph_memo_warm_speedup=speedup,
    )
    assert ratio >= GRAPH_MEMO_HIT_RATIO_MIN, (
        f"memo hit ratio {ratio:.3f} over {hits + misses} calls "
        f"(target >= {GRAPH_MEMO_HIT_RATIO_MIN})"
    )
    assert speedup >= GRAPH_MEMO_WARM_SPEEDUP_MIN, (
        f"warm attach {warm_s * 1000:.2f} ms is only {speedup:.1f}x faster "
        f"than the cold build {cold_s * 1000:.2f} ms "
        f"(target >= {GRAPH_MEMO_WARM_SPEEDUP_MIN}x)"
    )


def test_campaign_parallel_speedup():
    """Wall-clock speedup of the pooled campaign over the serial scheduler.

    Six real registry cells (two heavy, four light) on a pool sized to
    the machine (≤4 workers).  The ≥2× floor applies only on runners
    with ≥4 CPUs — the recorded ``pool_cpu_count`` lets the regression
    gate re-apply exactly the same condition, so single-core runs still
    record the (possibly <1×) ratio as context without failing.
    """
    import tempfile

    from repro.harness.campaign import CampaignConfig, run_campaign

    cells = ("E3", "E5", "E6", "E7", "E10", "A3")
    cpus = os.cpu_count() or 1
    workers = min(4, cpus)

    def campaign(pool_workers):
        with tempfile.TemporaryDirectory() as d:
            report = run_campaign(
                CampaignConfig(
                    checkpoint_dir=d,
                    exp_ids=cells,
                    verify=False,
                    backoff_base=0.0,
                    pool_workers=pool_workers,
                )
            )
            assert report.ok

    speedups = []
    for _ in range(2):
        serial_s = _timed(lambda: campaign(None), repeats=1)
        pooled_s = _timed(lambda: campaign(workers), repeats=1)
        speedups.append(serial_s / pooled_s)
    speedup = max(speedups)
    _measurements.update(
        campaign_parallel_speedup=speedup,
        pool_cpu_count=float(cpus),
    )
    if cpus >= CAMPAIGN_PARALLEL_MIN_CPUS:
        assert speedup >= CAMPAIGN_PARALLEL_SPEEDUP_MIN, (
            f"pooled campaign ({workers} workers, {cpus} CPUs) is only "
            f"{speedup:.2f}x the serial scheduler "
            f"(target >= {CAMPAIGN_PARALLEL_SPEEDUP_MIN}x)"
        )


# ---------------------------------------------------------------------------
# Async event tier: event throughput and virtual-time dilation vs sync rounds
# ---------------------------------------------------------------------------

from repro.asyncsim import EventSimEngine, blind_gossip_setup

ASYNC_BENCH_N = 256
ASYNC_RATIO_N = 64
ASYNC_RATIO_SEEDS = 9

#: Sanity cap asserted below (the regression gate holds the real,
#: baseline-relative rule).  At Δ=1 one synchronous round unrolls to a
#: fixed timer→connect→deliver cadence of ~2-3 ticks, so the dilation
#: ratio is a stable dimensionless constant well under this.
ASYNC_VS_SYNC_ROUND_RATIO_MAX = 6.0


def _async_gossip_run(seed: int, n: int):
    g = families.random_regular(n, DEGREE, seed=0)
    us = UIDSpace(n, seed=0)
    setup = blind_gossip_setup(us)
    eng = EventSimEngine(
        StaticDynamicGraph(g), setup.nodes, seed=seed, delta=1, scheduler="random"
    )
    res = eng.run_until(100_000, setup.stop_when, check_every=4)
    assert res.stabilized
    return eng, res


def test_async_event_throughput():
    """Events per second of the event tier (absolute, machine-dependent).

    Blind gossip to stabilization at n=256, Δ=1: the per-event Python
    dispatch loop is the cost model here, so the metric is recorded as
    context (like the large-n per-round wall times) rather than gated on
    magnitude — the gate only requires that this bench ran.
    """
    samples = []
    for rep in range(5):
        t0 = time.perf_counter()
        eng, _ = _async_gossip_run(seed=rep + 1, n=ASYNC_BENCH_N)
        elapsed = time.perf_counter() - t0
        samples.append(eng.events_processed / elapsed)
    samples.sort()
    _measurements["async_events_per_sec"] = samples[len(samples) // 2]


def test_async_vs_sync_round_ratio():
    """Median async ticks at Δ=1 over median sync vectorized rounds.

    Same workload both sides (blind gossip, random 8-regular n=64, same
    trial seeds).  The ratio is dimensionless and stable (~2-3: the
    event tier's timer→connect→deliver cadence spans a few ticks per
    synchronous round), so the regression gate holds it to the baseline
    — a jump means the event cadence or the stop-check quantization
    changed, not the machine.
    """
    g = families.random_regular(ASYNC_RATIO_N, DEGREE, seed=0)
    dg = StaticDynamicGraph(g)
    keys = uid_keys_random(ASYNC_RATIO_N, 0)
    async_ticks, sync_rounds = [], []
    for ts in trial_seeds_for(0, ASYNC_RATIO_SEEDS):
        _, res = _async_gossip_run(seed=int(ts), n=ASYNC_RATIO_N)
        async_ticks.append(res.rounds)
        vres = VectorizedEngine(
            dg, BlindGossipVectorized(keys), seed=int(ts)
        ).run(100_000, check_every=4)
        assert vres.stabilized
        sync_rounds.append(vres.rounds)
    ratio = float(np.median(async_ticks)) / float(np.median(sync_rounds))
    _measurements["async_vs_sync_round_ratio"] = ratio
    assert ratio <= ASYNC_VS_SYNC_ROUND_RATIO_MAX, (
        f"async/sync round ratio {ratio:.2f} at Delta=1 exceeds "
        f"{ASYNC_VS_SYNC_ROUND_RATIO_MAX} (ticks={async_ticks}, "
        f"rounds={sync_rounds})"
    )


#: Tournament cells per second must stay within tolerance of the baseline
#: record — a drop means the adversary construction or the per-trial loop
#: in ``run_tournament_trial`` got slower, not that elections changed.
TOURNAMENT_BENCH_GRID = dict(
    n=16, degree=4, taus=(1, 2), trials=2, max_rounds=300,
    assassin_period=6, assassin_kills=2, churn_events=6, churn_last=20,
)


def test_tournament_cell_throughput():
    """Tournament cells (adversary × τ, trials included) per second.

    One full ``exp_tournament`` grid over every adversary at two taus,
    median of three repeats.  Exercises adversary graph/plan construction,
    the manual step loop with ``last_active`` plumbing, and the
    ``LiveAgreementMonitor`` — the whole per-cell path the T-series and
    the ``repro tournament`` CLI ride on.
    """
    from repro.harness.tournament import ADVERSARIES, exp_tournament

    cells = len(ADVERSARIES) * len(TOURNAMENT_BENCH_GRID["taus"])
    samples = []
    for _ in range(3):
        t0 = time.perf_counter()
        table = exp_tournament("push_pull", **TOURNAMENT_BENCH_GRID)
        elapsed = time.perf_counter() - t0
        assert len(table.rows) == cells
        samples.append(cells / elapsed)
    samples.sort()
    _measurements["tournament_cell_throughput"] = samples[len(samples) // 2]


def test_live_transport_throughput():
    """Live-tier rounds/sec over real localhost sockets at two scales.

    Fixed-round runs (stabilization ignored) so the measurement is pure
    protocol + transport + barrier cost: a 64-node blind-gossip clique
    (the dense worst case — ~4k TCP channels, every edge carries frames
    every round) and a 256-node ring (4× the tasks, thin edges).  These
    are wall-clock numbers over real sockets, so the regression floors
    sit far below the measured medians.
    """
    from repro.live import LiveRunConfig, run_live

    for key, cfg in (
        (
            "live_rounds_per_sec_n64",
            LiveRunConfig(
                algorithm="blind_gossip", family="clique", n=64,
                seed=0, fixed_rounds=6, collect_trace=False,
            ),
        ),
        (
            "live_rounds_per_sec_n256",
            LiveRunConfig(
                algorithm="blind_gossip", family="ring", n=256,
                seed=0, fixed_rounds=10, collect_trace=False,
            ),
        ),
    ):
        report = run_live(cfg)
        assert report.result.rounds == cfg.fixed_rounds
        _measurements[key] = report.rounds_per_sec


def test_churn_trajectory_record():
    """Append this run's measurements to the committed trajectory file.

    Runs last of the churn tests (definition order); skips silently when
    the measurements are absent (e.g. a ``-k`` selection ran only one).
    """
    import pytest

    required = {"permuted_over_static", "churn_trial_speedup"}
    if not required <= _measurements.keys():
        pytest.skip("round-cost and throughput churn benches did not both run")
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=TRAJECTORY_PATH.parent,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        commit = "unknown"
    record = {
        "date": date.today().isoformat(),
        "commit": commit,
        **{k: round(v, 4) for k, v in _measurements.items()},
    }
    data = {"records": []}
    if TRAJECTORY_PATH.exists():
        data = json.loads(TRAJECTORY_PATH.read_text())
    data["records"].append(record)
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2, allow_nan=False) + "\n")
