"""Microbenchmarks: round throughput of the engines and CSR primitives.

These are conventional pytest-benchmark measurements (many iterations)
quantifying the simulator itself — the substrate every experiment rides
on — and documenting the reference-vs-vectorized speed gap.
"""

import numpy as np

from repro.algorithms.bit_convergence import BitConvergenceConfig, BitConvergenceVectorized
from repro.algorithms.blind_gossip import BlindGossipVectorized, make_blind_gossip_nodes
from repro.core.engine import ReferenceEngine
from repro.core.payload import UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.harness.experiments import uid_keys_random
from repro.util.csrops import segmented_random_pick, segmented_uniform_accept

N = 256
DEGREE = 8


def test_vectorized_engine_round(benchmark):
    g = families.random_regular(N, DEGREE, seed=0)
    keys = uid_keys_random(N, 0)
    eng = VectorizedEngine(StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=0)
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_vectorized_bit_convergence_round(benchmark):
    g = families.random_regular(N, DEGREE, seed=0)
    keys = uid_keys_random(N, 0)
    cfg = BitConvergenceConfig(n_upper=N, delta_bound=DEGREE, beta=1.0)
    eng = VectorizedEngine(
        StaticDynamicGraph(g),
        BitConvergenceVectorized(keys, cfg, tag_seed=0, unique_tags=True),
        seed=0,
    )
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_reference_engine_round(benchmark):
    g = families.random_regular(64, DEGREE, seed=0)
    us = UIDSpace(64, seed=0)
    eng = ReferenceEngine(StaticDynamicGraph(g), make_blind_gossip_nodes(us), seed=0)
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_vectorized_engine_round_large(benchmark):
    """Scalability point: one vectorized round at n=4096."""
    g = families.random_regular(4096, 16, seed=0)
    keys = uid_keys_random(4096, 0)
    eng = VectorizedEngine(StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=0)
    counter = iter(range(1, 10_000_000))

    benchmark(lambda: eng.step(next(counter)))


def test_segmented_random_pick(benchmark):
    g = families.random_regular(1024, 16, seed=0)
    rng = np.random.default_rng(0)
    mask = rng.random(1024) < 0.5

    benchmark(
        lambda: segmented_random_pick(g.indptr, g.indices, rng, neighbor_mask=mask)
    )


def test_segmented_uniform_accept(benchmark):
    rng = np.random.default_rng(0)
    senders = rng.permutation(4096).astype(np.int64)
    targets = rng.integers(0, 512, size=4096)

    benchmark(lambda: segmented_uniform_accept(senders, targets, 4096, rng))
