"""E14 — PPUSH (b=1) matches classical PUSH-PULL within log factors."""

from _common import bench_and_verify


def test_e14_ppush_vs_classical(benchmark):
    bench_and_verify(benchmark, "E14")
