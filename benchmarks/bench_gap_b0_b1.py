"""E7 — the b=0 vs b=1 gap grows with tau (Section VII headline)."""

from _common import bench_and_verify


def test_e7_gap_b0_b1(benchmark):
    bench_and_verify(benchmark, "E7")
