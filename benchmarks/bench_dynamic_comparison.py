"""E11 — the 1/alpha term drives the cost; churn-mixing erases it."""

from _common import bench_and_verify


def test_e11_dynamic_comparison(benchmark):
    bench_and_verify(benchmark, "E11")
