"""E2 — Theorem V.2: PPUSH informs >= m/f(r) across a cut in r stable rounds."""

from _common import bench_and_verify


def test_e2_ppush_matching(benchmark):
    bench_and_verify(benchmark, "E2")
