"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one experiment table from the per-claim
registry (DESIGN.md maps experiment ids to paper claims), asserts the
claim's *shape* on the measured data, saves the rendered table under
``benchmarks/results/``, and reports wall-clock via pytest-benchmark.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.harness.experiments import run_experiment
from repro.harness.persistence import save_table
from repro.harness.tables import Table

RESULTS_DIR = Path(__file__).parent / "results"

#: Profile used by the benches; override with REPRO_BENCH_PROFILE=standard.
PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "quick")


def run_and_save(exp_id: str, **overrides) -> Table:
    """Run a registered experiment; persist both ASCII and JSON forms."""
    table = run_experiment(exp_id, PROFILE, **overrides)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(table.render() + "\n")
    save_table(
        table,
        RESULTS_DIR / f"{exp_id}.json",
        exp_id=exp_id,
        profile=PROFILE,
        extra={"overrides": {k: repr(v) for k, v in overrides.items()}},
    )
    return table


def bench_experiment(benchmark, exp_id: str, **overrides) -> Table:
    """Benchmark one experiment end-to-end (single measured round)."""
    table = benchmark.pedantic(
        lambda: run_and_save(exp_id, **overrides), rounds=1, iterations=1
    )
    benchmark.extra_info["experiment"] = exp_id
    benchmark.extra_info["profile"] = PROFILE
    return table


def bench_and_verify(benchmark, exp_id: str, **overrides) -> Table:
    """Benchmark one experiment and assert its paper-claim shape checks.

    The checks live in :mod:`repro.harness.verify`, shared with the CLI's
    ``repro experiments verify`` — the benches and the CLI can never
    disagree about what "reproduced" means.
    """
    from repro.harness.verify import verify_experiment

    table = bench_experiment(benchmark, exp_id, **overrides)
    results = verify_experiment(exp_id, table)
    benchmark.extra_info["checks"] = [
        f"{'PASS' if c.passed else 'FAIL'} {c.name}" for c in results
    ]
    failed = [str(c) for c in results if not c.passed]
    assert not failed, failed
    return table
