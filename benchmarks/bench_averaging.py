"""E17 — extension: averaging gossip (data aggregation) tracks 1/alpha."""

from _common import bench_and_verify


def test_e17_averaging(benchmark):
    bench_and_verify(benchmark, "E17")
