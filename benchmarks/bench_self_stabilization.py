"""E9 — Section VIII: joining converged components re-stabilizes in normal time."""

from _common import bench_and_verify


def test_e9_self_stabilization(benchmark):
    bench_and_verify(benchmark, "E9")
