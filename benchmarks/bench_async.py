"""E8 — Theorem VIII.2: async bit convergence within polylog of the original."""

from _common import bench_and_verify


def test_e8_async(benchmark):
    bench_and_verify(benchmark, "E8")
