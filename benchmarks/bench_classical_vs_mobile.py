"""E10 — the single-connection restriction costs Delta^2 (classical vs mobile)."""

from _common import bench_and_verify


def test_e10_classical_vs_mobile(benchmark):
    bench_and_verify(benchmark, "E10")
