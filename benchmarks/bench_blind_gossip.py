"""E3 — Theorem VI.1: blind gossip scales ~Delta^2 on hub-bottleneck graphs."""

from _common import bench_and_verify


def test_e3_blind_gossip_scaling(benchmark):
    bench_and_verify(benchmark, "E3")
