"""E16 — extension: k-gossip all-to-all dissemination."""

from _common import bench_and_verify


def test_e16_k_gossip(benchmark):
    bench_and_verify(benchmark, "E16")
