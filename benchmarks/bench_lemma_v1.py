"""E1 — Lemma V.1: the cut-matching ratio dominates alpha/4 everywhere."""

from _common import bench_and_verify


def test_e1_lemma_v1(benchmark):
    bench_and_verify(benchmark, "E1")
