"""Executable-documentation tests.

The package docstring's quickstart and the sweep module's doctest run as
tests so the documentation can never silently rot.
"""

from __future__ import annotations

import doctest


def test_package_quickstart_doctest():
    import repro

    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


def test_sweep_doctest():
    from repro.harness import sweep

    results = doctest.testmod(sweep, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


def test_every_public_module_has_docstring():
    import importlib
    import pkgutil

    import repro

    missing = []
    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if modinfo.name.rsplit(".", 1)[-1].startswith("_"):
            continue
        mod = importlib.import_module(modinfo.name)
        if not (mod.__doc__ or "").strip():
            missing.append(modinfo.name)
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_callable_in_all_has_docstring():
    import importlib
    import pkgutil

    import repro

    undocumented = []
    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if modinfo.name.rsplit(".", 1)[-1].startswith("_"):
            continue
        mod = importlib.import_module(modinfo.name)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name, None)
            if callable(obj) and not (getattr(obj, "__doc__", "") or "").strip():
                undocumented.append(f"{modinfo.name}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"
