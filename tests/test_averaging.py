"""Tests for the averaging gossip extension (data aggregation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.averaging import (
    AveragingNode,
    AveragingVectorized,
    make_averaging_nodes,
)
from repro.core.engine import ReferenceEngine
from repro.core.payload import Message, UID, UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph, StaticDynamicGraph


class TestNodeProtocol:
    def test_pairwise_average(self):
        a = AveragingNode(0, UID(1), 10.0)
        b = AveragingNode(1, UID(2), 2.0)
        ma, mb = a.compose(1), b.compose(0)
        a.deliver(1, mb)
        b.deliver(0, ma)
        assert a.value == b.value == 6.0

    def test_reference_run_converges_to_mean(self):
        n = 10
        g = families.clique(n)
        us = UIDSpace(n, seed=0)
        values = np.arange(n, dtype=np.float64)
        nodes = make_averaging_nodes(us, values)
        eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=1)
        mean = values.mean()
        res = eng.run(
            50_000, lambda ps: max(abs(p.value - mean) for p in ps) < 1e-3
        )
        assert res.stabilized

    def test_value_count_checked(self):
        us = UIDSpace(4, seed=0)
        with pytest.raises(ValueError):
            make_averaging_nodes(us, np.zeros(3))


class TestVectorized:
    def test_sum_conserved_exactly(self):
        n = 16
        values = np.random.default_rng(0).random(n)
        algo = AveragingVectorized(values)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=0)), algo, seed=1
        )
        s0 = eng.state.values.sum()
        for r in range(1, 500):
            eng.step(r)
            assert eng.state.values.sum() == pytest.approx(s0, rel=1e-12)

    def test_deviation_monotone_nonincreasing(self):
        n = 16
        values = np.random.default_rng(1).random(n)
        algo = AveragingVectorized(values)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.clique(n)), algo, seed=2
        )
        prev = algo.max_deviation(eng.state)
        for r in range(1, 2000):
            eng.step(r)
            cur = algo.max_deviation(eng.state)
            assert cur <= prev + 1e-12
            prev = cur
            if algo.converged(eng.state):
                break
        assert algo.converged(eng.state)

    def test_converges_to_true_mean(self):
        n = 20
        values = np.random.default_rng(3).random(n) * 100
        algo = AveragingVectorized(values, eps=1e-4)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=1)), algo, seed=4
        )
        res = eng.run(200_000)
        assert res.stabilized
        assert np.allclose(eng.state.values, values.mean(), atol=1e-3)

    def test_converges_under_churn(self):
        n = 12
        base = families.ring(n)
        values = np.random.default_rng(4).random(n)
        algo = AveragingVectorized(values, eps=1e-3)
        eng = VectorizedEngine(PeriodicRelabelDynamicGraph(base, 1, seed=5), algo, seed=6)
        assert eng.run(300_000).stabilized

    def test_constant_values_instantly_converged(self):
        algo = AveragingVectorized(np.full(8, 3.5))
        state = algo.init_state(8, np.random.default_rng(0))
        assert algo.converged(state)

    def test_validation(self):
        with pytest.raises(ValueError):
            AveragingVectorized(np.array([]))
        with pytest.raises(ValueError):
            AveragingVectorized(np.ones(4), eps=0.0)
        algo = AveragingVectorized(np.ones(4))
        with pytest.raises(ValueError):
            VectorizedEngine(
                StaticDynamicGraph(families.ring(5)), algo, seed=0
            )

    def test_expansion_ordering(self):
        """Clique averages faster than a ring of the same size."""
        n = 16
        values = np.random.default_rng(5).random(n)

        def rounds_for(g, seed):
            algo = AveragingVectorized(values, eps=1e-3)
            eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=seed)
            res = eng.run(500_000)
            assert res.stabilized
            return res.rounds

        clique_med = np.median([rounds_for(families.clique(n), t) for t in range(5)])
        ring_med = np.median([rounds_for(families.ring(n), t) for t in range(5)])
        assert clique_med < ring_med
