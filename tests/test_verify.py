"""Tests for the shape-verification suite."""

from __future__ import annotations

import pytest

from repro.harness.tables import Table
from repro.harness.verify import VERIFIERS, CheckResult, verify_experiment


def make_table(columns, rows):
    t = Table(title="T", columns=columns)
    for r in rows:
        t.add_row(*r)
    return t


class TestFramework:
    def test_every_experiment_has_a_verifier(self):
        from repro.harness.experiments import EXPERIMENTS

        assert set(VERIFIERS) == set(EXPERIMENTS)

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            verify_experiment("E99", Table(title="T", columns=["x"]))

    def test_check_result_str(self):
        assert "PASS" in str(CheckResult("c", True, "d"))
        assert "FAIL" in str(CheckResult("c", False, "d"))


class TestSyntheticTables:
    """Verifiers respond correctly to hand-built pass/fail tables."""

    def test_e1_pass_and_fail(self):
        cols = ["graph", "n", "alpha", "gamma", "alpha/4", "gamma >= alpha/4"]
        good = make_table(cols, [("g", 8, 0.5, 0.5, 0.125, True)])
        assert all(c.passed for c in verify_experiment("E1", good))
        bad = make_table(cols, [("g", 8, 0.5, 0.1, 0.125, False)])
        assert not all(c.passed for c in verify_experiment("E1", bad))

    def test_e3_slope_detection(self):
        cols = ["Delta", "n", "alpha", "rounds static", "rounds tau=1", "bound shape"]
        quadratic = make_table(
            cols,
            [(d, 2 * d, 0.1, float(d * d), 1.0, 1.0) for d in (4, 8, 16, 32)],
        )
        assert all(c.passed for c in verify_experiment("E3", quadratic))
        flat = make_table(
            cols, [(d, 2 * d, 0.1, 50.0, 1.0, 1.0) for d in (4, 8, 16, 32)]
        )
        assert not all(c.passed for c in verify_experiment("E3", flat))

    def test_e7_trend_detection(self):
        cols = ["tau", "blind gossip (b=0)", "bit convergence (b=1)", "speedup"]
        growing = make_table(cols, [(1, 100, 120, 0.8), ("inf", 500, 100, 5.0)])
        assert all(c.passed for c in verify_experiment("E7", growing))
        shrinking = make_table(cols, [(1, 100, 50, 2.0), ("inf", 100, 200, 0.5)])
        assert not all(c.passed for c in verify_experiment("E7", shrinking))

    def test_e12_ordering_detection(self):
        cols = ["Delta", "n", "static", "oblivious tau=1", "adaptive tau=1"]
        good = make_table(cols, [(9, 18, 90.0, 40.0, 150.0), (17, 34, 280.0, 90.0, 460.0)])
        assert all(c.passed for c in verify_experiment("E12", good))
        bad = make_table(cols, [(9, 18, 90.0, 40.0, 30.0), (17, 34, 280.0, 90.0, 60.0)])
        assert not all(c.passed for c in verify_experiment("E12", bad))

    def test_e18_agreement_detection(self):
        cols = ["tau", "leader election rounds", "consensus rounds", "overhead", "agreement+validity"]
        good = make_table(cols, [(1, 50.0, 50.0, 1.0, True)])
        assert all(c.passed for c in verify_experiment("E18", good))
        bad = make_table(cols, [(1, 50.0, 50.0, 1.0, False)])
        assert not all(c.passed for c in verify_experiment("E18", bad))


class TestLiveQuickRuns:
    """A sample of experiments verifies end-to-end at tiny size."""

    @pytest.mark.parametrize("exp_id,overrides", [
        ("E1", dict(n_small=8, random_graphs=2)),
        ("E3", dict(leaf_counts=(4, 8, 16), trials=5)),
        ("A3", dict(leaves=6, regular_n=12, degree=3, trials=4)),
    ])
    def test_quick_profile_passes(self, exp_id, overrides):
        from repro.harness.experiments import run_experiment

        table = run_experiment(exp_id, "quick", **overrides)
        results = verify_experiment(exp_id, table)
        assert results
        assert all(c.passed for c in results), [str(c) for c in results]


class TestArchivedResultsVerify:
    def test_saved_json_results_verify(self, tmp_path):
        """The verifier consumes persisted results, not just live ones."""
        from repro.harness.experiments import run_experiment
        from repro.harness.persistence import load_table, save_table

        table = run_experiment("E1", "quick", n_small=8, random_graphs=1)
        path = tmp_path / "E1.json"
        save_table(table, path, exp_id="E1", profile="quick")
        reloaded = load_table(path)
        assert all(c.passed for c in verify_experiment("E1", reloaded))
