"""Tests for repro.graphs.static.Graph."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.static import Graph


@st.composite
def random_graphs(draw, max_n=10):
    n = draw(st.integers(2, max_n))
    pool = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pool), unique=True, max_size=len(pool)))
    return Graph(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))


class TestConstruction:
    def test_basic_properties(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.n == 4
        assert g.num_edges == 3
        assert g.max_degree == 2
        assert g.degree(0) == 1 and g.degree(1) == 2

    def test_edge_orientation_canonical(self):
        assert Graph(3, [(1, 0)]) == Graph(3, [(0, 1)])

    def test_rejects_empty_vertex_set(self):
        with pytest.raises(ValueError):
            Graph(0, [])

    def test_single_vertex(self):
        g = Graph(1, [])
        assert g.n == 1 and g.is_connected()

    def test_neighbors_sorted(self):
        g = Graph(4, [(2, 0), (2, 3), (2, 1)])
        assert g.neighbors(2).tolist() == [0, 1, 3]

    def test_has_edge(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_arrays_read_only(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.indices[0] = 2
        with pytest.raises(ValueError):
            g.edges[0, 0] = 2


class TestConnectivity:
    def test_connected_path(self):
        assert Graph(4, [(0, 1), (1, 2), (2, 3)]).is_connected()

    def test_disconnected(self):
        assert not Graph(4, [(0, 1), (2, 3)]).is_connected()

    def test_isolated_vertex(self):
        assert not Graph(3, [(0, 1)]).is_connected()

    def test_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = sorted(g.connected_components(), key=lambda c: c[0])
        assert [c.tolist() for c in comps] == [[0, 1], [2, 3], [4]]

    @given(random_graphs())
    @settings(max_examples=50)
    def test_connectivity_matches_networkx(self, g):
        import networkx as nx

        assert g.is_connected() == nx.is_connected(g.to_networkx())

    @given(random_graphs())
    @settings(max_examples=50)
    def test_component_count_matches_networkx(self, g):
        import networkx as nx

        assert len(g.connected_components()) == nx.number_connected_components(
            g.to_networkx()
        )


class TestRelabel:
    def test_identity(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.relabel(np.arange(4)) == g

    def test_swap(self):
        g = Graph(3, [(0, 1)])
        h = g.relabel(np.array([2, 1, 0]))
        assert h.has_edge(2, 1)
        assert not h.has_edge(0, 1)

    def test_rejects_non_permutation(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.relabel(np.array([0, 0, 1]))

    @given(random_graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50)
    def test_preserves_degree_multiset(self, g, seed):
        perm = np.random.default_rng(seed).permutation(g.n)
        h = g.relabel(perm)
        assert sorted(h.degrees.tolist()) == sorted(g.degrees.tolist())
        assert h.num_edges == g.num_edges


class TestUnion:
    def test_disjoint_plus_bridge(self):
        a = Graph(2, [(0, 1)])
        b = Graph(2, [(0, 1)])
        u = a.union(b, [(1, 0)])
        assert u.n == 4
        assert u.has_edge(0, 1) and u.has_edge(2, 3) and u.has_edge(1, 2)
        assert u.is_connected()

    def test_no_bridges_keeps_components(self):
        a = Graph(2, [(0, 1)])
        b = Graph(2, [(0, 1)])
        u = a.union(b, [])
        assert not u.is_connected()
        assert len(u.connected_components()) == 2


class TestInterop:
    def test_networkx_roundtrip(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        assert Graph.from_networkx(g.to_networkx()) == g

    def test_from_networkx_requires_contiguous_labels(self):
        import networkx as nx

        h = nx.Graph()
        h.add_edge("a", "b")
        with pytest.raises(ValueError):
            Graph.from_networkx(h)


class TestEquality:
    def test_eq_and_hash(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b and hash(a) == hash(b)

    def test_neq_different_edges(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])

    def test_neq_different_n(self):
        assert Graph(3, [(0, 1)]) != Graph(4, [(0, 1)])
