"""Tests for the live-transport deployment tier (``repro.live``)."""

from __future__ import annotations

import math

import pytest

from repro.conformance.invariants import check_trace
from repro.conformance.livecheck import live_reference_check
from repro.core.payload import IDPair, Message, UID
from repro.core.trace import traces_equal
from repro.faults.plan import (
    ConnectionDropModel,
    CrashSchedule,
    CrashWindow,
    FaultPlan,
    TagCorruptionModel,
)
from repro.live import (
    LIVE_ALGORITHMS,
    LiveFaultError,
    LiveRunConfig,
    LiveRunReport,
    run_live,
    validate_live_plan,
)
from repro.live import wire
from repro.live.faults import connection_dropped
from repro.live.run import _dynamic_graph, build_bundle, build_graph


def check_live_trace(cfg: LiveRunConfig, report: LiveRunReport) -> list:
    graph = build_graph(cfg)
    bundle = build_bundle(cfg, graph)
    return check_trace(
        report.trace,
        _dynamic_graph(cfg, graph),
        tag_length=bundle.tag_length,
        fault_plan=cfg.fault_plan,
    )


class TestWireCodec:
    def test_scalar_roundtrip(self):
        for obj in (None, True, False, 0, -7, 2**40, 1.5, "héllo", b"\x00\xff"):
            assert wire.decode(wire.encode(obj)) == obj

    def test_container_roundtrip(self):
        obj = {"r": 3, "tags": [0, 1, None], "nested": {"k": (1, 2)}}
        out = wire.decode(wire.encode(obj))
        assert out == obj
        assert isinstance(out["nested"]["k"], tuple)  # tuples survive

    def test_model_types_roundtrip(self):
        uid = UID(42)
        msg = Message(uids=(uid,), extra_bits=3, data={"pair": IDPair(uid, 1)})
        out = wire.decode(wire.encode(msg))
        assert isinstance(out, Message)
        assert out.uids == msg.uids
        assert out.extra_bits == msg.extra_bits
        assert out.data["pair"] == IDPair(uid, 1)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode(wire.encode(1) + b"\x00")

    def test_frame_header(self):
        buf = wire.frame_bytes(wire.HELLO, {"r": 1, "tag": 0})
        length, kind = wire._HEADER.unpack(buf[: wire._HEADER.size])
        assert kind == wire.HELLO
        assert length == len(buf) - wire._HEADER.size


class TestLiveRuns:
    def test_deterministic_trace(self):
        cfg = LiveRunConfig(algorithm="blind_gossip", family="clique", n=8, seed=5)
        a, b = run_live(cfg), run_live(cfg)
        assert a.result.stabilized and b.result.stabilized
        assert a.result.rounds == b.result.rounds
        assert traces_equal(a.trace, b.trace)

    @pytest.mark.parametrize("algorithm", LIVE_ALGORITHMS)
    def test_every_algorithm_stabilizes_with_clean_trace(self, algorithm):
        cfg = LiveRunConfig(
            algorithm=algorithm, family="clique", n=8, seed=2, max_rounds=2000
        )
        report = run_live(cfg)
        assert report.result.stabilized
        assert check_live_trace(cfg, report) == []

    def test_ring_and_fixed_rounds(self):
        cfg = LiveRunConfig(
            algorithm="push_pull", family="ring", n=10, seed=1, fixed_rounds=5
        )
        report = run_live(cfg)
        assert report.result.rounds == 5
        assert not report.result.stabilized  # fixed-round mode never claims it
        assert report.connections_made > 0
        assert report.frames_sent > 0
        assert check_live_trace(cfg, report) == []

    def test_tau_churn(self):
        cfg = LiveRunConfig(
            algorithm="blind_gossip", family="ring", n=8, seed=4, tau=3,
            max_rounds=2000,
        )
        report = run_live(cfg)
        assert report.result.stabilized
        assert check_live_trace(cfg, report) == []

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError, match="at least 2"):
            run_live(LiveRunConfig(n=1))


class TestLiveFaults:
    def test_crash_rejoin_and_drop(self):
        plan = FaultPlan(
            crashes=CrashSchedule((
                CrashWindow(node=2, start=2, end=4),
                CrashWindow(node=5, start=3, end=3, reset_on_rejoin=False),
            )),
            connection_drop=ConnectionDropModel(p=0.2),
        )
        cfg = LiveRunConfig(
            algorithm="blind_gossip", family="clique", n=8, seed=9,
            fault_plan=plan, max_rounds=2000,
        )
        report = run_live(cfg)
        assert report.result.stabilized
        assert check_live_trace(cfg, report) == []
        # Crashed nodes really vanish from the trace rounds they cover.
        rec = report.trace.rounds[2]  # round 3: both windows active
        assert not rec.active[2] and not rec.active[5]
        assert rec.tags[2] == -1

    def test_permanent_crash_excluded_from_predicate(self):
        plan = FaultPlan(
            crashes=CrashSchedule((CrashWindow(node=3, start=2, end=None),))
        )
        cfg = LiveRunConfig(
            algorithm="blind_gossip", family="clique", n=6, seed=7,
            fault_plan=plan, max_rounds=2000,
        )
        report = run_live(cfg)
        assert report.result.stabilized
        assert check_live_trace(cfg, report) == []

    def test_unsupported_plan_rejected(self):
        plan = FaultPlan(tag_corruption=TagCorruptionModel(q=0.1))
        with pytest.raises(LiveFaultError, match="tag_corruption"):
            validate_live_plan(plan, 8)
        with pytest.raises(LiveFaultError):
            run_live(LiveRunConfig(n=4, fault_plan=plan))

    def test_empty_plan_normalizes_to_none(self):
        assert validate_live_plan(None, 8) is None
        assert validate_live_plan(FaultPlan(), 8) is None

    def test_drop_verdict_symmetric_and_seeded(self):
        args = (11, 3, 1, 4)
        assert connection_dropped(*args, p=0.5) == connection_dropped(*args, p=0.5)
        assert not connection_dropped(*args, p=0.0)
        hits = sum(connection_dropped(11, r, 1, 4, p=0.5) for r in range(200))
        assert 60 < hits < 140  # unbiased-ish, deterministic


class TestLiveReferenceCheck:
    def test_blind_gossip_conforms(self):
        cfg = LiveRunConfig(
            algorithm="blind_gossip", family="clique", n=10, seed=3,
            max_rounds=2000,
        )
        assert live_reference_check(cfg, live_trials=2, reference_trials=6) == []

    def test_reports_non_stabilization(self):
        cfg = LiveRunConfig(
            algorithm="blind_gossip", family="ring", n=10, seed=3, max_rounds=1
        )
        mismatches = live_reference_check(cfg, live_trials=1, reference_trials=1)
        assert mismatches and "did not stabilize" in mismatches[0]


class TestLiveCli:
    def test_live_run_smoke(self, capsys):
        from repro.cli import main

        status = main([
            "live", "run", "--algorithm", "blind_gossip", "--family",
            "clique", "--nodes", "8", "--seed", "2", "--check",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "stabilized after" in out
        assert "passes all model-invariant checks" in out

    def test_live_run_rejects_bad_plan(self, tmp_path, capsys):
        from repro.cli import main

        plan = FaultPlan(tag_corruption=TagCorruptionModel(q=0.1))
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json())
        with pytest.raises(LiveFaultError):
            main([
                "live", "run", "--nodes", "4", "--fault-plan", str(plan_path)
            ])

    def test_live_fixed_rounds_cli(self, capsys):
        from repro.cli import main

        status = main([
            "live", "run", "--algorithm", "push_pull", "--family", "ring",
            "--nodes", "8", "--rounds", "3",
        ])
        assert status == 0
        assert "ran 3 fixed rounds" in capsys.readouterr().out


def test_tau_inf_is_static():
    cfg = LiveRunConfig(n=6, tau=math.inf)
    graph = build_graph(cfg)
    from repro.graphs.dynamic import StaticDynamicGraph

    assert isinstance(_dynamic_graph(cfg, graph), StaticDynamicGraph)
