"""Tests for repro.analysis.statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.statistics import (
    geometric_mean,
    loglog_slope,
    ratio_fit,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == pytest.approx(3.0)
        assert s.median == pytest.approx(3.0)
        assert s.max == 5.0

    def test_single_sample(self):
        s = summarize([7.0])
        assert s.mean == 7.0 and s.std == 0.0
        assert s.ci_low == 7.0 and s.ci_high == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_contains_mean(self):
        rng = np.random.default_rng(0)
        s = summarize(rng.normal(10, 2, size=50).tolist())
        assert s.ci_low <= s.mean <= s.ci_high

    def test_ci_deterministic(self):
        data = [1.0, 5.0, 2.0, 8.0, 3.0]
        assert summarize(data) == summarize(data)

    @given(st.lists(st.floats(1, 1e6), min_size=2, max_size=30))
    def test_quantile_ordering(self, data):
        s = summarize(data)
        assert s.q10 <= s.median <= s.q90 <= s.max


class TestLogLogSlope:
    def test_quadratic(self):
        xs = [2, 4, 8, 16]
        ys = [x**2 for x in xs]
        slope, r2 = loglog_slope(xs, ys)
        assert slope == pytest.approx(2.0)
        assert r2 == pytest.approx(1.0)

    def test_constant(self):
        slope, _ = loglog_slope([1, 2, 4], [5, 5, 5])
        assert slope == pytest.approx(0.0)

    def test_noise_reduces_r2(self):
        xs = [2, 4, 8, 16, 32]
        ys = [4.0, 17.0, 60.0, 270.0, 1010.0]  # roughly quadratic
        slope, r2 = loglog_slope(xs, ys)
        assert 1.7 < slope < 2.3
        assert 0.9 < r2 <= 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loglog_slope([1, 2], [0, 1])

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])


class TestRatioFit:
    def test_matching_shape_gives_ones(self):
        bound = [10.0, 40.0, 90.0]
        measured = [x * 3.7 for x in bound]  # constant factor off
        r = ratio_fit(measured, bound)
        assert np.allclose(r, 1.0)

    def test_shape_mismatch_shows_drift(self):
        bound = [10.0, 100.0, 1000.0]
        measured = [10.0, 10.0, 10.0]
        r = ratio_fit(measured, bound)
        assert r[0] > 1.0 > r[-1]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ratio_fit([1.0], [1.0, 2.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ratio_fit([0.0], [1.0])


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_invariance(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
