"""Tests validating engine micro-dynamics against exact probabilities.

The closed forms in repro.analysis.micro are checked two ways: against
brute-force enumeration / Monte-Carlo of the probability model itself, and
against measured connection frequencies from live engine runs — the
sharpest available check that the engines implement the model's
randomness correctly.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.micro import (
    blind_pair_good_probability,
    double_star_crossing_probability,
    expected_inverse_one_plus_binomial,
    star_hub_accept_probability,
)
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.harness.experiments import uid_keys_random


class TestInverseBinomialIdentity:
    @pytest.mark.parametrize("k,p", [(0, 0.5), (3, 0.5), (7, 0.25), (12, 0.9)])
    def test_matches_direct_sum(self, k, p):
        direct = sum(
            math.comb(k, j) * p**j * (1 - p) ** (k - j) / (1 + j)
            for j in range(k + 1)
        )
        assert expected_inverse_one_plus_binomial(k, p) == pytest.approx(direct)

    def test_p_zero(self):
        assert expected_inverse_one_plus_binomial(5, 0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_inverse_one_plus_binomial(-1, 0.5)
        with pytest.raises(ValueError):
            expected_inverse_one_plus_binomial(3, 1.5)


class TestClosedFormsSanity:
    def test_double_star_scaling(self):
        # P ~ 2/Delta^2: quadrupling the leaf count divides the
        # probability by ~16 (the exact ratio ((33*17)/(9*5)) ~ 12.5-13.5
        # at finite size).
        p8 = double_star_crossing_probability(8)
        p32 = double_star_crossing_probability(32)
        assert 10.0 < p8 / p32 < 16.0

    def test_pair_good_probability_matches_paper_floor(self):
        # Exact value 1/(4 deg_u deg_v) >= the paper's 1/(4 Delta^2) floor.
        assert blind_pair_good_probability(4, 8) == pytest.approx(1 / 128)
        delta = 8
        assert blind_pair_good_probability(3, 8) >= 1 / (4 * delta**2)


class TestEngineMatchesClosedForm:
    """Measured per-round frequencies vs exact formulas (fixed seeds)."""

    def _measure_connection_rate(self, graph, edge, rounds, seed, *, directed=False):
        """Per-round frequency of ``edge`` connecting.

        ``directed=True`` counts only connections where ``edge[0]`` is the
        proposer and ``edge[1]`` the acceptor.
        """
        from repro.algorithms.blind_gossip import BlindGossipVectorized

        keys = uid_keys_random(graph.n, seed)
        eng = VectorizedEngine(
            StaticDynamicGraph(graph), BlindGossipVectorized(keys), seed=seed
        )
        hits = 0
        a, b = edge

        def on_conn(r, winners, acceptors):
            nonlocal hits
            for s, t in zip(winners, acceptors):
                if directed:
                    hits += int(s) == a and int(t) == b
                else:
                    hits += {int(s), int(t)} == {a, b}

        eng.on_connections = on_conn
        for r in range(1, rounds + 1):
            eng.step(r)
        return hits / rounds

    def test_double_star_crossing_rate(self):
        leaves = 6
        g = families.double_star(leaves)
        exact = double_star_crossing_probability(leaves)
        measured = self._measure_connection_rate(g, (0, 1), rounds=40_000, seed=0)
        # 40k rounds, p ~ 0.01: ~400 expected hits; 3-sigma ~ 15%.
        assert measured == pytest.approx(exact, rel=0.2)

    def test_star_leaf_hub_rate(self):
        # The formula is the *directed* leaf-proposes / hub-accepts event;
        # the edge can also connect hub->leaf, so count directionally.
        leaves = 5
        g = families.star(leaves + 1)
        exact = star_hub_accept_probability(leaves)
        measured = self._measure_connection_rate(
            g, (1, 0), rounds=30_000, seed=1, directed=True
        )
        assert measured == pytest.approx(exact, rel=0.1)

    def test_reference_engine_double_star_crossing_rate(self):
        """The same exact formula also validates the reference engine."""
        from repro.algorithms.blind_gossip import make_blind_gossip_nodes
        from repro.core.engine import ReferenceEngine
        from repro.core.payload import UIDSpace

        leaves = 4
        g = families.double_star(leaves)
        us = UIDSpace(g.n, seed=0)
        nodes = make_blind_gossip_nodes(us)
        eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=2, collect_trace=True)
        rounds = 8_000
        eng.run(rounds, lambda ps: False)
        hits = sum(
            1
            for rec in eng.trace.rounds
            for s, t in rec.connections
            if {int(s), int(t)} == {0, 1}
        )
        exact = double_star_crossing_probability(leaves)
        assert hits / rounds == pytest.approx(exact, rel=0.25)
