"""Tests for PPUSH rumor spreading at b=1 (Section V)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.ppush import (
    PPushNode,
    PPushVectorized,
    TAG_INFORMED,
    TAG_UNINFORMED,
    make_ppush_nodes,
)
from repro.core.engine import ReferenceEngine
from repro.core.monitor import rumor_complete
from repro.core.payload import Message, UID, UIDSpace
from repro.core.protocol import RoundView
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph


def view(neighbors, tags, rng=None):
    return RoundView(
        local_round=1,
        neighbors=np.asarray(neighbors, dtype=np.int64),
        neighbor_tags=np.asarray(tags, dtype=np.int64),
        rng=rng or np.random.default_rng(0),
    )


class TestNodeProtocol:
    def test_advertises_status(self):
        rng = np.random.default_rng(0)
        assert PPushNode(0, UID(1), True).choose_tag(1, rng) == TAG_INFORMED
        assert PPushNode(0, UID(1), False).choose_tag(1, rng) == TAG_UNINFORMED

    def test_uninformed_only_receives(self):
        node = PPushNode(0, UID(1), informed=False)
        assert node.decide(view([1, 2], [TAG_UNINFORMED, TAG_UNINFORMED])) is None

    def test_informed_targets_uninformed_only(self):
        node = PPushNode(0, UID(1), informed=True)
        rng = np.random.default_rng(0)
        for _ in range(50):
            t = node.decide(
                view([1, 2, 3], [TAG_INFORMED, TAG_UNINFORMED, TAG_INFORMED], rng)
            )
            assert t == 2

    def test_informed_with_no_uninformed_neighbors_idles(self):
        node = PPushNode(0, UID(1), informed=True)
        assert node.decide(view([1, 2], [TAG_INFORMED, TAG_INFORMED])) is None

    def test_connection_transfers_rumor(self):
        a = PPushNode(0, UID(1), informed=True)
        b = PPushNode(1, UID(2), informed=False)
        b.deliver(0, a.compose(1))
        a.deliver(1, b.compose(0))
        assert b.informed and a.informed


class TestReferenceConvergence:
    @pytest.mark.parametrize(
        "graph",
        [families.clique(12), families.star(12), families.double_star(5)],
        ids=["clique", "star", "double_star"],
    )
    def test_rumor_reaches_all(self, graph):
        us = UIDSpace(graph.n, seed=0)
        nodes = make_ppush_nodes(us, sources={0})
        eng = ReferenceEngine(StaticDynamicGraph(graph), nodes, seed=1)
        res = eng.run(50_000, rumor_complete)
        assert res.stabilized


class TestVectorized:
    def test_faster_than_blind_push_pull_on_double_star(self):
        """PPUSH's focused proposals beat blind PUSH-PULL where Δ is large."""
        from repro.algorithms.push_pull import PushPullVectorized

        base = families.double_star(16)
        dg = StaticDynamicGraph(base)
        ppush = np.median(
            [
                VectorizedEngine(
                    dg, PPushVectorized(np.array([2])), seed=t
                ).run(10**6).rounds
                for t in range(5)
            ]
        )
        blind = np.median(
            [
                VectorizedEngine(
                    dg, PushPullVectorized(np.array([2])), seed=t
                ).run(10**6).rounds
                for t in range(5)
            ]
        )
        assert ppush * 2 < blind

    def test_star_completion_near_linear(self):
        # Informed hub can inform exactly one leaf per round.
        n = 33
        algo = PPushVectorized(np.array([0]))
        eng = VectorizedEngine(StaticDynamicGraph(families.star(n)), algo, seed=0)
        res = eng.run(10_000)
        assert res.stabilized
        assert n - 1 <= res.rounds <= 2 * n

    def test_informed_monotone(self):
        n = 24
        algo = PPushVectorized(np.array([0]))
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=1)), algo, seed=0
        )
        prev = 1
        for r in range(1, 5000):
            eng.step(r)
            cur = algo.informed_count(eng.state)
            assert cur >= prev
            prev = cur
            if cur == n:
                break
        assert prev == n

    def test_no_proposals_between_informed(self):
        """In PPUSH every connection strictly grows the informed set."""
        n = 20
        algo = PPushVectorized(np.array([0]))
        eng = VectorizedEngine(
            StaticDynamicGraph(families.clique(n)), algo, seed=0
        )
        growth = []

        def on_conn(r, winners, acceptors):
            growth.append(acceptors.size)

        eng.on_connections = on_conn
        before = algo.informed_count(eng.state)
        eng.step(1)
        after = algo.informed_count(eng.state)
        assert after - before == growth[0]
