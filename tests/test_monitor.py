"""Tests for repro.core.monitor predicates."""

from __future__ import annotations

import pytest

from repro.core.monitor import all_leaders_are, all_leaders_equal, rumor_complete
from repro.core.payload import Message, UID
from repro.core.protocol import LeaderElectionProtocol, RumorProtocol


class FakeLeaderNode(LeaderElectionProtocol):
    def __init__(self, uid):
        super().__init__(0, uid)
        self._leader = uid

    @property
    def leader(self):
        return self._leader

    def decide(self, view):
        return None

    def compose(self, peer):
        return Message()

    def deliver(self, peer, message):
        pass


class FakeRumorNode(RumorProtocol):
    def __init__(self, informed):
        super().__init__(0, UID(0))
        self._informed = informed

    @property
    def informed(self):
        return self._informed

    def decide(self, view):
        return None

    def compose(self, peer):
        return Message()

    def deliver(self, peer, message):
        pass


class TestLeaderPredicates:
    def test_all_leaders_are(self):
        winner = UID(1)
        pred = all_leaders_are(winner)
        assert pred([FakeLeaderNode(UID(1)), FakeLeaderNode(UID(1))])
        assert not pred([FakeLeaderNode(UID(1)), FakeLeaderNode(UID(2))])

    def test_all_leaders_equal(self):
        assert all_leaders_equal([FakeLeaderNode(UID(3)), FakeLeaderNode(UID(3))])
        assert not all_leaders_equal([FakeLeaderNode(UID(3)), FakeLeaderNode(UID(4))])

    def test_all_leaders_equal_vacuous_on_empty(self):
        # Regression: this used to raise IndexError on protocols[0].
        assert all_leaders_equal([])

    def test_agreement_on_wrong_uid_not_stabilized(self):
        # Transient agreement on a non-winner must not satisfy the
        # absorbing predicate.
        pred = all_leaders_are(UID(1))
        nodes = [FakeLeaderNode(UID(2)), FakeLeaderNode(UID(2))]
        assert all_leaders_equal(nodes)
        assert not pred(nodes)


class TestRumorPredicate:
    def test_complete(self):
        assert rumor_complete([FakeRumorNode(True), FakeRumorNode(True)])

    def test_incomplete(self):
        assert not rumor_complete([FakeRumorNode(True), FakeRumorNode(False)])
