"""Tests for the pooled campaign scheduler (the parallel execution
plane): serial/pooled bit-identity, resume, hung/killed workers, and
shared-memory lifecycle discipline.

The headline contract: ``pool_workers=K`` must produce checkpoint tables
**bit-identical** to the serial scheduler for every K (including 1, the
degrade-to-serial case CI forces), because trial seeds are derived from
cell identity, never from scheduling order.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path

import pytest

from repro.harness.campaign import checkpoint_path, render_campaign_text, run_campaign
from repro.harness.experiments import EXPERIMENTS, Experiment
from repro.harness.tables import Table
from repro.util import shm

from test_campaign import CELLS, _slow_then_fast, small_config, tables_of


def shm_segments() -> set[str]:
    if not shm.SHM_DIR.exists():
        return set()
    return {p.name for p in shm.SHM_DIR.glob("repro-shm-*")}


def stripped_render(directory, exp_ids=CELLS) -> list[str]:
    """Campaign archive text minus the wall-clock trailer lines."""
    text = render_campaign_text(directory, "quick", exp_ids)
    return [l for l in text.splitlines() if not l.startswith("(completed in ")]


def _kill_worker_once(marker: str = "") -> Table:
    """A registrable cell that SIGKILLs its own worker on first execution."""
    path = Path(marker)
    if not path.exists():
        path.write_text("x")
        os.kill(os.getpid(), signal.SIGKILL)
    table = Table(title="Z2: worker-death probe", columns=["k", "v"])
    table.add_row(1, 7)
    return table


@pytest.fixture
def hang_probe(tmp_path):
    marker = tmp_path / "slow-once"
    EXPERIMENTS["Z1"] = Experiment(
        "Z1", "probe: heals after one hung run", _slow_then_fast,
        quick=dict(marker=str(marker)),
    )
    try:
        yield "Z1"
    finally:
        del EXPERIMENTS["Z1"]


@pytest.fixture
def kill_probe(tmp_path):
    marker = tmp_path / "kill-once"
    EXPERIMENTS["Z2"] = Experiment(
        "Z2", "probe: kills its worker once", _kill_worker_once,
        quick=dict(marker=str(marker)),
    )
    try:
        yield marker
    finally:
        del EXPERIMENTS["Z2"]


class TestParity:
    def test_pooled_tables_bit_identical_to_serial(self, tmp_path):
        """The ISSUE's acceptance check: run the same campaign serially and
        on the pool, then diff the rendered tables."""
        serial_dir = tmp_path / "serial"
        pooled_dir = tmp_path / "pooled"
        serial = run_campaign(small_config(tmp_path, checkpoint_dir=serial_dir))
        pooled = run_campaign(
            small_config(tmp_path, checkpoint_dir=pooled_dir, pool_workers=2)
        )
        assert serial.ok and pooled.ok
        assert tables_of(pooled_dir) == tables_of(serial_dir)
        assert {c.exp_id: c.status for c in pooled.cells} == {
            c.exp_id: c.status for c in serial.cells
        }

    def test_single_worker_pool_degrades_to_serial_tables(self, tmp_path):
        """pool_workers=1 is the forced-serial CI leg: same pool machinery,
        bit-identical tables."""
        serial_dir = tmp_path / "serial"
        single_dir = tmp_path / "single"
        run_campaign(small_config(tmp_path, checkpoint_dir=serial_dir))
        report = run_campaign(
            small_config(tmp_path, checkpoint_dir=single_dir, pool_workers=1)
        )
        assert report.ok
        assert all(c.status == "completed" for c in report.cells)
        assert tables_of(single_dir) == tables_of(serial_dir)

    def test_rendered_archive_matches_serial_modulo_elapsed(self, tmp_path):
        serial_dir = tmp_path / "serial"
        pooled_dir = tmp_path / "pooled"
        run_campaign(small_config(tmp_path, checkpoint_dir=serial_dir))
        run_campaign(
            small_config(tmp_path, checkpoint_dir=pooled_dir, pool_workers=2)
        )
        assert stripped_render(pooled_dir) == stripped_render(serial_dir)

    def test_no_shared_graphs_still_identical(self, tmp_path):
        serial_dir = tmp_path / "serial"
        pooled_dir = tmp_path / "pooled"
        run_campaign(small_config(tmp_path, checkpoint_dir=serial_dir))
        report = run_campaign(
            small_config(
                tmp_path,
                checkpoint_dir=pooled_dir,
                pool_workers=2,
                shared_graphs=False,
            )
        )
        assert report.ok
        assert tables_of(pooled_dir) == tables_of(serial_dir)


class TestPooledResume:
    def test_resume_runs_only_missing_cells(self, tmp_path):
        config = small_config(tmp_path, pool_workers=2)
        run_campaign(config)
        clean = tables_of(config.checkpoint_dir)
        checkpoint_path(config.checkpoint_dir, "A3", "quick").unlink()
        resumed = run_campaign(small_config(tmp_path, pool_workers=2, resume=True))
        assert resumed.ok
        statuses = {c.exp_id: c.status for c in resumed.cells}
        assert statuses == {"E1": "resumed", "A3": "completed"}
        assert tables_of(config.checkpoint_dir) == clean  # bit-identical

    def test_serial_checkpoints_resumable_by_pool_and_back(self, tmp_path):
        """Checkpoints are scheduler-agnostic artifacts: serial runs resume
        under the pool and vice versa."""
        config = small_config(tmp_path)
        run_campaign(config)
        pooled = run_campaign(small_config(tmp_path, pool_workers=2, resume=True))
        assert pooled.ok and all(c.status == "resumed" for c in pooled.cells)
        serial = run_campaign(small_config(tmp_path, resume=True))
        assert serial.ok and all(c.status == "resumed" for c in serial.cells)


class TestPooledFailures:
    def test_failed_cell_recorded_campaign_continues(self, tmp_path):
        config = small_config(
            tmp_path,
            overrides={"E1": {"bogus_kwarg": 1}},
            max_retries=0,
            pool_workers=2,
        )
        report = run_campaign(config)
        assert not report.ok
        by_id = {c.exp_id: c for c in report.cells}
        assert by_id["E1"].status == "failed"
        assert "bogus_kwarg" in by_id["E1"].error
        assert by_id["A3"].status == "completed"  # work stealing kept going
        assert any(e.kind == "error" for e in report.failures)

    def test_hung_cell_killed_replaced_and_retried(self, tmp_path, hang_probe):
        config = small_config(
            tmp_path,
            exp_ids=("E1", "Z1"),
            timeout_per_experiment=1.0,
            max_retries=1,
            pool_workers=2,
        )
        report = run_campaign(config)
        assert report.ok
        by_id = {c.exp_id: c for c in report.cells}
        assert by_id["Z1"].status == "completed"
        assert by_id["Z1"].attempts == 2  # first attempt SIGKILLed at 1.0s
        assert by_id["E1"].status == "completed"
        assert any(e.kind == "timeout" for e in report.failures)

    def test_worker_death_absorbed_with_identical_tables(self, tmp_path, kill_probe):
        """Mid-campaign SIGKILL of a worker is absorbed by replacement and
        retry, and the final tables equal a clean run's."""
        marker = kill_probe
        cells = ("E1", "Z2")
        clean_dir = tmp_path / "clean"
        marker.write_text("x")  # pre-healed: the serial reference never kills
        run_campaign(small_config(tmp_path, checkpoint_dir=clean_dir, exp_ids=cells))
        clean = tables_of(clean_dir, exp_ids=cells)

        marker.unlink()
        pooled_dir = tmp_path / "pooled"
        report = run_campaign(
            small_config(tmp_path, checkpoint_dir=pooled_dir, exp_ids=cells,
                         pool_workers=2)
        )
        assert report.ok
        by_id = {c.exp_id: c for c in report.cells}
        assert by_id["Z2"].attempts == 2
        assert any(e.kind == "crash" for e in report.failures)
        assert tables_of(pooled_dir, exp_ids=cells) == clean


@pytest.mark.skipif(
    not shm.shared_memory_supported(), reason="no /dev/shm on this platform"
)
class TestSharedMemoryLifecycle:
    def test_normal_exit_unlinks_all_segments(self, tmp_path):
        before = shm_segments()
        report = run_campaign(small_config(tmp_path, pool_workers=2))
        assert report.ok
        assert shm_segments() == before

    def test_worker_sigkill_leaves_no_segments(self, tmp_path, kill_probe):
        before = shm_segments()
        report = run_campaign(
            small_config(tmp_path, exp_ids=("E1", "Z2"), pool_workers=2)
        )
        assert report.ok
        assert shm_segments() == before

    def test_keyboard_interrupt_leaves_no_segments(self, tmp_path):
        before = shm_segments()

        def impatient(line: str) -> None:
            if "completed in" in line:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                small_config(tmp_path, pool_workers=2), progress=impatient
            )
        assert shm_segments() == before
