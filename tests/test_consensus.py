"""Tests for the leader-based consensus extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bit_convergence import BitConvergenceConfig, draw_id_tags
from repro.algorithms.consensus import ConsensusVectorized
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph, StaticDynamicGraph
from repro.harness.experiments import uid_keys_random

CFG = BitConvergenceConfig(n_upper=16, delta_bound=4, beta=1.0)


def make_engine(n=16, seed=0, tau=None, proposals=None, graph=None):
    g = graph if graph is not None else families.random_regular(n, 4, seed=seed)
    keys = uid_keys_random(n, seed)
    proposals = (
        proposals
        if proposals is not None
        else np.arange(100, 100 + n, dtype=np.int64)
    )
    algo = ConsensusVectorized(
        keys, CFG, proposals, tag_seed=seed, unique_tags=True
    )
    dg = (
        StaticDynamicGraph(g)
        if tau is None
        else PeriodicRelabelDynamicGraph(g, tau, seed=seed)
    )
    return VectorizedEngine(dg, algo, seed=seed), algo, keys, proposals


class TestConsensusProperties:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_agreement(self, seed):
        eng, algo, _, _ = make_engine(seed=seed)
        res = eng.run(500_000)
        assert res.stabilized
        decisions = algo.decisions(eng.state)
        assert np.unique(decisions).size == 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_validity_decides_winner_proposal(self, seed):
        eng, algo, keys, proposals = make_engine(seed=seed)
        res = eng.run(500_000)
        assert res.stabilized
        # The winner is the lexicographically smallest (tag, key) pair.
        tags = draw_id_tags(16, CFG, seed, unique=True)
        win = np.lexsort((keys, tags))[0]
        assert (algo.decisions(eng.state) == proposals[win]).all()

    def test_decided_alias(self):
        eng, algo, _, _ = make_engine(seed=4)
        assert not algo.decided(eng.state)
        eng.run(500_000)
        assert algo.decided(eng.state)

    def test_under_churn(self):
        eng, algo, _, _ = make_engine(seed=5, tau=1)
        res = eng.run(500_000)
        assert res.stabilized
        assert np.unique(algo.decisions(eng.state)).size == 1

    def test_duplicate_proposals_fine(self):
        proposals = np.array([7] * 8 + [9] * 8, dtype=np.int64)
        eng, algo, _, props = make_engine(seed=6, proposals=proposals)
        res = eng.run(500_000)
        assert res.stabilized
        decided = np.unique(algo.decisions(eng.state))
        assert decided.size == 1 and decided[0] in (7, 9)

    def test_proposal_shape_validated(self):
        keys = uid_keys_random(8, 0)
        algo = ConsensusVectorized(keys, CFG, np.zeros(7))
        with pytest.raises(ValueError):
            VectorizedEngine(
                StaticDynamicGraph(families.random_regular(8, 3, seed=0)),
                algo,
                seed=0,
            )

    def test_reference_protocol_agreement_and_validity(self):
        from repro.algorithms.consensus import make_consensus_nodes
        from repro.core.engine import ReferenceEngine
        from repro.core.payload import UIDSpace

        n = 10
        g = families.random_regular(n, 3, seed=0)
        us = UIDSpace(n, seed=1)
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=3, beta=1.0)
        proposals = [f"v{i}" for i in range(n)]
        nodes = make_consensus_nodes(us, cfg, proposals, seed=2, unique_tags=True)
        winner = min(nodes, key=lambda nd: nd.smallest_pair)
        expected_decision = winner.decision
        eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=3)
        res = eng.run(
            300_000,
            lambda ps: all(p.leader == winner.uid for p in ps),
        )
        assert res.stabilized
        assert all(p.decision == expected_decision for p in nodes)
        assert expected_decision in proposals  # validity

    def test_reference_protocol_message_within_budget(self):
        from repro.algorithms.consensus import ConsensusNode
        from repro.core.payload import PayloadBudget, UID

        cfg = BitConvergenceConfig(n_upper=64, delta_bound=8, beta=2.0)
        node = ConsensusNode(0, UID(1), id_tag=5, config=cfg, proposal=42)
        PayloadBudget(n_upper=64).validate(node.compose(1))

    def test_values_never_invented(self):
        """Every intermediate carried value is someone's original proposal."""
        eng, algo, _, proposals = make_engine(seed=7)
        valid = set(proposals.tolist())
        for r in range(1, 2000):
            eng.step(r)
            assert set(eng.state.carried.tolist()) <= valid
            if algo.converged(eng.state):
                break
        assert algo.converged(eng.state)
