"""Statistical tests of the randomized model semantics.

These verify the *distributions* the model specifies — uniform proposal
targets, uniform acceptance among arrivals, fair coins — using chi-square
goodness-of-fit on engine-level runs. Sample sizes and significance are
chosen so flake probability is negligible (p-value floors around 1e-6
equivalents via generous tolerance bands plus fixed seeds).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core.engine import ReferenceEngine
from repro.core.payload import Message, UIDSpace
from repro.core.protocol import NodeProtocol
from repro.core.vectorized import VectorizedAlgorithm, VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.util.csrops import build_csr, segmented_random_pick, segmented_uniform_accept


def chi_square_uniform_ok(counts: np.ndarray, alpha: float = 1e-6) -> bool:
    """True when counts are consistent with a uniform multinomial."""
    counts = np.asarray(counts, dtype=np.float64)
    expected = np.full_like(counts, counts.sum() / counts.size)
    stat, p = stats.chisquare(counts, expected)
    return p > alpha


class TestCsrPickDistribution:
    def test_unmasked_uniform_over_neighbors(self):
        # Vertex 0 adjacent to 1..6.
        indptr, indices = build_csr(7, np.array([[0, i] for i in range(1, 7)]))
        rng = np.random.default_rng(0)
        counts = np.zeros(7, dtype=int)
        for _ in range(12_000):
            counts[segmented_random_pick(indptr, indices, rng)[0]] += 1
        assert chi_square_uniform_ok(counts[1:7])

    def test_masked_uniform_over_eligible(self):
        indptr, indices = build_csr(7, np.array([[0, i] for i in range(1, 7)]))
        rng = np.random.default_rng(1)
        mask = np.array([False, True, False, True, True, False, True])
        counts = np.zeros(7, dtype=int)
        for _ in range(12_000):
            counts[segmented_random_pick(indptr, indices, rng, neighbor_mask=mask)[0]] += 1
        assert counts[2] == 0 and counts[5] == 0
        assert chi_square_uniform_ok(counts[[1, 3, 4, 6]])

    def test_flat_mask_uniform_over_entries(self):
        indptr, indices = build_csr(6, np.array([[0, i] for i in range(1, 6)]))
        rng = np.random.default_rng(2)
        # Row 0 holds the first five flat entries (its neighbors 1..5);
        # allow only entries 0, 2, 3 of that row, nothing elsewhere.
        flat = np.zeros(indices.size, dtype=bool)
        flat[[0, 2, 3]] = True
        counts = np.zeros(6, dtype=int)
        for _ in range(9_000):
            counts[segmented_random_pick(indptr, indices, rng, flat_mask=flat)[0]] += 1
        allowed = indices[[0, 2, 3]]
        forbidden = indices[[1, 4]]
        assert chi_square_uniform_ok(counts[allowed])
        assert counts[forbidden].sum() == 0


class TestAcceptDistribution:
    def test_uniform_among_five_proposers(self):
        rng = np.random.default_rng(3)
        senders = np.arange(5)
        targets = np.full(5, 5)
        counts = np.zeros(5, dtype=int)
        for _ in range(10_000):
            counts[segmented_uniform_accept(senders, targets, 6, rng)[5]] += 1
        assert chi_square_uniform_ok(counts)

    def test_independent_across_targets(self):
        rng = np.random.default_rng(4)
        senders = np.array([0, 1, 2, 3])
        targets = np.array([4, 4, 5, 5])
        joint = np.zeros((2, 2), dtype=int)
        for _ in range(8_000):
            acc = segmented_uniform_accept(senders, targets, 6, rng)
            joint[acc[4], acc[5] - 2] += 1
        # All four joint outcomes equally likely.
        assert chi_square_uniform_ok(joint.ravel())


class _StarLeafSenders(NodeProtocol):
    """Leaves always propose to the hub; the hub listens."""

    tag_length = 0

    def decide(self, view):
        return None if self.node_id == 0 else 0

    def compose(self, peer):
        return Message(data=self.node_id)

    def deliver(self, peer, message):
        pass


class TestReferenceEngineAcceptance:
    def test_hub_accepts_uniformly(self):
        """The model's acceptance rule, measured at the engine level."""
        g = families.star(6)
        us = UIDSpace(6, seed=0)
        protos = [_StarLeafSenders(v, us.uid_of(v)) for v in range(6)]
        eng = ReferenceEngine(StaticDynamicGraph(g), protos, seed=7, collect_trace=True)
        eng.run(6_000, lambda ps: False)
        winners = np.zeros(6, dtype=int)
        for rec in eng.trace.rounds:
            assert rec.connections.shape[0] == 1
            winners[rec.connections[0, 0]] += 1
        assert chi_square_uniform_ok(winners[1:])


class TestCoinFairness:
    def test_blind_gossip_send_rate(self):
        """The vectorized sender mask is a fair coin."""
        from repro.algorithms.blind_gossip import BlindGossipVectorized

        algo = BlindGossipVectorized(np.arange(10, dtype=np.int64))
        state = algo.init_state(10, np.random.default_rng(0))
        rng = np.random.default_rng(5)
        total = np.zeros(10, dtype=int)
        rounds = 4_000
        active = np.ones(10, dtype=bool)
        lr = np.ones(10, dtype=np.int64)
        tags = np.zeros(10, dtype=np.int64)
        for _ in range(rounds):
            total += algo.senders(state, tags, lr, active, rng)
        freq = total / rounds
        assert np.all(np.abs(freq - 0.5) < 0.05)
