"""Oracle tests: csrops against brute-force per-row reference implementations.

The vectorized primitives are re-implemented here as obviously-correct
per-row Python loops; hypothesis drives both over random CSR structures
and masks, comparing *support* exactly (which outcomes are possible) and
checking that both implementations produce valid outcomes for the same
inputs.  Distribution equality is covered statistically in
``test_statistical_semantics.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util import _csrops_numba, csrops
from repro.util.csrops import (
    build_csr,
    segmented_random_pick,
    segmented_random_pick_subset,
    segmented_uniform_accept,
)


def backend_params() -> list[str]:
    """Every registered backend, plus the numba kernel *table* running as
    plain Python when the JIT itself is absent (the two-phase algorithms
    get oracle coverage everywhere)."""
    names = list(csrops.available_backends())
    if "numba" not in names:
        names.append("numba-python")
    return names


@pytest.fixture(autouse=True, scope="module", params=backend_params())
def csrops_backend(request):
    """Run the whole oracle suite once per kernel backend."""
    name = request.param
    added = name not in csrops.available_backends()
    if added:
        csrops.register_backend(name, _csrops_numba.make_table())
    prev = csrops.get_backend()
    csrops.set_backend(name)
    yield name
    csrops.set_backend(prev)
    if added:
        csrops._BACKENDS.pop(name, None)


def reference_pick_support(indptr, indices, active, neighbor_mask, flat_mask):
    """Per-row sets of possible picks, by definition."""
    n = indptr.shape[0] - 1
    support: list[set[int]] = []
    for u in range(n):
        if active is not None and not active[u]:
            support.append({-1})
            continue
        options = set()
        for pos in range(indptr[u], indptr[u + 1]):
            v = int(indices[pos])
            if neighbor_mask is not None and not neighbor_mask[v]:
                continue
            if flat_mask is not None and not flat_mask[pos]:
                continue
            options.add(v)
        support.append(options if options else {-1})
    return support


@st.composite
def csr_cases(draw):
    n = draw(st.integers(2, 10))
    pool = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pool), unique=True, max_size=len(pool)))
    indptr, indices = build_csr(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    active = draw(
        st.one_of(st.none(), st.lists(st.booleans(), min_size=n, max_size=n))
    )
    neighbor_mask = draw(
        st.one_of(st.none(), st.lists(st.booleans(), min_size=n, max_size=n))
    )
    use_flat = draw(st.booleans())
    flat_mask = (
        draw(
            st.lists(st.booleans(), min_size=indices.size, max_size=indices.size)
        )
        if use_flat and indices.size
        else None
    )
    to_arr = lambda x: None if x is None else np.asarray(x, dtype=bool)
    return indptr, indices, to_arr(active), to_arr(neighbor_mask), to_arr(flat_mask)


class TestPickAgainstOracle:
    @given(csr_cases(), st.integers(0, 2**31 - 1))
    @settings(max_examples=120)
    def test_picks_always_in_reference_support(self, case, seed):
        indptr, indices, active, nmask, fmask = case
        rng = np.random.default_rng(seed)
        support = reference_pick_support(indptr, indices, active, nmask, fmask)
        for _ in range(3):
            pick = segmented_random_pick(
                indptr, indices, rng,
                active=active, neighbor_mask=nmask, flat_mask=fmask,
            )
            for u, p in enumerate(pick):
                assert int(p) in support[u], (u, int(p), support[u])

    @given(csr_cases(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60)
    def test_every_support_element_reachable(self, case, seed):
        """Over repeated draws, each eligible option appears (no dead options)."""
        indptr, indices, active, nmask, fmask = case
        rng = np.random.default_rng(seed)
        support = reference_pick_support(indptr, indices, active, nmask, fmask)
        seen: list[set[int]] = [set() for _ in support]
        # Enough draws that P(missing an option) is negligible: max degree
        # is 9, 200 draws => miss prob < 9 * (8/9)^200 ~ 1e-10.
        for _ in range(200):
            pick = segmented_random_pick(
                indptr, indices, rng,
                active=active, neighbor_mask=nmask, flat_mask=fmask,
            )
            for u, p in enumerate(pick):
                seen[u].add(int(p))
        for u in range(len(support)):
            assert seen[u] == support[u]


class TestAcceptAgainstOracle:
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=20
        ).filter(lambda ps: all(s != t for s, t in ps)),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=100)
    def test_accepted_sender_proposed_to_that_target(self, proposals, seed):
        senders = np.array([s for s, _ in proposals], dtype=np.int64)
        targets = np.array([t for _, t in proposals], dtype=np.int64)
        rng = np.random.default_rng(seed)
        accepted = segmented_uniform_accept(senders, targets, 10, rng)
        proposal_set = set(zip(senders.tolist(), targets.tolist()))
        targeted = set(targets.tolist())
        for t in range(10):
            if t in targeted:
                assert accepted[t] >= 0
                assert (int(accepted[t]), t) in proposal_set
            else:
                assert accepted[t] == -1


class TestSubsetPickAgainstOracle:
    """segmented_random_pick_subset is the sparse-frontier pick primitive:
    for the listed rows it must have exactly the dense kernel's support."""

    @given(csr_cases(), st.integers(0, 2**31 - 1))
    @settings(max_examples=100)
    def test_subset_picks_in_reference_support(self, case, seed):
        indptr, indices, _active, nmask, fmask = case
        n = indptr.shape[0] - 1
        rng = np.random.default_rng(seed)
        vertices = np.flatnonzero(np.random.default_rng(seed + 1).random(n) < 0.6)
        support = reference_pick_support(indptr, indices, None, nmask, fmask)
        for _ in range(3):
            pick = segmented_random_pick_subset(
                indptr, indices, rng, vertices,
                neighbor_mask=nmask, flat_mask=fmask,
            )
            assert pick.shape == vertices.shape
            for i, u in enumerate(vertices):
                assert int(pick[i]) in support[u], (int(u), int(pick[i]), support[u])

    @given(csr_cases(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_every_support_element_reachable(self, case, seed):
        indptr, indices, _active, nmask, fmask = case
        n = indptr.shape[0] - 1
        rng = np.random.default_rng(seed)
        vertices = np.flatnonzero(np.random.default_rng(seed + 1).random(n) < 0.6)
        support = reference_pick_support(indptr, indices, None, nmask, fmask)
        seen: list[set[int]] = [set() for _ in range(vertices.size)]
        # Max degree 9, 200 draws: miss probability < 9 * (8/9)^200 ~ 1e-10.
        for _ in range(200):
            pick = segmented_random_pick_subset(
                indptr, indices, rng, vertices,
                neighbor_mask=nmask, flat_mask=fmask,
            )
            for i, p in enumerate(pick):
                seen[i].add(int(p))
        for i, u in enumerate(vertices):
            assert seen[i] == support[u]

    def test_empty_subset(self):
        indptr, indices = build_csr(3, np.array([[0, 1], [1, 2]]))
        pick = segmented_random_pick_subset(
            indptr, indices, np.random.default_rng(0),
            np.empty(0, dtype=np.int64),
        )
        assert pick.size == 0

    def test_repeated_rows_pick_independently(self):
        indptr, indices = build_csr(3, np.array([[0, 1], [0, 2]]))
        rng = np.random.default_rng(3)
        vertices = np.zeros(200, dtype=np.int64)
        picks = segmented_random_pick_subset(indptr, indices, rng, vertices)
        assert set(picks.tolist()) == {1, 2}
