"""Tests for repro.graphs.mobility: unit-disk graphs and random waypoint."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.mobility import RandomWaypointDynamicGraph, unit_disk_graph
from repro.graphs.validation import check_connected, check_stability_contract


class TestUnitDiskGraph:
    def test_radius_controls_edges(self):
        pos = np.array([[0.0, 0.0], [0.1, 0.0], [0.9, 0.9]])
        g = unit_disk_graph(pos, radius=0.2, repair=False)
        assert g.has_edge(0, 1) and not g.has_edge(0, 2)

    def test_large_radius_clique(self):
        pos = np.random.default_rng(0).random((6, 2))
        g = unit_disk_graph(pos, radius=2.0)
        assert g.num_edges == 15

    def test_repair_connects(self):
        pos = np.array([[0.0, 0.0], [0.05, 0.0], [1.0, 1.0], [0.95, 1.0]])
        raw = unit_disk_graph(pos, radius=0.2, repair=False)
        assert not raw.is_connected()
        repaired = unit_disk_graph(pos, radius=0.2, repair=True)
        assert repaired.is_connected()

    def test_repair_adds_shortest_bridge(self):
        pos = np.array([[0.0, 0.0], [0.4, 0.0], [1.0, 0.0]])
        g = unit_disk_graph(pos, radius=0.1, repair=True)
        # Bridges should be 0-1 and 1-2 (shorter than 0-2).
        assert g.has_edge(0, 1) and g.has_edge(1, 2)
        assert not g.has_edge(0, 2)


class TestGroupWaypoint:
    def test_connected_and_stable(self):
        from repro.graphs.mobility import GroupWaypointDynamicGraph

        dg = GroupWaypointDynamicGraph(16, tau=3, groups=3, seed=1)
        check_connected(dg, 24)
        check_stability_contract(dg, 24)

    def test_deterministic(self):
        from repro.graphs.mobility import GroupWaypointDynamicGraph

        mk = lambda: GroupWaypointDynamicGraph(12, tau=2, groups=2, seed=4)
        a, b = mk(), mk()
        for r in (1, 3, 7):
            assert a.graph_at(r) == b.graph_at(r)

    def test_clusters_are_dense(self):
        from repro.graphs.mobility import GroupWaypointDynamicGraph

        dg = GroupWaypointDynamicGraph(
            18, tau=1, groups=3, radius=0.25, spread=0.05, seed=2
        )
        g = dg.graph_at(1)
        groups = dg._member_group
        # Within-cluster pairs connect much more often than cross-cluster.
        same = diff = same_hits = diff_hits = 0
        for u in range(g.n):
            for v in range(u + 1, g.n):
                if groups[u] == groups[v]:
                    same += 1
                    same_hits += g.has_edge(u, v)
                else:
                    diff += 1
                    diff_hits += g.has_edge(u, v)
        assert same_hits / max(same, 1) > diff_hits / max(diff, 1)

    def test_validation(self):
        from repro.graphs.mobility import GroupWaypointDynamicGraph

        with pytest.raises(ValueError):
            GroupWaypointDynamicGraph(10, tau=1, groups=0)
        with pytest.raises(ValueError):
            GroupWaypointDynamicGraph(10, tau=1, groups=11)
        with pytest.raises(ValueError):
            GroupWaypointDynamicGraph(10, tau=0)

    def test_leader_election_over_group_mobility(self):
        from repro.algorithms import AsyncBitConvergenceVectorized, BitConvergenceConfig
        from repro.core import VectorizedEngine
        from repro.graphs.mobility import GroupWaypointDynamicGraph
        from repro.harness.experiments import uid_keys_random

        n = 16
        dg = GroupWaypointDynamicGraph(n, tau=4, groups=2, seed=3)
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=n - 1, beta=1.0)
        keys = uid_keys_random(n, 5)
        algo = AsyncBitConvergenceVectorized(keys, cfg, tag_seed=6, unique_tags=True)
        eng = VectorizedEngine(dg, algo, seed=7)
        assert eng.run(500_000).stabilized


class TestRandomWaypoint:
    def test_all_epochs_connected(self):
        dg = RandomWaypointDynamicGraph(12, tau=3, radius=0.3, speed=0.1, seed=1)
        check_connected(dg, 30)

    def test_honours_stability_contract(self):
        dg = RandomWaypointDynamicGraph(8, tau=4, radius=0.4, speed=0.2, seed=2)
        check_stability_contract(dg, 24)

    def test_deterministic(self):
        mk = lambda: RandomWaypointDynamicGraph(10, tau=2, radius=0.35, speed=0.1, seed=5)
        a, b = mk(), mk()
        for r in (1, 4, 9):
            assert a.graph_at(r) == b.graph_at(r)

    def test_out_of_order_access(self):
        dg = RandomWaypointDynamicGraph(10, tau=2, radius=0.35, speed=0.1, seed=5)
        g9 = dg.graph_at(9)
        g1 = dg.graph_at(1)
        assert dg.graph_at(9) == g9 and dg.graph_at(1) == g1

    def test_topology_eventually_changes(self):
        dg = RandomWaypointDynamicGraph(10, tau=1, radius=0.3, speed=0.2, seed=3)
        assert any(dg.graph_at(r) != dg.graph_at(1) for r in range(2, 20))

    def test_zero_speed_static(self):
        dg = RandomWaypointDynamicGraph(8, tau=1, radius=0.4, speed=0.0, seed=4)
        assert all(dg.graph_at(r) == dg.graph_at(1) for r in range(2, 6))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointDynamicGraph(1, tau=1)
        with pytest.raises(ValueError):
            RandomWaypointDynamicGraph(5, tau=0)
        with pytest.raises(ValueError):
            RandomWaypointDynamicGraph(5, tau=1, radius=-1.0)
