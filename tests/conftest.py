"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.payload import UIDSpace

# One-time imports (networkx) and CSR setup inside property bodies can blow
# hypothesis's default 200 ms deadline on first execution; wall-clock
# deadlines add flake without value here.
settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")
from repro.graphs import families
from repro.graphs.static import Graph


@pytest.fixture
def small_graphs() -> list[tuple[str, Graph]]:
    """A zoo of small connected graphs covering every family."""
    return [
        ("clique", families.clique(8)),
        ("path", families.path(9)),
        ("ring", families.ring(8)),
        ("star", families.star(9)),
        ("double_star", families.double_star(4)),
        ("line_of_stars", families.line_of_stars(3, 3)),
        ("binary_tree", families.binary_tree(10)),
        ("grid", families.grid(3, 4)),
        ("hypercube", families.hypercube(3)),
        ("complete_bipartite", families.complete_bipartite(3, 5)),
        ("barbell", families.barbell(4, 1)),
        ("lollipop", families.lollipop(5, 3)),
        ("random_regular", families.random_regular(10, 3, seed=7)),
        ("gnp", families.connected_erdos_renyi(10, 0.5, seed=7)),
    ]


@pytest.fixture
def uid_space_16() -> UIDSpace:
    return UIDSpace(16, seed=42)


@pytest.fixture
def keys_16() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.choice(np.arange(160, dtype=np.int64), size=16, replace=False)
