"""Cross-validation: batched engine vs single-replica vectorized engine.

The batched engine runs T replicas as one (T, n) computation; its round
randomness comes from a batch-wide stream, so it cannot be compared
trace-for-trace with T separate ``VectorizedEngine`` runs.  Like the
reference-vs-vectorized suite, we compare *distributions* of
rounds-to-stabilize over the same trial-seed sequence: a semantic
divergence (acceptance rule, convergence masking, stacked-CSR indexing)
shifts these distributions by integer factors, far outside the tolerance
band.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms.bit_convergence import (
    BitConvergenceBatched,
    BitConvergenceConfig,
    BitConvergenceVectorized,
)
from repro.algorithms.blind_gossip import BlindGossipBatched, BlindGossipVectorized
from repro.algorithms.ppush import PPushBatched, PPushVectorized
from repro.algorithms.push_pull import PushPullBatched, PushPullVectorized
from repro.algorithms.blind_gossip import make_blind_gossip_nodes
from repro.core.batched import BatchedVectorizedEngine
from repro.core.engine import ReferenceEngine
from repro.core.monitor import all_leaders_are
from repro.core.payload import UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.faults import (
    ConnectionDropModel,
    CrashSchedule,
    CrashWindow,
    FaultPlan,
    StateCorruptionEvent,
)
from repro.graphs import families
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph, StaticDynamicGraph
from repro.harness.runner import run_trials, run_trials_batched, trial_seeds_for

TRIALS = 24
MAX_ROUNDS = 200_000


def median_ratio(a, b):
    return float(np.median(a)) / max(float(np.median(b)), 1e-9)


def keys_for(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).permutation(n).astype(np.int64)


class TestBlindGossipBatchedEquivalence:
    @pytest.mark.parametrize(
        "graph",
        [families.clique(16), families.double_star(6), families.random_regular(32, 4, seed=0)],
        ids=["clique", "double_star", "random_regular"],
    )
    def test_static_round_distributions_match(self, graph):
        keys = keys_for(graph.n)
        dg = StaticDynamicGraph(graph)

        def build_b(seeds):
            return dg, BlindGossipBatched(keys)

        batched = run_trials_batched(
            build_b, trials=TRIALS, max_rounds=MAX_ROUNDS, seed=7
        )
        single = run_trials(
            lambda ts: VectorizedEngine(dg, BlindGossipVectorized(keys), seed=ts),
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            seed=7,
        )
        assert all(o.stabilized for o in batched)
        assert all(o.stabilized for o in single)
        # Identical trial-seed sequences, comparable distributions.
        assert [o.seed for o in batched] == [o.seed for o in single]
        ratio = median_ratio(
            [o.rounds for o in batched], [o.rounds for o in single]
        )
        assert 0.5 < ratio < 2.0

    def test_churn_permuted_path_matches(self):
        """Shared-base relabel churn takes the permutation-native fast path."""
        base = families.double_star(6)
        keys = keys_for(base.n)

        def build_b(seeds):
            dgs = [PeriodicRelabelDynamicGraph(base, 1, seed=int(ts)) for ts in seeds]
            return dgs, BlindGossipBatched(keys)

        engine = BatchedVectorizedEngine(
            *build_b(trial_seeds_for(3, TRIALS)), seeds=trial_seeds_for(3, TRIALS)
        )
        assert engine._perm_base is base

        batched = run_trials_batched(
            build_b, trials=TRIALS, max_rounds=MAX_ROUNDS, seed=3
        )
        single = run_trials(
            lambda ts: VectorizedEngine(
                PeriodicRelabelDynamicGraph(base, 1, seed=ts),
                BlindGossipVectorized(keys),
                seed=ts,
            ),
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            seed=3,
        )
        assert all(o.stabilized for o in batched)
        ratio = median_ratio(
            [o.rounds for o in batched], [o.rounds for o in single]
        )
        assert 0.5 < ratio < 2.0

    def test_churn_stacked_path_matches(self):
        """Distinct base objects force the stacked-CSR fallback path."""
        keys = keys_for(families.double_star(6).n)

        def build_b(seeds):
            dgs = [
                PeriodicRelabelDynamicGraph(families.double_star(6), 1, seed=int(ts))
                for ts in seeds
            ]
            return dgs, BlindGossipBatched(keys)

        engine = BatchedVectorizedEngine(
            *build_b(trial_seeds_for(3, TRIALS)), seeds=trial_seeds_for(3, TRIALS)
        )
        assert engine._perm_base is None

        batched = run_trials_batched(
            build_b, trials=TRIALS, max_rounds=MAX_ROUNDS, seed=3
        )
        single = run_trials(
            lambda ts: VectorizedEngine(
                PeriodicRelabelDynamicGraph(families.double_star(6), 1, seed=ts),
                BlindGossipVectorized(keys),
                seed=ts,
            ),
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            seed=3,
        )
        assert all(o.stabilized for o in batched)
        ratio = median_ratio(
            [o.rounds for o in batched], [o.rounds for o in single]
        )
        assert 0.5 < ratio < 2.0

    def test_permuted_and_stacked_paths_agree(self):
        """The two churn implementations are distributionally interchangeable."""
        base = families.double_star(6)
        keys = keys_for(base.n)

        def build_permuted(seeds):
            return (
                [PeriodicRelabelDynamicGraph(base, 1, seed=int(ts)) for ts in seeds],
                BlindGossipBatched(keys),
            )

        def build_stacked(seeds):
            # Equal but distinct base objects defeat the identity check.
            return (
                [
                    PeriodicRelabelDynamicGraph(
                        families.double_star(6), 1, seed=int(ts)
                    )
                    for ts in seeds
                ],
                BlindGossipBatched(keys),
            )

        fast = run_trials_batched(
            build_permuted, trials=TRIALS, max_rounds=MAX_ROUNDS, seed=11
        )
        slow = run_trials_batched(
            build_stacked, trials=TRIALS, max_rounds=MAX_ROUNDS, seed=11
        )
        assert all(o.stabilized for o in fast)
        assert all(o.stabilized for o in slow)
        ratio = median_ratio([o.rounds for o in fast], [o.rounds for o in slow])
        assert 0.5 < ratio < 2.0


class TestPPushBatchedEquivalence:
    def test_round_distributions_match(self):
        graph = families.star(24)
        dg = StaticDynamicGraph(graph)
        src = np.array([0])

        batched = run_trials_batched(
            lambda seeds: (dg, PPushBatched(src)),
            trials=TRIALS,
            max_rounds=100_000,
            seed=1,
        )
        single = run_trials(
            lambda ts: VectorizedEngine(dg, PPushVectorized(src), seed=ts),
            trials=TRIALS,
            max_rounds=100_000,
            seed=1,
        )
        assert all(o.stabilized for o in batched)
        # PPUSH on a star is nearly deterministic (one leaf per round).
        ratio = median_ratio(
            [o.rounds for o in batched], [o.rounds for o in single]
        )
        assert 0.7 < ratio < 1.5


class TestPushPullBatchedEquivalence:
    def test_round_distributions_match(self):
        graph = families.double_star(6)
        dg = StaticDynamicGraph(graph)
        src = np.array([2])

        batched = run_trials_batched(
            lambda seeds: (dg, PushPullBatched(src)),
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            seed=2,
        )
        single = run_trials(
            lambda ts: VectorizedEngine(dg, PushPullVectorized(src), seed=ts),
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            seed=2,
        )
        assert all(o.stabilized for o in batched)
        ratio = median_ratio(
            [o.rounds for o in batched], [o.rounds for o in single]
        )
        assert 0.5 < ratio < 2.0


class TestBitConvergenceBatchedEquivalence:
    def test_round_distributions_match(self):
        graph = families.random_regular(16, 4, seed=0)
        dg = StaticDynamicGraph(graph)
        cfg = BitConvergenceConfig(n_upper=16, delta_bound=4, beta=1.0)
        keys = keys_for(graph.n)

        batched = run_trials_batched(
            lambda seeds: (
                dg,
                BitConvergenceBatched(keys, cfg, unique_tags=True),
            ),
            trials=TRIALS,
            max_rounds=300_000,
            seed=5,
        )
        single = run_trials(
            lambda ts: VectorizedEngine(
                dg,
                BitConvergenceVectorized(keys, cfg, tag_seed=ts, unique_tags=True),
                seed=ts,
            ),
            trials=TRIALS,
            max_rounds=300_000,
            seed=5,
        )
        assert all(o.stabilized for o in batched)
        ratio = median_ratio(
            [o.rounds for o in batched], [o.rounds for o in single]
        )
        assert 0.4 < ratio < 2.5

    def test_initial_tags_match_single_engine(self):
        """Replica t's ID tags are bit-identical to a single engine seeded with trial seed t."""
        from repro.algorithms.bit_convergence import draw_id_tags

        cfg = BitConvergenceConfig(n_upper=16, delta_bound=4, beta=1.0)
        keys = keys_for(16)
        seeds = trial_seeds_for(5, 8)
        algo = BitConvergenceBatched(keys, cfg, unique_tags=True)
        state = algo.init_state(16, np.asarray(seeds))
        for t, ts in enumerate(seeds):
            expected = draw_id_tags(16, cfg, ts, unique=True)
            assert np.array_equal(state.ctag[t], expected)


class TestBatchedEngineBehavior:
    def test_deterministic_given_seed(self):
        graph = families.random_regular(32, 4, seed=0)
        keys = keys_for(graph.n)

        def once():
            return run_trials_batched(
                lambda seeds: (StaticDynamicGraph(graph), BlindGossipBatched(keys)),
                trials=12,
                max_rounds=50_000,
                seed=9,
            )

        a, b = once(), once()
        assert [(o.seed, o.rounds, o.stabilized) for o in a] == [
            (o.seed, o.rounds, o.stabilized) for o in b
        ]

    def test_convergence_masking_freezes_finished_replicas(self):
        """After a replica converges, its state never changes again."""
        graph = families.clique(12)
        keys = keys_for(graph.n)
        seeds = trial_seeds_for(0, 8)
        algo = BlindGossipBatched(keys)
        eng = BatchedVectorizedEngine(
            StaticDynamicGraph(graph), algo, seeds=seeds
        )
        frozen: dict[int, np.ndarray] = {}
        for r in range(1, 2000):
            eng.step(r)
            conv = algo.converged(eng.state)
            for t in np.flatnonzero(conv & eng.live):
                frozen[int(t)] = eng.state.best[t].copy()
            eng.live &= ~conv
            for t, snap in frozen.items():
                assert np.array_equal(eng.state.best[t], snap)
            if not eng.live.any():
                break
        assert not eng.live.any()

    def test_outcomes_align_with_trial_seed_scheme(self):
        graph = families.clique(10)
        keys = keys_for(graph.n)
        outs = run_trials_batched(
            lambda seeds: (StaticDynamicGraph(graph), BlindGossipBatched(keys)),
            trials=6,
            max_rounds=10_000,
            seed=4,
        )
        assert [o.seed for o in outs] == trial_seeds_for(4, 6)

    def test_rejects_mismatched_graph_count(self):
        graph = families.clique(8)
        keys = keys_for(graph.n)
        with pytest.raises(ValueError):
            BatchedVectorizedEngine(
                [StaticDynamicGraph(graph)],
                BlindGossipBatched(keys),
                seeds=[1, 2, 3],
            )


class TestChurnBatchedEquivalence:
    """Permuted-fast-path churn runs vs single-replica engines per algorithm."""

    def test_bit_convergence_under_churn(self):
        base = families.random_regular(16, 4, seed=0)
        cfg = BitConvergenceConfig(n_upper=16, delta_bound=4, beta=1.0)
        keys = keys_for(base.n)

        batched = run_trials_batched(
            lambda seeds: (
                [PeriodicRelabelDynamicGraph(base, 1, seed=int(ts)) for ts in seeds],
                BitConvergenceBatched(keys, cfg, unique_tags=True),
            ),
            trials=TRIALS,
            max_rounds=300_000,
            seed=6,
        )
        single = run_trials(
            lambda ts: VectorizedEngine(
                PeriodicRelabelDynamicGraph(base, 1, seed=ts),
                BitConvergenceVectorized(keys, cfg, tag_seed=ts, unique_tags=True),
                seed=ts,
            ),
            trials=TRIALS,
            max_rounds=300_000,
            seed=6,
        )
        assert all(o.stabilized for o in batched)
        ratio = median_ratio(
            [o.rounds for o in batched], [o.rounds for o in single]
        )
        assert 0.4 < ratio < 2.5

    def test_push_pull_under_adaptive_adversary(self):
        from repro.graphs.adversary import BatchedPackingAdversary, PackingAdversary

        base = families.double_star(8)
        src = np.array([2])

        batched = run_trials_batched(
            lambda seeds: (
                BatchedPackingAdversary(base, tau=1, replicas=len(seeds)),
                PushPullBatched(src),
            ),
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            seed=8,
        )
        single = run_trials(
            lambda ts: VectorizedEngine(
                PackingAdversary(base, tau=1), PushPullVectorized(src), seed=ts
            ),
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            seed=8,
        )
        assert all(o.stabilized for o in batched)
        assert all(o.stabilized for o in single)
        ratio = median_ratio(
            [o.rounds for o in batched], [o.rounds for o in single]
        )
        assert 0.5 < ratio < 2.0


class TestFaultPlanCrossEngine:
    """Same FaultPlan across tiers: round distributions must agree.

    Fault randomness draws from per-tier fault streams, so executions are
    not trace-identical; but a semantic divergence in hook placement
    (corruption before vs after the sender decision, drops after vs
    before the exchange, the crash mask missing the active set) shifts
    the rounds-to-stabilize distributions far outside the band.
    """

    def test_reference_vs_batched_under_crash_and_drop(self):
        graph = families.random_regular(16, 4, seed=0)
        dg = StaticDynamicGraph(graph)
        keys = keys_for(graph.n)
        plan = FaultPlan(
            crashes=CrashSchedule(
                (
                    CrashWindow(node=3, start=4, end=14),
                    CrashWindow(node=9, start=6, end=18),
                )
            ),
            connection_drop=ConnectionDropModel(p=0.4),
        )

        batched = run_trials_batched(
            lambda seeds: (dg, BlindGossipBatched(keys)),
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            seed=21,
            fault_plan=plan,
        )
        ref_rounds = []
        for t in range(TRIALS):
            us = UIDSpace(graph.n, seed=100 + t)
            nodes = make_blind_gossip_nodes(us)
            eng = ReferenceEngine(dg, nodes, seed=t, fault_plan=plan)
            res = eng.run(MAX_ROUNDS, all_leaders_are(us.min_uid()))
            assert res.stabilized
            ref_rounds.append(res.rounds)

        assert all(o.stabilized for o in batched)
        # Both tiers gate verdicts until the plan quiesces.
        assert all(o.rounds >= plan.quiesce_round for o in batched)
        assert all(r >= plan.quiesce_round for r in ref_rounds)
        ratio = median_ratio([o.rounds for o in batched], ref_rounds)
        assert 0.5 < ratio < 2.0

    def test_vectorized_vs_batched_under_corruption_and_drop(self):
        graph = families.random_regular(16, 4, seed=0)
        dg = StaticDynamicGraph(graph)
        keys = keys_for(graph.n)
        plan = FaultPlan(
            connection_drop=ConnectionDropModel(p=0.3),
            state_corruption=(StateCorruptionEvent(round=12, fraction=0.5),),
        )

        batched = run_trials_batched(
            lambda seeds: (dg, BlindGossipBatched(keys)),
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            seed=22,
            fault_plan=plan,
        )
        single = run_trials(
            lambda ts: VectorizedEngine(
                dg, BlindGossipVectorized(keys), seed=ts, fault_plan=plan
            ),
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            seed=22,
        )
        assert all(o.stabilized for o in batched)
        assert all(o.stabilized for o in single)
        assert [o.seed for o in batched] == [o.seed for o in single]
        ratio = median_ratio(
            [o.rounds for o in batched], [o.rounds for o in single]
        )
        assert 0.5 < ratio < 2.0


class TestExperimentCellCrossValidation:
    """Experiment cells routed through engine="batched" vs engine="single".

    The harness flips several standard profiles to the batched engine; a
    routing bug (wrong builder, wrong seeds, wrong dynamic-graph form)
    would shift the reported medians by integer factors.
    """

    def test_e6_bit_convergence_cells_match(self):
        from repro.harness.experiments import exp_bit_convergence_tau

        kw = dict(n=16, degree=4, taus=(1, math.inf), trials=12, seed=0)
        single = exp_bit_convergence_tau(engine="single", **kw)
        batched = exp_bit_convergence_tau(engine="batched", **kw)
        assert [r[0] for r in single.rows] == [r[0] for r in batched.rows]
        for row_s, row_b in zip(single.rows, batched.rows):
            # Columns: tau, tau_hat, oblivious median, adaptive median, bound.
            for col in (2, 3):
                ratio = float(row_b[col]) / max(float(row_s[col]), 1e-9)
                assert 0.4 < ratio < 2.5, (row_s, row_b)

    def test_e12_adaptive_adversary_cells_match(self):
        from repro.harness.experiments import exp_adaptive_adversary

        kw = dict(leaf_counts=(8,), trials=12, seed=0)
        single = exp_adaptive_adversary(engine="single", **kw)
        batched = exp_adaptive_adversary(engine="batched", **kw)
        for row_s, row_b in zip(single.rows, batched.rows):
            # Columns: Delta, n, static, oblivious tau=1, adaptive tau=1.
            for col in (2, 3, 4):
                ratio = float(row_b[col]) / max(float(row_s[col]), 1e-9)
                assert 0.4 < ratio < 2.5, (row_s, row_b)
        # The qualitative ordering the experiment exists to show survives
        # the engine change: oblivious churn helps, the adversary hurts.
        _, _, med_static, med_obliv, med_adapt = batched.rows[0]
        assert med_obliv < med_adapt
