"""Tests for markdown report assembly."""

from __future__ import annotations

import pytest

from repro.harness.persistence import save_table
from repro.harness.reporting import build_report, collect_documents, write_report
from repro.harness.tables import Table


def save_sample(dirpath, exp_id, profile="quick"):
    t = Table(title=f"{exp_id} sample", columns=["x"], notes=[])
    t.add_row(1)
    save_table(t, dirpath / f"{exp_id}.json", exp_id=exp_id, profile=profile)


class TestCollect:
    def test_registry_order(self, tmp_path):
        for eid in ("A1", "E10", "E2", "E1", "A3"):
            save_sample(tmp_path, eid)
        docs = collect_documents(tmp_path)
        assert [d.exp_id for d in docs] == ["E1", "E2", "E10", "A1", "A3"]

    def test_empty_dir(self, tmp_path):
        assert collect_documents(tmp_path) == []


class TestBuildReport:
    def test_contains_tables_and_claims(self, tmp_path):
        save_sample(tmp_path, "E1")
        save_sample(tmp_path, "E3")
        report = build_report(collect_documents(tmp_path))
        assert "## E1 — Lemma V.1" in report
        assert "## E3 —" in report
        assert "E1 sample" in report

    def test_custom_title(self, tmp_path):
        save_sample(tmp_path, "E1")
        report = build_report(collect_documents(tmp_path), title="# Custom")
        assert report.startswith("# Custom")

    def test_empty_report(self):
        assert build_report([]).startswith("# Experiment results")


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        save_sample(tmp_path, "E1", profile="standard")
        out = tmp_path / "report.md"
        write_report(tmp_path, out)
        text = out.read_text()
        assert "standard" in text and "## E1" in text
