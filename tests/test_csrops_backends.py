"""Tests for the csrops kernel-backend registry.

Registry mechanics (registration, selection, env init) plus the backend
contract that matters for reproducibility: the numba kernel table is
**bit-identical** to the NumPy backend given the same Generator state.
The table's kernels run as plain Python when numba is absent, so the
identity asserts run everywhere; the JIT-registration checks are
skip-marked without numba.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import _csrops_numba, csrops
from repro.util.csrops import build_csr


@pytest.fixture(autouse=True)
def restore_backend():
    prev = csrops.get_backend()
    yield
    csrops.set_backend(prev)
    csrops._BACKENDS.pop("test-backend", None)


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in csrops.available_backends()

    def test_active_backend_named(self):
        assert csrops.get_backend() in csrops.available_backends()
        assert csrops.backend == csrops.get_backend()

    def test_set_backend_roundtrip(self):
        csrops.set_backend("numpy")
        assert csrops.get_backend() == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown csrops backend"):
            csrops.set_backend("cuda")

    def test_register_rejects_unknown_kernel_names(self):
        with pytest.raises(ValueError, match="unknown kernel name"):
            csrops.register_backend("test-backend", {"made_up_kernel": lambda: None})

    def test_partial_backend_falls_back_to_numpy(self):
        """Kernels a backend omits dispatch to the numpy implementations."""
        calls = []

        def spy(senders, targets, rng):
            calls.append(True)
            return csrops._BACKENDS["numpy"]["segmented_uniform_accept_pairs"](
                senders, targets, rng
            )

        csrops.register_backend(
            "test-backend", {"segmented_uniform_accept_pairs": spy}
        )
        csrops.set_backend("test-backend")
        indptr, indices = build_csr(3, np.array([[0, 1], [1, 2], [0, 2]]))
        # Omitted kernel: served by numpy.
        pick = csrops.segmented_random_pick(
            indptr, indices, np.random.default_rng(0)
        )
        assert pick.shape == (3,)
        # Provided kernel: served by the registered table.
        csrops.segmented_uniform_accept_pairs(
            np.array([0]), np.array([1]), np.random.default_rng(0)
        )
        assert calls


class TestEnvInit:
    def test_invalid_choice_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSROPS_BACKEND", "gpu")
        with pytest.raises(ValueError, match="REPRO_CSROPS_BACKEND"):
            csrops._init_backend_from_env()

    def test_numpy_choice_selects_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSROPS_BACKEND", "numpy")
        csrops._init_backend_from_env()
        assert csrops.get_backend() == "numpy"

    def test_auto_never_fails(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSROPS_BACKEND", "auto")
        csrops._init_backend_from_env()
        assert csrops.get_backend() in ("numpy", "numba")

    @pytest.mark.skipif(
        _csrops_numba.HAVE_NUMBA, reason="numba installed: explicit request works"
    )
    def test_explicit_numba_without_numba_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSROPS_BACKEND", "numba")
        with pytest.raises(ImportError, match="numba"):
            csrops._init_backend_from_env()

    @pytest.mark.skipif(
        not _csrops_numba.HAVE_NUMBA, reason="requires the optional numba package"
    )
    def test_numba_registered_when_installed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSROPS_BACKEND", "numba")
        csrops._init_backend_from_env()
        assert csrops.get_backend() == "numba"
        assert "numba" in csrops.available_backends()


def _random_graph(n: int, seed: int):
    rng = np.random.default_rng(seed)
    pool = np.array([(u, v) for u in range(n) for v in range(u + 1, n)])
    edges = pool[rng.random(len(pool)) < 0.2]
    return build_csr(n, edges.reshape(-1, 2))


def _mask_variants(n, nnz, seed):
    rng = np.random.default_rng(seed)
    nmask = rng.random(n) < 0.6
    fmask = rng.random(nnz) < 0.7
    return [
        dict(neighbor_mask=None, flat_mask=None),
        dict(neighbor_mask=nmask, flat_mask=None),
        dict(neighbor_mask=None, flat_mask=fmask),
        dict(neighbor_mask=nmask, flat_mask=fmask),
    ]


NUMPY = csrops._BACKENDS["numpy"]
TABLE = _csrops_numba.make_table()


class TestBitIdentity:
    """Same Generator state in, bit-identical arrays out, kernel by kernel.

    This is the property that lets ``auto`` silently prefer the compiled
    backend: a run's trajectory cannot depend on which backend served it.
    """

    @pytest.mark.parametrize("seed", range(4))
    def test_segmented_random_pick(self, seed):
        indptr, indices = _random_graph(20, seed)
        active = np.random.default_rng(seed + 50).random(20) < 0.8
        for kw in _mask_variants(20, indices.size, seed + 100):
            a = NUMPY["segmented_random_pick"](
                indptr, indices, np.random.default_rng(seed), active=active, **kw
            )
            b = TABLE["segmented_random_pick"](
                indptr, indices, np.random.default_rng(seed), active=active, **kw
            )
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("seed", range(4))
    def test_segmented_random_pick_subset(self, seed):
        indptr, indices = _random_graph(20, seed)
        vertices = np.flatnonzero(np.random.default_rng(seed + 51).random(20) < 0.5)
        for kw in _mask_variants(20, indices.size, seed + 100):
            a = NUMPY["segmented_random_pick_subset"](
                indptr, indices, np.random.default_rng(seed), vertices, **kw
            )
            b = TABLE["segmented_random_pick_subset"](
                indptr, indices, np.random.default_rng(seed), vertices, **kw
            )
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("seed", range(4))
    def test_segmented_uniform_accept_pairs(self, seed):
        rng = np.random.default_rng(seed + 52)
        m, n = 60, 15
        senders = rng.integers(0, n, size=m)
        targets = (senders + 1 + rng.integers(0, n - 1, size=m)) % n
        ra, rb = np.random.default_rng(seed), np.random.default_rng(seed)
        acc_a, win_a = NUMPY["segmented_uniform_accept_pairs"](senders, targets, ra)
        acc_b, win_b = TABLE["segmented_uniform_accept_pairs"](senders, targets, rb)
        assert np.array_equal(acc_a, acc_b)
        assert np.array_equal(win_a, win_b)

    @pytest.mark.parametrize("seed", range(4))
    def test_batched_random_pick(self, seed):
        indptr, indices = _random_graph(12, seed)
        T, n = 3, 12
        rng = np.random.default_rng(seed + 53)
        active = rng.random((T, n)) < 0.8
        variants = [
            dict(neighbor_mask=None, flat_mask=None),
            dict(neighbor_mask=rng.random((T, n)) < 0.6, flat_mask=None),
            dict(neighbor_mask=None, flat_mask=rng.random((T, indices.size)) < 0.7),
        ]
        for kw in variants:
            a = NUMPY["batched_random_pick"](
                indptr, indices, np.random.default_rng(seed), active, **kw
            )
            b = TABLE["batched_random_pick"](
                indptr, indices, np.random.default_rng(seed), active, **kw
            )
            assert np.array_equal(a, b)

    def test_rng_consumption_matches(self):
        """After a kernel call both backends leave the Generator in the
        same state (the next draw agrees) — required for trajectory
        identity across whole runs, not just single calls."""
        indptr, indices = _random_graph(20, 9)
        nmask = np.random.default_rng(1).random(20) < 0.6
        ra, rb = np.random.default_rng(9), np.random.default_rng(9)
        NUMPY["segmented_random_pick"](indptr, indices, ra, neighbor_mask=nmask)
        TABLE["segmented_random_pick"](indptr, indices, rb, neighbor_mask=nmask)
        assert ra.integers(0, 2**31) == rb.integers(0, 2**31)

    @pytest.mark.skipif(
        not _csrops_numba.HAVE_NUMBA, reason="requires the optional numba package"
    )
    def test_jit_backend_bit_identical_end_to_end(self):
        """With real numba: a full engine run agrees bit-for-bit across
        backends."""
        from repro.algorithms.blind_gossip import BlindGossipVectorized
        from repro.core.vectorized import VectorizedEngine
        from repro.graphs import families
        from repro.graphs.dynamic import StaticDynamicGraph
        from repro.harness.experiments import uid_keys_random

        g = families.random_regular(64, 4, seed=0)
        keys = uid_keys_random(64, 0)
        results = {}
        for name in ("numpy", "numba"):
            csrops.set_backend(name)
            eng = VectorizedEngine(
                StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=5
            )
            res = eng.run(5000)
            results[name] = (res.rounds, eng.state.best.copy())
        assert results["numpy"][0] == results["numba"][0]
        assert np.array_equal(results["numpy"][1], results["numba"][1])
