"""Tests for repro.util.rng: deterministic, label-separated streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import derive_seed, label_entropy, make_rng, spawn_rngs


class TestLabelEntropy:
    def test_stable_across_calls(self):
        assert label_entropy("trial") == label_entropy("trial")

    def test_distinct_labels_differ(self):
        assert label_entropy("trial") != label_entropy("node")

    def test_fits_32_bits(self):
        for lab in ("", "x", "a-much-longer-label", "ünïcode"):
            assert 0 <= label_entropy(lab) < 2**32


class TestDeriveSeed:
    def test_same_inputs_same_stream(self):
        a = np.random.default_rng(derive_seed(7, "x", 3)).integers(0, 1 << 30, 10)
        b = np.random.default_rng(derive_seed(7, "x", 3)).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = np.random.default_rng(derive_seed(7, "x")).integers(0, 1 << 30, 10)
        b = np.random.default_rng(derive_seed(8, "x")).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_different_labels_different_stream(self):
        a = np.random.default_rng(derive_seed(7, "x")).integers(0, 1 << 30, 10)
        b = np.random.default_rng(derive_seed(7, "y")).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_integer_labels_supported(self):
        a = np.random.default_rng(derive_seed(7, "trial", 1)).integers(0, 1 << 30, 5)
        b = np.random.default_rng(derive_seed(7, "trial", 2)).integers(0, 1 << 30, 5)
        assert not np.array_equal(a, b)

    def test_none_seed_is_nondeterministic_entropy(self):
        # Two None-seeded sequences should (overwhelmingly) differ.
        a = np.random.default_rng(derive_seed(None, "x")).integers(0, 1 << 30, 10)
        b = np.random.default_rng(derive_seed(None, "x")).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)


class TestMakeRng:
    def test_returns_generator(self):
        assert isinstance(make_rng(0, "a"), np.random.Generator)

    def test_reproducible(self):
        assert make_rng(5, "lbl").random() == make_rng(5, "lbl").random()


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 7, "nodes")) == 7

    def test_children_independent(self):
        rngs = spawn_rngs(0, 3, "nodes")
        draws = [r.integers(0, 1 << 30, 5) for r in rngs]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible(self):
        a = [r.random() for r in spawn_rngs(9, 4, "x")]
        b = [r.random() for r in spawn_rngs(9, 4, "x")]
        assert a == b
