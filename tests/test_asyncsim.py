"""Tests for the discrete-event asynchronous engine tier.

Covers the acceptance surface of the async subsystem: all three ported
algorithms stabilize under both schedulers, traced runs satisfy the
applicable model invariants, identical ``(seed, Δ, scheduler)`` gives a
bit-identical event order and final state (serially and across worker
processes), and faults route through the event queue with the same
semantics the synchronous tiers implement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bit_convergence import BitConvergenceConfig
from repro.asyncsim import (
    AdversarialScheduler,
    AsyncNode,
    EventSimEngine,
    RandomScheduler,
    Scheduler,
    async_bit_convergence_setup,
    blind_gossip_setup,
    make_scheduler,
    push_pull_setup,
)
from repro.asyncsim.scheduler import SCHEDULER_NAMES
from repro.conformance import (
    check_async_trace,
    check_scheduler_fairness,
)
from repro.core.engine import ModelViolation
from repro.core.payload import Message, UIDSpace
from repro.core.trace import traces_equal
from repro.faults.plan import (
    ConnectionDropModel,
    CrashSchedule,
    CrashWindow,
    FaultPlan,
    StateCorruptionEvent,
    TagCorruptionModel,
)
from repro.graphs import families
from repro.graphs.adversary import PackingAdversary
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph, StaticDynamicGraph
from repro.harness.runner import run_trials


N = 16
GRAPH = families.random_regular(N, 4, seed=0)
UIDS = UIDSpace(N, seed=1)
BC_CFG = BitConvergenceConfig(n_upper=N, delta_bound=4, beta=1.0)


def _setup(algorithm: str):
    if algorithm == "blind_gossip":
        return blind_gossip_setup(UIDS)
    if algorithm == "push_pull":
        return push_pull_setup(UIDS, {UIDS.winner_vertex()})
    return async_bit_convergence_setup(UIDS, BC_CFG, seed=2, unique_tags=True)


def _engine(algorithm="blind_gossip", *, seed=7, delta=3, scheduler="random",
            dg=None, **kw):
    s = _setup(algorithm)
    return (
        EventSimEngine(
            dg or StaticDynamicGraph(GRAPH),
            s.nodes,
            seed=seed,
            delta=delta,
            scheduler=scheduler,
            stop_when=s.stop_when,
            progress=s.progress,
            **kw,
        ),
        s,
    )


def _pool_builder(ts: int) -> EventSimEngine:
    """Module-level: picklable for the process-parallel runner path."""
    eng, _ = _engine(seed=ts, delta=3, scheduler="random")
    return eng


class TestStabilization:
    @pytest.mark.parametrize("algorithm",
                             ["blind_gossip", "push_pull", "async_bit_convergence"])
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    @pytest.mark.parametrize("delta", [1, 3])
    def test_all_algorithms_both_schedulers(self, algorithm, scheduler, delta):
        eng, s = _engine(algorithm, delta=delta, scheduler=scheduler)
        res = eng.run_until(900_000, s.stop_when, check_every=8)
        assert res.stabilized
        assert eng.connections_made > 0

    def test_delta_one_schedulers_coincide(self):
        # At Delta=1 both schedulers are forced to delay 1: lock-step.
        logs = []
        for scheduler in SCHEDULER_NAMES:
            eng, s = _engine(delta=1, scheduler=scheduler, collect_events=True)
            eng.run_until(5000, s.stop_when)
            logs.append(eng.event_log)
        assert logs[0] == logs[1]

    def test_adversary_never_faster_much(self):
        # The maximal-dilation adversary must cost at least as much as
        # the random scheduler at the same Delta (allowing seed noise).
        ticks = {}
        for scheduler in SCHEDULER_NAMES:
            rounds = []
            for seed in range(4):
                eng, s = _engine(seed=seed, delta=4, scheduler=scheduler)
                rounds.append(eng.run_until(20_000, s.stop_when).rounds)
            ticks[scheduler] = np.median(rounds)
        assert ticks["adversarial"] >= ticks["random"]


class TestDeterminism:
    def test_bit_identical_reproduction(self):
        runs = []
        for _ in range(2):
            eng, s = _engine("blind_gossip", seed=11, delta=4,
                             scheduler="random", collect_trace=True)
            res = eng.run_until(5000, s.stop_when)
            runs.append((eng.event_log, res.trace,
                         [nd.leader for nd in s.nodes], res.rounds))
        assert runs[0][0] == runs[1][0]
        assert traces_equal(runs[0][1], runs[1][1])
        assert runs[0][2] == runs[1][2]
        assert runs[0][3] == runs[1][3]

    def test_seed_changes_schedule(self):
        logs = []
        for seed in (0, 1):
            eng, s = _engine(seed=seed, delta=4, collect_events=True)
            eng.run_until(5000, s.stop_when)
            logs.append(eng.event_log)
        assert logs[0] != logs[1]

    def test_scheduler_instance_equals_name(self):
        by_name, _s1 = _engine(seed=3, scheduler="adversarial",
                               collect_events=True)
        by_inst, _s2 = _engine(seed=3, scheduler=AdversarialScheduler(),
                               collect_events=True)
        r1 = by_name.run_until(5000, _s1.stop_when)
        r2 = by_inst.run_until(5000, _s2.stop_when)
        assert by_name.event_log == by_inst.event_log
        assert r1.rounds == r2.rounds

    def test_identical_across_process_counts(self):
        kw = dict(trials=4, max_rounds=20_000, seed=5)
        serial = run_trials(_pool_builder, processes=1, **kw)
        pooled = run_trials(_pool_builder, processes=2, **kw)
        assert [(o.seed, o.stabilized, o.rounds) for o in serial] == [
            (o.seed, o.stabilized, o.rounds) for o in pooled
        ]


FAULT_PLAN = FaultPlan(
    crashes=CrashSchedule(
        windows=[
            CrashWindow(node=3, start=10, end=30),
            CrashWindow(node=6, start=20, end=None),
        ]
    ),
    connection_drop=ConnectionDropModel(p=0.1),
    tag_corruption=TagCorruptionModel(q=0.02),
)


class TestInvariants:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    @pytest.mark.parametrize("delta", [1, 3])
    @pytest.mark.parametrize("churn", [False, True])
    def test_gossip_traces_clean(self, scheduler, delta, churn):
        dg = (
            PeriodicRelabelDynamicGraph(GRAPH, 40, seed=7)
            if churn
            else StaticDynamicGraph(GRAPH)
        )
        act = list((np.arange(N) % 5) + 1)
        s = _setup("blind_gossip")
        eng = EventSimEngine(
            dg, s.nodes, seed=9, delta=delta, scheduler=scheduler,
            activation_rounds=act, fault_plan=FAULT_PLAN,
            collect_trace=True, progress=s.progress,
        )
        res = eng.run_until(8000, s.stop_when)
        assert res.stabilized
        violations = check_async_trace(
            res.trace, dg, tag_length=0, activation_rounds=act,
            fault_plan=FAULT_PLAN, delta=delta, events=eng.event_log,
        )
        assert violations == []

    def test_tagged_trace_clean(self):
        dg = StaticDynamicGraph(GRAPH)
        s = _setup("async_bit_convergence")
        eng = EventSimEngine(dg, s.nodes, seed=4, delta=2,
                             scheduler="random", collect_trace=True)
        res = eng.run_until(900_000, s.stop_when, check_every=16)
        assert res.stabilized
        violations = check_async_trace(
            res.trace, dg, tag_length=s.tag_length, delta=2,
            events=eng.event_log,
        )
        assert violations == []

    def test_trace_ticks_contiguous(self):
        eng, s = _engine(collect_trace=True, delta=4)
        res = eng.run_until(5000, s.stop_when)
        indices = [rec.round_index for rec in res.trace.rounds]
        assert indices == list(range(1, res.rounds + 1))

    def test_preactivation_nodes_recorded_inactive(self):
        act = [1] * N
        act[2] = 9
        s = _setup("blind_gossip")
        eng = EventSimEngine(
            StaticDynamicGraph(GRAPH), s.nodes, seed=0, delta=1,
            activation_rounds=act, collect_trace=True,
        )
        res = eng.run_until(400, s.stop_when)
        assert res.stabilized
        for rec in res.trace.rounds:
            if rec.round_index < 9:
                assert not rec.active[2]
                assert rec.tags[2] == -1
            else:
                assert rec.active[2]


class TestSchedulerFairness:
    def test_logged_delays_within_band(self):
        eng, s = _engine(delta=5, collect_events=True)
        eng.run_until(5000, s.stop_when)
        assert eng.event_log
        assert check_scheduler_fairness(eng.event_log, 5) == []
        assert all(1 <= ev.deliver - ev.pending <= 5 for ev in eng.event_log)

    def test_out_of_band_scheduler_rejected(self):
        class Cheater(Scheduler):
            name = "cheater"

            def delay(self, kind, node, peer, tick):
                return self.delta + 1

        eng, s = _engine(scheduler=Cheater(), delta=2)
        with pytest.raises(ModelViolation, match="outside"):
            eng.run_until(100, s.stop_when)

    def test_fairness_checker_flags_doctored_log(self):
        eng, s = _engine(delta=3, collect_events=True)
        eng.run_until(5000, s.stop_when)
        doctored = list(eng.event_log)
        doctored[5] = doctored[5]._replace(deliver=doctored[5].pending + 9)
        violations = check_scheduler_fairness(doctored, 3)
        assert len(violations) == 1
        assert violations[0].rule == "scheduler-fairness"

    def test_make_scheduler_names(self):
        assert isinstance(make_scheduler("random"), RandomScheduler)
        assert isinstance(make_scheduler("adversarial"), AdversarialScheduler)
        with pytest.raises(ValueError):
            make_scheduler("nope")

    def test_observation_plumbing(self):
        observed = []

        class Watcher(RandomScheduler):
            name = "watcher"
            wants_observation = True

            def observe(self, tick, progress):
                observed.append((tick, progress))

        eng, s = _engine(scheduler=Watcher(), delta=3)
        res = eng.run_until(5000, s.stop_when)
        assert res.stabilized
        assert observed
        ticks = [t for t, _ in observed]
        assert ticks == sorted(ticks)
        for _, mask in observed:
            assert mask.dtype == bool and mask.shape == (N,)
        assert observed[-1][1].all()  # everyone holds the winner at the end


class TestFaults:
    def test_crash_and_rejoin_restabilizes(self):
        plan = FaultPlan(
            crashes=CrashSchedule(windows=[CrashWindow(node=2, start=15, end=60)])
        )
        eng, s = _engine(fault_plan=plan, delta=2, seed=3)
        res = eng.run_until(5000, s.stop_when)
        assert res.stabilized
        assert res.rounds > 60  # gate: only counts after the rejoin
        assert s.nodes[2].leader == UIDS.min_uid()

    def test_winner_perma_crash_excluded(self):
        winner_vertex = UIDS.winner_vertex()
        plan = FaultPlan(
            crashes=CrashSchedule(
                windows=[CrashWindow(node=winner_vertex, start=5, end=None)]
            )
        )
        s = _setup("blind_gossip")
        eng = EventSimEngine(
            StaticDynamicGraph(GRAPH), s.nodes, seed=3, delta=2,
            fault_plan=plan,
        )
        survivors = [nd for v, nd in enumerate(s.nodes) if v != winner_vertex]
        new_winner = min(nd.uid for nd in survivors)

        def survivors_agree(nodes):
            return all(nd.leader == new_winner for nd in nodes)

        res = eng.run_until(5000, survivors_agree)
        # run_until itself excludes permanently crashed nodes.
        assert res.stabilized
        assert all(nd.leader == new_winner for nd in survivors)

    def test_state_corruption_routes_through_queue(self):
        plan = FaultPlan(
            state_corruption=[StateCorruptionEvent(round=25, fraction=0.5)]
        )
        eng, s = _engine(fault_plan=plan, seed=5, delta=2)
        res = eng.run_until(8000, s.stop_when)
        assert res.stabilized
        assert res.rounds >= plan.quiesce_round

    def test_drop_model_slows_but_stabilizes(self):
        drops = FaultPlan(connection_drop=ConnectionDropModel(p=0.4))
        med = {}
        for label, plan in (("clean", None), ("droppy", drops)):
            rounds = []
            for seed in range(4):
                eng, s = _engine(seed=seed, delta=2, fault_plan=plan)
                r = eng.run_until(20_000, s.stop_when)
                assert r.stabilized
                rounds.append(r.rounds)
            med[label] = np.median(rounds)
        assert med["droppy"] > med["clean"]

    def test_crash_tears_down_open_connection(self):
        # A connection whose endpoint crashes mid-exchange must free the
        # surviving peer; with the victim down for good the rest of the
        # network still stabilizes (delta high => long exchange windows).
        plan = FaultPlan(
            crashes=CrashSchedule(windows=[CrashWindow(node=4, start=7, end=None)])
        )
        s = _setup("blind_gossip")
        eng = EventSimEngine(
            StaticDynamicGraph(GRAPH), s.nodes, seed=1, delta=6,
            scheduler="adversarial", fault_plan=plan,
        )
        survivors = [nd for v, nd in enumerate(s.nodes) if v != 4]
        new_winner = min(nd.uid for nd in survivors)
        res = eng.run_until(20_000,
                            lambda nodes: all(nd.leader == new_winner
                                              for nd in nodes))
        assert res.stabilized
        assert not eng._busy[4]  # the victim's reservation was cleared


class TestValidation:
    def test_adaptive_graph_rejected(self):
        s = _setup("blind_gossip")
        with pytest.raises(ValueError, match="adaptive"):
            EventSimEngine(PackingAdversary(GRAPH, tau=1), s.nodes, seed=0)

    def test_bad_delta(self):
        s = _setup("blind_gossip")
        with pytest.raises(ValueError, match="delta"):
            EventSimEngine(StaticDynamicGraph(GRAPH), s.nodes, seed=0, delta=0)

    def test_wrong_node_count(self):
        s = _setup("blind_gossip")
        with pytest.raises(ValueError, match="nodes"):
            EventSimEngine(StaticDynamicGraph(GRAPH), s.nodes[:-1], seed=0)

    def test_bad_activation(self):
        s = _setup("blind_gossip")
        with pytest.raises(ValueError, match="activation"):
            EventSimEngine(
                StaticDynamicGraph(GRAPH), s.nodes, seed=0,
                activation_rounds=[0] * N,
            )

    def test_run_requires_stop_when(self):
        s = _setup("blind_gossip")
        eng = EventSimEngine(StaticDynamicGraph(GRAPH), s.nodes, seed=0)
        with pytest.raises(ValueError, match="stop_when"):
            eng.run(100)

    def test_rogue_node_bad_target(self):
        class Rogue(AsyncNode):
            def on_timer(self, view):
                return self.me_plus_one if not view.busy else None

            def on_connect(self, peer):
                return Message(data=None)

            def on_deliver(self, peer, message):
                pass

        nodes = [Rogue() for _ in range(4)]
        for i, nd in enumerate(nodes):
            # Propose to a non-neighbor: vertex (i+2) % 4 on a ring is
            # the antipode for n=4? ring(4): neighbors of i are i±1.
            nd.me_plus_one = (i + 2) % 4
        eng = EventSimEngine(
            StaticDynamicGraph(families.ring(4)), nodes, seed=0, delta=1
        )
        with pytest.raises(ModelViolation, match="neighbor"):
            eng.run_until(10, lambda _: False)

    def test_rogue_node_bad_tag_width(self):
        class WideTag(AsyncNode):
            tag_length = 1

            def on_timer(self, view):
                self.tag = 7  # three bits wide
                return None

            def on_connect(self, peer):
                return Message(data=None)

            def on_deliver(self, peer, message):
                pass

        nodes = [WideTag() for _ in range(4)]
        eng = EventSimEngine(
            StaticDynamicGraph(families.ring(4)), nodes, seed=0, delta=1
        )
        with pytest.raises(ModelViolation, match="tag"):
            eng.run_until(10, lambda _: False)


class TestEngineLikeProtocol:
    def test_run_via_harness(self):
        outcomes = run_trials(_pool_builder, trials=3, max_rounds=20_000, seed=2)
        assert all(o.stabilized for o in outcomes)
        assert len({o.rounds for o in outcomes}) >= 1
