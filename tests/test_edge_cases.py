"""Edge cases across module boundaries that no other file pins down."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.payload import UIDSpace
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.static import Graph


class TestTinyNetworks:
    def test_two_node_blind_gossip(self):
        """The smallest possible election: a single edge."""
        from repro.algorithms import BlindGossipVectorized
        from repro.core import VectorizedEngine

        keys = np.array([5, 3], dtype=np.int64)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.path(2)), BlindGossipVectorized(keys), seed=0
        )
        res = eng.run(10_000)
        assert res.stabilized
        assert (eng.state.best == 3).all()

    def test_two_node_bit_convergence(self):
        from repro.algorithms import BitConvergenceConfig, BitConvergenceVectorized
        from repro.core import VectorizedEngine

        cfg = BitConvergenceConfig(n_upper=2, delta_bound=1, beta=2.0)
        keys = np.array([5, 3], dtype=np.int64)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.path(2)),
            BitConvergenceVectorized(keys, cfg, tag_seed=0, unique_tags=True),
            seed=0,
        )
        assert eng.run(50_000).stabilized

    def test_single_node_quorum(self):
        """n=1: already stabilized at round 1 (its own leader)."""
        from repro.algorithms import BlindGossipVectorized
        from repro.core import VectorizedEngine

        eng = VectorizedEngine(
            StaticDynamicGraph(Graph(1, [])),
            BlindGossipVectorized(np.array([7], dtype=np.int64)),
            seed=0,
        )
        res = eng.run(5)
        assert res.stabilized and res.rounds == 1


class TestUIDSpaceProperties:
    @given(st.integers(2, 60), st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_winner_consistent_with_ordering(self, n, seed):
        space = UIDSpace(n, seed=seed)
        uids = space.all_uids()
        assert min(uids) == space.min_uid()
        assert uids[space.winner_vertex()] == space.min_uid()

    @given(st.integers(2, 40), st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_total_order_no_duplicates(self, n, seed):
        uids = UIDSpace(n, seed=seed).all_uids()
        s = sorted(uids)
        for a, b in zip(s, s[1:]):
            assert a < b  # strict: no duplicate keys


class TestGraphUnionProperties:
    @given(st.integers(2, 8), st.integers(2, 8), st.integers(0, 1000))
    @settings(max_examples=30)
    def test_union_preserves_components_structure(self, n1, n2, seed):
        rng = np.random.default_rng(seed)
        g1 = families.clique(n1)
        g2 = families.ring(max(3, n2))
        bridge = (int(rng.integers(0, g1.n)), int(rng.integers(0, g2.n)))
        u = g1.union(g2, [bridge])
        assert u.n == g1.n + g2.n
        assert u.num_edges == g1.num_edges + g2.num_edges + 1
        assert u.is_connected()
        # Degrees are preserved except at the bridge endpoints.
        for v in range(g1.n):
            expected = g1.degree(v) + (1 if v == bridge[0] else 0)
            assert u.degree(v) == expected
        for v in range(g2.n):
            expected = g2.degree(v) + (1 if v == bridge[1] else 0)
            assert u.degree(g1.n + v) == expected


class TestEngineCheckEvery:
    def test_check_every_never_misses_absorbing_state(self):
        """Stabilization is absorbing, so a coarse check stride can only
        delay the report, never lose it."""
        from repro.algorithms import BlindGossipVectorized
        from repro.core import VectorizedEngine
        from repro.harness.experiments import uid_keys_random

        keys = uid_keys_random(16, 0)
        g = families.random_regular(16, 4, seed=0)
        exact = VectorizedEngine(
            StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=1
        ).run(10_000, check_every=1)
        coarse = VectorizedEngine(
            StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=1
        ).run(10_000, check_every=7)
        assert exact.stabilized and coarse.stabilized
        assert coarse.rounds >= exact.rounds
        assert coarse.rounds % 7 == 0
        assert coarse.rounds - exact.rounds < 7


class TestBudgetOverride:
    def test_tight_budget_rejects_bit_convergence_payload(self):
        """A budget tighter than Section IV's rejects the k-bit tags."""
        from repro.algorithms import BitConvergenceConfig, make_bit_convergence_nodes
        from repro.core.engine import ReferenceEngine
        from repro.core.payload import BudgetExceeded, PayloadBudget

        n = 8
        g = families.clique(n)
        us = UIDSpace(n, seed=0)
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=n - 1, beta=2.0)
        nodes = make_bit_convergence_nodes(us, cfg, seed=1, unique_tags=True)
        tight = PayloadBudget(n_upper=n, polylog_power=0, polylog_constant=1.0)
        eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=2, budget=tight)
        with pytest.raises(BudgetExceeded):
            eng.run(200, lambda ps: False)


class TestStaticDynamicEquivalence:
    @given(st.integers(0, 500))
    @settings(max_examples=20)
    def test_schedule_of_one_equals_static(self, seed):
        """A one-graph schedule behaves identically to StaticDynamicGraph."""
        from repro.graphs.dynamic import ScheduleDynamicGraph

        g = families.random_regular(10, 3, seed=seed)
        static = StaticDynamicGraph(g)
        sched = ScheduleDynamicGraph([g], tau=5)
        for r in (1, 3, 11, 100):
            assert static.graph_at(r) == sched.graph_at(r)
