"""Open-world membership: schedules, engine plumbing, and the live monitor."""

import json

import numpy as np
import pytest

from repro.algorithms.blind_gossip import (
    BlindGossipBatched,
    BlindGossipVectorized,
    make_blind_gossip_nodes,
)
from repro.core.batched import BatchedVectorizedEngine
from repro.core.engine import ReferenceEngine
from repro.core.monitor import (
    LiveAgreementMonitor,
    excluding_permanently_crashed,
    live_population_agrees,
)
from repro.core.payload import UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.faults.apply import SingleFaultState
from repro.faults.plan import (
    CrashSchedule,
    CrashWindow,
    FaultPlan,
    MembershipEvent,
    MembershipSchedule,
    leader_assassin_schedule,
    random_membership_schedule,
)
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.util.rng import make_rng


def _keys(n, seed=0):
    return make_rng(seed, "uid-keys").choice(10 * n, size=n, replace=False)


# ---------------------------------------------------------------------------
# Schedule construction and validation
# ---------------------------------------------------------------------------


class TestMembershipSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            MembershipEvent(slot=-1, round=1, kind="join")
        with pytest.raises(ValueError):
            MembershipEvent(slot=0, round=0, kind="join")
        with pytest.raises(ValueError):
            MembershipEvent(slot=0, round=1, kind="vanish")

    def test_two_events_same_slot_same_round_rejected(self):
        with pytest.raises(ValueError, match="two membership events"):
            MembershipSchedule(
                events=(
                    MembershipEvent(slot=2, round=5, kind="depart"),
                    MembershipEvent(slot=2, round=5, kind="join"),
                )
            )

    def test_presence_alternation_enforced(self):
        # A present slot cannot join again without departing first.
        with pytest.raises(ValueError, match="already present"):
            MembershipSchedule(events=(MembershipEvent(slot=0, round=3, kind="join"),))
        with pytest.raises(ValueError, match="already absent"):
            MembershipSchedule(
                initial_absent=(1,),
                events=(MembershipEvent(slot=1, round=3, kind="depart"),),
            )

    def test_down_at_follows_timeline(self):
        sched = MembershipSchedule(
            events=(
                MembershipEvent(slot=1, round=4, kind="depart"),
                MembershipEvent(slot=2, round=6, kind="join"),
                MembershipEvent(slot=1, round=8, kind="join"),
            ),
            initial_absent=(2,),
        )
        n = 4
        assert sched.down_at(1, n).tolist() == [False, False, True, False]
        assert sched.down_at(4, n).tolist() == [False, True, True, False]
        assert sched.down_at(6, n).tolist() == [False, True, False, False]
        assert sched.down_at(8, n).tolist() == [False, False, False, False]

    def test_state_resets_cover_joins_and_clean_departures(self):
        sched = MembershipSchedule(
            events=(
                MembershipEvent(slot=0, round=3, kind="depart_clean"),
                MembershipEvent(slot=1, round=3, kind="depart"),
                MembershipEvent(slot=2, round=5, kind="join"),
            ),
            initial_absent=(2,),
        )
        assert sched.state_resets() == {3: (0,), 5: (2,)}
        assert sched.never_return() == frozenset({0, 1})

    def test_validate_for_cap_and_emptiness(self):
        sched = MembershipSchedule(
            events=(MembershipEvent(slot=0, round=2, kind="depart"),), max_live=2
        )
        sched.validate_for(2)
        with pytest.raises(ValueError, match="above the declared cap"):
            MembershipSchedule(max_live=1).validate_for(3)
        empties = MembershipSchedule(
            events=(
                MembershipEvent(slot=0, round=2, kind="depart"),
                MembershipEvent(slot=1, round=2, kind="depart"),
            )
        )
        with pytest.raises(ValueError, match="empties the network"):
            empties.validate_for(2)

    def test_plan_declared_n_checked_at_construction(self):
        sched = MembershipSchedule(
            events=(MembershipEvent(slot=9, round=2, kind="depart"),)
        )
        with pytest.raises(ValueError, match="slot 9"):
            FaultPlan(membership=sched, n=4)
        plan = FaultPlan(membership=sched, n=12)
        with pytest.raises(ValueError, match="declared for n=12"):
            plan.validate_for(10)

    def test_json_round_trip(self):
        plan = FaultPlan(
            crashes=CrashSchedule((CrashWindow(node=1, start=2, end=5),)),
            membership=MembershipSchedule(
                events=(
                    MembershipEvent(slot=3, round=4, kind="depart_clean"),
                    MembershipEvent(slot=3, round=9, kind="join"),
                ),
                initial_absent=(5,),
                max_live=7,
            ),
            n=8,
        )
        back = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert back == plan
        assert "membership" in plan.describe()
        assert "join" in plan.describe()


class TestMembershipGenerators:
    def test_random_schedule_deterministic_and_capped(self):
        a = random_membership_schedule(
            12, 8, first_round=2, last_round=30, seed=5, initial_absent=2, min_live=3
        )
        b = random_membership_schedule(
            12, 8, first_round=2, last_round=30, seed=5, initial_absent=2, min_live=3
        )
        assert a == b
        a.validate_for(12)
        live = 12 - len(a.initial_absent)
        for r in sorted({e.round for e in a.events}):
            down = a.down_at(r, 12)
            assert 3 <= 12 - int(down.sum()) <= 12

    def test_protect_pins_slots_live(self):
        for seed in range(6):
            sched = random_membership_schedule(
                10,
                12,
                first_round=2,
                last_round=40,
                seed=seed,
                initial_absent=2,
                min_live=2,
                protect=(0, 3),
            )
            assert 0 not in sched.initial_absent
            assert 3 not in sched.initial_absent
            assert all(e.slot not in (0, 3) for e in sched.events if e.kind != "join")

    def test_assassin_targets_smallest_keys_in_order(self):
        keys = np.array([40, 10, 30, 20, 50])
        sched = leader_assassin_schedule(keys, period=5, kills=3, first_round=2)
        departs = [e for e in sched.events if e.kind == "depart"]
        assert [e.slot for e in departs] == [1, 3, 2]
        assert [e.round for e in departs] == [2, 7, 12]
        assert sched.never_return() == frozenset({1, 3, 2})

    def test_assassin_with_down_for_rejoins(self):
        keys = np.array([40, 10, 30, 20])
        sched = leader_assassin_schedule(keys, period=6, kills=2, first_round=3, down_for=6)
        assert sched.never_return() == frozenset()
        joins = [e for e in sched.events if e.kind == "join"]
        assert [(e.slot, e.round) for e in joins] == [(1, 9), (3, 15)]


# ---------------------------------------------------------------------------
# Engine plumbing: identical application across tiers
# ---------------------------------------------------------------------------


def _churn_plan(n):
    return FaultPlan(
        membership=MembershipSchedule(
            events=(
                MembershipEvent(slot=2, round=3, kind="depart"),
                MembershipEvent(slot=5, round=4, kind="depart_clean"),
                MembershipEvent(slot=7, round=6, kind="join"),
                MembershipEvent(slot=2, round=8, kind="join"),
                MembershipEvent(slot=5, round=10, kind="join"),
            ),
            initial_absent=(7,),
        ),
        n=n,
    )


class TestCrossTierApplication:
    def test_active_masks_identical_on_all_tiers(self):
        n, rounds = 10, 14
        g = families.random_regular(n, 4, seed=3)
        keys = _keys(n)
        uids = UIDSpace(n, seed=0)
        plan = _churn_plan(n)

        ref = ReferenceEngine(
            StaticDynamicGraph(g),
            make_blind_gossip_nodes(uids),
            seed=1,
            fault_plan=plan,
            collect_trace=True,
        )
        vec = VectorizedEngine(
            StaticDynamicGraph(g),
            BlindGossipVectorized(keys),
            seed=1,
            fault_plan=plan,
            collect_trace=True,
        )
        bat = BatchedVectorizedEngine(
            StaticDynamicGraph(g),
            BlindGossipBatched(keys),
            seeds=[1, 2],
            fault_plan=plan,
            collect_trace=True,
        )
        for r in range(1, rounds + 1):
            ref.step(r)
            vec.step(r)
            bat.step(r)
        for i in range(rounds):
            a = ref.trace.rounds[i].active
            assert np.array_equal(a, vec.trace.rounds[i].active)
            assert np.array_equal(a, bat.trace.replica(0).rounds[i].active)
            assert np.array_equal(a, bat.trace.replica(1).rounds[i].active)
        # last_active mirrors the final round's mask on every tier.
        assert np.array_equal(ref.last_active, vec.last_active)
        assert np.array_equal(ref.last_active, bat.last_active)

    def test_depart_clean_resets_state_but_depart_freezes(self):
        n = 8
        g = families.clique(n)
        keys = _keys(n)
        winner = int(np.argmin(keys))
        frozen = (winner + 1) % n
        cleaned = (winner + 2) % n
        plan = FaultPlan(
            membership=MembershipSchedule(
                events=(
                    MembershipEvent(slot=frozen, round=6, kind="depart"),
                    MembershipEvent(slot=cleaned, round=6, kind="depart_clean"),
                )
            ),
            n=n,
        )
        eng = VectorizedEngine(
            StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=2, fault_plan=plan
        )
        for r in range(1, 12):
            eng.step(r)
        # On a clique everyone holds the minimum by round 5; the crash-like
        # departure freezes that adopted value, the clean one wipes it.
        assert int(eng.state.best[frozen]) == int(keys[winner])
        assert int(eng.state.best[cleaned]) == int(keys[cleaned])

    def test_join_brings_fresh_state(self):
        n = 8
        g = families.clique(n)
        keys = _keys(n)
        joiner = int(np.argmax(keys))  # never the winner
        plan = FaultPlan(
            membership=MembershipSchedule(
                events=(MembershipEvent(slot=joiner, round=7, kind="join"),),
                initial_absent=(joiner,),
            ),
            n=n,
        )
        eng = VectorizedEngine(
            StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=2, fault_plan=plan
        )
        for r in range(1, 7):
            eng.step(r)
        eng.step(7)
        state = SingleFaultState(plan, n, make_rng(0, "x"))
        assert joiner in state.rejoin_resets(7)
        res = eng.run(60)
        assert res.stabilized

    def test_async_tier_rejects_membership(self):
        from repro.asyncsim.algorithms import blind_gossip_setup
        from repro.asyncsim.engine import EventSimEngine

        n = 6
        uids = UIDSpace(n, seed=0)
        setup = blind_gossip_setup(uids)
        plan = FaultPlan(
            membership=MembershipSchedule(
                events=(MembershipEvent(slot=0, round=3, kind="depart"),)
            ),
            n=n,
        )
        with pytest.raises(NotImplementedError, match="membership"):
            EventSimEngine(
                StaticDynamicGraph(families.clique(n)), setup.nodes, seed=1,
                fault_plan=plan,
            )


# ---------------------------------------------------------------------------
# Satellite: excluding_permanently_crashed / node_done edge cases
# ---------------------------------------------------------------------------


class TestPermanentExclusionEdgeCases:
    def test_crash_at_round_zero_rejected(self):
        with pytest.raises(ValueError):
            CrashWindow(node=0, start=0, end=3)
        with pytest.raises(ValueError):
            MembershipEvent(slot=0, round=0, kind="depart")

    def test_crash_at_round_one_excludes_node_from_round_one(self):
        plan = FaultPlan(crashes=CrashSchedule((CrashWindow(node=1, start=1, end=2),)))
        state = SingleFaultState(plan, 4, make_rng(0, "x"))
        assert state.up_mask(1).tolist() == [True, False, True, True]
        assert state.up_mask(3) is None  # everyone back up

    def test_rejoin_exactly_at_window_boundary(self):
        # Window [2, 5]: down through round 5, reset + live exactly at 6.
        plan = FaultPlan(crashes=CrashSchedule((CrashWindow(node=2, start=2, end=5),)))
        state = SingleFaultState(plan, 4, make_rng(0, "x"))
        assert not state.up_mask(5)[2]
        assert state.up_mask(6) is None  # all up again from round 6
        assert state.rejoin_resets(6).tolist() == [2]
        assert state.rejoin_resets(5).size == 0

    def test_crash_rejoin_into_membership_absence_is_moot(self):
        # The crash window ends at round 5, but the membership schedule has
        # already removed the slot for good: no reset fires at round 6.
        plan = FaultPlan(
            crashes=CrashSchedule((CrashWindow(node=1, start=2, end=5),)),
            membership=MembershipSchedule(
                events=(MembershipEvent(slot=1, round=4, kind="depart"),)
            ),
            n=6,
        )
        state = SingleFaultState(plan, 6, make_rng(0, "x"))
        assert state.rejoin_resets(6).size == 0
        assert not state.up_mask(8)[1]

    def test_crashed_then_departed_both_excluded(self):
        plan = FaultPlan(
            crashes=CrashSchedule((CrashWindow(node=0, start=3, end=None),)),
            membership=MembershipSchedule(
                events=(MembershipEvent(slot=4, round=5, kind="depart"),)
            ),
            n=6,
        )
        protocols = list(range(6))
        kept = excluding_permanently_crashed(protocols, plan)
        assert kept == [1, 2, 3, 5]
        state = SingleFaultState(plan, 6, make_rng(0, "x"))
        assert state.perma_down.tolist() == [True, False, False, False, True, False]

    def test_vectorized_run_converges_past_permanent_departure(self):
        # node_done is evaluated only over slots that can still change
        # state; a frozen never-returning slot must not block convergence.
        n = 10
        g = families.random_regular(n, 4, seed=1)
        keys = _keys(n)
        loser = int(np.argmax(keys))
        plan = FaultPlan(
            membership=MembershipSchedule(
                events=(MembershipEvent(slot=loser, round=2, kind="depart"),)
            ),
            n=n,
        )
        res = VectorizedEngine(
            StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=4, fault_plan=plan
        ).run(300)
        assert res.stabilized


# ---------------------------------------------------------------------------
# The open-world stabilization predicate
# ---------------------------------------------------------------------------


class TestLiveAgreementMonitor:
    def test_live_population_agrees_election(self):
        keys = np.array([5, 1, 9, 3])
        values = np.array([1, 1, 1, 1])
        live = np.array([True, True, True, True])
        assert live_population_agrees(values, live, leader_keys=keys)
        # The agreed key's holder is dead: not a live leader.
        live = np.array([True, False, True, True])
        assert not live_population_agrees(values, live, leader_keys=keys)
        # Disagreement among the live.
        assert not live_population_agrees(
            np.array([1, 1, 3, 1]), np.ones(4, bool), leader_keys=keys
        )
        # Nobody live: vacuously not stabilized.
        assert not live_population_agrees(values, np.zeros(4, bool), leader_keys=keys)

    def test_live_population_agrees_rumor(self):
        informed = np.array([True, False, True])
        assert live_population_agrees(informed, np.array([True, False, True]))
        assert not live_population_agrees(informed, np.ones(3, bool))

    def test_monitor_latches_streak_start(self):
        keys = np.array([2, 1, 3])
        mon = LiveAgreementMonitor(3, leader_keys=keys)
        live = np.ones(3, bool)
        agreed = np.array([1, 1, 1])
        assert not mon.observe(1, np.array([2, 1, 3]), live)
        assert not mon.observe(2, agreed, live)
        assert not mon.observe(3, agreed, live)
        assert mon.observe(4, agreed, live)
        assert mon.stabilized_round == 2
        # Latched: later churn does not un-stabilize.
        assert mon.observe(5, np.array([9, 9, 9]), live)
        assert mon.stabilized_round == 2

    def test_streak_resets_when_agreed_value_changes(self):
        keys = np.array([2, 1])
        mon = LiveAgreementMonitor(3, leader_keys=keys)
        live = np.ones(2, bool)
        assert not mon.observe(1, np.array([1, 1]), live)
        assert not mon.observe(2, np.array([2, 2]), live)  # new value: streak restarts
        assert not mon.observe(3, np.array([2, 2]), live)
        assert mon.observe(4, np.array([2, 2]), live)
        assert mon.stabilized_round == 2

    def test_monitor_requires_consecutive_rounds(self):
        mon = LiveAgreementMonitor(2)
        mon.observe(1, np.array([True]), np.array([True]))
        with pytest.raises(ValueError, match="once per round"):
            mon.observe(3, np.array([True]), np.array([True]))

    def test_monitor_with_engine_last_active(self):
        n = 8
        g = families.clique(n)
        keys = _keys(n)
        plan = _churn_plan(n)
        eng = VectorizedEngine(
            StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=3, fault_plan=plan
        )
        mon = LiveAgreementMonitor(4, leader_keys=keys)
        done = None
        for r in range(1, 60):
            eng.step(r)
            if mon.observe(r, eng.state.best, eng.last_active):
                done = r
                break
        assert done is not None and mon.stabilized
