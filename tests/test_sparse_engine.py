"""Sparse-activity rounds: gating, equivalence, and quiet-round skipping.

The sparse frontier path must be *distribution-equivalent* to dense
rounds (same stabilization statistics, same elected leader, clean traces)
and must engage exactly under its advertised conditions — never when
faults, tags, staggered activation, or per-round instrumentation need
full-width rounds.  Quiet-round fast-forward must report bit-identical
round counts to the plain loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.blind_gossip import (
    BlindGossipBatched,
    BlindGossipVectorized,
    make_blind_gossip_nodes,
)
from repro.conformance import check_trace
from repro.core.batched import BatchedVectorizedEngine
from repro.core.engine import ReferenceEngine
from repro.core.monitor import all_leaders_are
from repro.core.payload import UIDSpace
from repro.core.vectorized import VectorizedEngine, _resolve_sparse_mode
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.harness.experiments import uid_keys_random


def _engine(n, seed, *, degree=4, sparse=None, collect_trace=False):
    g = families.random_regular(n, degree, seed=7)
    keys = uid_keys_random(n, 11)
    return VectorizedEngine(
        StaticDynamicGraph(g),
        BlindGossipVectorized(keys),
        seed=seed,
        sparse=sparse,
        collect_trace=collect_trace,
    )


class TestModeResolution:
    def test_explicit_arg_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE", "off")
        assert _resolve_sparse_mode("force") == "force"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE", "force")
        assert _resolve_sparse_mode(None) == "force"

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPARSE", raising=False)
        assert _resolve_sparse_mode(None) == "auto"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            _resolve_sparse_mode("banana")
        with pytest.raises(ValueError):
            _engine(16, 0, sparse="banana")


class TestGating:
    def test_off_never_builds_a_frontier(self):
        eng = _engine(32, 0, sparse="off")
        eng.run(5000)
        assert eng._undone_mask is None

    def test_force_builds_a_frontier(self):
        eng = _engine(32, 0, sparse="force")
        eng.run(5000)
        assert eng._undone_mask is not None

    def test_auto_stays_dense_below_min_n(self):
        eng = _engine(64, 0, sparse="auto")
        eng.run(5000)
        assert eng._undone_mask is None

    def test_instrumented_runs_stay_dense(self):
        """A per-round connection callback must see every connection,
        including passive done-done ones the frontier never simulates."""
        eng = _engine(32, 0, sparse="force")
        eng.on_connections = lambda r, winners, acceptors: None
        eng.run(5000)
        assert eng._undone_mask is None

    def test_staggered_activation_disables_sparse(self):
        g = families.random_regular(16, 4, seed=7)
        keys = uid_keys_random(16, 11)
        act = np.ones(16, dtype=np.int64)
        act[3] = 5
        eng = VectorizedEngine(
            StaticDynamicGraph(g),
            BlindGossipVectorized(keys),
            seed=0,
            activation_rounds=act,
            sparse="force",
        )
        assert not eng._sparse_ok

    def test_fault_plan_disables_sparse(self):
        from repro.faults import ConnectionDropModel, FaultPlan

        g = families.random_regular(16, 4, seed=7)
        keys = uid_keys_random(16, 11)
        eng = VectorizedEngine(
            StaticDynamicGraph(g),
            BlindGossipVectorized(keys),
            seed=0,
            fault_plan=FaultPlan(connection_drop=ConnectionDropModel(p=0.5)),
            sparse="force",
        )
        assert not eng._sparse_ok


class TestEquivalence:
    def test_force_elects_the_minimum_key(self):
        eng = _engine(48, 3, sparse="force")
        res = eng.run(5000)
        assert res.stabilized
        assert (eng.state.best == eng.state.target).all()

    def test_distribution_band_force_vs_off(self):
        """Sparse rounds are a different sampling of the same round
        distribution: mean stabilization over seeds stays in a tight
        band of the dense path's."""
        means = {}
        for mode in ("off", "force"):
            rounds = [
                _engine(48, s, sparse=mode).run(5000).rounds for s in range(30)
            ]
            means[mode] = float(np.mean(rounds))
        assert means["force"] <= 1.25 * means["off"]
        assert means["off"] <= 1.25 * means["force"]

    def test_traced_equals_untraced_under_force(self):
        for seed in range(3):
            a = _engine(32, seed, sparse="force", collect_trace=False)
            b = _engine(32, seed, sparse="force", collect_trace=True)
            ra, rb = a.run(5000), b.run(5000)
            assert (ra.stabilized, ra.rounds) == (rb.stabilized, rb.rounds)
            assert np.array_equal(a.state.best, b.state.best)
            assert rb.trace is not None

    def test_sparse_trace_passes_model_invariants(self):
        g = families.random_regular(32, 4, seed=7)
        keys = uid_keys_random(32, 11)
        eng = VectorizedEngine(
            StaticDynamicGraph(g),
            BlindGossipVectorized(keys),
            seed=2,
            sparse="force",
            collect_trace=True,
        )
        res = eng.run(5000)
        assert res.stabilized
        assert check_trace(res.trace, StaticDynamicGraph(g)) == []


class TestAutoEngagement:
    @pytest.mark.slow
    def test_auto_engages_at_large_n(self):
        eng = _engine(4096, 0, sparse="auto")
        res = eng.run(5000)
        assert res.stabilized
        assert eng._undone_mask is not None


class _NoQuiescence(BlindGossipVectorized):
    """Same algorithm, fast-forward declaration withdrawn."""

    quiescent_when_done = False


class TestQuietRoundFastForward:
    @pytest.mark.parametrize("check_every", [2, 4, 7])
    def test_reported_rounds_identical_to_plain_loop(self, check_every):
        g = families.random_regular(32, 4, seed=7)
        keys = uid_keys_random(32, 11)
        for seed in range(5):
            fast = VectorizedEngine(
                StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=seed
            ).run(5000, check_every=check_every)
            plain = VectorizedEngine(
                StaticDynamicGraph(g), _NoQuiescence(keys), seed=seed
            ).run(5000, check_every=check_every)
            assert (fast.stabilized, fast.rounds) == (plain.stabilized, plain.rounds)

    def test_reference_quiescent_stop_identical(self):
        g = families.random_regular(12, 3, seed=3)
        for seed in range(4):
            results = []
            for quiescent in (False, True):
                us = UIDSpace(12, seed=9)
                eng = ReferenceEngine(
                    StaticDynamicGraph(g), make_blind_gossip_nodes(us), seed=seed
                )
                res = eng.run(
                    3000,
                    all_leaders_are(us.min_uid()),
                    check_every=5,
                    quiescent_stop=quiescent,
                )
                results.append((res.stabilized, res.rounds))
            assert results[0] == results[1]


class TestBatchedSparse:
    def _engine(self, T, n, seed, *, sparse=None):
        g = families.random_regular(n, 4, seed=7)
        keys = uid_keys_random(n, 11)
        return BatchedVectorizedEngine(
            StaticDynamicGraph(g),
            BlindGossipBatched(keys),
            seeds=np.arange(seed, seed + T),
            sparse=sparse,
        )

    def test_force_elects_minimum_in_every_replica(self):
        eng = self._engine(4, 24, 0, sparse="force")
        res = eng.run(5000)
        assert res.stabilized.all()
        assert (eng.state.best == eng.state.target).all()

    def test_distribution_band_force_vs_off(self):
        means = {}
        for mode in ("off", "force"):
            res = self._engine(24, 24, 5, sparse=mode).run(5000)
            assert res.stabilized.all()
            means[mode] = float(np.mean(res.rounds))
        assert means["force"] <= 1.3 * means["off"]
        assert means["off"] <= 1.3 * means["force"]

    def test_force_builds_frontier_off_does_not(self):
        on = self._engine(2, 24, 0, sparse="force")
        on.run(5000)
        assert on._undone_fmask is not None
        off = self._engine(2, 24, 0, sparse="off")
        off.run(5000)
        assert off._undone_fmask is None
