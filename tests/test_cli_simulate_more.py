"""Additional CLI coverage: async simulate, new families, verify subcommand."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestSimulateAsync:
    def test_async_bit_convergence(self, capsys):
        code = main(
            [
                "simulate", "async_bit_convergence",
                "--family", "random_regular", "--params", "12", "3",
            ]
        )
        assert code == 0
        assert "stabilized" in capsys.readouterr().out

    def test_progress_sparkline_shown_for_observables(self, capsys):
        code = main(
            ["simulate", "blind_gossip", "--family", "clique", "--params", "12"]
        )
        assert code == 0
        assert "progress" in capsys.readouterr().out


class TestNewFamilies:
    @pytest.mark.parametrize(
        "family,params,expected_n",
        [
            ("wheel", ["10"], 10),
            ("torus", ["3", "4"], 12),
            ("caterpillar", ["3", "2"], 9),
            ("staircase_bipartite", ["5"], 10),
        ],
    )
    def test_graph_command(self, capsys, family, params, expected_n):
        assert main(["graph", family, *params]) == 0
        assert f"n          : {expected_n}" in capsys.readouterr().out


class TestEngineBackendFlag:
    def test_numpy_backend_accepted_and_reported(self, capsys):
        code = main(
            [
                "simulate", "blind_gossip",
                "--family", "random_regular", "--params", "16", "4",
                "--engine-backend", "numpy",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend    : numpy" in out

    def test_unavailable_backend_is_a_clean_error(self, capsys):
        from repro.util import csrops

        if "numba" in csrops.available_backends():
            pytest.skip("numba installed: the flag would succeed")
        code = main(
            [
                "simulate", "blind_gossip",
                "--family", "random_regular", "--params", "16", "4",
                "--engine-backend", "numba",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "numba" in err and "numpy" in err

    def test_unknown_backend_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate", "blind_gossip",
                    "--family", "clique", "--params", "8",
                    "--engine-backend", "cuda",
                ]
            )


class TestChunkNodesFlag:
    def test_chunked_engine_simulates(self, capsys):
        code = main(
            [
                "simulate", "blind_gossip",
                "--family", "random_regular", "--params", "64", "4",
                "--chunk-nodes", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stabilized" in out

    def test_chunk_nodes_must_be_positive(self, capsys):
        code = main(
            [
                "simulate", "blind_gossip",
                "--family", "clique", "--params", "8",
                "--chunk-nodes", "0",
            ]
        )
        assert code == 2
        assert "chunk-nodes" in capsys.readouterr().err

    def test_chunked_rejects_non_sparse_algorithms(self, capsys):
        code = main(
            [
                "simulate", "ppush",
                "--family", "random_regular", "--params", "16", "4",
                "--chunk-nodes", "8",
            ]
        )
        assert code == 2
        assert "chunk-nodes" in capsys.readouterr().err

    def test_chunked_rejects_fault_plans(self, capsys, tmp_path):
        import json

        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"connection_drop": {"p": 0.5}}))
        code = main(
            [
                "simulate", "blind_gossip",
                "--family", "random_regular", "--params", "16", "4",
                "--chunk-nodes", "8", "--fault-plan", str(plan),
            ]
        )
        assert code == 2
        assert "fault" in capsys.readouterr().err.lower()


class TestVerifySubcommand:
    def test_verify_passes_on_e1(self, capsys):
        code = main(["experiments", "verify", "E1", "--profile", "quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out and "checks passed" in out

    def test_verify_lowercase_id(self, capsys):
        assert main(["experiments", "verify", "e1"]) == 0
