"""Additional CLI coverage: async simulate, new families, verify subcommand."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestSimulateAsync:
    def test_async_bit_convergence(self, capsys):
        code = main(
            [
                "simulate", "async_bit_convergence",
                "--family", "random_regular", "--params", "12", "3",
            ]
        )
        assert code == 0
        assert "stabilized" in capsys.readouterr().out

    def test_progress_sparkline_shown_for_observables(self, capsys):
        code = main(
            ["simulate", "blind_gossip", "--family", "clique", "--params", "12"]
        )
        assert code == 0
        assert "progress" in capsys.readouterr().out


class TestNewFamilies:
    @pytest.mark.parametrize(
        "family,params,expected_n",
        [
            ("wheel", ["10"], 10),
            ("torus", ["3", "4"], 12),
            ("caterpillar", ["3", "2"], 9),
            ("staircase_bipartite", ["5"], 10),
        ],
    )
    def test_graph_command(self, capsys, family, params, expected_n):
        assert main(["graph", family, *params]) == 0
        assert f"n          : {expected_n}" in capsys.readouterr().out


class TestVerifySubcommand:
    def test_verify_passes_on_e1(self, capsys):
        code = main(["experiments", "verify", "E1", "--profile", "quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out and "checks passed" in out

    def test_verify_lowercase_id(self, capsys):
        assert main(["experiments", "verify", "e1"]) == 0
