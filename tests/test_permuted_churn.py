"""Permutation-native churn fast path: kernel, generators, engine caches.

The batched engine serves isomorphic churn (per-replica relabelings of a
shared base) without ever building a relabeled ``Graph`` or re-stacked
CSR: :func:`~repro.util.csrops.batched_permuted_pick` routes each
replica's pick through its ``(n,)`` relabel permutation against the one
base CSR.  The ground truth is the eager construction — relabel the base
per replica and pick on the relabeled CSR — so the oracle here compares
pick *supports and distributions* against exactly that.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.blind_gossip import BlindGossipBatched
from repro.core.batched import BatchedVectorizedEngine
from repro.graphs import families
from repro.graphs.adversary import BatchedPackingAdversary, PackingAdversary
from repro.graphs.dynamic import (
    PeriodicRelabelDynamicGraph,
    PermutedDynamicGraph,
    ResampleDynamicGraph,
    epoch_of_round,
)
from repro.harness.runner import trial_seeds_for
from repro.util.csrops import (
    batched_permuted_pick,
    batched_random_pick,
    invert_permutations,
    stack_csr,
)
from tests.test_csrops_oracle import reference_pick_support


class TestInvertPermutations:
    @given(st.integers(1, 5), st.integers(1, 12), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_inverse_property(self, T, n, seed):
        rng = np.random.default_rng(seed)
        perm = np.stack([rng.permutation(n) for _ in range(T)]).astype(np.int64)
        inv = invert_permutations(perm)
        rows = np.arange(n)[None, :]
        assert np.array_equal(np.take_along_axis(inv, perm, axis=1), np.broadcast_to(rows, perm.shape))
        assert np.array_equal(np.take_along_axis(perm, inv, axis=1), np.broadcast_to(rows, perm.shape))


@st.composite
def permuted_cases(draw):
    n = draw(st.integers(2, 8))
    T = draw(st.integers(1, 4))
    pool = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(pool), unique=True, min_size=1, max_size=len(pool))
    )
    from repro.graphs.static import Graph

    base = Graph(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    perm = np.stack([rng.permutation(n) for _ in range(T)]).astype(np.int64)
    rows = st.lists(st.booleans(), min_size=n, max_size=n)
    active = np.asarray(draw(st.lists(rows, min_size=T, max_size=T)), dtype=bool)
    nmask = draw(
        st.one_of(
            st.none(),
            st.lists(rows, min_size=T, max_size=T).map(
                lambda m: np.asarray(m, dtype=bool)
            ),
        )
    )
    return base, perm, active, nmask


def eager_support(base, perm, active, nmask):
    """Per-(replica, current-label vertex) pick supports via eager relabeling."""
    T = perm.shape[0]
    return [
        reference_pick_support(
            *(lambda g: (g.indptr, g.indices))(base.relabel(perm[t])),
            active[t],
            None if nmask is None else nmask[t],
            None,
        )
        for t in range(T)
    ]


def permuted_pick_grid(base, perm, active, nmask, rng):
    """Run the permuted kernel; scatter the compact pairs to a (T, n) grid."""
    T, n = active.shape
    sflat, tflat = batched_permuted_pick(
        base.indptr, base.indices, rng, perm, active, neighbor_mask=nmask
    )
    grid = np.full(T * n, -1, dtype=np.int64)
    grid[sflat] = tflat % n
    return grid.reshape(T, n)


class TestPermutedPickAgainstEagerRelabel:
    @given(permuted_cases(), st.integers(0, 2**31 - 1))
    @settings(max_examples=120, deadline=None)
    def test_support_matches_eagerly_relabeled_graph(self, case, seed):
        base, perm, active, nmask = case
        supports = eager_support(base, perm, active, nmask)
        rng = np.random.default_rng(seed)
        T, n = active.shape
        for _ in range(3):
            grid = permuted_pick_grid(base, perm, active, nmask, rng)
            for t in range(T):
                for u in range(n):
                    assert int(grid[t, u]) in supports[t][u], (t, u)

    @given(permuted_cases(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_every_support_element_reachable(self, case, seed):
        base, perm, active, nmask = case
        supports = eager_support(base, perm, active, nmask)
        rng = np.random.default_rng(seed)
        T, n = active.shape
        seen = [[set() for _ in range(n)] for _ in range(T)]
        # Max degree 7; 200 draws make a missed option vanishingly unlikely.
        for _ in range(200):
            grid = permuted_pick_grid(base, perm, active, nmask, rng)
            for t in range(T):
                for u in range(n):
                    seen[t][u].add(int(grid[t, u]))
        for t in range(T):
            for u in range(n):
                assert seen[t][u] == supports[t][u]

    def test_uniform_over_relabeled_neighbors(self):
        """Pick frequencies match the uniform law of the relabeled graph."""
        base = families.double_star(4)
        rng = np.random.default_rng(0)
        perm = np.stack([rng.permutation(base.n) for _ in range(3)]).astype(np.int64)
        active = np.ones((3, base.n), dtype=bool)
        draws = 4000
        counts: dict[tuple[int, int, int], int] = {}
        for _ in range(draws):
            grid = permuted_pick_grid(base, perm, active, None, rng)
            for t in range(3):
                for u in range(base.n):
                    counts[(t, u, int(grid[t, u]))] = (
                        counts.get((t, u, int(grid[t, u])), 0) + 1
                    )
        for t in range(3):
            g = base.relabel(perm[t])
            for u in range(g.n):
                nbrs = g.neighbors(u)
                p = 1.0 / len(nbrs)
                sigma = (draws * p * (1 - p)) ** 0.5
                for v in nbrs:
                    assert abs(counts.get((t, u, int(v)), 0) - draws * p) <= 6 * sigma

    def test_identity_permutation_matches_batched_pick(self):
        base = families.random_regular(16, 4, seed=0)
        T = 4
        perm = np.tile(np.arange(base.n, dtype=np.int64), (T, 1))
        active = np.random.default_rng(1).random((T, base.n)) < 0.7
        nmask = np.random.default_rng(2).random((T, base.n)) < 0.7
        s1, t1 = batched_permuted_pick(
            base.indptr, base.indices, np.random.default_rng(7), perm, active,
            neighbor_mask=nmask,
        )
        picks = batched_random_pick(
            base.indptr, base.indices, np.random.default_rng(7), active,
            neighbor_mask=nmask,
        )
        pf = picks.reshape(-1)
        s2 = np.flatnonzero(pf >= 0)
        t2 = (s2 - s2 % base.n) + pf[s2]
        assert np.array_equal(s1, s2) and np.array_equal(t1, t2)

    def test_rejects_bad_shapes(self):
        base = families.ring(6)
        rng = np.random.default_rng(0)
        active = np.ones((2, 6), dtype=bool)
        with pytest.raises(ValueError):
            batched_permuted_pick(
                base.indptr, base.indices, rng,
                np.tile(np.arange(5, dtype=np.int64), (2, 1)), active,
            )
        with pytest.raises(TypeError):
            batched_permuted_pick(
                base.indptr, base.indices, rng,
                np.tile(np.arange(6, dtype=np.int64), (2, 1)),
                active.astype(np.int64),
            )


class TestPermutedDynamicGraphContract:
    def test_relabel_generator_is_permuted(self):
        dg = PeriodicRelabelDynamicGraph(families.ring(8), tau=2, seed=3)
        assert isinstance(dg, PermutedDynamicGraph)
        assert dg.base is not None

    @pytest.mark.parametrize("tau", [1, 2, 5])
    def test_graph_at_equals_relabel_of_permutation_at(self, tau):
        base = families.double_star(4)
        dg = PeriodicRelabelDynamicGraph(base, tau=tau, seed=11)
        for r in (1, 2, 3, 7, 40, 2000):
            assert dg.graph_at(r) == base.relabel(dg.permutation_at(r))

    def test_permutation_stable_within_epoch(self):
        dg = PeriodicRelabelDynamicGraph(families.ring(8), tau=3, seed=0)
        for e in range(4):
            r0 = 1 + 3 * e
            assert np.array_equal(dg.permutation_at(r0), dg.permutation_at(r0 + 2))

    def test_permutations_deterministic_across_instances(self):
        base = families.ring(8)
        a = PeriodicRelabelDynamicGraph(base, tau=1, seed=9)
        b = PeriodicRelabelDynamicGraph(base, tau=1, seed=9)
        for r in (1, 5, 100, 10_000):
            assert np.array_equal(a.permutation_at(r), b.permutation_at(r))

    def test_block_boundaries_consistent_out_of_order(self):
        """Crossing permutation-block boundaries in any order is consistent."""
        base = families.ring(4)
        dg = PeriodicRelabelDynamicGraph(base, tau=1, seed=2)
        span = dg._block_len * 3
        forward = [dg.permutation_at(r).copy() for r in range(1, span + 1)]
        dg2 = PeriodicRelabelDynamicGraph(base, tau=1, seed=2)
        for r in range(span, 0, -1):
            assert np.array_equal(dg2.permutation_at(r), forward[r - 1])


class TestBatchedPackingAdversary:
    def test_matches_per_replica_adversaries(self):
        """Graph-for-graph identical to T independent PackingAdversary runs."""
        base = families.double_star(6)
        T, tau = 4, 2
        batched = BatchedPackingAdversary(base, tau=tau, replicas=T)
        singles = [PackingAdversary(base, tau=tau) for _ in range(T)]
        rng = np.random.default_rng(0)
        for r in range(1, 13):
            obs = rng.random((T, base.n)) < 0.4
            batched.observe(r, obs)
            perms = batched.permutations_at(r)
            for t, adv in enumerate(singles):
                adv.observe(r, obs[t])
                assert adv.graph_at(r) == base.relabel(perms[t])

    def test_none_observation_keeps_permutations(self):
        base = families.double_star(4)
        adv = BatchedPackingAdversary(base, tau=1, replicas=2)
        adv.observe(1, np.ones((2, base.n), dtype=bool))
        before = adv.permutations_at(1)
        adv.observe(2, None)
        assert adv.permutations_at(2) is before

    def test_emits_new_array_object_on_change(self):
        """The engine detects changes by identity, so ``observe`` must not
        mutate the previously returned array in place."""
        base = families.double_star(4)
        adv = BatchedPackingAdversary(base, tau=1, replicas=2)
        obs = np.zeros((2, base.n), dtype=bool)
        obs[0, 3] = True
        adv.observe(1, obs)
        first = adv.permutations_at(1)
        snapshot = first.copy()
        obs2 = obs.copy()
        obs2[1, 5] = True
        adv.observe(2, obs2)
        assert adv.permutations_at(2) is not first
        assert np.array_equal(first, snapshot)

    def test_forward_only_and_shape_validation(self):
        base = families.double_star(4)
        adv = BatchedPackingAdversary(base, tau=1, replicas=2)
        adv.observe(3, None)
        with pytest.raises(ValueError):
            adv.observe(3, None)
        with pytest.raises(ValueError):
            adv.observe(2, None)
        adv2 = BatchedPackingAdversary(base, tau=1, replicas=2)
        with pytest.raises(ValueError):
            adv2.observe(1, np.zeros(base.n, dtype=bool))

    def test_replica_count_mismatch_rejected_by_engine(self):
        base = families.double_star(4)
        adv = BatchedPackingAdversary(base, tau=1, replicas=3)
        keys = np.random.default_rng(0).permutation(base.n).astype(np.int64)
        with pytest.raises(ValueError):
            BatchedVectorizedEngine(adv, BlindGossipBatched(keys), seeds=[1, 2])


class TestCacheEviction:
    def test_relabel_cache_retains_newest(self):
        base = families.ring(6)
        dg = PeriodicRelabelDynamicGraph(base, tau=1, seed=0)
        dg._cache_limit = 4
        for r in range(1, 5):
            dg.graph_at(r)
        assert sorted(dg._cache) == [0, 1, 2, 3]
        g4 = dg.graph_at(5)  # insertion at the limit evicts all but newest
        assert sorted(dg._cache) == [3, 4]
        # The retained entries are served from cache, not rebuilt.
        assert dg.graph_at(4) is dg._cache[3] and dg.graph_at(5) is g4

    def test_resample_cache_retains_newest(self):
        dg = ResampleDynamicGraph(
            lambda s: families.random_regular(12, 3, seed=s), tau=1, seed=0
        )
        dg._cache_limit = 4
        for r in range(1, 5):
            dg.graph_at(r)
        g5 = dg.graph_at(5)
        assert sorted(dg._cache) == [3, 4]
        assert dg.graph_at(5) is g5

    def test_engine_stack_survives_generator_eviction(self):
        """The stacked-CSR cache must keep working when the dynamic graphs
        evict their own epoch caches between rounds (the identity-keyed
        hazard: a dead graph's id must never alias a live cache entry)."""
        base_a = families.double_star(4)
        base_b = families.double_star(4)  # distinct object: stacked path
        keys = np.random.default_rng(0).permutation(base_a.n).astype(np.int64)
        seeds = trial_seeds_for(0, 2)
        dgs = [
            PeriodicRelabelDynamicGraph(base_a, 1, seed=1),
            PeriodicRelabelDynamicGraph(base_b, 1, seed=2),
        ]
        for dg in dgs:
            dg._cache_limit = 2  # evict aggressively
        eng = BatchedVectorizedEngine(dgs, BlindGossipBatched(keys), seeds=seeds)
        assert eng._perm_base is None  # genuinely exercises the stacked path
        for r in range(1, 40):
            eng.step(r)
            indptr_s, indices_s = eng._stack
            fresh_ip, fresh_ix = stack_csr(
                [(dg.graph_at(r).indptr, dg.graph_at(r).indices) for dg in dgs],
                base_a.n,
            )
            assert np.array_equal(indptr_s, fresh_ip)
            assert np.array_equal(indices_s, fresh_ix)


class TestIncrementalStacking:
    def _engine(self, dgs, n):
        keys = np.random.default_rng(0).permutation(n).astype(np.int64)
        return BatchedVectorizedEngine(
            dgs, BlindGossipBatched(keys), seeds=trial_seeds_for(0, len(dgs))
        )

    def test_patch_equals_fresh_stack(self):
        """In-place segment patches reproduce a from-scratch stack exactly."""
        base_a = families.random_regular(12, 4, seed=0)
        base_b = families.random_regular(12, 4, seed=1)
        dgs = [
            PeriodicRelabelDynamicGraph(base_a, 2, seed=1),
            PeriodicRelabelDynamicGraph(base_b, 3, seed=2),  # different cadence
        ]
        eng = self._engine(dgs, 12)
        assert eng._perm_base is None
        buffers = None
        for r in range(1, 20):
            graphs = [dg.graph_at(r) for dg in dgs]
            indptr_s, indices_s = eng._stacked_csr(graphs)
            if buffers is None:
                buffers = (indptr_s, indices_s)
            else:
                # Isomorphic churn keeps nnz constant: always patched in place.
                assert indptr_s is buffers[0] and indices_s is buffers[1]
            fresh_ip, fresh_ix = stack_csr(
                [(g.indptr, g.indices) for g in graphs], 12
            )
            assert np.array_equal(indptr_s, fresh_ip)
            assert np.array_equal(indices_s, fresh_ix)

    def test_unchanged_graphs_reuse_stack(self):
        base = families.random_regular(12, 4, seed=0)
        dgs = [
            ResampleDynamicGraph(
                lambda s: families.random_regular(12, 4, seed=s), tau=4, seed=t
            )
            for t in range(2)
        ]
        eng = self._engine(dgs, 12)
        g1 = [dg.graph_at(1) for dg in dgs]
        first = eng._stacked_csr(g1)
        assert eng._stacked_csr([dg.graph_at(2) for dg in dgs]) is first

    def test_nnz_change_forces_full_restack(self):
        """A segment whose edge count changes cannot be patched in place."""
        n = 8
        dgs = [
            ResampleDynamicGraph(
                # Epoch parity flips the edge count of replica 0.
                lambda s: families.ring(n) if s % 2 else families.clique(n),
                tau=1,
                seed=t,
            )
            for t in range(2)
        ]
        eng = self._engine(dgs, n)
        changed = False
        for r in range(1, 10):
            graphs = [dg.graph_at(r) for dg in dgs]
            old = eng._stack
            indptr_s, indices_s = eng._stacked_csr(graphs)
            fresh_ip, fresh_ix = stack_csr(
                [(g.indptr, g.indices) for g in graphs], n
            )
            assert np.array_equal(indptr_s, fresh_ip)
            assert np.array_equal(indices_s, fresh_ix)
            if old is not None and old[1].shape != indices_s.shape:
                changed = True
        assert changed  # the workload really did change edge counts


class TestEnginePathDispatch:
    def _keys(self, n):
        return np.random.default_rng(0).permutation(n).astype(np.int64)

    def test_shared_base_list_takes_permuted_path(self):
        base = families.double_star(4)
        dgs = [PeriodicRelabelDynamicGraph(base, 1, seed=t) for t in range(3)]
        eng = BatchedVectorizedEngine(
            dgs, BlindGossipBatched(self._keys(base.n)), seeds=trial_seeds_for(0, 3)
        )
        assert eng._perm_base is base
        res = eng.run(100_000)
        assert res.stabilized.all()
        assert eng._stack is None  # no stacked CSR was ever built

    def test_distinct_bases_fall_back_to_stacking(self):
        a, b = families.double_star(4), families.double_star(4)
        dgs = [
            PeriodicRelabelDynamicGraph(a, 1, seed=0),
            PeriodicRelabelDynamicGraph(b, 1, seed=1),
        ]
        eng = BatchedVectorizedEngine(
            dgs, BlindGossipBatched(self._keys(a.n)), seeds=trial_seeds_for(0, 2)
        )
        assert eng._perm_base is None
        assert eng.run(100_000).stabilized.all()

    def test_mixed_tau_falls_back_to_stacking(self):
        base = families.double_star(4)
        dgs = [
            PeriodicRelabelDynamicGraph(base, 1, seed=0),
            PeriodicRelabelDynamicGraph(base, 2, seed=1),
        ]
        eng = BatchedVectorizedEngine(
            dgs, BlindGossipBatched(self._keys(base.n)), seeds=trial_seeds_for(0, 2)
        )
        assert eng._perm_base is None
        assert eng.run(100_000).stabilized.all()

    def test_batched_adversary_completes(self):
        base = families.double_star(8)
        from repro.algorithms.push_pull import PushPullBatched

        adv = BatchedPackingAdversary(base, tau=1, replicas=4)
        eng = BatchedVectorizedEngine(
            adv, PushPullBatched(np.array([2])), seeds=trial_seeds_for(0, 4)
        )
        res = eng.run(500_000)
        assert res.stabilized.all()
