"""Tests for b=0 PUSH-PULL rumor spreading (Corollary VI.6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.push_pull import (
    PushPullNode,
    PushPullVectorized,
    make_push_pull_nodes,
)
from repro.core.engine import ReferenceEngine
from repro.core.monitor import rumor_complete
from repro.core.payload import Message, UID, UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph, StaticDynamicGraph


class TestNodeProtocol:
    def test_informed_flag(self):
        assert PushPullNode(0, UID(1), informed=True).informed
        assert not PushPullNode(0, UID(1), informed=False).informed

    def test_pull_informs(self):
        node = PushPullNode(0, UID(1), informed=False)
        node.deliver(1, Message(data=True))
        assert node.informed

    def test_uninformed_message_harmless(self):
        node = PushPullNode(0, UID(1), informed=False)
        node.deliver(1, Message(data=False))
        assert not node.informed

    def test_knowledge_never_lost(self):
        node = PushPullNode(0, UID(1), informed=True)
        node.deliver(1, Message(data=False))
        assert node.informed

    def test_factory_sources(self):
        us = UIDSpace(5, seed=0)
        nodes = make_push_pull_nodes(us, sources={2, 4})
        assert [n.informed for n in nodes] == [False, False, True, False, True]


class TestReferenceConvergence:
    @pytest.mark.parametrize(
        "graph",
        [families.clique(12), families.path(10), families.double_star(4)],
        ids=["clique", "path", "double_star"],
    )
    def test_rumor_reaches_all(self, graph):
        us = UIDSpace(graph.n, seed=0)
        nodes = make_push_pull_nodes(us, sources={0})
        eng = ReferenceEngine(StaticDynamicGraph(graph), nodes, seed=1)
        res = eng.run(100_000, rumor_complete)
        assert res.stabilized


class TestVectorized:
    def test_completes_and_monotone(self):
        n = 24
        algo = PushPullVectorized(np.array([0]))
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 3, seed=0)), algo, seed=1
        )
        prev = 1
        for r in range(1, 20_000):
            eng.step(r)
            cur = algo.informed_count(eng.state)
            assert cur >= prev
            prev = cur
            if cur == n:
                break
        assert prev == n

    def test_multiple_sources(self):
        algo = PushPullVectorized(np.array([0, 5, 9]))
        eng = VectorizedEngine(
            StaticDynamicGraph(families.ring(10)), algo, seed=1
        )
        assert algo.informed_count(eng.state) == 3
        res = eng.run(50_000)
        assert res.stabilized

    def test_under_churn(self):
        base = families.double_star(6)
        algo = PushPullVectorized(np.array([2]))
        eng = VectorizedEngine(
            PeriodicRelabelDynamicGraph(base, 1, seed=2), algo, seed=1
        )
        assert eng.run(200_000).stabilized

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            PushPullVectorized(np.array([], dtype=np.int64))


class TestDirectionRestriction:
    """The A3 ablation: PUSH-only / PULL-only semantics."""

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            PushPullVectorized(np.array([0]), direction="sideways")
        from repro.core.payload import UID

        with pytest.raises(ValueError):
            PushPullNode(0, UID(1), informed=True, direction="sideways")

    def test_push_only_exchange_semantics(self):
        algo = PushPullVectorized(np.array([0]), direction="push")
        state = algo.init_state(4, np.random.default_rng(0))
        # Connection (proposer=1 uninformed, acceptor=0 informed): under
        # push-only the informed acceptor must NOT inform its proposer.
        algo.exchange(state, np.array([1]), np.array([0]))
        assert not state.informed[1]
        # Connection (proposer=0 informed, acceptor=2): push works.
        algo.exchange(state, np.array([0]), np.array([2]))
        assert state.informed[2]

    def test_pull_only_exchange_semantics(self):
        algo = PushPullVectorized(np.array([0]), direction="pull")
        state = algo.init_state(4, np.random.default_rng(0))
        # (proposer=0 informed, acceptor=2): push forbidden.
        algo.exchange(state, np.array([0]), np.array([2]))
        assert not state.informed[2]
        # (proposer=1, acceptor=0 informed): pull works.
        algo.exchange(state, np.array([1]), np.array([0]))
        assert state.informed[1]

    def test_node_push_only_rejects_pull(self):
        from repro.core.payload import Message, UID

        node = PushPullNode(0, UID(1), informed=False, direction="push")
        node._proposed_to = 5  # we proposed to 5; its reply is a PULL
        node.deliver(5, Message(data=True))
        assert not node.informed
        node._proposed_to = None  # 7 proposed to us; its rumor is a PUSH
        node.deliver(7, Message(data=True))
        assert node.informed

    def test_node_pull_only_rejects_push(self):
        from repro.core.payload import Message, UID

        node = PushPullNode(0, UID(1), informed=False, direction="pull")
        node._proposed_to = None
        node.deliver(7, Message(data=True))  # incoming push: rejected
        assert not node.informed
        node._proposed_to = 5
        node.deliver(5, Message(data=True))  # pull from our acceptor: ok
        assert node.informed

    @pytest.mark.parametrize("direction", ["push", "pull"])
    def test_single_direction_still_completes(self, direction):
        g = families.random_regular(16, 4, seed=0)
        algo = PushPullVectorized(np.array([0]), direction=direction)
        eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=1)
        assert eng.run(200_000).stabilized

    def test_both_dominates_single_directions(self):
        g = families.double_star(12)
        medians = {}
        for direction in ("both", "push", "pull"):
            rounds = [
                VectorizedEngine(
                    StaticDynamicGraph(g),
                    PushPullVectorized(np.array([2]), direction=direction),
                    seed=t,
                ).run(10**6).rounds
                for t in range(7)
            ]
            medians[direction] = np.median(rounds)
        assert medians["both"] <= medians["push"]
        assert medians["both"] <= medians["pull"]
