"""Tests for blind gossip leader election (Section VI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.blind_gossip import (
    BlindGossipNode,
    BlindGossipVectorized,
    make_blind_gossip_nodes,
)
from repro.core.engine import ReferenceEngine
from repro.core.monitor import all_leaders_are
from repro.core.payload import Message, UID, UIDSpace
from repro.core.protocol import RoundView
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph, StaticDynamicGraph
from repro.harness.experiments import uid_keys_random


def view(neighbors, tags=None, rng=None, local_round=1):
    nb = np.asarray(neighbors, dtype=np.int64)
    return RoundView(
        local_round=local_round,
        neighbors=nb,
        neighbor_tags=np.zeros(nb.size, dtype=np.int64) if tags is None else np.asarray(tags),
        rng=rng or np.random.default_rng(0),
    )


class TestNodeProtocol:
    def test_initial_leader_is_self(self):
        node = BlindGossipNode(0, UID(42))
        assert node.leader == UID(42)

    def test_keeps_minimum(self):
        node = BlindGossipNode(0, UID(42))
        node.deliver(1, Message(data=UID(7)))
        assert node.leader == UID(7)
        node.deliver(2, Message(data=UID(99)))
        assert node.leader == UID(7)

    def test_composes_current_best(self):
        node = BlindGossipNode(0, UID(42))
        node.deliver(1, Message(data=UID(7)))
        assert node.compose(3).data == UID(7)

    def test_decide_coin_flip_rates(self):
        node = BlindGossipNode(0, UID(1))
        rng = np.random.default_rng(0)
        sends = sum(
            node.decide(view([1, 2, 3], rng=rng)) is not None for _ in range(2000)
        )
        assert 0.4 < sends / 2000 < 0.6

    def test_decide_uniform_over_neighbors(self):
        node = BlindGossipNode(0, UID(1))
        rng = np.random.default_rng(1)
        counts = {1: 0, 2: 0, 3: 0, 4: 0}
        total = 0
        for _ in range(4000):
            t = node.decide(view([1, 2, 3, 4], rng=rng))
            if t is not None:
                counts[t] += 1
                total += 1
        for c in counts.values():
            assert abs(c / total - 0.25) < 0.05

    def test_isolated_node_listens(self):
        node = BlindGossipNode(0, UID(1))
        assert node.decide(view([])) is None

    def test_tag_length_zero(self):
        assert BlindGossipNode.tag_length == 0


class TestReferenceConvergence:
    @pytest.mark.parametrize(
        "graph",
        [
            families.clique(12),
            families.ring(10),
            families.star(10),
            families.double_star(4),
            families.random_regular(12, 3, seed=1),
        ],
        ids=["clique", "ring", "star", "double_star", "regular"],
    )
    def test_elects_min_uid(self, graph):
        us = UIDSpace(graph.n, seed=3)
        nodes = make_blind_gossip_nodes(us)
        eng = ReferenceEngine(StaticDynamicGraph(graph), nodes, seed=1)
        res = eng.run(50_000, all_leaders_are(us.min_uid()))
        assert res.stabilized

    def test_converges_under_tau1_churn(self):
        base = families.double_star(4)
        us = UIDSpace(base.n, seed=3)
        nodes = make_blind_gossip_nodes(us)
        eng = ReferenceEngine(
            PeriodicRelabelDynamicGraph(base, 1, seed=7), nodes, seed=1
        )
        res = eng.run(100_000, all_leaders_are(us.min_uid()))
        assert res.stabilized


class TestVectorized:
    def test_elects_min_key(self):
        n = 32
        keys = uid_keys_random(n, 5)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=2)),
            BlindGossipVectorized(keys),
            seed=0,
        )
        res = eng.run(100_000)
        assert res.stabilized
        assert (eng.algo.leaders(eng.state) == keys.min()).all()

    def test_convergence_is_absorbing(self):
        n = 16
        keys = uid_keys_random(n, 5)
        algo = BlindGossipVectorized(keys)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.clique(n)), algo, seed=0
        )
        res = eng.run(100_000)
        assert res.stabilized
        r0 = res.rounds
        for extra in range(20):  # keep stepping: state must not regress
            eng.step(r0 + 1 + extra)
            assert algo.converged(eng.state)

    def test_best_only_decreases(self):
        n = 16
        keys = uid_keys_random(n, 5)
        algo = BlindGossipVectorized(keys)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.ring(n)), algo, seed=0
        )
        prev = eng.state.best.copy()
        for r in range(1, 200):
            eng.step(r)
            assert (eng.state.best <= prev).all()
            prev = eng.state.best.copy()

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            BlindGossipVectorized(np.array([1, 1, 2]))

    def test_key_count_checked(self):
        algo = BlindGossipVectorized(np.array([1, 2, 3]))
        eng_graph = StaticDynamicGraph(families.ring(4))
        with pytest.raises(ValueError):
            VectorizedEngine(eng_graph, algo, seed=0)


class TestLowerBoundShape:
    @pytest.mark.slow
    def test_line_of_stars_slower_than_clique(self):
        """The Section VI construction is dramatically slower than a
        well-connected graph of the same size."""
        from repro.harness.experiments import uid_keys_with_min_at

        s = 4
        g = families.line_of_stars(s, s)  # n = 20
        keys = uid_keys_with_min_at(g.n, 0, 1)
        slow = np.median(
            [
                VectorizedEngine(
                    StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=t
                ).run(10**6).rounds
                for t in range(5)
            ]
        )
        clique = families.clique(g.n)
        fast = np.median(
            [
                VectorizedEngine(
                    StaticDynamicGraph(clique), BlindGossipVectorized(keys), seed=t
                ).run(10**6).rounds
                for t in range(5)
            ]
        )
        assert slow > 3 * fast
