"""Tests for resumable campaigns: checkpoint/resume, kill-resume
determinism, cell timeouts, and checkpoint quarantine.

The kill-resume tests assert the ISSUE's core guarantee: SIGKILLing a
campaign at an arbitrary point and re-running with ``resume`` produces
tables bit-identical (rendered text equality) to an uninterrupted run —
every cell is deterministically seeded, so identity of the *cell set*
implies identity of the *tables*.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.campaign import (
    CampaignConfig,
    checkpoint_path,
    render_campaign_text,
    run_campaign,
)
from repro.harness.experiments import EXPERIMENTS, Experiment, registry_order
from repro.harness.persistence import load_document
from repro.harness.tables import Table

# Cheap registry cells (fractions of a second each at the quick profile).
CELLS = ("E1", "A3")
# Shrunk-down kwargs so campaign tests stay fast.
OVERRIDES = {"E1": {"n_small": 6, "random_graphs": 1}}


def small_config(tmp_path, **kw) -> CampaignConfig:
    kw.setdefault("checkpoint_dir", tmp_path / "campaign")
    kw.setdefault("profile", "quick")
    kw.setdefault("exp_ids", CELLS)
    kw.setdefault("overrides", OVERRIDES)
    kw.setdefault("backoff_base", 0.0)
    return CampaignConfig(**kw)


def tables_of(directory, profile="quick", exp_ids=CELLS) -> dict[str, str]:
    return {
        exp_id: load_document(checkpoint_path(directory, exp_id, profile)).table.render()
        for exp_id in exp_ids
    }


class TestRegistryOrder:
    def test_e_series_first(self):
        order = registry_order()
        assert order[0] == "E1"
        assert set(order) == set(EXPERIMENTS)
        e_ids = [i for i in order if i.startswith("E")]
        assert e_ids == sorted(e_ids, key=lambda k: (len(k), k))

    def test_subset_keeps_canonical_order(self):
        assert registry_order(["A3", "E13", "E2"]) == ["E2", "E13", "A3"]

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            registry_order(["E1", "NOPE"])


class TestFreshCampaign:
    def test_completes_checkpoints_and_verifies(self, tmp_path):
        config = small_config(tmp_path)
        report = run_campaign(config)
        assert report.ok
        assert [c.exp_id for c in report.cells] == list(CELLS)
        for cell in report.cells:
            assert cell.status == "completed"
            assert cell.checks_passed == cell.checks_total
            assert checkpoint_path(config.checkpoint_dir, cell.exp_id, "quick").exists()

    def test_render_matches_reproduce_paper_format(self, tmp_path):
        config = small_config(tmp_path)
        run_campaign(config)
        text = render_campaign_text(config.checkpoint_dir, "quick", CELLS)
        assert text.startswith("\n### E1 — ")
        assert "  [quick]\n" in text
        assert "(completed in " in text
        assert text.endswith("s)\n")

    def test_failed_cell_recorded_campaign_continues(self, tmp_path):
        config = small_config(
            tmp_path,
            overrides={"E1": {"bogus_kwarg": 1}},
            max_retries=0,
        )
        report = run_campaign(config)
        assert not report.ok
        by_id = {c.exp_id: c for c in report.cells}
        assert by_id["E1"].status == "failed"
        assert "bogus_kwarg" in by_id["E1"].error
        assert by_id["A3"].status == "completed"  # later cells still ran
        assert any(e.kind == "error" for e in report.failures)


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        config = small_config(tmp_path)
        first = run_campaign(config)
        resumed = run_campaign(small_config(tmp_path, resume=True))
        assert resumed.ok
        assert all(c.status == "resumed" for c in resumed.cells)
        assert tables_of(config.checkpoint_dir) == tables_of(config.checkpoint_dir)
        assert first.ok

    def test_resume_runs_only_missing_cells(self, tmp_path):
        config = small_config(tmp_path)
        run_campaign(config)
        clean = tables_of(config.checkpoint_dir)
        checkpoint_path(config.checkpoint_dir, "A3", "quick").unlink()
        resumed = run_campaign(small_config(tmp_path, resume=True))
        statuses = {c.exp_id: c.status for c in resumed.cells}
        assert statuses == {"E1": "resumed", "A3": "completed"}
        assert tables_of(config.checkpoint_dir) == clean  # bit-identical

    def test_truncated_checkpoint_quarantined_and_rerun(self, tmp_path):
        config = small_config(tmp_path)
        run_campaign(config)
        clean = tables_of(config.checkpoint_dir)
        path = checkpoint_path(config.checkpoint_dir, "E1", "quick")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # crash mid-write
        resumed = run_campaign(small_config(tmp_path, resume=True))
        assert resumed.ok
        statuses = {c.exp_id: c.status for c in resumed.cells}
        assert statuses == {"E1": "completed", "A3": "resumed"}
        assert (path.parent / f"{path.name}.quarantined").exists()
        assert tables_of(config.checkpoint_dir) == clean  # bit-identical

    def test_wrong_profile_checkpoint_quarantined(self, tmp_path):
        config = small_config(tmp_path)
        run_campaign(config)
        path = checkpoint_path(config.checkpoint_dir, "E1", "quick")
        doc = json.loads(path.read_text())
        doc["exp_id"] = "E2"  # wrong cell in the right filename
        path.write_text(json.dumps(doc))
        resumed = run_campaign(small_config(tmp_path, resume=True))
        assert resumed.ok
        assert {c.exp_id: c.status for c in resumed.cells} == {
            "E1": "completed",
            "A3": "resumed",
        }


def _slow_then_fast(marker: str = "", delay: float = 30.0, always: bool = False) -> Table:
    """A registrable cell that hangs on its first execution only (or on
    every execution with ``always=True``)."""
    path = Path(marker)
    if always or not path.exists():
        if not always:
            path.write_text("x")
        time.sleep(delay)
    table = Table(title="Z1: deterministic probe", columns=["k", "v"])
    table.add_row(1, 42)
    return table


@pytest.fixture
def probe_experiment(tmp_path):
    marker = tmp_path / "slow-once"
    EXPERIMENTS["Z1"] = Experiment(
        "Z1", "probe: heals after one hung run", _slow_then_fast,
        quick=dict(marker=str(marker)),
    )
    try:
        yield "Z1"
    finally:
        del EXPERIMENTS["Z1"]


class TestTimeouts:
    def test_hung_cell_killed_retried_and_resumable(self, tmp_path, probe_experiment):
        """A cell that sleeps past its ceiling is killed in its forked
        child, retried (now healed), checkpointed — and a follow-up
        resume run replays it bit-identically."""
        config = small_config(
            tmp_path,
            exp_ids=("E1", "Z1"),
            timeout_per_experiment=1.0,
            max_retries=1,
        )
        assert config.isolate_cells
        report = run_campaign(config)
        assert report.ok
        by_id = {c.exp_id: c for c in report.cells}
        assert by_id["Z1"].status == "completed"
        assert by_id["Z1"].attempts == 2
        assert any(e.kind == "timeout" for e in report.failures)
        clean = tables_of(config.checkpoint_dir, exp_ids=("E1", "Z1"))
        resumed = run_campaign(
            small_config(
                tmp_path, exp_ids=("E1", "Z1"), resume=True,
                timeout_per_experiment=1.0, max_retries=1,
            )
        )
        assert resumed.ok
        assert all(c.status == "resumed" for c in resumed.cells)
        assert tables_of(config.checkpoint_dir, exp_ids=("E1", "Z1")) == clean

    def test_permanently_hung_cell_fails_within_budget(self, tmp_path, probe_experiment):
        config = small_config(
            tmp_path,
            exp_ids=("Z1",),
            overrides={"Z1": {"always": True}},  # never heals
            timeout_per_experiment=0.5,
            max_retries=0,
        )
        report = run_campaign(config)
        assert not report.ok
        assert report.cells[0].status == "failed"
        assert "timeout" in report.cells[0].error


class TestKillResume:
    def _spawn_campaign(self, directory, resume=False):
        cmd = [
            sys.executable, "-m", "repro", "experiments", "run-all",
            "--only", "E1,A3,E13", "--checkpoint-dir", str(directory),
            "--backoff-base", "0",
        ] + (["--resume"] if resume else [])
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        return subprocess.Popen(
            cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
        )

    def test_sigkilled_campaign_resumes_bit_identical(self, tmp_path):
        """SIGKILL a real `repro experiments run-all` subprocess once its
        first checkpoint lands, resume it, and diff every table against
        an uninterrupted campaign."""
        cells = ("E1", "A3", "E13")
        clean_dir = tmp_path / "clean"
        run_campaign(
            CampaignConfig(checkpoint_dir=clean_dir, exp_ids=cells, backoff_base=0.0)
        )
        clean = tables_of(clean_dir, exp_ids=cells)

        killed_dir = tmp_path / "killed"
        proc = self._spawn_campaign(killed_dir)
        deadline = time.monotonic() + 60
        try:
            while time.monotonic() < deadline and proc.poll() is None:
                if any(
                    checkpoint_path(killed_dir, c, "quick").exists() for c in cells
                ):
                    break
                time.sleep(0.02)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=60)
        done = [c for c in cells if checkpoint_path(killed_dir, c, "quick").exists()]
        assert done, "campaign produced no checkpoint before the kill"

        resume = self._spawn_campaign(killed_dir, resume=True)
        out, _ = resume.communicate(timeout=300)
        assert resume.returncode == 0, out
        assert tables_of(killed_dir, exp_ids=cells) == clean
