"""Tests for the persistent worker pool (repro.harness.pool) and its
integration with the runner/durable layers.

The recurring trick mirrors ``test_durable.py``: heal-once tasks and
builders that misbehave (hang, SIGKILL their worker) only while a marker
file is absent, creating it first — so the first attempt fails, the pool
replaces the worker, the durable retry re-dispatches with the original
arguments, and the final outcomes must equal a clean run's.
"""

from __future__ import annotations

import functools
import os
import signal
import time
import warnings

import pytest

from repro.core.trace import RunResult
from repro.harness.durable import DurablePolicy, use_policy
from repro.harness.pool import PoolUnit, WorkerPool, active_pool, use_pool
from repro.harness.runner import UnpicklableBuilderWarning, run_trials


def _square(x: int) -> int:
    return x * x


def _boom() -> None:
    raise ValueError("unit exploded")


def _sleep_forever() -> None:  # pragma: no cover - killed by timeout
    time.sleep(60)


def _kill_self(marker: str) -> str:
    """SIGKILL this worker on the first call; succeed after."""
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("x")
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def _worker_context_snapshot() -> tuple[bool, bool]:
    from repro.harness.durable import active_policy

    return (active_pool() is None, active_policy() is None)


class _CountEngine:
    """Stabilizes after a seed-derived number of rounds."""

    def __init__(self, seed: int):
        self.target = (seed % 5) + 2

    def run(self, max_rounds, *, check_every=1):
        r = min(self.target, max_rounds)
        return RunResult(True, r, r)


def _count_build(seed: int) -> _CountEngine:
    return _CountEngine(seed)


def _flaky_build(marker: str, mode: str, seed: int) -> _CountEngine:
    """Heal-once builder: hang or kill the worker until the marker exists."""
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("x")
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(60)
    return _CountEngine(seed)


@pytest.fixture
def pool():
    pool = WorkerPool(2)
    try:
        yield pool
    finally:
        pool.shutdown()


class TestWorkerPool:
    def test_runs_more_units_than_workers(self, pool):
        results, failures = pool.run_units(
            [PoolUnit(f"u{i}", _square, (i,)) for i in range(9)]
        )
        assert not failures
        assert results == {i: i * i for i in range(9)}
        assert pool.tasks_done == 9

    def test_error_unit_does_not_cancel_siblings(self, pool):
        results, failures = pool.run_units(
            [PoolUnit("bad", _boom), PoolUnit("good", _square, (3,))]
        )
        assert results == {1: 9}
        assert failures[0].kind == "error" and "ValueError" in failures[0].detail

    def test_timeout_kills_and_replaces_worker(self, pool):
        before = set(pool.worker_pids())
        results, failures = pool.run_units(
            [
                PoolUnit("hang", _sleep_forever, timeout=0.5),
                PoolUnit("quick", _square, (4,)),
            ]
        )
        assert results == {1: 16}
        assert failures[0].kind == "timeout"
        assert pool.replacements == 1
        assert set(pool.worker_pids()) != before
        assert pool.size == 2
        # The replacement worker serves the next wave.
        results, failures = pool.run_units([PoolUnit("again", _square, (5,))])
        assert results == {0: 25} and not failures

    def test_sigkilled_worker_reported_as_crash_and_replaced(self, pool, tmp_path):
        marker = tmp_path / "killed"
        results, failures = pool.run_units(
            [PoolUnit("suicidal", _kill_self, (str(marker),))]
        )
        assert failures[0].kind == "crash"
        assert pool.replacements == 1
        # Retry with the same arguments now succeeds (marker exists).
        assert pool.submit(PoolUnit("healed", _kill_self, (str(marker),))) == "survived"

    def test_workers_never_inherit_execution_context(self):
        # Fork the pool *inside* an active policy + pool context; workers
        # must still see a clean slate (else cells would route into
        # themselves).
        with use_policy(DurablePolicy()):
            pool = WorkerPool(1)
            try:
                with use_pool(pool):
                    snapshot = pool.submit(PoolUnit("ctx", _worker_context_snapshot))
            finally:
                pool.shutdown()
        assert snapshot == (True, True)

    def test_shutdown_idempotent_and_rejects_new_work(self, pool):
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.run_units([PoolUnit("late", _square, (1,))])

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestRunTrialsPoolRouting:
    def test_active_pool_matches_serial_and_executor(self, pool):
        serial = run_trials(_count_build, trials=6, max_rounds=50, seed=3)
        with use_pool(pool):
            pooled = run_trials(
                _count_build, trials=6, max_rounds=50, seed=3, processes=2
            )
        assert pooled == serial
        assert pool.tasks_done == 2  # one unit per worker chunk

    def test_no_pool_unchanged(self):
        assert active_pool() is None
        serial = run_trials(_count_build, trials=4, max_rounds=50, seed=1)
        parallel = run_trials(
            _count_build, trials=4, max_rounds=50, seed=1, processes=2
        )
        assert parallel == serial

    def test_unpicklable_builder_warns_once_per_sweep(self, pool):
        build = lambda s: _CountEngine(s)  # noqa: E731 - deliberately unpicklable
        serial = run_trials(_count_build, trials=4, max_rounds=50, seed=2)
        with use_pool(pool):
            with pytest.warns(UnpicklableBuilderWarning) as first:
                out1 = run_trials(build, trials=4, max_rounds=50, seed=2, processes=2)
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # a second warning would raise
                out2 = run_trials(build, trials=4, max_rounds=50, seed=2, processes=2)
        assert len(first) == 1
        assert out1 == out2 == serial


class TestDurablePoolWaves:
    def _policy(self, **kw) -> DurablePolicy:
        kw.setdefault("backoff_base", 0.0)
        kw.setdefault("sleep", lambda s: None)
        return DurablePolicy(**kw)

    def test_hung_worker_killed_and_trial_retried_same_seeds(self, pool, tmp_path):
        clean = run_trials(_count_build, trials=4, max_rounds=50, seed=9)
        build = functools.partial(_flaky_build, str(tmp_path / "hung"), "hang")
        policy = self._policy(timeout_per_trial=0.5, max_retries=2, processes=2)
        budget = policy.new_budget()
        with use_pool(pool), use_policy(policy, budget):
            out = run_trials(build, trials=4, max_rounds=50, seed=9)
        assert out == clean  # original seeds, bit-identical outcomes
        assert any(e.kind == "timeout" for e in budget.events)
        assert pool.replacements >= 1

    def test_worker_death_absorbed_with_identical_results(self, pool, tmp_path):
        clean = run_trials(_count_build, trials=4, max_rounds=50, seed=11)
        build = functools.partial(_flaky_build, str(tmp_path / "dead"), "kill")
        policy = self._policy(timeout_per_trial=30.0, max_retries=2, processes=2)
        budget = policy.new_budget()
        with use_pool(pool), use_policy(policy, budget):
            out = run_trials(build, trials=4, max_rounds=50, seed=11)
        assert out == clean
        assert any(e.kind == "crash" for e in budget.events)
        assert pool.replacements >= 1

    def test_faultless_durable_pool_matches_fork_path(self, pool):
        policy = self._policy(timeout_per_trial=30.0, processes=2)
        with use_policy(policy):
            forked = run_trials(_count_build, trials=5, max_rounds=50, seed=4)
        with use_pool(pool), use_policy(self._policy(timeout_per_trial=30.0, processes=2)):
            pooled = run_trials(_count_build, trials=5, max_rounds=50, seed=4)
        assert pooled == forked
