"""Tests for the shared (tag, key) pair kernels (repro.algorithms._pairs)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms._pairs import pair_less, pair_min_inplace, pairs_all_equal


class TestPairLess:
    def test_tag_dominates(self):
        assert pair_less(
            np.array([1]), np.array([99]), np.array([2]), np.array([0])
        ).tolist() == [True]

    def test_key_breaks_ties(self):
        assert pair_less(
            np.array([5]), np.array([1]), np.array([5]), np.array([2])
        ).tolist() == [True]
        assert pair_less(
            np.array([5]), np.array([2]), np.array([5]), np.array([1])
        ).tolist() == [False]

    def test_equal_is_not_less(self):
        assert pair_less(
            np.array([5]), np.array([1]), np.array([5]), np.array([1])
        ).tolist() == [False]

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 7), st.integers(0, 7),
                st.integers(0, 7), st.integers(0, 7),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_matches_tuple_comparison(self, quads):
        ta = np.array([q[0] for q in quads])
        ka = np.array([q[1] for q in quads])
        tb = np.array([q[2] for q in quads])
        kb = np.array([q[3] for q in quads])
        got = pair_less(ta, ka, tb, kb)
        expected = [(q[0], q[1]) < (q[2], q[3]) for q in quads]
        assert got.tolist() == expected


class TestPairMinInplace:
    def test_only_better_pairs_written(self):
        dst_tag = np.array([5, 5, 5])
        dst_key = np.array([5, 5, 5])
        idx = np.array([0, 1, 2])
        src_tag = np.array([4, 5, 6])
        src_key = np.array([9, 4, 0])
        pair_min_inplace(dst_tag, dst_key, idx, src_tag, src_key)
        # idx0: (4,9) < (5,5) -> written; idx1: (5,4) < (5,5) -> written;
        # idx2: (6,0) > (5,5) -> untouched.
        assert dst_tag.tolist() == [4, 5, 5]
        assert dst_key.tolist() == [9, 4, 5]

    def test_partial_index(self):
        dst_tag = np.array([9, 9, 9, 9])
        dst_key = np.array([9, 9, 9, 9])
        pair_min_inplace(
            dst_tag, dst_key, np.array([2]), np.array([1]), np.array([1])
        )
        assert dst_tag.tolist() == [9, 9, 1, 9]

    @given(
        st.lists(st.integers(0, 7), min_size=2, max_size=10),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50)
    def test_result_is_pointwise_min(self, tags, seed):
        n = len(tags)
        rng = np.random.default_rng(seed)
        dst_tag = np.array(tags)
        dst_key = rng.integers(0, 8, n)
        src_tag = rng.integers(0, 8, n)
        src_key = rng.integers(0, 8, n)
        before = list(zip(dst_tag.tolist(), dst_key.tolist()))
        src = list(zip(src_tag.tolist(), src_key.tolist()))
        pair_min_inplace(dst_tag, dst_key, np.arange(n), src_tag, src_key)
        after = list(zip(dst_tag.tolist(), dst_key.tolist()))
        assert after == [min(b, s) for b, s in zip(before, src)]


class TestPairsAllEqual:
    def test_true_case(self):
        assert pairs_all_equal(np.array([3, 3]), np.array([7, 7]), 3, 7)

    def test_false_on_key_mismatch(self):
        assert not pairs_all_equal(np.array([3, 3]), np.array([7, 8]), 3, 7)

    def test_false_on_tag_mismatch(self):
        assert not pairs_all_equal(np.array([3, 4]), np.array([7, 7]), 3, 7)
