"""Tests for the k-gossip extension (all-to-all dissemination)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.k_gossip import (
    KGossipNode,
    KGossipVectorized,
    make_k_gossip_nodes,
)
from repro.core.engine import ReferenceEngine
from repro.core.payload import Message, UID, UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph, StaticDynamicGraph


class TestNodeProtocol:
    def test_starts_with_own_rumor(self):
        node = KGossipNode(3, UID(1), n=5)
        assert node.known == {3}
        assert not node.complete

    def test_compose_carries_known_rumor(self):
        node = KGossipNode(0, UID(1), n=4)
        node.known |= {2, 3}
        for _ in range(20):
            msg = node.compose(1)
            kind, rumor = msg.data
            assert kind == "rumor"
            assert rumor in node.known

    def test_deliver_accumulates(self):
        node = KGossipNode(0, UID(1), n=3)
        node.deliver(1, Message(data=("rumor", 2)))
        node.deliver(1, Message(data=("rumor", 1)))
        assert node.known == {0, 1, 2}
        assert node.complete

    def test_irrelevant_message_ignored(self):
        node = KGossipNode(0, UID(1), n=3)
        node.deliver(1, Message(data="junk"))
        assert node.known == {0}


class TestReferenceRuns:
    def test_completes_on_clique(self):
        n = 8
        us = UIDSpace(n, seed=0)
        nodes = make_k_gossip_nodes(us)
        eng = ReferenceEngine(StaticDynamicGraph(families.clique(n)), nodes, seed=1)
        res = eng.run(50_000, lambda ps: all(p.complete for p in ps))
        assert res.stabilized

    def test_completes_on_ring(self):
        n = 6
        us = UIDSpace(n, seed=0)
        nodes = make_k_gossip_nodes(us)
        eng = ReferenceEngine(StaticDynamicGraph(families.ring(n)), nodes, seed=1)
        res = eng.run(100_000, lambda ps: all(p.complete for p in ps))
        assert res.stabilized


class TestVectorized:
    def test_initial_knowledge_is_identity(self):
        algo = KGossipVectorized()
        state = algo.init_state(5, np.random.default_rng(0))
        assert np.array_equal(state.known, np.eye(5, dtype=bool))

    def test_knowledge_monotone_and_completes(self):
        n = 12
        algo = KGossipVectorized()
        eng = VectorizedEngine(
            StaticDynamicGraph(families.clique(n)), algo, seed=0
        )
        prev = n
        for r in range(1, 100_000):
            eng.step(r)
            cur = algo.knowledge_count(eng.state)
            assert cur >= prev
            prev = cur
            if algo.converged(eng.state):
                break
        assert prev == n * n

    def test_own_rumor_never_lost(self):
        n = 8
        algo = KGossipVectorized()
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 3, seed=0)), algo, seed=1
        )
        for r in range(1, 200):
            eng.step(r)
            assert np.diag(eng.state.known).all()

    def test_completion_respects_information_floor(self):
        # Even a clique needs >= n-1 rounds (n rumor moves per round max).
        n = 16
        algo = KGossipVectorized()
        eng = VectorizedEngine(StaticDynamicGraph(families.clique(n)), algo, seed=2)
        res = eng.run(200_000)
        assert res.stabilized
        assert res.rounds >= n - 1

    def test_completes_under_churn(self):
        n = 10
        base = families.random_regular(n, 3, seed=4)
        algo = KGossipVectorized()
        eng = VectorizedEngine(PeriodicRelabelDynamicGraph(base, 1, seed=5), algo, seed=3)
        assert eng.run(300_000).stabilized

    def test_pick_random_known_uniform(self):
        algo = KGossipVectorized()
        known = np.zeros((1, 6), dtype=bool)
        known[0, [1, 3, 4]] = True
        rng = np.random.default_rng(0)
        counts = np.zeros(6, dtype=int)
        for _ in range(6000):
            counts[algo._pick_random_known(known, np.array([0]), rng)[0]] += 1
        assert counts[[0, 2, 5]].sum() == 0
        for idx in (1, 3, 4):
            assert abs(counts[idx] / 6000 - 1 / 3) < 0.05
