"""Tests for the experiment registry.

Each registered experiment runs at a *tiny* override (smaller than its
``quick`` profile) to verify it executes end-to-end and produces a table
with the expected columns; the scientifically-sized runs live in
``benchmarks/``.  The cheap structural claims (E1, E2) are asserted here
in full.
"""

from __future__ import annotations

import math

import pytest

from repro.harness.experiments import (
    EXPERIMENTS,
    run_experiment,
    uid_keys_random,
    uid_keys_with_min_at,
)
from repro.harness.tables import Table


class TestHelpers:
    def test_uid_keys_distinct(self):
        keys = uid_keys_random(50, 0)
        assert len(set(keys.tolist())) == 50

    def test_uid_keys_deterministic(self):
        assert (uid_keys_random(10, 1) == uid_keys_random(10, 1)).all()

    def test_min_placement(self):
        keys = uid_keys_with_min_at(20, 7, 0)
        assert keys.argmin() == 7
        assert len(set(keys.tolist())) == 20


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "A1", "A2", "A3", "A4", "A5", "R1", "R2", "R3", "S1", "T1", "T2", "T3"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_every_experiment_has_claim_and_profiles(self):
        for exp in EXPERIMENTS.values():
            assert exp.claim
            assert isinstance(exp.quick, dict) or exp.quick == {}
            assert isinstance(exp.standard, dict) or exp.standard == {}


class TestE1Full:
    def test_lemma_v1_holds_everywhere(self):
        table = run_experiment("E1", "quick")
        assert all(table.column("gamma >= alpha/4"))

    def test_gamma_never_exceeds_alpha(self):
        table = run_experiment("E1", "quick")
        for alpha, gamma in zip(table.column("alpha"), table.column("gamma")):
            assert gamma <= alpha + 1e-12


class TestE2Full:
    def test_theorem_v2_bound_met(self):
        table = run_experiment("E2", "quick", m=32, d=4, trials=8)
        assert all(table.column("measured >= predicted"))

    @staticmethod
    def _fractions_by_workload(table):
        per_workload: dict[str, list[float]] = {}
        for row in table.rows:
            _r, workload, _f, _pred, mean_f, _q10, _ok = row
            per_workload.setdefault(workload, []).append(mean_f)
        return per_workload

    def test_more_stable_rounds_more_informed(self):
        table = run_experiment("E2", "quick", m=32, d=8, trials=8)
        for fracs in self._fractions_by_workload(table).values():
            assert fracs == sorted(fracs)

    def test_staircase_is_strictly_harder(self):
        table = run_experiment("E2", "quick", m=32, d=8, trials=8)
        per_workload = self._fractions_by_workload(table)
        for reg, stair in zip(per_workload["regular"], per_workload["staircase"]):
            assert stair < reg


class TestTinySmoke:
    """Every remaining experiment runs end-to-end at a tiny size."""

    @pytest.mark.parametrize(
        "exp_id,overrides",
        [
            ("E3", dict(leaf_counts=(3, 5), trials=3, max_rounds=100_000)),
            ("E4", dict(star_sizes=(3, 4), trials=3, max_rounds=200_000)),
            ("E5", dict(leaf_counts=(3, 5), trials=3, max_rounds=100_000)),
            ("E6", dict(n=16, degree=4, taus=(1, math.inf), trials=3)),
            ("E7", dict(leaves=6, taus=(1, math.inf), trials=3)),
            ("E8", dict(n=8, degree=3, trials=2)),
            ("E9", dict(component_n=6, degree=3, trials=2)),
            ("E10", dict(leaf_counts=(3, 5), trials=3)),
            ("E11", dict(sizes=(8, 12), trials=2)),
            ("E12", dict(leaf_counts=(4, 6), trials=2)),
            ("E13", dict(n=12, degree=3, taus=(1,), trials=2, max_phases=20)),
            ("E14", dict(sizes=(16, 32), degree=4, trials=3)),
            ("E15", dict(n=16, degree=4, trials=2)),
            ("E16", dict(sizes=(6, 10), degree=3, trials=2)),
            ("E17", dict(n=12, degree=3, trials=2)),
            ("E18", dict(n=12, degree=3, taus=(1,), trials=2)),
            ("E19", dict(n=12, degree=3, trials=2, max_phases=15)),
            ("A1", dict(n=12, degree=3, multipliers=(1, 2), trials=2)),
            ("A2", dict(n=12, degree=3, betas=(1.0,), trials=2)),
            ("A3", dict(leaves=4, regular_n=10, degree=3, trials=2)),
            ("A4", dict(n=12, degree=3, deltas=(1, 2), trials=2)),
            ("A5", dict(n=12, degree=3, deltas=(1, 2), trials=2)),
            ("R1", dict(leaves=4, drop_ps=(0.0, 0.4), trials=2)),
            ("R2", dict(n=12, degree=3, fractions=(0.5, 1.0), trials=2)),
            ("R3", dict(n=12, degree=3, crash_fracs=(0.0, 0.25), trials=2)),
            ("S1", dict(sizes=(64, 128), degree=4, trials=2, chunk_nodes=48)),
        ],
    )
    def test_runs_and_returns_table(self, exp_id, overrides):
        table = run_experiment(exp_id, "quick", **overrides)
        assert isinstance(table, Table)
        assert table.rows
        assert exp_id in table.title
        rendered = table.render()
        assert table.columns[0] in rendered
