"""Tests for the harness: runner, tables, sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trace import RunResult
from repro.harness.runner import (
    PROCESSES_ENV,
    TrialOutcome,
    default_processes,
    run_trials,
    trial_seeds_for,
    trial_summary,
)
from repro.harness.sweep import geometric_range, grid
from repro.harness.tables import Table, format_cell


class FakeEngine:
    """Stabilizes after a seed-derived number of rounds."""

    def __init__(self, seed, fail=False):
        self.target = (seed % 7) + 3
        self.fail = fail

    def run(self, max_rounds, *, check_every=1):
        if self.fail or self.target > max_rounds:
            return RunResult(False, max_rounds, max_rounds)
        r = ((self.target + check_every - 1) // check_every) * check_every
        return RunResult(True, r, r)


class TestRunTrials:
    def test_count_and_determinism(self):
        out1 = run_trials(FakeEngine, trials=8, max_rounds=100, seed=1)
        out2 = run_trials(FakeEngine, trials=8, max_rounds=100, seed=1)
        assert len(out1) == 8
        assert out1 == out2

    def test_different_seeds_different_trials(self):
        a = run_trials(FakeEngine, trials=8, max_rounds=100, seed=1)
        b = run_trials(FakeEngine, trials=8, max_rounds=100, seed=2)
        assert [o.rounds for o in a] != [o.rounds for o in b]

    def test_check_every_forwarded(self):
        out = run_trials(FakeEngine, trials=4, max_rounds=100, seed=0, check_every=5)
        assert all(o.rounds % 5 == 0 for o in out)

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            run_trials(FakeEngine, trials=0, max_rounds=10)

    def test_summary_raises_on_unstabilized(self):
        out = run_trials(
            lambda s: FakeEngine(s, fail=True), trials=3, max_rounds=10, seed=0
        )
        with pytest.raises(RuntimeError):
            trial_summary(out)

    def test_summary_values(self):
        out = [
            TrialOutcome(seed=i, stabilized=True, rounds=r, rounds_after_last_activation=r - 1)
            for i, r in enumerate([10, 20, 30])
        ]
        s = trial_summary(out)
        assert s.median == 20.0
        s2 = trial_summary(out, after_activation=True)
        assert s2.median == 19.0


def _module_level_engine(seed: int) -> FakeEngine:
    """Module-level builder: picklable for the process-parallel path."""
    return FakeEngine(seed)


class TestParallelRunner:
    def test_processes_match_serial(self):
        serial = run_trials(_module_level_engine, trials=6, max_rounds=100, seed=3)
        parallel = run_trials(
            _module_level_engine, trials=6, max_rounds=100, seed=3, processes=2
        )
        assert serial == parallel

    def test_single_trial_stays_serial(self):
        out = run_trials(
            _module_level_engine, trials=1, max_rounds=100, seed=0, processes=4
        )
        assert len(out) == 1

    def test_more_workers_than_trials(self):
        # Chunking must not produce empty chunks or drop/duplicate trials.
        out = run_trials(
            _module_level_engine, trials=3, max_rounds=100, seed=5, processes=8
        )
        assert [o.seed for o in out] == trial_seeds_for(5, 3)

    def test_seed_order_preserved_across_chunks(self):
        out = run_trials(
            _module_level_engine, trials=10, max_rounds=100, seed=7, processes=3
        )
        assert [o.seed for o in out] == trial_seeds_for(7, 10)

    def test_env_default_used(self, monkeypatch):
        monkeypatch.setenv(PROCESSES_ENV, "2")
        assert default_processes() == 2
        env = run_trials(_module_level_engine, trials=6, max_rounds=100, seed=3)
        serial = run_trials(
            _module_level_engine, trials=6, max_rounds=100, seed=3, processes=1
        )
        assert env == serial

    def test_env_default_unpicklable_builder_falls_back_serial(self, monkeypatch):
        monkeypatch.setenv(PROCESSES_ENV, "2")
        with pytest.warns(UserWarning, match="running serially"):
            out = run_trials(lambda s: FakeEngine(s), trials=4, max_rounds=100, seed=3)
        assert [o.seed for o in out] == trial_seeds_for(3, 4)

    def test_explicit_processes_unpicklable_builder_falls_back_serial(self):
        """An explicit processes=K with an unpicklable builder degrades to
        the serial path deterministically (same seeds, same outcomes)
        with one structured warning instead of erroring."""
        from repro.harness.runner import UnpicklableBuilderWarning

        serial = run_trials(lambda s: FakeEngine(s), trials=4, max_rounds=100, seed=3)
        with pytest.warns(UnpicklableBuilderWarning, match="running serially") as rec:
            parallel = run_trials(
                lambda s: FakeEngine(s), trials=4, max_rounds=100, seed=3, processes=2
            )
        assert parallel == serial
        warning = [w for w in rec if issubclass(w.category, UnpicklableBuilderWarning)]
        assert len(warning) == 1
        assert warning[0].message.requested == 2
        assert warning[0].message.source == "processes=2"

    def test_env_default_validation(self, monkeypatch):
        monkeypatch.setenv(PROCESSES_ENV, "lots")
        with pytest.raises(ValueError):
            default_processes()
        monkeypatch.setenv(PROCESSES_ENV, "")
        assert default_processes() is None
        monkeypatch.setenv(PROCESSES_ENV, "1")
        assert default_processes() is None


class TestTable:
    def test_render_contains_all_cells(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row(1, 2.5)
        t.add_row("x", True)
        out = t.render()
        assert "T" in out and "a" in out and "2.5" in out and "yes" in out

    def test_row_width_checked(self):
        t = Table(title="T", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_extraction(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]

    def test_notes_rendered(self):
        t = Table(title="T", columns=["a"], notes=["hello note"])
        t.add_row(1)
        assert "hello note" in t.render()

    def test_empty_table_renders(self):
        t = Table(title="T", columns=["a"])
        assert "T" in t.render()


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(3.14159) == "3.142"

    def test_scientific_for_extremes(self):
        assert "e" in format_cell(1.5e7)
        assert "e" in format_cell(1.5e-7)

    def test_bool(self):
        assert format_cell(True) == "yes" and format_cell(False) == "no"

    def test_zero(self):
        assert format_cell(0.0) == "0"


class TestSweep:
    def test_grid_product(self):
        combos = grid(n=[1, 2], tau=[3, 4])
        assert len(combos) == 4
        assert {"n": 1, "tau": 3} in combos

    def test_empty_grid(self):
        assert grid() == [{}]

    def test_geometric_range(self):
        assert geometric_range(2, 16) == [2, 4, 8, 16]
        assert geometric_range(3, 20, factor=3) == [3, 9]

    def test_geometric_range_validation(self):
        with pytest.raises(ValueError):
            geometric_range(0, 8)
        with pytest.raises(ValueError):
            geometric_range(4, 2)
