"""Tests for repro.core.payload: UIDs, ID pairs, budgets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.payload import (
    BudgetExceeded,
    IDPair,
    Message,
    PayloadBudget,
    UID,
    UIDSpace,
)


class TestUID:
    def test_total_order(self):
        a, b = UID(3), UID(7)
        assert a < b and b > a and a != b
        assert a <= b and not b <= a

    def test_equality_and_hash(self):
        assert UID(5) == UID(5)
        assert hash(UID(5)) == hash(UID(5))
        assert UID(5) != UID(6)

    def test_not_comparable_to_int(self):
        assert UID(5) != 5
        with pytest.raises(TypeError):
            _ = UID(5) < 5

    @given(st.lists(st.integers(0, 1000), unique=True, min_size=2, max_size=20))
    def test_sorting_matches_keys(self, keys):
        uids = [UID(k) for k in keys]
        assert [u._key for u in sorted(uids)] == sorted(keys)


class TestUIDSpace:
    def test_unique_uids(self):
        space = UIDSpace(50, seed=1)
        uids = space.all_uids()
        assert len(set(uids)) == 50

    def test_winner_holds_minimum(self):
        space = UIDSpace(20, seed=2)
        w = space.winner_vertex()
        mn = space.min_uid()
        assert space.uid_of(w) == mn
        assert all(mn <= space.uid_of(v) for v in range(20))

    def test_deterministic(self):
        a, b = UIDSpace(10, seed=3), UIDSpace(10, seed=3)
        assert a.all_uids() == b.all_uids()

    def test_winner_not_always_vertex_zero(self):
        # Layout independence: across seeds the winner vertex varies.
        winners = {UIDSpace(10, seed=s).winner_vertex() for s in range(20)}
        assert len(winners) > 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            UIDSpace(0)


class TestIDPair:
    def test_orders_by_tag_first(self):
        assert IDPair(UID(9), 1) < IDPair(UID(1), 2)

    def test_ties_broken_by_uid(self):
        assert IDPair(UID(1), 5) < IDPair(UID(2), 5)

    def test_equality(self):
        assert IDPair(UID(1), 5) == IDPair(UID(1), 5)

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 50)),
            unique=True,
            min_size=2,
            max_size=15,
        )
    )
    def test_sort_matches_tuple_sort(self, items):
        pairs = [IDPair(UID(k), t) for (k, t) in items]
        expected = sorted(items, key=lambda kt: (kt[1], kt[0]))
        assert [(p.uid._key, p.tag) for p in sorted(pairs)] == [
            (k, t) for (k, t) in expected
        ]


class TestPayloadBudget:
    def test_uid_budget_enforced(self):
        budget = PayloadBudget(n_upper=64, max_uids=2)
        budget.validate(Message(uids=(UID(1), UID(2))))
        with pytest.raises(BudgetExceeded):
            budget.validate(Message(uids=(UID(1), UID(2), UID(3))))

    def test_extra_bits_budget(self):
        budget = PayloadBudget(n_upper=64, polylog_power=1, polylog_constant=1.0)
        assert budget.max_extra_bits == 6  # log2(64)
        budget.validate(Message(extra_bits=6))
        with pytest.raises(BudgetExceeded):
            budget.validate(Message(extra_bits=7))

    def test_polylog_scaling(self):
        b1 = PayloadBudget(n_upper=256, polylog_power=2, polylog_constant=1.0)
        assert b1.max_extra_bits == 64  # log2(256)^2

    def test_empty_message_always_ok(self):
        PayloadBudget(n_upper=2).validate(Message())

    def test_default_budget_fits_bit_convergence(self):
        # A bit convergence pair (1 UID + k = 2 log n tag bits) must fit
        # the default Section IV budget.
        n = 1024
        budget = PayloadBudget(n_upper=n)
        budget.validate(Message(uids=(UID(0),), extra_bits=20))
