"""Tests for repro.analysis.expansion."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.expansion import (
    alpha_of_set,
    boundary,
    dynamic_vertex_expansion,
    vertex_expansion,
    vertex_expansion_exact,
    vertex_expansion_spectral_lower,
    vertex_expansion_upper,
)
from repro.graphs import families
from repro.graphs.dynamic import ScheduleDynamicGraph, StaticDynamicGraph


class TestBoundary:
    def test_path_prefix(self):
        g = families.path(6)
        assert boundary(g, [0, 1, 2]).tolist() == [3]

    def test_star_leaves(self):
        g = families.star(6)
        assert boundary(g, [1, 2]).tolist() == [0]

    def test_full_set_empty_boundary(self):
        g = families.ring(5)
        assert boundary(g, range(5)).size == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            boundary(families.ring(5), [9])


class TestAlphaOfSet:
    def test_single_vertex_in_clique(self):
        g = families.clique(6)
        assert alpha_of_set(g, [0]) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            alpha_of_set(families.ring(5), [])


class TestExact:
    def test_known_families(self):
        assert vertex_expansion_exact(families.clique(8)) == pytest.approx(1.0)
        assert vertex_expansion_exact(families.path(8)) == pytest.approx(1 / 4)
        assert vertex_expansion_exact(families.star(9)) == pytest.approx(1 / 4)
        assert vertex_expansion_exact(families.ring(8)) == pytest.approx(2 / 4)

    def test_alpha_at_most_one_definitionally_reachable(self):
        # alpha <= 1 always (the paper notes this despite alpha(S) > 1
        # being possible for some S).
        for g in (families.clique(6), families.hypercube(3), families.ring(6)):
            assert vertex_expansion_exact(g) <= 1.0 + 1e-12

    def test_size_guard(self):
        with pytest.raises(ValueError):
            vertex_expansion_exact(families.clique(30))


class TestUpperBound:
    def test_never_below_exact(self, small_graphs):
        for name, g in small_graphs:
            if g.n > 16:
                continue
            exact = vertex_expansion_exact(g)
            upper = vertex_expansion_upper(g, seed=0)
            assert upper >= exact - 1e-12, name

    def test_exact_on_structured_families(self):
        # Prefix cuts are the true minimizers here; the sweep finds them.
        for g, expected in [
            (families.path(40), 1 / 20),
            (families.star(41), 1 / 20),
            (families.ring(30), 2 / 15),
        ]:
            assert vertex_expansion_upper(g, seed=0) == pytest.approx(expected)

    def test_line_of_stars_matches_formula(self):
        s, p = 5, 5
        g = families.line_of_stars(s, p)
        assert vertex_expansion_upper(g, seed=0) == pytest.approx(
            families.line_of_stars_expansion(s, p)
        )


class TestSpectralLower:
    def test_below_exact(self, small_graphs):
        for name, g in small_graphs:
            if g.n > 16:
                continue
            lower = vertex_expansion_spectral_lower(g)
            exact = vertex_expansion_exact(g)
            assert lower <= exact + 1e-9, name

    def test_positive_on_connected(self):
        assert vertex_expansion_spectral_lower(families.clique(8)) > 0

    def test_ordering_chain(self):
        for seed in range(5):
            g = families.connected_erdos_renyi(12, 0.4, seed=seed)
            lo = vertex_expansion_spectral_lower(g)
            exact = vertex_expansion_exact(g)
            hi = vertex_expansion_upper(g, seed=0)
            assert lo <= exact + 1e-9 <= hi + 2e-9


class TestSpectralGap:
    def test_known_values(self):
        from repro.analysis.expansion import spectral_gap

        # Complete graph K_n: normalized Laplacian eigenvalues are
        # 0 and n/(n-1) (multiplicity n-1).
        n = 8
        assert spectral_gap(families.clique(n)) == pytest.approx(n / (n - 1))

    def test_ring_gap_shrinks_with_n(self):
        from repro.analysis.expansion import spectral_gap

        assert spectral_gap(families.ring(32)) < spectral_gap(families.ring(8))

    def test_positive_iff_connected(self):
        from repro.analysis.expansion import spectral_gap
        from repro.graphs.static import Graph

        assert spectral_gap(families.path(6)) > 1e-9
        disconnected = Graph(4, [(0, 1), (2, 3)])
        assert spectral_gap(disconnected) == pytest.approx(0.0, abs=1e-9)

    def test_predicts_averaging_speed(self):
        """Larger spectral gap → faster averaging gossip (E17's mechanism)."""
        from repro.algorithms.averaging import AveragingVectorized
        from repro.analysis.expansion import spectral_gap
        from repro.core.vectorized import VectorizedEngine
        from repro.graphs.dynamic import StaticDynamicGraph

        n = 16
        values = np.random.default_rng(0).random(n)
        results = []
        for g in (families.clique(n), families.ring(n)):
            rounds = []
            for t in range(5):
                algo = AveragingVectorized(values, eps=1e-3)
                eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=t)
                res = eng.run(500_000)
                assert res.stabilized
                rounds.append(res.rounds)
            results.append((spectral_gap(g), float(np.median(rounds))))
        (gap_hi, rounds_hi), (gap_lo, rounds_lo) = results
        assert gap_hi > gap_lo
        assert rounds_hi < rounds_lo


class TestDispatcher:
    def test_small_uses_exact(self):
        g = families.path(10)
        assert vertex_expansion(g) == vertex_expansion_exact(g)

    def test_large_uses_upper(self):
        g = families.path(50)
        assert vertex_expansion(g) == pytest.approx(1 / 25)


class TestDynamicExpansion:
    def test_min_over_epochs(self):
        ring, star = families.ring(10), families.star(10)
        dg = ScheduleDynamicGraph([ring, star], tau=2)
        a = dynamic_vertex_expansion(dg, horizon=4)
        assert a == pytest.approx(
            min(vertex_expansion_exact(ring), vertex_expansion_exact(star))
        )

    def test_static(self):
        dg = StaticDynamicGraph(families.clique(8))
        assert dynamic_vertex_expansion(dg, horizon=100) == pytest.approx(1.0)
