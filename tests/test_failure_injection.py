"""Failure injection: transient state corruption and recovery.

The mobile telephone model has no crash faults, but Section VIII's
algorithm is *self-stabilizing*: correctness references only the current
state, never history.  These tests inject transient faults mid-run —
arbitrary corruption of nodes' smallest-ID-pair state, late activations,
adversarial merges — and assert the executions still stabilize, to the
minimum over the *post-corruption* state (the semilattice the algorithms
compute over).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.async_bit_convergence import AsyncBitConvergenceVectorized
from repro.algorithms.bit_convergence import BitConvergenceConfig, draw_id_tags
from repro.algorithms.blind_gossip import BlindGossipVectorized
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.harness.experiments import uid_keys_random


class TestBlindGossipCorruption:
    def test_recovers_from_best_corruption(self):
        """Arbitrarily corrupting `best` values mid-run cannot prevent
        stabilization: min-gossip re-converges to the post-corruption min."""
        n = 16
        keys = uid_keys_random(n, 0)
        algo = BlindGossipVectorized(keys)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=0)), algo, seed=1
        )
        rng = np.random.default_rng(2)
        for r in range(1, 30):
            eng.step(r)
        # Transient fault: a third of the nodes get arbitrary values.
        victims = rng.choice(n, size=n // 3, replace=False)
        eng.state.best[victims] = rng.integers(0, 10 * n, size=victims.size)
        # The semilattice target is now the min over the corrupted state.
        eng.state.target = int(eng.state.best.min())
        for r in range(30, 50_000):
            eng.step(r)
            if algo.converged(eng.state):
                break
        assert algo.converged(eng.state)
        assert (eng.state.best == eng.state.target).all()


class TestAsyncBitConvergenceCorruption:
    def _corrupted_run(self, seed, corrupt_fraction=0.3):
        n = 16
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=4, beta=1.0)
        keys = uid_keys_random(n, seed)
        algo = AsyncBitConvergenceVectorized(keys, cfg, tag_seed=seed, unique_tags=True)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=seed)),
            algo,
            seed=seed,
        )
        rng = np.random.default_rng(seed + 99)
        for r in range(1, 40):
            eng.step(r)
        # Corrupt: victims hold arbitrary (tag, key) pairs — as if they
        # rebooted with stale or garbage state.  Replacement tags are kept
        # distinct from every tag in the network: a duplicated *minimum*
        # tag is the documented collision deadlock (covered by its own
        # test below), not a recoverable fault.
        k = cfg.k
        victims = rng.choice(n, size=max(1, int(n * corrupt_fraction)), replace=False)
        survivors = np.setdiff1d(np.arange(n), victims)
        taken = set(eng.state.ctag[survivors].tolist())
        fresh = [t for t in rng.permutation(1 << k) if t not in taken][: victims.size]
        assert len(fresh) == victims.size
        eng.state.ctag[victims] = np.asarray(fresh, dtype=np.int64)
        eng.state.ckey[victims] = rng.integers(0, 10 * n, size=victims.size)
        # Self-stabilization target: min pair over the corrupted state.
        order = np.lexsort((eng.state.ckey, eng.state.ctag))
        eng.state.target_tag = int(eng.state.ctag[order[0]])
        eng.state.target_key = int(eng.state.ckey[order[0]])
        for r in range(40, 500_000):
            eng.step(r)
            if algo.converged(eng.state):
                return True, eng
        return False, eng

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_recovers_from_pair_corruption(self, seed):
        ok, eng = self._corrupted_run(seed)
        assert ok
        assert (eng.state.ctag == eng.state.target_tag).all()
        assert (eng.state.ckey == eng.state.target_key).all()

    def test_recovers_from_total_corruption(self):
        """Even corrupting every node's state is just a new initial state."""
        ok, _ = self._corrupted_run(seed=5, corrupt_fraction=1.0)
        assert ok

    def test_corruption_with_duplicate_tags_can_block_and_is_detected(self):
        """A corruption that duplicates the minimum tag across different
        UIDs recreates the collision deadlock — the algorithm's documented
        limit, not silent wrong behaviour: leaders simply never agree."""
        n = 8
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=3, beta=1.0)
        keys = uid_keys_random(n, 3)
        algo = AsyncBitConvergenceVectorized(keys, cfg, tag_seed=3, unique_tags=True)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 3, seed=3)), algo, seed=3
        )
        eng.step(1)
        # Force two nodes to share the minimal tag with different keys.
        eng.state.ctag[:] = 5
        eng.state.ckey[0] = 1
        eng.state.ckey[1] = 2
        eng.state.ckey[2:] = np.arange(3, n + 1)
        eng.state.target_tag, eng.state.target_key = 5, 1
        for r in range(2, 3000):
            eng.step(r)
        # Identical tags advertise identical bits: node 1 can never adopt
        # (5, 1), so convergence never completes.
        assert not algo.converged(eng.state)
        assert eng.state.ckey[1] == 2


class TestLateJoiners:
    def test_nodes_activating_after_convergence(self):
        """Late activations are a failure mode the async variant absorbs:
        the network re-stabilizes after stragglers join."""
        n = 12
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=4, beta=1.0)
        keys = uid_keys_random(n, 4)
        algo = AsyncBitConvergenceVectorized(keys, cfg, tag_seed=4, unique_tags=True)
        act = np.ones(n, dtype=np.int64)
        act[[3, 7]] = 4000  # two stragglers join much later
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=4)),
            algo,
            seed=4,
            activation_rounds=act,
        )
        res = eng.run(500_000)
        assert res.stabilized
        assert res.rounds >= 4000  # cannot stabilize before stragglers exist
        assert res.rounds_after_last_activation < res.rounds
