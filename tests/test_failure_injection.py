"""Failure injection: transient state corruption and recovery.

The mobile telephone model has no crash faults, but Section VIII's
algorithm is *self-stabilizing*: correctness references only the current
state, never history.  These tests inject transient faults mid-run —
arbitrary corruption of nodes' smallest-ID-pair state, late activations,
adversarial merges — and assert the executions still stabilize, to the
minimum over the *post-corruption* state (the semilattice the algorithms
compute over).

Corruption is injected declaratively through
:class:`~repro.faults.plan.StateCorruptionEvent` (the engines call the
algorithm's ``corrupt_state`` hook at the scheduled round and gate
convergence checks past it); only the duplicate-tag deadlock test still
mutates state by hand, because it needs a *specific* adversarial
corruption — a duplicated minimum tag — that the uniform fault model
deliberately avoids.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.async_bit_convergence import AsyncBitConvergenceVectorized
from repro.algorithms.bit_convergence import BitConvergenceConfig
from repro.algorithms.blind_gossip import BlindGossipVectorized
from repro.core.vectorized import VectorizedEngine
from repro.faults import FaultPlan, StateCorruptionEvent
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.harness.experiments import uid_keys_random


class TestBlindGossipCorruption:
    def test_recovers_from_best_corruption(self):
        """Arbitrarily corrupting `best` values mid-run cannot prevent
        stabilization: min-gossip re-converges to the post-corruption min."""
        n = 16
        keys = uid_keys_random(n, 0)
        algo = BlindGossipVectorized(keys)
        # Transient fault: a third of the nodes get arbitrary values at
        # round 30; the semilattice target becomes the post-corruption min.
        plan = FaultPlan(
            state_corruption=(StateCorruptionEvent(round=30, fraction=1 / 3),)
        )
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=0)),
            algo,
            seed=1,
            fault_plan=plan,
        )
        res = eng.run(50_000)
        assert res.stabilized
        assert res.rounds >= 30  # verdicts are gated past the event
        assert algo.converged(eng.state)
        assert (eng.state.best == eng.state.target).all()


class TestAsyncBitConvergenceCorruption:
    def _corrupted_run(self, seed, corrupt_fraction=0.3):
        """Corrupt victims to arbitrary (tag, key) pairs at round 40 — as
        if they rebooted with stale or garbage state.  The algorithm's
        ``corrupt_state`` hook keeps replacement tags distinct from every
        tag in the network: a duplicated *minimum* tag is the documented
        collision deadlock (covered by its own test below), not a
        recoverable fault."""
        n = 16
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=4, beta=1.0)
        keys = uid_keys_random(n, seed)
        algo = AsyncBitConvergenceVectorized(keys, cfg, tag_seed=seed, unique_tags=True)
        plan = FaultPlan(
            state_corruption=(
                StateCorruptionEvent(round=40, fraction=corrupt_fraction),
            )
        )
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=seed)),
            algo,
            seed=seed,
            fault_plan=plan,
        )
        res = eng.run(500_000)
        return res.stabilized, eng

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_recovers_from_pair_corruption(self, seed):
        ok, eng = self._corrupted_run(seed)
        assert ok
        assert (eng.state.ctag == eng.state.target_tag).all()
        assert (eng.state.ckey == eng.state.target_key).all()

    def test_recovers_from_total_corruption(self):
        """Even corrupting every node's state is just a new initial state."""
        ok, _ = self._corrupted_run(seed=5, corrupt_fraction=1.0)
        assert ok

    def test_corruption_with_duplicate_tags_can_block_and_is_detected(self):
        """A corruption that duplicates the minimum tag across different
        UIDs recreates the collision deadlock — the algorithm's documented
        limit, not silent wrong behaviour: leaders simply never agree."""
        n = 8
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=3, beta=1.0)
        keys = uid_keys_random(n, 3)
        algo = AsyncBitConvergenceVectorized(keys, cfg, tag_seed=3, unique_tags=True)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 3, seed=3)), algo, seed=3
        )
        eng.step(1)
        # Force two nodes to share the minimal tag with different keys.
        eng.state.ctag[:] = 5
        eng.state.ckey[0] = 1
        eng.state.ckey[1] = 2
        eng.state.ckey[2:] = np.arange(3, n + 1)
        eng.state.target_tag, eng.state.target_key = 5, 1
        for r in range(2, 3000):
            eng.step(r)
        # Identical tags advertise identical bits: node 1 can never adopt
        # (5, 1), so convergence never completes.
        assert not algo.converged(eng.state)
        assert eng.state.ckey[1] == 2


class TestLateJoiners:
    def test_nodes_activating_after_convergence(self):
        """Late activations are a failure mode the async variant absorbs:
        the network re-stabilizes after stragglers join."""
        n = 12
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=4, beta=1.0)
        keys = uid_keys_random(n, 4)
        algo = AsyncBitConvergenceVectorized(keys, cfg, tag_seed=4, unique_tags=True)
        act = np.ones(n, dtype=np.int64)
        act[[3, 7]] = 4000  # two stragglers join much later
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=4)),
            algo,
            seed=4,
            activation_rounds=act,
        )
        res = eng.run(500_000)
        assert res.stabilized
        assert res.rounds >= 4000  # cannot stabilize before stragglers exist
        assert res.rounds_after_last_activation < res.rounds
