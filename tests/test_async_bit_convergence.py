"""Tests for non-synchronized bit convergence (Section VIII).

Includes the Lemma VIII.1 prefix-lock invariant (once a node's smallest
tag agrees with the global minimum tag on its first ``i`` bits, that
agreement is permanent) and the self-stabilization behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.async_bit_convergence import (
    AsyncBitConvergenceNode,
    AsyncBitConvergenceVectorized,
    async_tag_length,
    make_async_bit_convergence_nodes,
)
from repro.algorithms.bit_convergence import BitConvergenceConfig, draw_id_tags
from repro.core.engine import ReferenceEngine
from repro.core.monitor import all_leaders_are
from repro.core.payload import IDPair, Message, UID, UIDSpace
from repro.core.protocol import RoundView
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph, StaticDynamicGraph
from repro.harness.experiments import uid_keys_random


CFG = BitConvergenceConfig(n_upper=16, delta_bound=4, beta=1.0)  # k = 4


class TestTagEncoding:
    def test_tag_length_formula(self):
        assert async_tag_length(4) == 3  # ceil(log 8)
        assert async_tag_length(8) == 4
        assert async_tag_length(1) == 1

    def test_advertised_tag_encodes_position_and_bit(self):
        node = AsyncBitConvergenceNode(0, UID(1), id_tag=0b1000, config=CFG)
        rng = np.random.default_rng(0)
        tag = node.choose_tag(1, rng)
        pos = (tag >> 1) + 1
        bit = tag & 1
        assert 1 <= pos <= CFG.k
        # Bit must match position pos of tag 0b1000 (MSB-first).
        expected = (0b1000 >> (CFG.k - pos)) & 1
        assert bit == expected

    def test_tag_fits_declared_width(self):
        node = AsyncBitConvergenceNode(0, UID(1), id_tag=5, config=CFG)
        rng = np.random.default_rng(0)
        for r in range(1, 100):
            assert 0 <= node.choose_tag(r, rng) < (1 << node.tag_length)

    def test_position_fixed_within_group(self):
        node = AsyncBitConvergenceNode(0, UID(1), id_tag=5, config=CFG)
        rng = np.random.default_rng(0)
        gl = CFG.group_len
        positions = []
        for r in range(1, 3 * gl + 1):
            tag = node.choose_tag(r, rng)
            positions.append((tag >> 1) + 1)
        for g in range(3):
            group = positions[g * gl : (g + 1) * gl]
            assert len(set(group)) == 1

    def test_positions_vary_across_groups(self):
        node = AsyncBitConvergenceNode(0, UID(1), id_tag=5, config=CFG)
        rng = np.random.default_rng(1)
        gl = CFG.group_len
        firsts = {node.choose_tag(1 + g * gl, rng) >> 1 for g in range(30)}
        assert len(firsts) > 1


class TestNodeProtocol:
    def test_immediate_adoption(self):
        node = AsyncBitConvergenceNode(0, UID(9), id_tag=7, config=CFG)
        node.deliver(1, Message(data=IDPair(UID(1), 2)))
        assert node.leader == UID(1)  # no phase buffering in the async variant
        assert node.smallest_pair == IDPair(UID(1), 2)

    def test_larger_pair_rejected(self):
        node = AsyncBitConvergenceNode(0, UID(9), id_tag=7, config=CFG)
        node.deliver(1, Message(data=IDPair(UID(2), 12)))
        assert node.smallest_pair == IDPair(UID(9), 7)

    def test_zero_bit_targets_same_position_ones(self):
        node = AsyncBitConvergenceNode(0, UID(9), id_tag=0, config=CFG)
        rng = np.random.default_rng(0)
        tag = node.choose_tag(1, rng)
        my_pos = (tag >> 1) + 1
        # Neighbors: same position with 1 (eligible), same position with 0,
        # different position with 1.
        other_pos = my_pos % CFG.k + 1
        v = RoundView(
            local_round=1,
            neighbors=np.array([1, 2, 3]),
            neighbor_tags=np.array(
                [
                    (my_pos - 1) * 2 + 1,
                    (my_pos - 1) * 2 + 0,
                    (other_pos - 1) * 2 + 1,
                ]
            ),
            rng=rng,
        )
        for _ in range(20):
            assert node.decide(v) == 1

    def test_one_bit_listens(self):
        node = AsyncBitConvergenceNode(0, UID(9), id_tag=(1 << CFG.k) - 1, config=CFG)
        rng = np.random.default_rng(0)
        node.choose_tag(1, rng)
        v = RoundView(
            local_round=1,
            neighbors=np.array([1]),
            neighbor_tags=np.array([1]),
            rng=rng,
        )
        assert node.decide(v) is None


class TestReferenceConvergence:
    def test_synchronized_starts(self):
        g = families.random_regular(12, 3, seed=0)
        us = UIDSpace(g.n, seed=1)
        cfg = BitConvergenceConfig(n_upper=g.n, delta_bound=3, beta=1.0)
        nodes = make_async_bit_convergence_nodes(us, cfg, seed=2, unique_tags=True)
        winner = min(nodes, key=lambda nd: nd.smallest_pair).uid
        eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=3)
        res = eng.run(300_000, all_leaders_are(winner))
        assert res.stabilized

    def test_staggered_activations(self):
        g = families.random_regular(10, 3, seed=4)
        us = UIDSpace(g.n, seed=1)
        cfg = BitConvergenceConfig(n_upper=g.n, delta_bound=3, beta=1.0)
        nodes = make_async_bit_convergence_nodes(us, cfg, seed=2, unique_tags=True)
        winner = min(nodes, key=lambda nd: nd.smallest_pair).uid
        act = [1, 3, 5, 2, 9, 1, 4, 7, 2, 6]
        eng = ReferenceEngine(
            StaticDynamicGraph(g), nodes, seed=3, activation_rounds=act
        )
        res = eng.run(300_000, all_leaders_are(winner))
        assert res.stabilized


class TestVectorizedConvergence:
    def test_converges_static(self):
        n = 16
        keys = uid_keys_random(n, 0)
        algo = AsyncBitConvergenceVectorized(keys, CFG, tag_seed=1, unique_tags=True)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=0)), algo, seed=2
        )
        res = eng.run(500_000)
        assert res.stabilized

    def test_converges_with_staggered_activation(self):
        n = 16
        keys = uid_keys_random(n, 0)
        algo = AsyncBitConvergenceVectorized(keys, CFG, tag_seed=1, unique_tags=True)
        act = (np.arange(n) % 7) + 1
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=0)),
            algo,
            seed=2,
            activation_rounds=act,
        )
        res = eng.run(500_000)
        assert res.stabilized
        assert res.rounds_after_last_activation <= res.rounds

    def test_converges_under_churn(self):
        n = 16
        base = families.random_regular(n, 4, seed=3)
        keys = uid_keys_random(n, 0)
        algo = AsyncBitConvergenceVectorized(keys, CFG, tag_seed=1, unique_tags=True)
        eng = VectorizedEngine(
            PeriodicRelabelDynamicGraph(base, 2, seed=4), algo, seed=2
        )
        assert eng.run(500_000).stabilized

    def test_smallest_pairs_monotone(self):
        n = 16
        keys = uid_keys_random(n, 0)
        algo = AsyncBitConvergenceVectorized(keys, CFG, tag_seed=1, unique_tags=True)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.clique(n)), algo, seed=2
        )
        prev_t, prev_k = eng.state.ctag.copy(), eng.state.ckey.copy()
        for r in range(1, 3000):
            eng.step(r)
            improved = (eng.state.ctag < prev_t) | (
                (eng.state.ctag == prev_t) & (eng.state.ckey <= prev_k)
            )
            assert improved.all()
            prev_t, prev_k = eng.state.ctag.copy(), eng.state.ckey.copy()
            if algo.converged(eng.state):
                break


class TestLemmaVIII1PrefixLock:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_settled_prefix_never_regresses(self, seed):
        n = 16
        keys = uid_keys_random(n, seed)
        algo = AsyncBitConvergenceVectorized(keys, CFG, tag_seed=seed, unique_tags=True)
        eng = VectorizedEngine(
            StaticDynamicGraph(families.random_regular(n, 4, seed=seed)),
            algo,
            seed=seed,
        )
        best = 0
        for r in range(1, 20_000):
            eng.step(r)
            cur = algo.settled_prefix(eng.state)
            assert cur >= best, "prefix agreement regressed"
            best = cur
            if best == CFG.k and algo.converged(eng.state):
                break
        assert best == CFG.k


class TestEventTierCrossCheck:
    """The round-embedded simulation vs the real event tier.

    ``make_async_bit_convergence_nodes`` simulates staggered local rounds
    *inside* globally synchronized rounds; the :mod:`repro.asyncsim`
    event tier makes the local rounds real (timer firings under a
    bounded-delay scheduler).  Both must elect the same winner — the
    owner of the smallest (id-tag, uid) pair — on the same configuration.
    """

    @pytest.mark.parametrize("scheduler", ["random", "adversarial"])
    def test_same_winner_as_round_embedding(self, scheduler):
        from repro.asyncsim import EventSimEngine, async_bit_convergence_setup

        g = families.random_regular(12, 3, seed=0)
        us = UIDSpace(g.n, seed=1)
        cfg = BitConvergenceConfig(n_upper=g.n, delta_bound=3, beta=1.0)

        nodes = make_async_bit_convergence_nodes(us, cfg, seed=2, unique_tags=True)
        winner = min(nodes, key=lambda nd: nd.smallest_pair).uid
        eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=3)
        sync_res = eng.run(300_000, all_leaders_are(winner))
        assert sync_res.stabilized

        setup = async_bit_convergence_setup(us, cfg, seed=2, unique_tags=True)
        async_eng = EventSimEngine(
            StaticDynamicGraph(g), setup.nodes, seed=3, delta=3,
            scheduler=scheduler, progress=setup.progress,
        )
        async_res = async_eng.run_until(900_000, setup.stop_when, check_every=8)
        assert async_res.stabilized
        assert all(nd.leader == winner for nd in setup.nodes)

    def test_round_embedding_results_pinned(self):
        """Regression pin: the sync-round embedding is bit-unchanged.

        These exact round/connection counts were recorded before the
        event tier existed; any drift means the old simulation path was
        disturbed, which the event-tier port must never do.
        """
        g = families.random_regular(12, 3, seed=0)
        us = UIDSpace(g.n, seed=1)
        cfg = BitConvergenceConfig(n_upper=g.n, delta_bound=3, beta=1.0)
        expected = {3: (129, 21), 4: (109, 31)}
        for engine_seed, (rounds, conns) in expected.items():
            nodes = make_async_bit_convergence_nodes(us, cfg, seed=2, unique_tags=True)
            winner = min(nodes, key=lambda nd: nd.smallest_pair).uid
            eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=engine_seed)
            res = eng.run(300_000, all_leaders_are(winner))
            assert res.stabilized
            assert (res.rounds, eng.connections_made) == (rounds, conns)

    def test_vectorized_embedding_results_pinned(self):
        n = 16
        keys = uid_keys_random(n, 0)
        expected = {2: 101, 5: 77}
        for engine_seed, rounds in expected.items():
            algo = AsyncBitConvergenceVectorized(keys, CFG, tag_seed=1, unique_tags=True)
            eng = VectorizedEngine(
                StaticDynamicGraph(families.random_regular(n, 4, seed=0)),
                algo,
                seed=engine_seed,
            )
            res = eng.run(500_000)
            assert res.stabilized
            assert res.rounds == rounds


class TestSelfStabilization:
    def test_joined_components_restabilize(self):
        comp_n, degree = 8, 3
        n = 2 * comp_n
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=degree + 1, beta=1.0)
        keys = uid_keys_random(n, 0)
        all_tags = draw_id_tags(n, cfg, 1, unique=True)
        g1 = families.random_regular(comp_n, degree, seed=2)
        g2 = families.random_regular(comp_n, degree, seed=3)
        states = []
        for comp, g, sl in ((0, g1, slice(0, comp_n)), (1, g2, slice(comp_n, n))):
            algo = AsyncBitConvergenceVectorized(
                keys[sl], cfg, initial_pairs=(all_tags[sl], keys[sl])
            )
            eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=4 + comp)
            assert eng.run(500_000).stabilized
            states.append((eng.state.ctag.copy(), eng.state.ckey.copy()))
        union = g1.union(g2, [(0, 0)])
        init = (
            np.concatenate([states[0][0], states[1][0]]),
            np.concatenate([states[0][1], states[1][1]]),
        )
        algo = AsyncBitConvergenceVectorized(keys, cfg, initial_pairs=init)
        eng = VectorizedEngine(StaticDynamicGraph(union), algo, seed=9)
        res = eng.run(500_000)
        assert res.stabilized
        # The winner is the minimum over the *joined* initial pairs.
        order = np.lexsort((init[1], init[0]))
        assert eng.state.target_key == init[1][order[0]]

    def test_initial_pairs_shape_validated(self):
        keys = uid_keys_random(4, 0)
        algo = AsyncBitConvergenceVectorized(
            keys, CFG, initial_pairs=(np.zeros(3), np.zeros(3))
        )
        with pytest.raises(ValueError):
            VectorizedEngine(
                StaticDynamicGraph(families.ring(4)), algo, seed=0
            )
