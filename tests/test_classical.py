"""Tests for the classical telephone model baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classical import classical_push_pull_leader, classical_push_pull_rumor
from repro.graphs import families
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph, StaticDynamicGraph


class TestClassicalRumor:
    def test_completes_on_clique_fast(self):
        dg = StaticDynamicGraph(families.clique(64))
        res = classical_push_pull_rumor(dg, 0, max_rounds=1000, seed=0)
        assert res.stabilized
        # Epidemic spreading: O(log n) rounds on a clique.
        assert res.rounds <= 30

    def test_star_pull_is_fast(self):
        # Every leaf calls the hub each round and pulls: ~1-2 rounds once
        # the hub knows; hub starts informed here.
        dg = StaticDynamicGraph(families.star(50))
        res = classical_push_pull_rumor(dg, 0, max_rounds=100, seed=1)
        assert res.stabilized and res.rounds <= 5

    def test_completes_on_path(self):
        dg = StaticDynamicGraph(families.path(16))
        res = classical_push_pull_rumor(dg, 0, max_rounds=5000, seed=0)
        assert res.stabilized

    def test_honours_horizon(self):
        dg = StaticDynamicGraph(families.path(64))
        res = classical_push_pull_rumor(dg, 0, max_rounds=2, seed=0)
        assert not res.stabilized and res.rounds == 2

    def test_source_validated(self):
        dg = StaticDynamicGraph(families.ring(5))
        with pytest.raises(ValueError):
            classical_push_pull_rumor(dg, 9, max_rounds=10)

    def test_works_under_churn(self):
        base = families.double_star(8)
        dg = PeriodicRelabelDynamicGraph(base, 1, seed=3)
        res = classical_push_pull_rumor(dg, 2, max_rounds=10_000, seed=0)
        assert res.stabilized

    def test_deterministic(self):
        dg = StaticDynamicGraph(families.ring(12))
        a = classical_push_pull_rumor(dg, 0, max_rounds=1000, seed=5).rounds
        b = classical_push_pull_rumor(dg, 0, max_rounds=1000, seed=5).rounds
        assert a == b


class TestClassicalLeader:
    def test_elects_minimum(self):
        rng = np.random.default_rng(0)
        keys = rng.permutation(32).astype(np.int64)
        dg = StaticDynamicGraph(families.clique(32))
        res = classical_push_pull_leader(dg, keys, max_rounds=1000, seed=0)
        assert res.stabilized
        assert res.rounds <= 30

    def test_completes_on_ring(self):
        keys = np.arange(10, dtype=np.int64)[::-1].copy()
        dg = StaticDynamicGraph(families.ring(10))
        res = classical_push_pull_leader(dg, keys, max_rounds=5000, seed=0)
        assert res.stabilized

    def test_keys_shape_validated(self):
        dg = StaticDynamicGraph(families.ring(5))
        with pytest.raises(ValueError):
            classical_push_pull_leader(dg, np.arange(4), max_rounds=10)

    def test_faster_than_mobile_on_double_star(self):
        """The headline E10 effect in miniature: unbounded accepts win."""
        from repro.algorithms.push_pull import PushPullVectorized
        from repro.core.vectorized import VectorizedEngine

        base = families.double_star(16)
        dg = StaticDynamicGraph(base)
        classical = np.median(
            [
                classical_push_pull_rumor(dg, 2, max_rounds=10**6, seed=s).rounds
                for s in range(5)
            ]
        )
        mobile = np.median(
            [
                VectorizedEngine(
                    dg, PushPullVectorized(np.array([2])), seed=s
                ).run(10**6).rounds
                for s in range(5)
            ]
        )
        assert classical * 2 < mobile  # Delta^2 vs Delta: a wide gap
