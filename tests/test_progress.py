"""Tests for repro.analysis.progress: spread curves and phase classification."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms.bit_convergence import (
    BitConvergenceConfig,
    BitConvergenceVectorized,
)
from repro.algorithms.push_pull import PushPullVectorized
from repro.analysis.progress import (
    PhaseClassifier,
    PhaseRecord,
    SpreadCurve,
    sparkline,
)
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.harness.experiments import uid_keys_random


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_flat(self):
        s = sparkline([5, 5, 5])
        assert s == "▁▁▁"

    def test_monotone_ramps(self):
        s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert s[0] == "▁" and s[-1] == "█"

    def test_downsampling(self):
        s = sparkline(range(1000), width=40)
        assert len(s) <= 40


class TestSpreadCurve:
    def make_curve(self, counts):
        c = SpreadCurve()
        for x in counts:
            c.record(x)
        return c

    def test_time_to_fraction(self):
        c = self.make_curve([1, 2, 4, 8, 16])
        assert c.time_to_fraction(16, 0.5) == 4
        assert c.time_to_fraction(16, 1.0) == 5
        assert c.time_to_fraction(32, 1.0) is None

    def test_fraction_validation(self):
        c = self.make_curve([1, 2])
        with pytest.raises(ValueError):
            c.time_to_fraction(4, 0.0)

    def test_growth_factors(self):
        c = self.make_curve([1, 2, 4, 8])
        assert np.allclose(c.growth_factors(), [2, 2, 2])
        assert np.allclose(c.growth_factors(window=2), [4, 4])

    def test_growth_factor_window_validation(self):
        with pytest.raises(ValueError):
            self.make_curve([1, 2]).growth_factors(window=0)

    def test_integration_with_push_pull(self):
        n = 24
        g = families.random_regular(n, 4, seed=0)
        algo = PushPullVectorized(np.array([0]))
        eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=1)
        curve = SpreadCurve()
        curve.record(algo.informed_count(eng.state))
        for r in range(1, 5000):
            eng.step(r)
            curve.record(algo.informed_count(eng.state))
            if algo.converged(eng.state):
                break
        assert curve.counts[0] == 1 and curve.counts[-1] == n
        assert curve.time_to_fraction(n, 1.0) is not None
        # Monotone curve => all growth factors >= 1.
        assert (curve.growth_factors() >= 1).all()


class TestPhaseRecord:
    def test_good_disjunction(self):
        assert PhaseRecord(1, 2, 3, advanced=True, grew=False).good
        assert PhaseRecord(1, 2, 3, advanced=False, grew=True).good
        assert not PhaseRecord(1, 2, 3, advanced=False, grew=False).good


class TestPhaseClassifier:
    def _make(self, seed=0, n=16, degree=4):
        g = families.random_regular(n, degree, seed=seed)
        keys = uid_keys_random(n, seed)
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=degree, beta=1.0)
        algo = BitConvergenceVectorized(keys, cfg, tag_seed=seed, unique_tags=True)
        eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=seed)
        return PhaseClassifier(eng, alpha=0.5, tau=math.inf)

    def test_requires_bit_convergence(self):
        g = families.ring(6)
        algo = PushPullVectorized(np.array([0]))
        eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=0)
        with pytest.raises(TypeError):
            PhaseClassifier(eng, alpha=0.5, tau=1)

    def test_stops_at_convergence(self):
        clf = self._make()
        recs = clf.run(200)
        # Converged well before 200 phases; the last observed b_i is real.
        assert 0 < len(recs) < 200
        assert all(r.b_i is not None for r in recs)

    def test_phase_numbers_sequential(self):
        clf = self._make(seed=3)
        recs = clf.run(100)
        assert [r.phase for r in recs] == list(range(1, len(recs) + 1))

    def test_good_fraction_requires_run(self):
        clf = self._make(seed=4)
        with pytest.raises(ValueError):
            _ = clf.good_fraction

    def test_good_fraction_bounds(self):
        clf = self._make(seed=5)
        clf.run(100)
        assert 0.0 <= clf.good_fraction <= 1.0

    def test_b_i_monotone_across_records(self):
        clf = self._make(seed=6)
        recs = clf.run(100)
        bis = [r.b_i for r in recs]
        assert bis == sorted(bis)  # Lemma VII.1 again, via the classifier
