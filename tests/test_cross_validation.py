"""Cross-validation: reference engine vs vectorized engine.

The two engines implement the same model semantics with different code
paths (per-node Python objects vs array kernels).  They cannot be compared
trace-for-trace (their RNG consumption orders differ), so we compare the
*distributions* of rounds-to-stabilize over repeated seeded trials: the
medians must agree within a generous tolerance.  A semantic divergence
(e.g. an acceptance-rule bug in one engine) shifts these distributions by
integer factors, far outside the tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bit_convergence import (
    BitConvergenceConfig,
    BitConvergenceNode,
    BitConvergenceVectorized,
    draw_id_tags,
)
from repro.algorithms.blind_gossip import BlindGossipVectorized, make_blind_gossip_nodes
from repro.algorithms.ppush import PPushVectorized, make_ppush_nodes
from repro.algorithms.push_pull import PushPullVectorized, make_push_pull_nodes
from repro.core.engine import ReferenceEngine
from repro.core.monitor import all_leaders_are, rumor_complete
from repro.core.payload import UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph

TRIALS = 15


def median_ratio(ref_rounds, vec_rounds):
    return float(np.median(ref_rounds)) / max(float(np.median(vec_rounds)), 1e-9)


class TestBlindGossipEquivalence:
    @pytest.mark.parametrize(
        "graph",
        [families.clique(16), families.double_star(5), families.ring(12)],
        ids=["clique", "double_star", "ring"],
    )
    def test_round_distributions_match(self, graph):
        n = graph.n
        dg = StaticDynamicGraph(graph)
        ref_rounds, vec_rounds = [], []
        for t in range(TRIALS):
            us = UIDSpace(n, seed=100 + t)
            nodes = make_blind_gossip_nodes(us)
            eng = ReferenceEngine(dg, nodes, seed=t)
            res = eng.run(200_000, all_leaders_are(us.min_uid()))
            assert res.stabilized
            ref_rounds.append(res.rounds)

            keys = np.array([us.uid_of(v)._key for v in range(n)], dtype=np.int64)
            veng = VectorizedEngine(dg, BlindGossipVectorized(keys), seed=t)
            vres = veng.run(200_000)
            assert vres.stabilized
            vec_rounds.append(vres.rounds)
        assert 0.5 < median_ratio(ref_rounds, vec_rounds) < 2.0


class TestPushPullEquivalence:
    def test_round_distributions_match(self):
        graph = families.double_star(6)
        dg = StaticDynamicGraph(graph)
        ref_rounds, vec_rounds = [], []
        for t in range(TRIALS):
            us = UIDSpace(graph.n, seed=t)
            nodes = make_push_pull_nodes(us, sources={2})
            eng = ReferenceEngine(dg, nodes, seed=t)
            res = eng.run(300_000, rumor_complete)
            assert res.stabilized
            ref_rounds.append(res.rounds)

            veng = VectorizedEngine(dg, PushPullVectorized(np.array([2])), seed=t)
            vres = veng.run(300_000)
            assert vres.stabilized
            vec_rounds.append(vres.rounds)
        assert 0.5 < median_ratio(ref_rounds, vec_rounds) < 2.0


class TestPPushEquivalence:
    def test_round_distributions_match(self):
        graph = families.star(24)
        dg = StaticDynamicGraph(graph)
        ref_rounds, vec_rounds = [], []
        for t in range(TRIALS):
            us = UIDSpace(graph.n, seed=t)
            nodes = make_ppush_nodes(us, sources={0})
            eng = ReferenceEngine(dg, nodes, seed=t)
            res = eng.run(100_000, rumor_complete)
            assert res.stabilized
            ref_rounds.append(res.rounds)

            veng = VectorizedEngine(dg, PPushVectorized(np.array([0])), seed=t)
            vres = veng.run(100_000)
            assert vres.stabilized
            vec_rounds.append(vres.rounds)
        # PPUSH on a star is nearly deterministic (one leaf per round), so
        # the distributions should be very close.
        assert 0.7 < median_ratio(ref_rounds, vec_rounds) < 1.5


class TestKGossipEquivalence:
    def test_round_distributions_match(self):
        from repro.algorithms.k_gossip import KGossipVectorized, make_k_gossip_nodes

        graph = families.clique(10)
        dg = StaticDynamicGraph(graph)
        ref_rounds, vec_rounds = [], []
        for t in range(TRIALS):
            us = UIDSpace(graph.n, seed=t)
            nodes = make_k_gossip_nodes(us)
            eng = ReferenceEngine(dg, nodes, seed=t)
            res = eng.run(100_000, lambda ps: all(p.complete for p in ps))
            assert res.stabilized
            ref_rounds.append(res.rounds)

            veng = VectorizedEngine(dg, KGossipVectorized(), seed=t)
            vres = veng.run(100_000)
            assert vres.stabilized
            vec_rounds.append(vres.rounds)
        assert 0.5 < median_ratio(ref_rounds, vec_rounds) < 2.0


class TestAveragingEquivalence:
    def test_round_distributions_match(self):
        from repro.algorithms.averaging import (
            AveragingVectorized,
            make_averaging_nodes,
        )

        graph = families.random_regular(12, 4, seed=0)
        dg = StaticDynamicGraph(graph)
        values = np.random.default_rng(0).random(graph.n)
        mean = values.mean()
        eps = 1e-3
        ref_rounds, vec_rounds = [], []
        for t in range(TRIALS):
            us = UIDSpace(graph.n, seed=t)
            nodes = make_averaging_nodes(us, values)
            eng = ReferenceEngine(dg, nodes, seed=t)
            res = eng.run(
                200_000, lambda ps: max(abs(p.value - mean) for p in ps) < eps
            )
            assert res.stabilized
            ref_rounds.append(res.rounds)

            veng = VectorizedEngine(dg, AveragingVectorized(values, eps=eps), seed=t)
            vres = veng.run(200_000)
            assert vres.stabilized
            vec_rounds.append(vres.rounds)
        assert 0.5 < median_ratio(ref_rounds, vec_rounds) < 2.0


class TestBitConvergenceEquivalence:
    def test_round_distributions_match(self):
        graph = families.random_regular(16, 4, seed=0)
        dg = StaticDynamicGraph(graph)
        cfg = BitConvergenceConfig(n_upper=16, delta_bound=4, beta=1.0)
        ref_rounds, vec_rounds = [], []
        for t in range(TRIALS):
            us = UIDSpace(graph.n, seed=t)
            tags = draw_id_tags(graph.n, cfg, seed=t, unique=True)
            nodes = [
                BitConvergenceNode(v, us.uid_of(v), int(tags[v]), cfg)
                for v in range(graph.n)
            ]
            winner = min(nodes, key=lambda nd: nd.committed_pair).uid
            eng = ReferenceEngine(dg, nodes, seed=t)
            res = eng.run(300_000, all_leaders_are(winner))
            assert res.stabilized
            ref_rounds.append(res.rounds)

            keys = np.array([us.uid_of(v)._key for v in range(graph.n)], dtype=np.int64)
            algo = BitConvergenceVectorized(keys, cfg, tag_seed=t, unique_tags=True)
            veng = VectorizedEngine(dg, algo, seed=t)
            vres = veng.run(300_000)
            assert vres.stabilized
            vec_rounds.append(vres.rounds)
        # Vectorized convergence additionally requires pending==target
        # (strictly absorbing), so allow a wider band; a semantic bug
        # would blow far past it.
        assert 0.4 < median_ratio(ref_rounds, vec_rounds) < 2.5
