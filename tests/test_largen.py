"""Tests for the chunked large-n engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.blind_gossip import BlindGossipVectorized
from repro.core.largen import DEFAULT_CHUNK_NODES, LargeNEngine
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.harness.experiments import uid_keys_random


def _engine(n, seed, *, degree=4, chunk_nodes=DEFAULT_CHUNK_NODES):
    g = families.random_regular(n, degree, seed=7)
    keys = uid_keys_random(n, 11)
    return LargeNEngine(
        StaticDynamicGraph(g),
        BlindGossipVectorized(keys),
        seed=seed,
        chunk_nodes=chunk_nodes,
    )


class TestConstruction:
    def test_requires_sparse_compatible_algorithm(self):
        from repro.algorithms.ppush import PPushVectorized

        g = families.random_regular(16, 4, seed=7)
        with pytest.raises(ValueError, match="sparse_compatible"):
            LargeNEngine(
                StaticDynamicGraph(g), PPushVectorized(np.arange(4)), seed=0
            )

    def test_rejects_tagged_algorithms(self):
        class Tagged(BlindGossipVectorized):
            tag_length = 1

        g = families.random_regular(16, 4, seed=7)
        with pytest.raises(ValueError, match="b = 0"):
            LargeNEngine(
                StaticDynamicGraph(g), Tagged(uid_keys_random(16, 0)), seed=0
            )

    def test_rejects_adaptive_graphs(self):
        from repro.graphs.adversary import PackingAdversary

        g = families.random_regular(16, 4, seed=7)
        with pytest.raises(ValueError, match="[Aa]daptive"):
            LargeNEngine(
                PackingAdversary(g), BlindGossipVectorized(uid_keys_random(16, 0))
            )

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_nodes"):
            _engine(16, 0, chunk_nodes=0)

    def test_rejects_bad_max_rounds(self):
        with pytest.raises(ValueError, match="max_rounds"):
            _engine(16, 0).run(0)

    def test_initial_state_matches_vectorized(self):
        """Same seed => bit-identical starting state as the vectorized
        engine (both derive it from the "vec-init" stream)."""
        g = families.random_regular(64, 4, seed=7)
        keys = uid_keys_random(64, 11)
        a = LargeNEngine(StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=3)
        b = VectorizedEngine(StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=3)
        assert np.array_equal(a.state.best, b.state.best)
        assert a.state.target == b.state.target


class TestRuns:
    def test_stabilizes_and_elects_minimum(self):
        eng = _engine(512, 0, chunk_nodes=128)
        res = eng.run(5000)
        assert res.stabilized
        assert (eng.state.best == eng.state.target).all()
        assert res.trace is None

    def test_deterministic_in_seed_and_chunk(self):
        a = _engine(256, 4, chunk_nodes=64)
        b = _engine(256, 4, chunk_nodes=64)
        ra, rb = a.run(5000), b.run(5000)
        assert ra.rounds == rb.rounds
        assert np.array_equal(a.state.best, b.state.best)
        assert a.connections_made == b.connections_made

    def test_chunk_size_changes_sample_not_semantics(self):
        for chunk in (32, 100, 10_000):
            eng = _engine(256, 1, chunk_nodes=chunk)
            res = eng.run(5000)
            assert res.stabilized
            assert (eng.state.best == eng.state.target).all()

    def test_distribution_band_vs_vectorized(self):
        """Chunked rounds are a different sampling of the same round
        distribution as the dense vectorized engine."""
        g = families.random_regular(96, 4, seed=7)
        keys = uid_keys_random(96, 11)
        largen = [
            LargeNEngine(
                StaticDynamicGraph(g), BlindGossipVectorized(keys),
                seed=s, chunk_nodes=32,
            ).run(5000).rounds
            for s in range(25)
        ]
        dense = [
            VectorizedEngine(
                StaticDynamicGraph(g), BlindGossipVectorized(keys),
                seed=s, sparse="off",
            ).run(5000).rounds
            for s in range(25)
        ]
        lo, hi = float(np.mean(largen)), float(np.mean(dense))
        assert lo <= 1.25 * hi and hi <= 1.25 * lo

    def test_check_every_quantizes_rounds(self):
        for check_every in (1, 4, 9):
            res = _engine(128, 2, chunk_nodes=64).run(5000, check_every=check_every)
            assert res.stabilized
            assert res.rounds % check_every == 0 or res.rounds == 5000

    def test_rounds_executed_tracks_result(self):
        eng = _engine(128, 3, chunk_nodes=64)
        res = eng.run(5000, check_every=6)
        assert eng.rounds_executed == res.rounds

    def test_sparse_endgame_engages(self):
        eng = _engine(512, 0, chunk_nodes=128)
        eng.run(5000)
        assert eng._undone_mask is not None
