"""Tests for the vectorized engine: same model semantics as the reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vectorized import VectorizedAlgorithm, VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph


class RecordingAlgo(VectorizedAlgorithm):
    """Everyone flips a coin to send; connections are recorded."""

    tag_length = 0

    def __init__(self, send_prob=0.5):
        self.send_prob = send_prob
        self.connections: list[tuple[int, int, int]] = []  # (round-ish, s, t)
        self._round = 0

    class State:
        def __init__(self, n):
            self.n = n
            self.done = False

    def init_state(self, n, rng):
        return self.State(n)

    def tags(self, state, local_rounds, active, rng):
        return np.zeros(state.n, dtype=np.int64)

    def senders(self, state, tags, local_rounds, active, rng):
        return rng.random(state.n) < self.send_prob

    def exchange(self, state, proposers, acceptors):
        self._round += 1
        for s, t in zip(proposers, acceptors):
            self.connections.append((self._round, int(s), int(t)))

    def converged(self, state):
        return state.done


class TestVectorizedMechanics:
    def test_connections_are_disjoint_pairs(self):
        algo = RecordingAlgo()
        eng = VectorizedEngine(
            StaticDynamicGraph(families.clique(10)), algo, seed=0
        )
        eng.run(30, check_every=31)
        by_round: dict[int, list[int]] = {}
        for r, s, t in algo.connections:
            by_round.setdefault(r, []).extend([s, t])
        for r, nodes in by_round.items():
            assert len(nodes) == len(set(nodes))

    def test_connections_follow_edges(self):
        g = families.ring(10)
        algo = RecordingAlgo()
        eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=0)
        eng.run(30, check_every=31)
        for _, s, t in algo.connections:
            assert g.has_edge(s, t)

    def test_all_send_no_connections(self):
        algo = RecordingAlgo(send_prob=1.1)  # everyone always sends
        eng = VectorizedEngine(
            StaticDynamicGraph(families.clique(8)), algo, seed=0
        )
        eng.run(10, check_every=11)
        assert algo.connections == []

    def test_on_connections_callback(self):
        algo = RecordingAlgo()
        eng = VectorizedEngine(
            StaticDynamicGraph(families.clique(8)), algo, seed=0
        )
        seen = []
        eng.on_connections = lambda r, s, t: seen.append((r, s.size))
        eng.run(5, check_every=6)
        assert len(seen) == 5
        assert [r for r, _ in seen] == [1, 2, 3, 4, 5]

    def test_activation_gates_participation(self):
        g = families.path(3)
        algo = RecordingAlgo(send_prob=1.1)

        class HalfSend(RecordingAlgo):
            def senders(self, state, tags, local_rounds, active, rng):
                # Node 0 and 2 always send; node 1 listens.
                mask = np.array([True, False, True])
                return mask

        algo = HalfSend()
        eng = VectorizedEngine(
            StaticDynamicGraph(g), algo, seed=0, activation_rounds=[1, 3, 1]
        )
        eng.run(2, check_every=3)
        # Node 1 inactive in rounds 1-2: no possible connection.
        assert algo.connections == []
        eng2 = VectorizedEngine(
            StaticDynamicGraph(g), HalfSend(), seed=0, activation_rounds=[1, 1, 1]
        )
        algo2 = eng2.algo
        eng2.run(2, check_every=3)
        assert algo2.connections != []

    def test_run_result_counts(self):
        algo = RecordingAlgo()
        eng = VectorizedEngine(
            StaticDynamicGraph(families.ring(6)), algo, seed=0,
            activation_rounds=[1, 1, 1, 2, 1, 1],
        )
        res = eng.run(10, check_every=11)
        assert res.rounds == 10
        assert res.rounds_after_last_activation == 9
        assert not res.stabilized

    def test_convergence_stops_early(self):
        algo = RecordingAlgo()

        class StopAt3(RecordingAlgo):
            def end_round(self, state, round_index, local_rounds, active):
                if round_index >= 3:
                    state.done = True

        eng = VectorizedEngine(
            StaticDynamicGraph(families.ring(6)), StopAt3(), seed=0
        )
        res = eng.run(100)
        assert res.stabilized and res.rounds == 3

    def test_invalid_activation_rejected(self):
        with pytest.raises(ValueError):
            VectorizedEngine(
                StaticDynamicGraph(families.ring(4)),
                RecordingAlgo(),
                activation_rounds=[0, 1, 1, 1],
            )

    def test_max_rounds_validation(self):
        eng = VectorizedEngine(
            StaticDynamicGraph(families.ring(4)), RecordingAlgo(), seed=0
        )
        with pytest.raises(ValueError):
            eng.run(0)

    def test_deterministic_given_seed(self):
        def run_once():
            algo = RecordingAlgo()
            eng = VectorizedEngine(
                StaticDynamicGraph(families.clique(8)), algo, seed=4
            )
            eng.run(10, check_every=11)
            return algo.connections

        assert run_once() == run_once()
