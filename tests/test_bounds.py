"""Tests for repro.analysis.bounds: the paper's closed forms."""

from __future__ import annotations

import math

import pytest

from repro.analysis import bounds


class TestTauHat:
    def test_caps_at_log_delta(self):
        assert bounds.tau_hat(100, 16) == 4.0

    def test_below_cap_identity(self):
        assert bounds.tau_hat(2, 16) == 2.0

    def test_minimum_one(self):
        assert bounds.tau_hat(1, 2) >= 1.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            bounds.tau_hat(0, 8)


class TestFApprox:
    def test_r_one_is_delta_log(self):
        # f(1) = Delta * 1 * log n.
        assert bounds.f_approx(1, 16, 256) == pytest.approx(16 * 8)

    def test_r_log_delta_is_polylog(self):
        # f(log Delta) = 2 * log Delta * log n.
        assert bounds.f_approx(4, 16, 256) == pytest.approx(2 * 4 * 8)

    def test_decreasing_then_flat_shape(self):
        # f decreases steeply from r=1 and levels off near r=log Delta.
        delta, n = 1024, 4096
        vals = [bounds.f_approx(r, delta, n) for r in range(1, 11)]
        assert vals[0] > 10 * vals[4]
        assert min(vals) == min(vals[4:])  # the minimum sits in the tail

    def test_rejects_r_below_one(self):
        with pytest.raises(ValueError):
            bounds.f_approx(0.5, 8, 64)


class TestUpperBounds:
    def test_blind_gossip_grows_with_delta_squared(self):
        b1 = bounds.blind_gossip_upper(64, 0.5, 8)
        b2 = bounds.blind_gossip_upper(64, 0.5, 16)
        assert b2 / b1 == pytest.approx(4.0)

    def test_blind_gossip_inverse_alpha(self):
        b1 = bounds.blind_gossip_upper(64, 0.5, 8)
        b2 = bounds.blind_gossip_upper(64, 0.25, 8)
        assert b2 / b1 == pytest.approx(2.0)

    def test_push_pull_equals_blind_gossip(self):
        assert bounds.push_pull_upper(100, 0.3, 10) == bounds.blind_gossip_upper(
            100, 0.3, 10
        )

    def test_lower_bound_sqrt_alpha(self):
        l1 = bounds.blind_gossip_lower(0.25, 8)
        l2 = bounds.blind_gossip_lower(0.0625, 8)
        assert l2 / l1 == pytest.approx(2.0)

    def test_bit_convergence_improves_with_tau(self):
        n, alpha, delta = 1024, 0.5, 64
        vals = [bounds.bit_convergence_upper(n, alpha, delta, t) for t in (1, 2, 6)]
        assert vals[0] > vals[1] > vals[2]

    def test_bit_convergence_flattens_past_log_delta(self):
        n, alpha, delta = 1024, 0.5, 16
        at_log = bounds.bit_convergence_upper(n, alpha, delta, 4)
        past = bounds.bit_convergence_upper(n, alpha, delta, 64)
        assert at_log == pytest.approx(past)

    def test_async_is_log3_slower(self):
        n, alpha, delta, tau = 4096, 0.5, 16, 2
        sync = bounds.bit_convergence_upper(n, alpha, delta, tau)
        asyn = bounds.async_bit_convergence_upper(n, alpha, delta, tau)
        assert asyn / sync == pytest.approx(bounds.log2c(n) ** 3)

    def test_alpha_validation(self):
        for fn in (
            lambda a: bounds.blind_gossip_upper(10, a, 4),
            lambda a: bounds.bit_convergence_upper(10, a, 4, 1),
            lambda a: bounds.async_bit_convergence_upper(10, a, 4, 1),
            lambda a: bounds.blind_gossip_lower(a, 4),
            lambda a: bounds.classical_push_pull_upper(10, a),
        ):
            with pytest.raises(ValueError):
                fn(0.0)
            with pytest.raises(ValueError):
                fn(1.5)


class TestStructureAccounting:
    def test_tag_bits(self):
        assert bounds.tag_bits(256, beta=2.0) == 16
        assert bounds.tag_bits(256, beta=1.0) == 8

    def test_tag_bits_validation(self):
        with pytest.raises(ValueError):
            bounds.tag_bits(1)
        with pytest.raises(ValueError):
            bounds.tag_bits(16, beta=0.5)

    def test_async_tag_length_is_loglog(self):
        # b = ceil(log k) + 1.
        assert bounds.async_tag_length(8) == 4
        assert bounds.async_tag_length(5) == 4
        assert bounds.async_tag_length(1) == 2

    def test_group_length(self):
        assert bounds.group_length(16) == 8  # 2 * log2(16)
        assert bounds.group_length(2) == 2
        assert bounds.group_length(1) == 2  # floor of 2

    def test_phase_length(self):
        assert bounds.phase_length(16, 10) == 80

    def test_t_max_positive_and_monotone_in_inverse_alpha(self):
        t1 = bounds.t_max_good_phases(0.5, 16, 2, 256)
        t2 = bounds.t_max_good_phases(0.25, 16, 2, 256)
        assert 0 < t1 < t2
