"""Tests for repro.util.bits: MSB-first tag bit manipulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.bits import (
    bit_at,
    bits_at,
    bits_to_int,
    int_to_bits,
    most_significant_difference,
    msb_difference_position,
)


class TestIntToBits:
    def test_basic(self):
        assert int_to_bits(0b101, 3).tolist() == [1, 0, 1]

    def test_padding(self):
        assert int_to_bits(1, 4).tolist() == [0, 0, 0, 1]

    def test_zero(self):
        assert int_to_bits(0, 5).tolist() == [0] * 5

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            int_to_bits(0, 0)


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 20)) == value


class TestBitAt:
    def test_msb_is_position_1(self):
        # 0b100 in width 3: position 1 (MSB) is 1.
        assert bit_at(0b100, 1, 3) == 1
        assert bit_at(0b100, 2, 3) == 0
        assert bit_at(0b100, 3, 3) == 0

    def test_lsb_is_position_width(self):
        assert bit_at(0b001, 3, 3) == 1

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            bit_at(1, 0, 3)
        with pytest.raises(ValueError):
            bit_at(1, 4, 3)

    @given(st.integers(0, 255), st.integers(1, 8))
    def test_matches_int_to_bits(self, value, pos):
        assert bit_at(value, pos, 8) == int(int_to_bits(value, 8)[pos - 1])


class TestBitsAt:
    def test_vectorized_matches_scalar(self):
        values = np.array([0, 1, 5, 7, 6])
        for pos in (1, 2, 3):
            expected = [bit_at(int(v), pos, 3) for v in values]
            assert bits_at(values, pos, 3).tolist() == expected

    def test_rejects_bad_position(self):
        with pytest.raises(ValueError):
            bits_at(np.array([1]), 5, 3)


class TestMostSignificantDifference:
    def test_equal_is_none(self):
        assert most_significant_difference(5, 5, 4) is None

    def test_msb_difference(self):
        # 0b1000 vs 0b0000 differ at position 1.
        assert most_significant_difference(8, 0, 4) == 1

    def test_lsb_difference(self):
        assert most_significant_difference(0, 1, 4) == 4

    @given(st.integers(0, 1023), st.integers(0, 1023))
    def test_agrees_with_bitwise_scan(self, a, b):
        got = most_significant_difference(a, b, 10)
        expected = None
        for i in range(1, 11):
            if bit_at(a, i, 10) != bit_at(b, i, 10):
                expected = i
                break
        assert got == expected


class TestMsbDifferencePosition:
    def test_all_equal(self):
        assert msb_difference_position(np.array([5, 5, 5]), 4) is None

    def test_reports_extremes(self):
        # min=0b0010, max=0b1010 -> differ at position 1.
        assert msb_difference_position(np.array([2, 10, 2]), 4) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            msb_difference_position(np.array([], dtype=np.int64), 4)

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=12))
    def test_agrees_with_pairwise_scan(self, values):
        arr = np.array(values)
        got = msb_difference_position(arr, 8)
        best = None
        for i in range(len(values)):
            for j in range(len(values)):
                d = most_significant_difference(values[i], values[j], 8)
                if d is not None and (best is None or d < best):
                    best = d
        assert got == best
