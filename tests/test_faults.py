"""Tests for the declarative fault-injection subsystem (``repro.faults``).

Covers the schema layer (validation, JSON round-trip, crash-schedule
bookkeeping), the run-time applicators (masks, drops, tag flips, victim
draws), engine behaviour under each fault model, the empty-plan ⇒
bit-identical-to-no-plan guarantee for every tier, and the seeding
contract: fault randomness derives from the trial seed on its own stream,
so the same plan + seed replays identically across processes and the
batched engine, and an unfired plan consumes zero algorithm draws.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.blind_gossip import (
    BlindGossipBatched,
    BlindGossipVectorized,
    make_blind_gossip_nodes,
)
from repro.core.batched import BatchedVectorizedEngine
from repro.core.engine import ReferenceEngine
from repro.core.monitor import all_leaders_are, all_leaders_equal
from repro.core.payload import UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.faults import (
    BatchedFaultState,
    ConnectionDropModel,
    CrashSchedule,
    CrashWindow,
    FaultPlan,
    SingleFaultState,
    StateCorruptionEvent,
    TagCorruptionModel,
    example_plan,
    random_crash_schedule,
)
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.harness.runner import run_trials, run_trials_batched
from repro.util.rng import make_rng


def keys_for(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).permutation(n).astype(np.int64)


# A plan that exercises every model; module-level so the multiprocessing
# determinism test can pickle builders that reference it.
_MIXED_PLAN = FaultPlan(
    crashes=CrashSchedule(
        (
            CrashWindow(node=2, start=4, end=12, reset_on_rejoin=True),
            CrashWindow(node=5, start=8, end=20, reset_on_rejoin=False),
        )
    ),
    connection_drop=ConnectionDropModel(p=0.3),
    state_corruption=(StateCorruptionEvent(round=15, fraction=0.25),),
)


def _build_vec_mixed(trial_seed: int) -> VectorizedEngine:
    """Module-level (picklable) builder for run_trials(processes=K)."""
    graph = families.random_regular(16, 4, seed=0)
    return VectorizedEngine(
        StaticDynamicGraph(graph),
        BlindGossipVectorized(keys_for(16)),
        seed=trial_seed,
        fault_plan=_MIXED_PLAN,
    )


class TestSchemaValidation:
    def test_crash_window_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            CrashWindow(node=-1, start=1)
        with pytest.raises(ValueError):
            CrashWindow(node=0, start=0)
        with pytest.raises(ValueError):
            CrashWindow(node=0, start=5, end=4)

    def test_drop_model_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            ConnectionDropModel(p=1.0)
        with pytest.raises(ValueError):
            ConnectionDropModel(p=-0.1)

    def test_tag_model_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            TagCorruptionModel(q=1.0)

    def test_corruption_event_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            StateCorruptionEvent(round=0, fraction=0.5)
        with pytest.raises(ValueError):
            StateCorruptionEvent(round=1, fraction=0.0)
        with pytest.raises(ValueError):
            StateCorruptionEvent(round=1, fraction=1.5)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict({"connection_drop": {"p": 0.1}, "typo": 1})

    def test_validate_for_checks_node_indices(self):
        plan = FaultPlan(crashes=CrashSchedule((CrashWindow(node=5, start=1),)))
        plan.validate_for(6)
        with pytest.raises(ValueError, match="node 5"):
            plan.validate_for(5)

    def test_emptiness(self):
        assert FaultPlan().is_empty()
        assert FaultPlan(connection_drop=ConnectionDropModel(p=0.0)).is_empty()
        assert FaultPlan(crashes=CrashSchedule(())).is_empty()
        assert not example_plan().is_empty()

    def test_engine_rejects_out_of_range_plan(self):
        plan = FaultPlan(crashes=CrashSchedule((CrashWindow(node=50, start=1),)))
        with pytest.raises(ValueError):
            VectorizedEngine(
                StaticDynamicGraph(families.clique(8)),
                BlindGossipVectorized(keys_for(8)),
                seed=0,
                fault_plan=plan,
            )


class TestJsonRoundTrip:
    def test_example_plan_round_trips(self):
        plan = example_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_mixed_plan_round_trips(self):
        assert FaultPlan.from_json(_MIXED_PLAN.to_json()) == _MIXED_PLAN

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        example_plan().to_file(path)
        assert FaultPlan.from_file(path) == example_plan()

    def test_empty_plan_serializes_to_nothing(self):
        assert FaultPlan().to_dict() == {}
        assert FaultPlan.from_dict({}).is_empty()

    def test_describe_mentions_every_model(self):
        text = example_plan().describe()
        for fragment in ("crash", "drop", "flip", "corruption", "membership", "quiesce"):
            assert fragment in text
        assert FaultPlan().describe() == "empty plan (no faults)"


class TestCrashSchedule:
    def test_down_mask_over_window(self):
        sched = CrashSchedule((CrashWindow(node=1, start=3, end=5),))
        assert not sched.down_at(2, 4).any()
        for r in (3, 4, 5):
            assert sched.down_at(r, 4).tolist() == [False, True, False, False]
        assert not sched.down_at(6, 4).any()

    def test_permanent_crash_covers_forever(self):
        w = CrashWindow(node=0, start=10, end=None)
        assert not w.covers(9)
        assert w.covers(10) and w.covers(10**9)

    def test_transition_rounds_are_window_edges(self):
        sched = CrashSchedule(
            (CrashWindow(node=0, start=3, end=5), CrashWindow(node=1, start=7))
        )
        assert sched.transition_rounds() == frozenset({3, 6, 7})

    def test_rejoin_resets_basic(self):
        sched = CrashSchedule((CrashWindow(node=2, start=3, end=5),))
        assert sched.rejoin_resets() == {6: (2,)}

    def test_no_reset_without_flag_or_end(self):
        sched = CrashSchedule(
            (
                CrashWindow(node=0, start=3, end=5, reset_on_rejoin=False),
                CrashWindow(node=1, start=4, end=None),
            )
        )
        assert sched.rejoin_resets() == {}

    def test_adjacent_window_delays_reset(self):
        # Node 0's first window ends at 10, but an adjacent window still
        # holds it down through 15: the round-11 reset must not fire.
        sched = CrashSchedule(
            (
                CrashWindow(node=0, start=5, end=10),
                CrashWindow(node=0, start=11, end=15),
            )
        )
        assert sched.rejoin_resets() == {16: (0,)}

    def test_overlapping_windows_for_one_node_rejected(self):
        with pytest.raises(ValueError, match="overlapping crash windows"):
            CrashSchedule(
                (
                    CrashWindow(node=0, start=5, end=10),
                    CrashWindow(node=0, start=8, end=15),
                )
            )
        with pytest.raises(ValueError, match="overlapping"):
            CrashSchedule(
                (
                    CrashWindow(node=3, start=5, end=None),
                    CrashWindow(node=3, start=50, end=60),
                )
            )
        # Distinct nodes may overlap freely.
        CrashSchedule(
            (
                CrashWindow(node=0, start=5, end=10),
                CrashWindow(node=1, start=8, end=15),
            )
        )

    def test_quiesce_round(self):
        assert CrashSchedule((CrashWindow(node=0, start=3, end=5),)).quiesce_round() == 6
        assert CrashSchedule((CrashWindow(node=0, start=9),)).quiesce_round() == 9

    def test_plan_quiesce_combines_crashes_and_events(self):
        plan = FaultPlan(
            crashes=CrashSchedule((CrashWindow(node=0, start=3, end=5),)),
            state_corruption=(StateCorruptionEvent(round=40, fraction=0.5),),
        )
        assert plan.quiesce_round == 40

    def test_stationary_models_do_not_gate(self):
        plan = FaultPlan(
            connection_drop=ConnectionDropModel(p=0.5),
            tag_corruption=TagCorruptionModel(q=0.1),
        )
        assert plan.quiesce_round == 0


class TestRandomCrashSchedule:
    def test_windows_within_range_and_nodes_distinct(self):
        sched = random_crash_schedule(20, 8, first_round=5, last_round=40, seed=0)
        assert len(sched.windows) == 8
        assert len({w.node for w in sched.windows}) == 8
        for w in sched.windows:
            assert 5 <= w.start <= w.end <= 40
            assert w.reset_on_rejoin

    def test_deterministic_given_seed(self):
        a = random_crash_schedule(16, 5, first_round=2, last_round=30, seed=3)
        b = random_crash_schedule(16, 5, first_round=2, last_round=30, seed=3)
        assert a == b

    def test_zero_count_is_empty(self):
        assert random_crash_schedule(8, 0, first_round=1, last_round=5, seed=0).is_empty()

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            random_crash_schedule(8, 9, first_round=1, last_round=5, seed=0)


class TestSingleApplicator:
    def _state(self, plan, n=8, seed=0, tag_length=0):
        return SingleFaultState(plan, n, make_rng(seed, "faults"), tag_length=tag_length)

    def test_up_mask_none_without_crashes(self):
        fs = self._state(FaultPlan(connection_drop=ConnectionDropModel(p=0.5)))
        assert fs.up_mask(1) is None

    def test_up_mask_tracks_window(self):
        plan = FaultPlan(crashes=CrashSchedule((CrashWindow(node=3, start=2, end=4),)))
        fs = self._state(plan)
        assert fs.up_mask(1) is None
        for r in (2, 3, 4):
            up = fs.up_mask(r)
            assert up is not None and not up[3] and up.sum() == 7
        assert fs.up_mask(5) is None

    def test_connection_keep(self):
        fs = self._state(FaultPlan(connection_drop=ConnectionDropModel(p=0.4)))
        keep = fs.connection_keep(500)
        assert keep.shape == (500,) and keep.dtype == bool
        assert 0.35 < 1.0 - keep.mean() < 0.45  # ~p dropped
        assert fs.connection_keep(0) is None
        assert self._state(FaultPlan()).connection_keep(10) is None

    def test_corruption_victims_sizes(self):
        plan = FaultPlan(state_corruption=(StateCorruptionEvent(round=3, fraction=0.5),))
        fs = self._state(plan)
        assert fs.corruption_victims(2) == []
        (victims,) = fs.corruption_victims(3)
        assert victims.shape == (4,)
        assert len(set(victims.tolist())) == 4

    def test_corrupt_tags_spares_inactive_nodes(self):
        plan = FaultPlan(tag_corruption=TagCorruptionModel(q=0.9))
        fs = self._state(plan, tag_length=2)
        tags = np.zeros(200, dtype=np.int64)
        tags[100:] = -1  # inactive sentinel (reference engine)
        active = np.arange(200) < 100
        fs.corrupt_tags(tags, active)
        assert (tags[100:] == -1).all()
        assert (tags[:100] != 0).any()
        assert ((0 <= tags[:100]) & (tags[:100] < 4)).all()

    def test_corrupt_tags_noop_for_untagged_algorithms(self):
        plan = FaultPlan(tag_corruption=TagCorruptionModel(q=0.9))
        fs = self._state(plan, tag_length=0)
        tags = np.zeros(8, dtype=np.int64)
        fs.corrupt_tags(tags, np.ones(8, dtype=bool))
        assert (tags == 0).all()


class TestBatchedApplicator:
    def test_victims_are_per_replica_k_subsets(self):
        plan = FaultPlan(state_corruption=(StateCorruptionEvent(round=2, fraction=0.5),))
        fs = BatchedFaultState(plan, 10, 6, make_rng(0, "batched-faults", 6))
        (victims,) = fs.corruption_victims(2)
        assert victims.shape == (6, 5)
        for row in victims:
            assert len(set(row.tolist())) == 5
        # Replicas draw independently: rows are not all identical.
        assert any(not np.array_equal(victims[0], row) for row in victims[1:])

    def test_corrupt_tags_broadcasts_activity(self):
        plan = FaultPlan(tag_corruption=TagCorruptionModel(q=0.9))
        fs = BatchedFaultState(plan, 50, 4, make_rng(0, "batched-faults", 4), tag_length=3)
        tags = np.zeros((4, 50), dtype=np.int64)
        active = np.arange(50) < 25
        fs.corrupt_tags(tags, active)
        assert (tags[:, 25:] == 0).all()
        assert (tags[:, :25] != 0).any()


class TestReferenceEngineFaults:
    def test_crash_and_rejoin_with_reset_still_elects(self):
        g = families.random_regular(12, 4, seed=0)
        us = UIDSpace(g.n, seed=1)
        nodes = make_blind_gossip_nodes(us)
        plan = FaultPlan(
            crashes=CrashSchedule((CrashWindow(node=4, start=3, end=10),))
        )
        eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=2, fault_plan=plan)
        res = eng.run(50_000, all_leaders_are(us.min_uid()))
        assert res.stabilized
        # Convergence checks are gated until the plan quiesces.
        assert res.rounds >= plan.quiesce_round

    def test_permanently_crashed_node_state_freezes(self):
        g = families.clique(8)
        us = UIDSpace(g.n, seed=1)
        nodes = make_blind_gossip_nodes(us)
        victim = 0 if nodes[0].uid != us.min_uid() else 1
        plan = FaultPlan(
            crashes=CrashSchedule((CrashWindow(node=victim, start=1, end=None),))
        )
        eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=2, fault_plan=plan)
        eng.run(3000, lambda ps: False)
        # Down from round 1, the victim never hears anything.
        assert nodes[victim].leader == nodes[victim].uid
        # The survivors elect the global minimum around it.
        assert all(
            nodes[v].leader == us.min_uid() for v in range(g.n) if v != victim
        )

    def test_connection_drops_slow_but_do_not_block(self):
        g = families.clique(8)
        us = UIDSpace(g.n, seed=1)
        nodes = make_blind_gossip_nodes(us)
        plan = FaultPlan(connection_drop=ConnectionDropModel(p=0.5))
        eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=2, fault_plan=plan)
        res = eng.run(50_000, all_leaders_are(us.min_uid()))
        assert res.stabilized

    def test_recovers_from_state_corruption(self):
        g = families.random_regular(12, 4, seed=0)
        us = UIDSpace(g.n, seed=1)
        nodes = make_blind_gossip_nodes(us)
        plan = FaultPlan(
            state_corruption=(StateCorruptionEvent(round=5, fraction=0.5),)
        )
        eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=2, fault_plan=plan)
        res = eng.run(50_000, all_leaders_equal)
        assert res.stabilized
        assert res.rounds >= 5
        assert all_leaders_equal(nodes)

    def test_empty_plan_is_bit_identical_to_no_plan(self):
        g = families.random_regular(12, 4, seed=0)

        def outcome(fault_plan):
            us = UIDSpace(g.n, seed=1)
            nodes = make_blind_gossip_nodes(us)
            eng = ReferenceEngine(
                StaticDynamicGraph(g), nodes, seed=2, fault_plan=fault_plan
            )
            res = eng.run(50_000, all_leaders_are(us.min_uid()))
            return res.rounds, eng.connections_made, [p.leader for p in nodes]

        assert outcome(FaultPlan()) == outcome(None)


class TestVectorizedEngineFaults:
    def test_empty_plan_is_bit_identical_to_no_plan(self):
        g = families.random_regular(16, 4, seed=0)

        def outcome(fault_plan):
            eng = VectorizedEngine(
                StaticDynamicGraph(g),
                BlindGossipVectorized(keys_for(16)),
                seed=5,
                fault_plan=fault_plan,
            )
            res = eng.run(50_000)
            return res.rounds, eng.connections_made, eng.state.best.tolist()

        assert outcome(FaultPlan()) == outcome(None)

    def test_unfired_plan_consumes_no_algorithm_draws(self):
        # A plan whose only event lies beyond the horizon draws nothing
        # from the fault stream and must not perturb the algorithm
        # streams: states stay bit-identical to a faultless engine.
        g = families.random_regular(16, 4, seed=0)
        plan = FaultPlan(
            state_corruption=(StateCorruptionEvent(round=10_000, fraction=0.5),)
        )
        faulty = VectorizedEngine(
            StaticDynamicGraph(g), BlindGossipVectorized(keys_for(16)),
            seed=5, fault_plan=plan,
        )
        clean = VectorizedEngine(
            StaticDynamicGraph(g), BlindGossipVectorized(keys_for(16)), seed=5
        )
        for r in range(1, 60):
            faulty.step(r)
            clean.step(r)
        assert np.array_equal(faulty.state.best, clean.state.best)
        assert faulty.connections_made == clean.connections_made

    def test_convergence_gated_until_quiesce(self):
        g = families.clique(16)
        plan = FaultPlan(
            state_corruption=(StateCorruptionEvent(round=400, fraction=0.5),)
        )
        eng = VectorizedEngine(
            StaticDynamicGraph(g),
            BlindGossipVectorized(keys_for(16)),
            seed=5,
            fault_plan=plan,
        )
        res = eng.run(50_000)
        assert res.stabilized
        # A clique converges in tens of rounds; the gate must hold the
        # verdict until after the scheduled corruption.
        assert res.rounds >= 400


class TestBatchedEngineFaults:
    def test_empty_plan_is_bit_identical_to_no_plan(self):
        g = families.random_regular(16, 4, seed=0)
        keys = keys_for(16)

        def outcomes(fault_plan):
            return run_trials_batched(
                lambda seeds: (StaticDynamicGraph(g), BlindGossipBatched(keys)),
                trials=8,
                max_rounds=50_000,
                seed=7,
                fault_plan=fault_plan,
            )

        a, b = outcomes(FaultPlan()), outcomes(None)
        assert [(o.seed, o.rounds, o.stabilized) for o in a] == [
            (o.seed, o.rounds, o.stabilized) for o in b
        ]

    def test_mixed_plan_all_replicas_recover(self):
        g = families.random_regular(16, 4, seed=0)
        keys = keys_for(16)
        outs = run_trials_batched(
            lambda seeds: (StaticDynamicGraph(g), BlindGossipBatched(keys)),
            trials=8,
            max_rounds=100_000,
            seed=7,
            fault_plan=_MIXED_PLAN,
        )
        assert all(o.stabilized for o in outs)
        assert all(o.rounds >= _MIXED_PLAN.quiesce_round for o in outs)


class TestFaultDeterminism:
    """Satellite: same plan + seed replays identically everywhere."""

    def test_reference_engine_replays_identically(self):
        def run_once():
            g = families.random_regular(12, 4, seed=0)
            us = UIDSpace(g.n, seed=1)
            nodes = make_blind_gossip_nodes(us)
            eng = ReferenceEngine(
                StaticDynamicGraph(g), nodes, seed=9, fault_plan=_MIXED_PLAN
            )
            res = eng.run(50_000, all_leaders_equal)
            return res.rounds, eng.connections_made

        assert run_once() == run_once()

    def test_run_trials_identical_across_process_counts(self):
        kw = dict(trials=6, max_rounds=50_000, seed=11)
        serial = run_trials(_build_vec_mixed, processes=1, **kw)
        forked = run_trials(_build_vec_mixed, processes=2, **kw)
        assert [(o.seed, o.rounds, o.stabilized) for o in serial] == [
            (o.seed, o.rounds, o.stabilized) for o in forked
        ]

    def test_batched_replays_identically(self):
        g = families.random_regular(16, 4, seed=0)
        keys = keys_for(16)

        def once():
            return run_trials_batched(
                lambda seeds: (StaticDynamicGraph(g), BlindGossipBatched(keys)),
                trials=8,
                max_rounds=100_000,
                seed=13,
                fault_plan=_MIXED_PLAN,
            )

        a, b = once(), once()
        assert [(o.seed, o.rounds) for o in a] == [(o.seed, o.rounds) for o in b]
