"""Conformance harness: invariant checkers, trace parity, differential fuzzing.

Covers the three layers of the conformance subsystem:

* the invariant checkers flag hand-built traces that break exactly one
  model rule each (and stay silent on real engine traces);
* cross-engine trace parity — on forced dynamics (PPUSH over a static
  path) all three tiers record bit-identical traces, and trace capture
  never perturbs a run;
* the differential fuzzer is deterministic end to end, including its
  shrinking of failing configurations.

Also holds the regression tests for the two bugs this harness surfaced:
silent τ truncation and stabilization predicates counting permanently
crashed nodes.
"""

import numpy as np
import pytest

from repro.algorithms.blind_gossip import make_blind_gossip_nodes
from repro.algorithms.ppush import PPushBatched, PPushVectorized, make_ppush_nodes
from repro.conformance import (
    AcceptanceStats,
    FuzzConfig,
    check_batched_trace,
    check_trace,
    fuzz,
    run_config,
    shrink,
)
from repro.conformance.differential import sample_config
from repro.conformance.invariants import check_tau_stability
from repro.core.batched import BatchedVectorizedEngine
from repro.core.engine import ReferenceEngine
from repro.core.monitor import all_leaders_are, excluding_permanently_crashed, rumor_complete
from repro.core.payload import UIDSpace
from repro.core.trace import RoundRecord, Trace, traces_equal
from repro.core.vectorized import VectorizedEngine
from repro.faults.plan import CrashSchedule, CrashWindow, FaultPlan
from repro.graphs import families
from repro.graphs.dynamic import (
    DynamicGraph,
    PeriodicRelabelDynamicGraph,
    StaticDynamicGraph,
    epoch_of_round,
    validate_tau,
)
from repro.harness.runner import trial_seeds_for


def _record(
    n,
    r=1,
    proposals=(),
    connections=(),
    tags=None,
    active=None,
):
    return RoundRecord(
        round_index=r,
        proposals=np.asarray(list(proposals), dtype=np.int64).reshape(-1, 2),
        connections=np.asarray(list(connections), dtype=np.int64).reshape(-1, 2),
        tags=np.zeros(n, dtype=np.int64) if tags is None else np.asarray(tags, dtype=np.int64),
        active=np.ones(n, dtype=bool) if active is None else np.asarray(active, dtype=bool),
    )


def _trace(*records):
    tr = Trace()
    for rec in records:
        tr.append(rec)
    return tr


def _rules(violations):
    return {v.rule for v in violations}


class TestInvariantCheckers:
    """Each hand-built trace breaks exactly one model rule."""

    def setup_method(self):
        self.g = families.clique(6)
        self.dg = StaticDynamicGraph(self.g)

    def test_clean_trace_passes(self):
        rec = _record(6, proposals=[(0, 1), (2, 3)], connections=[(0, 1), (2, 3)])
        assert check_trace(_trace(rec), self.dg) == []

    def test_double_connection_flagged(self):
        # Node 1 accepts two proposals in one round.
        rec = _record(6, proposals=[(0, 1), (2, 1)], connections=[(0, 1), (2, 1)])
        assert _rules(check_trace(_trace(rec), self.dg)) == {"connection-exclusivity"}

    def test_off_edge_proposal_flagged(self):
        g = families.path(6)  # 0-1-2-3-4-5: (0, 5) is not an edge
        rec = _record(6, proposals=[(0, 5)], connections=[(0, 5)])
        assert _rules(check_trace(_trace(rec), StaticDynamicGraph(g))) == {
            "proposals-on-edges"
        }

    def test_self_proposal_flagged(self):
        rec = _record(6, proposals=[(2, 2)], connections=[])
        out = check_trace(_trace(rec), self.dg)
        assert _rules(out) == {"proposals-on-edges"}
        assert "itself" in out[0].detail

    def test_proposal_to_inactive_node_flagged(self):
        active = np.ones(6, dtype=bool)
        active[3] = False
        tags = np.zeros(6, dtype=np.int64)
        tags[3] = -1
        rec = _record(6, proposals=[(0, 3)], connections=[], tags=tags, active=active)
        # (Also trips send-xor-receive: the "listener" accepted nothing.)
        assert "proposals-on-edges" in _rules(check_trace(_trace(rec), self.dg))

    def test_duplicate_proposer_flagged(self):
        rec = _record(6, proposals=[(0, 1), (0, 2)], connections=[(0, 1)])
        assert "proposals-on-edges" in _rules(check_trace(_trace(rec), self.dg))

    def test_over_width_tag_flagged(self):
        tags = np.zeros(6, dtype=np.int64)
        tags[4] = 2  # b = 1 allows only {0, 1}
        rec = _record(6, tags=tags, proposals=[(0, 1)], connections=[(0, 1)])
        assert _rules(check_trace(_trace(rec), self.dg, tag_length=1)) == {"tag-width"}

    def test_inactive_node_advertising_flagged(self):
        active = np.ones(6, dtype=bool)
        active[5] = False
        rec = _record(6, active=active, proposals=[(0, 1)], connections=[(0, 1)])
        # tags default to 0 everywhere; node 5 should have recorded -1.
        assert _rules(check_trace(_trace(rec), self.dg)) == {"tag-width"}

    def test_connection_without_proposal_flagged(self):
        rec = _record(6, proposals=[(0, 1)], connections=[(0, 1), (2, 3)])
        assert _rules(check_trace(_trace(rec), self.dg)) == {"send-xor-receive"}

    def test_proposer_accepting_flagged(self):
        # 0 and 1 both proposed, yet 1 accepted 0's proposal.
        rec = _record(6, proposals=[(0, 1), (1, 2)], connections=[(0, 1), (1, 2)])
        assert "send-xor-receive" in _rules(check_trace(_trace(rec), self.dg))

    def test_silent_listener_flagged_without_drop_model(self):
        # Node 1 listens with an incoming proposal but accepts none.
        rec = _record(6, proposals=[(0, 1)], connections=[])
        assert _rules(check_trace(_trace(rec), self.dg)) == {"send-xor-receive"}

    def test_silent_listener_allowed_with_drop_model(self):
        from repro.faults.plan import ConnectionDropModel

        plan = FaultPlan(connection_drop=ConnectionDropModel(p=0.5))
        rec = _record(6, proposals=[(0, 1)], connections=[])
        assert check_trace(_trace(rec), self.dg, fault_plan=plan) == []

    def test_activation_consistency_flagged(self):
        activation = np.ones(6, dtype=np.int64)
        activation[2] = 5  # node 2 must be inactive in round 1
        rec = _record(6, proposals=[(0, 1)], connections=[(0, 1)])
        out = check_trace(_trace(rec), self.dg, activation_rounds=activation)
        assert _rules(out) == {"activation-consistency"}

    def test_crash_mask_consistency_flagged(self):
        plan = FaultPlan(
            crashes=CrashSchedule((CrashWindow(node=4, start=1, end=3),))
        )
        # Trace claims node 4 was active in round 1 despite the crash.
        rec = _record(6, proposals=[(0, 1)], connections=[(0, 1)])
        out = check_trace(_trace(rec), self.dg, fault_plan=plan)
        assert _rules(out) == {"activation-consistency"}

    def test_mid_epoch_topology_change_flagged(self):
        class FlipFlop(DynamicGraph):
            """Changes topology every round while claiming tau = 2."""

            def __init__(self):
                self.n = 6
                self.tau = 2
                self._a = families.ring(6)
                self._b = families.path(6)

            def graph_at(self, r):
                return self._a if r % 2 else self._b

        out = check_tau_stability(FlipFlop(), horizon=4)
        assert _rules(out) == {"tau-stability"}
        # The legal schedule: constant within each 2-round epoch.
        assert check_tau_stability(StaticDynamicGraph(self.g), horizon=4) == []
        assert (
            check_tau_stability(PeriodicRelabelDynamicGraph(self.g, 3, seed=0), 12)
            == []
        )

    def test_uniform_acceptance_bias_flagged(self):
        stats = AcceptanceStats()
        for _ in range(300):  # always accepting the lowest-id sender
            stats.add_sample(0, 2)
        v = stats.violation()
        assert v is not None and v.rule == "uniform-acceptance"

    def test_uniform_acceptance_null_is_silent(self):
        stats = AcceptanceStats()
        rng = np.random.default_rng(0)
        for _ in range(2000):
            stats.add_sample(int(rng.integers(0, 3)), 3)
        assert stats.violation() is None

    def test_batched_checker_tags_replica(self):
        from repro.core.trace import BatchedTrace

        bt = BatchedTrace(2, 6)
        # Replica 1 carries a self-proposal (flat ids: t * n + v).
        sflat = np.array([0 * 6 + 0, 1 * 6 + 2])
        tflat = np.array([0 * 6 + 1, 1 * 6 + 2])
        bt.append_round(1, sflat, tflat, None, None, None, np.ones(6, dtype=bool))
        out = check_batched_trace(bt, self.dg)
        assert any(v.rule == "proposals-on-edges" and "replica 1" in v.detail for v in out)


class TestEngineTracesAreClean:
    """Real engine traces from all tiers pass every checker."""

    def test_reference_trace_clean(self):
        g = families.clique(8)
        us = UIDSpace(8, seed=5)
        eng = ReferenceEngine(
            StaticDynamicGraph(g),
            make_blind_gossip_nodes(us),
            seed=5,
            collect_trace=True,
        )
        res = eng.run(200, all_leaders_are(us.min_uid()))
        assert res.stabilized
        assert check_trace(res.trace, StaticDynamicGraph(g)) == []

    def test_vectorized_trace_clean_under_churn_and_faults(self):
        g = families.ring(10)
        plan = FaultPlan(
            crashes=CrashSchedule((CrashWindow(node=3, start=2, end=6),))
        )
        dg = PeriodicRelabelDynamicGraph(g, 2, seed=9)
        eng = VectorizedEngine(
            dg, PPushVectorized(np.array([0])), seed=9, fault_plan=plan,
            collect_trace=True,
        )
        res = eng.run(500)
        assert res.stabilized
        assert check_trace(res.trace, dg, tag_length=1, fault_plan=plan) == []

    def test_batched_trace_clean(self):
        g = families.star(9)
        seeds = trial_seeds_for(3, 4)
        eng = BatchedVectorizedEngine(
            StaticDynamicGraph(g), PPushBatched(np.array([0])), seeds=seeds,
            collect_trace=True,
        )
        res = eng.run(300)
        assert res.stabilized.all()
        assert check_batched_trace(res.trace, StaticDynamicGraph(g), tag_length=1) == []


class TestCrossEngineTraceParity:
    """Forced dynamics (PPUSH on a path) leave no room for RNG divergence:
    all three tiers must record bit-identical traces."""

    def test_reference_matches_vectorized(self):
        g = families.path(7)
        for seed in (0, 1, 2):
            us = UIDSpace(7, seed=seed)
            ref = ReferenceEngine(
                StaticDynamicGraph(g),
                make_ppush_nodes(us, sources={0}),
                seed=seed,
                collect_trace=True,
            ).run(50, rumor_complete)
            vec = VectorizedEngine(
                StaticDynamicGraph(g),
                PPushVectorized(np.array([0])),
                seed=seed,
                collect_trace=True,
            ).run(50)
            assert ref.stabilized and vec.stabilized
            assert ref.rounds == vec.rounds
            assert traces_equal(ref.trace, vec.trace)

    def test_batched_replicas_match_vectorized(self):
        g = families.path(9)
        seeds = trial_seeds_for(11, 5)
        bat = BatchedVectorizedEngine(
            StaticDynamicGraph(g), PPushBatched(np.array([0])), seeds=seeds,
            collect_trace=True,
        ).run(60)
        for t, seed in enumerate(seeds):
            vec = VectorizedEngine(
                StaticDynamicGraph(g), PPushVectorized(np.array([0])),
                seed=seed, collect_trace=True,
            ).run(60)
            # The batched engine stops at the last replica's round; the
            # common prefix must agree record for record.
            btr = bat.trace.replica(t)
            for ra, rb in zip(vec.trace.rounds, btr.rounds):
                assert ra.round_index == rb.round_index
                assert np.array_equal(ra.proposals, rb.proposals)
                assert np.array_equal(ra.connections, rb.connections)
                assert np.array_equal(ra.tags, rb.tags)
                assert np.array_equal(ra.active, rb.active)
            assert int(bat.rounds[t]) == vec.rounds


class TestTraceCaptureIsPassive:
    """Collecting a trace must not perturb the run it records."""

    def test_vectorized_traced_equals_untraced(self):
        g = families.ring(12)
        for seed in (0, 7):
            runs = [
                VectorizedEngine(
                    StaticDynamicGraph(g), PPushVectorized(np.array([0])),
                    seed=seed, collect_trace=ct,
                ).run(400)
                for ct in (True, False)
            ]
            assert runs[0].stabilized == runs[1].stabilized
            assert runs[0].rounds == runs[1].rounds
            assert runs[0].trace is not None and runs[1].trace is None

    def test_batched_traced_equals_untraced(self):
        g = families.clique(10)
        seeds = trial_seeds_for(2, 6)
        runs = [
            BatchedVectorizedEngine(
                StaticDynamicGraph(g), PPushBatched(np.array([0])),
                seeds=seeds, collect_trace=ct,
            ).run(200)
            for ct in (True, False)
        ]
        assert np.array_equal(runs[0].stabilized, runs[1].stabilized)
        assert np.array_equal(runs[0].rounds, runs[1].rounds)

    def test_traced_rerun_is_bit_identical(self):
        g = families.ring(10)
        mk = lambda: VectorizedEngine(  # noqa: E731
            StaticDynamicGraph(g), PPushVectorized(np.array([0])),
            seed=13, collect_trace=True,
        ).run(300)
        assert traces_equal(mk().trace, mk().trace)


class TestTauValidation:
    """Regression: fractional τ used to be silently truncated (τ=2.5 ran as 2)."""

    def test_fractional_tau_rejected(self):
        for bad in (2.5, 0.5, 1.0000001):
            with pytest.raises(ValueError, match="whole number"):
                validate_tau(bad)

    def test_integral_float_tau_normalized(self):
        assert validate_tau(3.0) == 3
        assert isinstance(validate_tau(3.0), int)
        assert validate_tau(float("inf")) == float("inf")

    def test_nonpositive_tau_rejected(self):
        for bad in (0, -1, float("-inf")):
            with pytest.raises(ValueError):
                validate_tau(bad)
        with pytest.raises(ValueError):
            validate_tau(float("nan"))

    def test_constructors_reject_fractional_tau(self):
        g = families.ring(8)
        with pytest.raises(ValueError, match="whole number"):
            PeriodicRelabelDynamicGraph(g, 2.5, seed=0)
        with pytest.raises(ValueError, match="whole number"):
            epoch_of_round(10, 2.5)

    def test_cli_rejects_fractional_tau(self, capsys):
        from repro.cli import main

        code = main(
            ["simulate", "ppush", "--family", "clique", "--params", "8", "--tau", "2.5"]
        )
        assert code == 2
        assert "whole number" in capsys.readouterr().err

    def test_cli_accepts_integral_float_tau(self):
        from repro.cli import main

        code = main(
            ["simulate", "ppush", "--family", "clique", "--params", "8", "--tau", "3.0"]
        )
        assert code == 0


class TestPermanentCrashStabilization:
    """Regression: predicates used to demand agreement from permanently
    crashed (frozen) nodes, making stabilization unreachable whenever the
    winner spread after the crash."""

    PLAN = FaultPlan(crashes=CrashSchedule((CrashWindow(node=2, start=2, end=None),)))

    def test_reference_stabilizes_past_dead_node(self):
        g = families.clique(8)
        us = UIDSpace(8, seed=1)
        winner = us.min_uid()
        victim = next(v for v in range(8) if us.uid_of(v) != winner)
        plan = FaultPlan(
            crashes=CrashSchedule((CrashWindow(node=victim, start=2, end=None),))
        )
        res = ReferenceEngine(
            StaticDynamicGraph(g), make_blind_gossip_nodes(us), seed=1,
            fault_plan=plan,
        ).run(500, all_leaders_are(winner))
        assert res.stabilized

    def test_vectorized_stabilizes_past_dead_node(self):
        g = families.clique(8)
        res = VectorizedEngine(
            StaticDynamicGraph(g), PPushVectorized(np.array([0])), seed=4,
            fault_plan=self.PLAN,
        ).run(500)
        assert res.stabilized

    def test_batched_stabilizes_past_dead_node(self):
        g = families.clique(8)
        res = BatchedVectorizedEngine(
            StaticDynamicGraph(g), PPushBatched(np.array([0])),
            seeds=trial_seeds_for(0, 4), fault_plan=self.PLAN,
        ).run(500)
        assert res.stabilized.all()

    def test_excluding_permanently_crashed_helper(self):
        protos = ["a", "b", "c", "d"]
        plan = FaultPlan(
            crashes=CrashSchedule(
                (
                    CrashWindow(node=1, start=2, end=None),
                    CrashWindow(node=3, start=2, end=9),
                )
            )
        )
        assert excluding_permanently_crashed(protos, plan) == ["a", "c", "d"]
        assert excluding_permanently_crashed(protos, None) == protos


class TestDifferentialFuzzer:
    def test_sampling_is_deterministic(self):
        a = [sample_config(5, i) for i in range(20)]
        b = [sample_config(5, i) for i in range(20)]
        assert a == b
        assert a != [sample_config(6, i) for i in range(20)]

    def test_config_json_roundtrip(self):
        import json

        for i in range(30):
            cfg = sample_config(2, i)
            assert FuzzConfig.from_dict(json.loads(json.dumps(cfg.to_dict()))) == cfg

    def test_small_fuzz_session_is_clean_and_deterministic(self):
        a = fuzz(6, 0)
        b = fuzz(6, 0)
        assert a.ok, [f.failure_lines() for f in a.failures]
        assert b.ok
        assert a.pooled_log_ratio == b.pooled_log_ratio
        assert a.acceptance.count == b.acceptance.count

    def test_run_config_reports_crash_as_finding(self):
        # A configuration whose run raises is reported as a finding, not
        # an abort of the whole fuzz session.
        cfg = FuzzConfig(
            family="path", n=8, algorithm="push_pull", tau=None,
            fault={"kind": "bogus"}, activation="sync", seed=0,
        )
        report = run_config(cfg)
        assert report.failed
        assert any("exception:" in line for line in report.mismatches)

    def test_shrink_is_deterministic_and_minimizing(self):
        cfg = FuzzConfig(
            family="path", n=22, algorithm="ppush", tau=3,
            fault={"kind": "mixed", "windows": [[1, 2, 6]], "p": 0.1},
            activation="sync", seed=123,
        )
        # Synthetic oracle: "fails" whenever the topology churns — the
        # minimum keeps τ and strips everything else.
        fails = lambda c: c.tau is not None  # noqa: E731
        first = shrink(cfg, fails)
        second = shrink(cfg, fails)
        assert first == second
        assert first == FuzzConfig(
            family="clique", n=8, algorithm="ppush", tau=3,
            fault=None, activation="sync", seed=123,
        )

    def test_shrink_keeps_the_failures_cause(self):
        # A real failing run (broken fault spec -> exception): shrinking
        # must keep the fault while simplifying everything around it.
        cfg = FuzzConfig(
            family="ring", n=20, algorithm="push_pull", tau=2,
            fault={"kind": "bogus"}, activation="sync", seed=7,
        )
        minimal = shrink(cfg, lambda c: run_config(c).failed, max_steps=12)
        assert run_config(minimal).failed
        assert minimal.fault is not None
        assert minimal.n == 8 and minimal.tau is None


class TestAsyncFuzzing:
    """The event tier rides along in the differential fuzzer."""

    def test_sampling_covers_the_async_tier(self):
        configs = [sample_config(0, i) for i in range(60)]
        asyncs = [c for c in configs if c.engine == "async"]
        assert asyncs, "no async configuration in 60 samples"
        assert {c.scheduler for c in asyncs} <= {"random", "adversarial"}
        assert all(c.algorithm in ("blind_gossip", "push_pull") for c in asyncs)
        assert all(1 <= c.delta <= 8 and c.n <= 16 for c in asyncs)

    def test_async_config_runs_clean(self):
        cfg = FuzzConfig(
            family="clique", n=10, algorithm="blind_gossip", tau=2,
            fault={"kind": "drop", "p": 0.1}, activation="sync", seed=11,
            engine="async", delta=4, scheduler="adversarial",
        )
        report = run_config(cfg)
        assert not report.failed, report.failure_lines()

    def test_async_config_json_roundtrip_and_legacy_defaults(self):
        import json

        cfg = FuzzConfig(
            family="ring", n=8, algorithm="push_pull", tau=None,
            fault=None, activation="sync", seed=3,
            engine="async", delta=2, scheduler="random",
        )
        assert FuzzConfig.from_dict(json.loads(json.dumps(cfg.to_dict()))) == cfg
        # Pre-async repro files carry no engine/delta/scheduler keys.
        legacy = {k: v for k, v in cfg.to_dict().items()
                  if k not in ("engine", "delta", "scheduler")}
        old = FuzzConfig.from_dict(legacy)
        assert (old.engine, old.delta, old.scheduler) == ("sync", 1, "random")

    def test_shrink_falls_back_to_sync_then_simplifies_schedule(self):
        cfg = FuzzConfig(
            family="ring", n=16, algorithm="blind_gossip", tau=2,
            fault={"kind": "drop", "p": 0.1}, activation="sync", seed=9,
            engine="async", delta=8, scheduler="adversarial",
        )
        # Oracle blames the engine alone: the minimum is the simplest
        # async configuration.
        m = shrink(cfg, lambda c: c.engine == "async")
        assert (m.engine, m.delta, m.scheduler) == ("async", 1, "random")
        assert m.fault is None and m.tau is None and m.n == 8
        # Oracle blames the adversary at delta > 1: both survive shrinking.
        m2 = shrink(
            cfg,
            lambda c: c.engine == "async"
            and c.scheduler == "adversarial"
            and c.delta > 1,
        )
        assert m2.engine == "async" and m2.scheduler == "adversarial"
        assert m2.delta > 1 and m2.fault is None

    def test_async_failure_is_detected_and_reported(self):
        # delta=0 is invalid: the exception surfaces as a finding.
        cfg = FuzzConfig(
            family="clique", n=8, algorithm="push_pull", tau=None,
            fault=None, activation="sync", seed=0,
            engine="async", delta=0, scheduler="random",
        )
        report = run_config(cfg)
        assert report.failed
        assert any("delta" in line for line in report.mismatches)
