"""Tests for the durable execution layer (timeouts, retries, degradation,
trial checkpoints).

The recurring trick: a *heal-once* builder that misbehaves (hangs,
SIGKILLs itself, raises) only while a marker file is absent, creating the
marker first — so the first attempt fails in the forked worker, the
retry succeeds, and the final outcomes must equal a clean run's.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.algorithms.blind_gossip import BlindGossipBatched, BlindGossipVectorized
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph
from repro.harness.durable import (
    DurableExecutionError,
    DurablePolicy,
    FailureBudgetExceeded,
    TrialCheckpointStore,
    UnitFailure,
    active_policy,
    run_isolated,
    run_trials_batched_durable,
    run_trials_durable,
    use_policy,
)
from repro.harness.experiments import uid_keys_random
from repro.harness.runner import run_trials, run_trials_batched, trial_seeds_for

GRAPH = families.double_star(4)


def good_build(seed: int) -> VectorizedEngine:
    return VectorizedEngine(
        StaticDynamicGraph(GRAPH),
        BlindGossipVectorized(uid_keys_random(GRAPH.n, seed)),
        seed=seed,
    )


def good_build_batched(seeds):
    return StaticDynamicGraph(GRAPH), BlindGossipBatched(uid_keys_random(GRAPH.n, 3))


def fast_policy(**kw) -> DurablePolicy:
    kw.setdefault("backoff_base", 0.0)
    kw.setdefault("sleep", lambda s: None)
    return DurablePolicy(**kw)


class _HangingEngine:
    def run(self, max_rounds, *, check_every=1):  # pragma: no cover - killed
        time.sleep(60)


class TestPolicy:
    def test_backoff_sequence(self):
        policy = DurablePolicy(backoff_base=0.25, backoff_cap=1.0)
        assert [policy.backoff_delay(a) for a in range(4)] == [0.25, 0.5, 1.0, 1.0]

    def test_unit_timeout_scales_with_trials(self):
        policy = DurablePolicy(timeout_per_trial=2.0)
        assert policy.unit_timeout(5) == 10.0
        assert DurablePolicy().unit_timeout(5) is None

    def test_context_activation(self):
        assert active_policy() is None
        policy = DurablePolicy()
        with use_policy(policy):
            assert active_policy() is policy
            with use_policy(None):
                assert active_policy() is None
            assert active_policy() is policy
        assert active_policy() is None


class TestRunIsolated:
    def test_returns_value(self):
        assert run_isolated(lambda: 41 + 1) == 42

    def test_timeout_kills_worker(self):
        start = time.monotonic()
        with pytest.raises(UnitFailure) as exc_info:
            run_isolated(lambda: time.sleep(60), timeout=0.3, unit="sleeper")
        assert exc_info.value.kind == "timeout"
        assert time.monotonic() - start < 10

    def test_worker_exception_reported(self):
        def boom():
            raise RuntimeError("kaput")

        with pytest.raises(UnitFailure) as exc_info:
            run_isolated(boom)
        assert exc_info.value.kind == "error"
        assert "kaput" in exc_info.value.detail

    def test_worker_sigkill_detected(self):
        with pytest.raises(UnitFailure) as exc_info:
            run_isolated(lambda: os.kill(os.getpid(), signal.SIGKILL))
        assert exc_info.value.kind == "crash"


class TestDurableTrials:
    def test_matches_plain_serial(self):
        plain = run_trials(good_build, trials=5, max_rounds=500, seed=7)
        assert run_trials_durable(good_build, trials=5, max_rounds=500, seed=7) == plain

    def test_matches_plain_with_timeout_and_processes(self):
        plain = run_trials(good_build, trials=5, max_rounds=500, seed=7)
        durable = run_trials_durable(
            good_build, trials=5, max_rounds=500, seed=7,
            policy=fast_policy(timeout_per_trial=30.0, processes=2),
        )
        assert durable == plain

    def test_hung_trial_killed_and_retried(self, tmp_path):
        marker = tmp_path / "healed"

        def build(seed):
            if not marker.exists():
                marker.write_text("x")
                return _HangingEngine()
            return good_build(seed)

        policy = fast_policy(timeout_per_trial=0.4, max_retries=2, processes=2)
        budget = policy.new_budget()
        out = run_trials_durable(
            build, trials=4, max_rounds=500, seed=7, policy=policy, budget=budget
        )
        assert out == run_trials(good_build, trials=4, max_rounds=500, seed=7)
        assert any(e.kind == "timeout" for e in budget.events)

    def test_sigkilled_worker_detected_and_retried(self, tmp_path):
        marker = tmp_path / "healed"

        def build(seed):
            if not marker.exists():
                marker.write_text("x")
                os.kill(os.getpid(), signal.SIGKILL)
            return good_build(seed)

        policy = fast_policy(timeout_per_trial=30.0, max_retries=2, processes=2)
        budget = policy.new_budget()
        out = run_trials_durable(
            build, trials=4, max_rounds=500, seed=7, policy=policy, budget=budget
        )
        assert out == run_trials(good_build, trials=4, max_rounds=500, seed=7)
        assert any(e.kind == "crash" for e in budget.events)

    def test_persistent_failure_exhausts_ladder(self):
        def bad(seed):
            raise RuntimeError("permanently broken")

        policy = fast_policy(timeout_per_trial=30.0, max_retries=1, processes=2)
        with pytest.raises(DurableExecutionError, match="all execution tiers"):
            run_trials_durable(bad, trials=4, max_rounds=500, seed=7, policy=policy)

    def test_failure_budget_stops_retry_storm(self):
        def bad(seed):
            raise RuntimeError("broken")

        policy = fast_policy(
            timeout_per_trial=30.0, max_retries=5, processes=2, failure_budget=2
        )
        with pytest.raises(FailureBudgetExceeded):
            run_trials_durable(bad, trials=4, max_rounds=500, seed=7, policy=policy)

    def test_active_policy_routes_run_trials(self):
        plain = run_trials(good_build, trials=4, max_rounds=500, seed=7)
        with use_policy(fast_policy(timeout_per_trial=30.0, processes=2)):
            routed = run_trials(good_build, trials=4, max_rounds=500, seed=7)
        assert routed == plain


class TestDurableBatched:
    def test_matches_plain_batched(self):
        plain = run_trials_batched(good_build_batched, trials=4, max_rounds=500, seed=3)
        durable = run_trials_batched_durable(
            good_build_batched, trials=4, max_rounds=500, seed=3
        )
        assert durable == plain

    def test_memory_error_degrades_to_sub_batches(self):
        def build(seeds):
            if len(seeds) > 2:
                raise MemoryError("replica batch too large")
            return good_build_batched(seeds)

        policy = fast_policy(max_retries=2, processes=2)
        budget = policy.new_budget()
        out = run_trials_batched_durable(
            build, trials=4, max_rounds=500, seed=3, policy=policy, budget=budget
        )
        assert [o.seed for o in out] == trial_seeds_for(3, 4)
        assert all(o.stabilized for o in out)
        assert any(e.kind == "error" and "MemoryError" in e.detail for e in budget.events)

    def test_degrades_to_singletons(self):
        def build(seeds):
            if len(seeds) > 1:
                raise MemoryError("only singleton batches fit")
            return good_build_batched(seeds)

        policy = fast_policy(max_retries=0, processes=2)
        out = run_trials_batched_durable(
            build, trials=4, max_rounds=500, seed=3, policy=policy
        )
        assert [o.seed for o in out] == trial_seeds_for(3, 4)
        assert all(o.stabilized for o in out)

    def test_active_policy_routes_run_trials_batched(self):
        plain = run_trials_batched(good_build_batched, trials=4, max_rounds=500, seed=3)
        with use_policy(fast_policy()):
            routed = run_trials_batched(
                good_build_batched, trials=4, max_rounds=500, seed=3
            )
        assert routed == plain


class TestTrialCheckpointStore:
    def test_roundtrip_and_replay(self, tmp_path):
        store = TrialCheckpointStore(tmp_path)
        out = run_trials_durable(
            good_build, trials=4, max_rounds=500, seed=7,
            checkpoint=store, unit_id="unit-a",
        )

        def never_called(seed):  # pragma: no cover - checkpoint replays instead
            raise AssertionError("checkpointed unit must not re-run")

        replayed = run_trials_durable(
            never_called, trials=4, max_rounds=500, seed=7,
            checkpoint=store, unit_id="unit-a",
        )
        assert replayed == out

    def test_corrupt_checkpoint_quarantined(self, tmp_path):
        store = TrialCheckpointStore(tmp_path)
        seeds = trial_seeds_for(7, 4)
        out = run_trials_durable(
            good_build, trials=4, max_rounds=500, seed=7,
            checkpoint=store, unit_id="unit-a",
        )
        path = store.path_for("unit-a")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # truncated mid-write
        assert store.load("unit-a", seeds) is None
        assert (tmp_path / f"{path.name}.quarantined").exists()
        rerun = run_trials_durable(
            good_build, trials=4, max_rounds=500, seed=7,
            checkpoint=store, unit_id="unit-a",
        )
        assert rerun == out

    def test_seed_mismatch_quarantined(self, tmp_path):
        store = TrialCheckpointStore(tmp_path)
        run_trials_durable(
            good_build, trials=4, max_rounds=500, seed=7,
            checkpoint=store, unit_id="unit-a",
        )
        assert store.load("unit-a", trial_seeds_for(8, 4)) is None
        assert not store.path_for("unit-a").exists()  # moved aside

    def test_hash_mismatch_quarantined(self, tmp_path):
        import json

        store = TrialCheckpointStore(tmp_path)
        run_trials_durable(
            good_build, trials=4, max_rounds=500, seed=7,
            checkpoint=store, unit_id="unit-a",
        )
        path = store.path_for("unit-a")
        doc = json.loads(path.read_text())
        doc["outcomes"][0]["rounds"] += 1  # silent corruption
        path.write_text(json.dumps(doc))
        assert store.load("unit-a", trial_seeds_for(7, 4)) is None
