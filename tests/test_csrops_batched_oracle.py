"""Oracle tests: batched CSR kernels against the unbatched kernels.

The batched kernels must have, in every replica, exactly the semantics of
the corresponding unbatched kernel applied to that replica's slice.
Hypothesis drives both over random CSR structures with per-replica masks,
comparing supports exactly (which outcomes are possible per row per
replica); ``stack_csr`` is checked structurally against its definition.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util import _csrops_numba, csrops
from repro.util.csrops import (
    batched_random_pick,
    batched_uniform_accept,
    build_csr,
    segmented_uniform_accept,
    stack_csr,
)
from tests.test_csrops_oracle import backend_params, reference_pick_support


@pytest.fixture(autouse=True, scope="module", params=backend_params())
def csrops_backend(request):
    """Run the whole batched-oracle suite once per kernel backend."""
    name = request.param
    added = name not in csrops.available_backends()
    if added:
        csrops.register_backend(name, _csrops_numba.make_table())
    prev = csrops.get_backend()
    csrops.set_backend(name)
    yield name
    csrops.set_backend(prev)
    if added:
        csrops._BACKENDS.pop(name, None)


@st.composite
def batched_csr_cases(draw):
    n = draw(st.integers(2, 8))
    T = draw(st.integers(1, 4))
    pool = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pool), unique=True, max_size=len(pool)))
    indptr, indices = build_csr(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    rows = st.lists(st.booleans(), min_size=n, max_size=n)
    active = np.asarray(
        draw(st.lists(rows, min_size=T, max_size=T)), dtype=bool
    )
    nmask = draw(
        st.one_of(
            st.none(),
            st.lists(rows, min_size=T, max_size=T).map(
                lambda m: np.asarray(m, dtype=bool)
            ),
        )
    )
    use_flat = draw(st.booleans())
    fmask = None
    if use_flat and indices.size:
        ent = st.lists(
            st.booleans(), min_size=indices.size, max_size=indices.size
        )
        fmask = np.asarray(
            draw(st.lists(ent, min_size=T, max_size=T)), dtype=bool
        )
    return indptr, indices, active, nmask, fmask


class TestBatchedPickAgainstUnbatched:
    @given(batched_csr_cases(), st.integers(0, 2**31 - 1))
    @settings(max_examples=120, deadline=None)
    def test_per_replica_support_matches_unbatched(self, case, seed):
        indptr, indices, active, nmask, fmask = case
        rng = np.random.default_rng(seed)
        T = active.shape[0]
        supports = [
            reference_pick_support(
                indptr,
                indices,
                active[t],
                None if nmask is None else nmask[t],
                None if fmask is None else fmask[t],
            )
            for t in range(T)
        ]
        for _ in range(3):
            pick = batched_random_pick(
                indptr, indices, rng, active, neighbor_mask=nmask, flat_mask=fmask
            )
            assert pick.shape == active.shape
            for t in range(T):
                for u, p in enumerate(pick[t]):
                    assert int(p) in supports[t][u], (t, u, int(p), supports[t][u])

    @given(batched_csr_cases(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_every_support_element_reachable(self, case, seed):
        indptr, indices, active, nmask, fmask = case
        rng = np.random.default_rng(seed)
        T, n = active.shape
        supports = [
            reference_pick_support(
                indptr,
                indices,
                active[t],
                None if nmask is None else nmask[t],
                None if fmask is None else fmask[t],
            )
            for t in range(T)
        ]
        seen = [[set() for _ in range(n)] for _ in range(T)]
        # Max degree 7; 200 draws make a missed option vanishingly unlikely.
        for _ in range(200):
            pick = batched_random_pick(
                indptr, indices, rng, active, neighbor_mask=nmask, flat_mask=fmask
            )
            for t in range(T):
                for u, p in enumerate(pick[t]):
                    seen[t][u].add(int(p))
        for t in range(T):
            for u in range(n):
                assert seen[t][u] == supports[t][u]

    def test_rejects_non_boolean_masks(self):
        indptr, indices = build_csr(3, np.array([[0, 1], [1, 2]]))
        rng = np.random.default_rng(0)
        active = np.ones((2, 3), dtype=bool)
        with pytest.raises(TypeError):
            batched_random_pick(
                indptr, indices, rng, active.astype(np.int64)
            )
        with pytest.raises(TypeError):
            batched_random_pick(
                indptr,
                indices,
                rng,
                active,
                neighbor_mask=np.ones((2, 3), dtype=np.int64),
            )


class TestBatchedAcceptAgainstUnbatched:
    @given(
        st.integers(1, 4),
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 5), st.integers(0, 5)),
            max_size=24,
        ).filter(lambda ps: all(s != t for _, s, t in ps)),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_accepted_winner_proposed_in_that_replica(self, T, proposals, seed):
        n = 6
        proposals = [(r % T, s, t) for r, s, t in proposals]
        rep = np.array([r for r, _, _ in proposals], dtype=np.int64)
        senders = np.array([s for _, s, _ in proposals], dtype=np.int64)
        targets = np.array([t for _, _, t in proposals], dtype=np.int64)
        rng = np.random.default_rng(seed)
        accepted = batched_uniform_accept(rep, senders, targets, T, n, rng)
        assert accepted.shape == (T, n)
        proposal_set = set(zip(rep.tolist(), senders.tolist(), targets.tolist()))
        targeted = set(zip(rep.tolist(), targets.tolist()))
        for r in range(T):
            for t in range(n):
                if (r, t) in targeted:
                    assert accepted[r, t] >= 0
                    assert (r, int(accepted[r, t]), t) in proposal_set
                else:
                    assert accepted[r, t] == -1

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_matches_unbatched_on_single_replica(self, seed):
        rng = np.random.default_rng(seed)
        m, n = 12, 6
        senders = rng.integers(0, n, size=m)
        targets = (senders + 1 + rng.integers(0, n - 1, size=m)) % n
        rep = np.zeros(m, dtype=np.int64)
        a = batched_uniform_accept(
            rep, senders, targets, 1, n, np.random.default_rng(seed)
        )
        b = segmented_uniform_accept(
            senders, targets, n, np.random.default_rng(seed)
        )
        assert np.array_equal(a[0], b)

    def test_validates_ranges(self):
        rng = np.random.default_rng(0)
        ok = np.array([0], dtype=np.int64)
        with pytest.raises(ValueError):
            batched_uniform_accept(np.array([2]), ok, np.array([1]), 2, 3, rng)
        with pytest.raises(ValueError):
            batched_uniform_accept(ok, ok, np.array([3]), 2, 3, rng)
        with pytest.raises(ValueError):
            batched_uniform_accept(ok, ok, np.array([1, 2]), 2, 3, rng)


class TestStackCsr:
    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(
                    lambda e: e[0] != e[1]
                ),
                unique=True,
                max_size=10,
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_block_diagonal_structure(self, edge_lists):
        n = 6
        csrs = []
        for edges in edge_lists:
            arr = np.asarray(sorted(set(map(tuple, map(sorted, edges)))), dtype=np.int64)
            csrs.append(build_csr(n, arr.reshape(-1, 2)))
        indptr, indices = stack_csr(csrs, n)
        T = len(csrs)
        assert indptr.shape == (T * n + 1,)
        for t, (ip, ind) in enumerate(csrs):
            for u in range(n):
                lo, hi = indptr[t * n + u], indptr[t * n + u + 1]
                block = indices[lo:hi] - t * n
                assert np.array_equal(block, ind[ip[u] : ip[u + 1]])
                # Every stacked neighbor stays inside its replica's block.
                assert ((indices[lo:hi] >= t * n) & (indices[lo:hi] < (t + 1) * n)).all()
