"""Smoke tests: every example script runs end-to-end at a tiny size.

Examples are the public face of the library; these tests run each one in
a subprocess with minimal parameters so a packaging or API regression in
any example fails CI rather than a reader's first experience.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "16", "4")
        assert "blind gossip" in out and "bit convergence" in out

    def test_festival_mesh(self):
        out = run_example("festival_mesh.py", "16")
        assert "Festival mesh" in out and "yes" in out

    def test_censorship_broadcast(self):
        out = run_example("censorship_resilient_broadcast.py", "3")
        assert "classical model" in out

    def test_network_merge(self):
        out = run_example("network_merge.py", "8")
        assert "merge rounds" in out

    def test_adversarial_churn(self):
        out = run_example("adversarial_churn.py", "8")
        assert "adaptive tau=1" in out

    def test_sensor_aggregation(self):
        out = run_example("sensor_aggregation.py", "16")
        assert "median rounds" in out

    def test_compare_algorithms(self):
        out = run_example("compare_algorithms.py", "1")
        assert "clique" in out and "classical baseline" in out

    def test_reproduce_paper_subset(self):
        out = run_example("reproduce_paper.py", "E1")
        assert "Lemma V.1" in out
