"""Tests for repro.graphs.dynamic: epoch arithmetic and churn generators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.graphs import families
from repro.graphs.dynamic import (
    PeriodicRelabelDynamicGraph,
    ResampleDynamicGraph,
    ScheduleDynamicGraph,
    StaticDynamicGraph,
    epoch_of_round,
    first_round_of_epoch,
)
from repro.graphs.validation import check_stability_contract


class TestEpochArithmetic:
    def test_tau_one_every_round_new_epoch(self):
        assert [epoch_of_round(r, 1) for r in (1, 2, 3)] == [0, 1, 2]

    def test_tau_three(self):
        assert [epoch_of_round(r, 3) for r in range(1, 8)] == [0, 0, 0, 1, 1, 1, 2]

    def test_infinite_tau_single_epoch(self):
        assert epoch_of_round(10**9, math.inf) == 0

    def test_rejects_round_zero(self):
        with pytest.raises(ValueError):
            epoch_of_round(0, 2)

    def test_first_round_inverse(self):
        for tau in (1, 2, 5):
            for e in range(4):
                r = first_round_of_epoch(e, tau)
                assert epoch_of_round(r, tau) == e
                if r > 1:
                    assert epoch_of_round(r - 1, tau) == e - 1


class TestStaticDynamicGraph:
    def test_same_graph_every_round(self):
        g = families.ring(6)
        dg = StaticDynamicGraph(g)
        assert dg.graph_at(1) is dg.graph_at(500)
        assert math.isinf(dg.tau)
        assert dg.max_degree(100) == 2

    def test_rejects_disconnected(self):
        from repro.graphs.static import Graph

        with pytest.raises(ValueError):
            StaticDynamicGraph(Graph(4, [(0, 1), (2, 3)]))

    def test_rejects_round_zero(self):
        dg = StaticDynamicGraph(families.ring(4))
        with pytest.raises(ValueError):
            dg.graph_at(0)


class TestScheduleDynamicGraph:
    def test_epoch_progression(self):
        g1, g2 = families.ring(6), families.path(6)
        dg = ScheduleDynamicGraph([g1, g2], tau=3)
        assert dg.graph_at(1) == g1 and dg.graph_at(3) == g1
        assert dg.graph_at(4) == g2 and dg.graph_at(100) == g2

    def test_cycle(self):
        g1, g2 = families.ring(6), families.path(6)
        dg = ScheduleDynamicGraph([g1, g2], tau=2, cycle=True)
        assert dg.graph_at(5) == g1 and dg.graph_at(7) == g2

    def test_rejects_mismatched_vertex_sets(self):
        with pytest.raises(ValueError):
            ScheduleDynamicGraph([families.ring(6), families.ring(7)], tau=1)

    def test_rejects_disconnected_member(self):
        from repro.graphs.static import Graph

        with pytest.raises(ValueError):
            ScheduleDynamicGraph([Graph(4, [(0, 1), (2, 3)])], tau=1)

    def test_honours_stability_contract(self):
        gs = [families.ring(6), families.path(6), families.star(6)]
        dg = ScheduleDynamicGraph(gs, tau=4)
        check_stability_contract(dg, 20)


class TestPeriodicRelabel:
    def test_preserves_alpha_and_delta(self):
        base = families.double_star(4)
        dg = PeriodicRelabelDynamicGraph(base, tau=1, seed=0)
        for r in (1, 2, 7):
            g = dg.graph_at(r)
            assert sorted(g.degrees.tolist()) == sorted(base.degrees.tolist())
            assert g.num_edges == base.num_edges

    def test_deterministic_per_round(self):
        base = families.ring(8)
        dg = PeriodicRelabelDynamicGraph(base, tau=2, seed=5)
        assert dg.graph_at(3) == dg.graph_at(3)
        assert dg.graph_at(3) == dg.graph_at(4)  # same epoch

    def test_changes_between_epochs(self):
        base = families.double_star(6)
        dg = PeriodicRelabelDynamicGraph(base, tau=2, seed=5)
        # Overwhelmingly likely that at least one of the next epochs differs.
        assert any(dg.graph_at(1 + 2 * e) != dg.graph_at(1) for e in range(1, 6))

    def test_honours_stability_contract(self):
        base = families.double_star(3)
        for tau in (1, 2, 5):
            dg = PeriodicRelabelDynamicGraph(base, tau=tau, seed=1)
            check_stability_contract(dg, 25)

    def test_out_of_order_access_consistent(self):
        base = families.ring(8)
        dg = PeriodicRelabelDynamicGraph(base, tau=1, seed=7)
        late = dg.graph_at(50)
        early = dg.graph_at(2)
        assert dg.graph_at(50) == late and dg.graph_at(2) == early

    def test_same_seed_same_sequence(self):
        base = families.ring(8)
        a = PeriodicRelabelDynamicGraph(base, tau=1, seed=9)
        b = PeriodicRelabelDynamicGraph(base, tau=1, seed=9)
        for r in (1, 2, 3, 10):
            assert a.graph_at(r) == b.graph_at(r)


class TestResample:
    def test_vertex_count_fixed(self):
        dg = ResampleDynamicGraph(
            lambda s: families.random_regular(12, 3, seed=s), tau=2, seed=0
        )
        assert dg.n == 12
        for r in (1, 3, 9):
            assert dg.graph_at(r).n == 12

    def test_changes_between_epochs(self):
        dg = ResampleDynamicGraph(
            lambda s: families.random_regular(16, 3, seed=s), tau=1, seed=0
        )
        assert any(dg.graph_at(1 + e) != dg.graph_at(1) for e in range(1, 5))

    def test_rejects_disconnected_sampler(self):
        from repro.graphs.static import Graph

        with pytest.raises(ValueError):
            ResampleDynamicGraph(lambda s: Graph(4, [(0, 1), (2, 3)]), tau=1)

    def test_deterministic(self):
        mk = lambda: ResampleDynamicGraph(
            lambda s: families.random_regular(12, 3, seed=s), tau=1, seed=3
        )
        a, b = mk(), mk()
        for r in (1, 2, 5):
            assert a.graph_at(r) == b.graph_at(r)
