"""Tests for bit convergence leader election (Section VII).

Includes property tests of the paper's deterministic invariants:

* Lemma VII.1(1,2): the maximum difference bit ``b_i`` never decreases and
  once ``⊥`` stays ``⊥``;
* Lemma VII.1(3): while ``b_i`` is unchanged, ``|S_i|`` (nodes with a 0 in
  that position) never shrinks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bit_convergence import (
    BitConvergenceConfig,
    BitConvergenceNode,
    BitConvergenceVectorized,
    draw_id_tags,
    make_bit_convergence_nodes,
)
from repro.core.engine import ReferenceEngine
from repro.core.monitor import all_leaders_are
from repro.core.payload import IDPair, Message, UID, UIDSpace
from repro.core.protocol import RoundView
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph, StaticDynamicGraph
from repro.harness.experiments import uid_keys_random


CFG = BitConvergenceConfig(n_upper=16, delta_bound=4, beta=1.0)


class TestConfig:
    def test_derived_quantities(self):
        cfg = BitConvergenceConfig(n_upper=256, delta_bound=16, beta=2.0)
        assert cfg.k == 16
        assert cfg.group_len == 8  # 2 * log2(16)
        assert cfg.phase_len == 128

    def test_position_cycles_through_bits(self):
        cfg = BitConvergenceConfig(n_upper=4, delta_bound=4, beta=1.0)  # k=2, gl=4
        positions = [cfg.position(r) for r in range(1, 2 * cfg.phase_len + 1)]
        assert positions[: cfg.phase_len] == [1] * 4 + [2] * 4
        assert positions[cfg.phase_len :] == positions[: cfg.phase_len]

    def test_phase_end_detection(self):
        cfg = BitConvergenceConfig(n_upper=4, delta_bound=4, beta=1.0)
        ends = [r for r in range(1, 25) if cfg.is_phase_end(r)]
        assert ends == [8, 16, 24]

    def test_group_multiplier_ablation_knob(self):
        base = BitConvergenceConfig(n_upper=64, delta_bound=16)
        wide = BitConvergenceConfig(n_upper=64, delta_bound=16, group_multiplier=4)
        assert wide.group_len == 2 * base.group_len

    def test_validation(self):
        with pytest.raises(ValueError):
            BitConvergenceConfig(n_upper=1, delta_bound=4)
        with pytest.raises(ValueError):
            BitConvergenceConfig(n_upper=16, delta_bound=0)
        with pytest.raises(ValueError):
            BitConvergenceConfig(n_upper=2**40, delta_bound=4, beta=2.0)


class TestDrawIdTags:
    def test_width(self):
        tags = draw_id_tags(100, CFG, seed=0)
        assert tags.min() >= 0 and tags.max() < (1 << CFG.k)

    def test_unique_mode(self):
        cfg = BitConvergenceConfig(n_upper=32, delta_bound=4, beta=1.0)  # k=5
        tags = draw_id_tags(32, cfg, seed=0, unique=True)
        assert np.unique(tags).size == 32

    def test_unique_mode_overflow_rejected(self):
        cfg = BitConvergenceConfig(n_upper=4, delta_bound=4, beta=1.0)  # k=2
        with pytest.raises(ValueError):
            draw_id_tags(5, cfg, seed=0, unique=True)

    def test_deterministic(self):
        assert np.array_equal(
            draw_id_tags(20, CFG, seed=3), draw_id_tags(20, CFG, seed=3)
        )


class TestNodeProtocol:
    def test_initial_state(self):
        node = BitConvergenceNode(0, UID(9), id_tag=5, config=CFG)
        assert node.leader == UID(9)
        assert node.committed_pair == IDPair(UID(9), 5)

    def test_tag_bit_advertised(self):
        # k=4 (n_upper=16, beta=1), tag 0b1010.
        node = BitConvergenceNode(0, UID(1), id_tag=0b1010, config=CFG)
        rng = np.random.default_rng(0)
        gl = CFG.group_len
        # Group 1 -> bit position 1 (MSB) = 1; group 2 -> 0; etc.
        assert node.choose_tag(1, rng) == 1
        assert node.choose_tag(gl + 1, rng) == 0
        assert node.choose_tag(2 * gl + 1, rng) == 1
        assert node.choose_tag(3 * gl + 1, rng) == 0

    def test_received_pair_buffered_until_phase_end(self):
        node = BitConvergenceNode(0, UID(9), id_tag=7, config=CFG)
        rng = np.random.default_rng(0)
        smaller = IDPair(UID(1), 2)
        node.choose_tag(1, rng)
        node.deliver(1, Message(data=smaller))
        node.end_round()
        # Mid-phase: leader unchanged, pending updated.
        assert node.leader == UID(9)
        assert node.pending_pair == smaller
        # Walk to the phase end.
        for r in range(2, CFG.phase_len + 1):
            node.choose_tag(r, rng)
            node.end_round()
        assert node.leader == UID(1)
        assert node.committed_pair == smaller

    def test_larger_pair_ignored(self):
        node = BitConvergenceNode(0, UID(9), id_tag=7, config=CFG)
        node.deliver(1, Message(data=IDPair(UID(50), 12)))
        assert node.pending_pair == IDPair(UID(9), 7)

    def test_zero_bit_targets_one_advertisers(self):
        node = BitConvergenceNode(0, UID(9), id_tag=0, config=CFG)  # all bits 0
        rng = np.random.default_rng(0)
        node.choose_tag(1, rng)
        v = RoundView(
            local_round=1,
            neighbors=np.array([1, 2, 3]),
            neighbor_tags=np.array([0, 1, 0]),
            rng=rng,
        )
        for _ in range(20):
            assert node.decide(v) == 2

    def test_one_bit_listens(self):
        node = BitConvergenceNode(0, UID(9), id_tag=(1 << CFG.k) - 1, config=CFG)
        rng = np.random.default_rng(0)
        node.choose_tag(1, rng)
        v = RoundView(
            local_round=1,
            neighbors=np.array([1]),
            neighbor_tags=np.array([0]),
            rng=rng,
        )
        assert node.decide(v) is None

    def test_tag_width_validated(self):
        with pytest.raises(ValueError):
            BitConvergenceNode(0, UID(1), id_tag=1 << CFG.k, config=CFG)


class TestReferenceConvergence:
    def test_elects_min_pair_uid(self):
        g = families.random_regular(12, 3, seed=0)
        us = UIDSpace(g.n, seed=1)
        cfg = BitConvergenceConfig(n_upper=g.n, delta_bound=3, beta=1.0)
        nodes = make_bit_convergence_nodes(us, cfg, seed=2, unique_tags=True)
        winner = min(nodes, key=lambda nd: nd.committed_pair).uid
        eng = ReferenceEngine(StaticDynamicGraph(g), nodes, seed=3)
        res = eng.run(100_000, all_leaders_are(winner))
        assert res.stabilized


class TestVectorizedConvergence:
    @pytest.mark.parametrize(
        "graph,delta",
        [
            (families.clique(16), 15),
            (families.double_star(6), 7),
            (families.random_regular(16, 4, seed=0), 4),
        ],
        ids=["clique", "double_star", "regular"],
    )
    def test_converges_static(self, graph, delta):
        keys = uid_keys_random(graph.n, 0)
        cfg = BitConvergenceConfig(n_upper=graph.n, delta_bound=delta, beta=1.0)
        eng = VectorizedEngine(
            StaticDynamicGraph(graph),
            BitConvergenceVectorized(keys, cfg, tag_seed=1, unique_tags=True),
            seed=2,
        )
        res = eng.run(200_000)
        assert res.stabilized
        assert (eng.algo.leaders(eng.state) == eng.state.target_key).all()

    def test_converges_under_tau1_churn(self):
        base = families.random_regular(16, 4, seed=0)
        keys = uid_keys_random(16, 0)
        cfg = BitConvergenceConfig(n_upper=16, delta_bound=4, beta=1.0)
        eng = VectorizedEngine(
            PeriodicRelabelDynamicGraph(base, 1, seed=5),
            BitConvergenceVectorized(keys, cfg, tag_seed=1, unique_tags=True),
            seed=2,
        )
        assert eng.run(200_000).stabilized

    def test_winner_is_min_pair_not_min_key(self):
        """Leadership goes to the minimum (tag, uid) pair — the random tag
        decides, with UID only as tie-break (paper Section VII)."""
        n = 16
        keys = uid_keys_random(n, 0)
        cfg = BitConvergenceConfig(n_upper=n, delta_bound=15, beta=1.0)
        algo = BitConvergenceVectorized(keys, cfg, tag_seed=1, unique_tags=True)
        eng = VectorizedEngine(StaticDynamicGraph(families.clique(n)), algo, seed=2)
        res = eng.run(100_000)
        assert res.stabilized
        tags0 = draw_id_tags(n, cfg, 1, unique=True)
        win = np.lexsort((keys, tags0))[0]
        assert eng.state.target_key == keys[win]


class TestLemmaVII1Invariants:
    def _run_collecting(self, seed):
        g = families.random_regular(16, 4, seed=seed)
        keys = uid_keys_random(16, seed)
        cfg = BitConvergenceConfig(n_upper=16, delta_bound=4, beta=1.0)
        algo = BitConvergenceVectorized(keys, cfg, tag_seed=seed, unique_tags=True)
        eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=seed)
        history = []
        for r in range(1, 4000):
            eng.step(r)
            if r % cfg.phase_len == 0:  # phase boundary snapshots
                history.append(
                    (algo.max_difference_bit(eng.state), algo.zero_set_size(eng.state))
                )
            if algo.converged(eng.state):
                break
        return history

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_max_difference_bit_monotone(self, seed):
        history = self._run_collecting(seed)
        bis = [b for b, _ in history]
        # Property 1-2: b_i non-decreasing, bottom (None) is absorbing.
        seen_bottom = False
        prev = 0
        for b in bis:
            if b is None:
                seen_bottom = True
            else:
                assert not seen_bottom, "b_i regressed from ⊥"
                assert b >= prev
                prev = b

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_zero_set_never_shrinks_within_bit(self, seed):
        history = self._run_collecting(seed)
        prev_bit, prev_size = None, None
        for b, size in history:
            if b is not None and b == prev_bit:
                assert size >= prev_size
            prev_bit, prev_size = b, size

    def test_committed_pairs_monotone_nonincreasing(self):
        g = families.random_regular(16, 4, seed=9)
        keys = uid_keys_random(16, 9)
        cfg = BitConvergenceConfig(n_upper=16, delta_bound=4, beta=1.0)
        algo = BitConvergenceVectorized(keys, cfg, tag_seed=9, unique_tags=True)
        eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=9)
        prev_t = eng.state.ctag.copy()
        prev_k = eng.state.ckey.copy()
        for r in range(1, 2000):
            eng.step(r)
            improved = (eng.state.ctag < prev_t) | (
                (eng.state.ctag == prev_t) & (eng.state.ckey <= prev_k)
            )
            assert improved.all()
            prev_t, prev_k = eng.state.ctag.copy(), eng.state.ckey.copy()
            if algo.converged(eng.state):
                break
