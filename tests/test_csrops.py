"""Tests for repro.util.csrops: CSR construction and segmented choices."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.csrops import (
    build_csr,
    csr_degrees,
    gather_rows,
    segmented_random_pick,
    segmented_uniform_accept,
    unique_nodes,
)


def triangle_csr():
    return build_csr(3, np.array([[0, 1], [1, 2], [0, 2]]))


@st.composite
def edge_lists(draw, max_n=12):
    n = draw(st.integers(2, max_n))
    pool = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(pool), unique=True, max_size=len(pool)))
    return n, np.asarray(edges, dtype=np.int64).reshape(-1, 2)


class TestBuildCsr:
    def test_triangle(self):
        indptr, indices = triangle_csr()
        assert indptr.tolist() == [0, 2, 4, 6]
        assert indices[indptr[0] : indptr[1]].tolist() == [1, 2]
        assert indices[indptr[1] : indptr[2]].tolist() == [0, 2]

    def test_empty(self):
        indptr, indices = build_csr(3, np.empty((0, 2), dtype=np.int64))
        assert indptr.tolist() == [0, 0, 0, 0]
        assert indices.size == 0

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            build_csr(3, np.array([[1, 1]]))

    def test_rejects_duplicate(self):
        with pytest.raises(ValueError):
            build_csr(3, np.array([[0, 1], [1, 0]]))

    def test_rejects_same_orientation_duplicate(self):
        with pytest.raises(ValueError):
            build_csr(4, np.array([[0, 1], [2, 3], [0, 1]]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            build_csr(3, np.array([[0, 3]]))

    @given(edge_lists())
    def test_degrees_match_edge_list(self, case):
        n, edges = case
        indptr, indices = build_csr(n, edges)
        deg = np.zeros(n, dtype=int)
        for u, v in edges:
            deg[u] += 1
            deg[v] += 1
        assert csr_degrees(indptr).tolist() == deg.tolist()

    @given(edge_lists())
    def test_rows_sorted_and_symmetric(self, case):
        n, edges = case
        indptr, indices = build_csr(n, edges)
        edge_set = {(min(u, v), max(u, v)) for u, v in edges}
        for u in range(n):
            row = indices[indptr[u] : indptr[u + 1]]
            assert np.array_equal(row, np.sort(row))
            for v in row:
                assert (min(u, int(v)), max(u, int(v))) in edge_set
        total = sum(indptr[u + 1] - indptr[u] for u in range(n))
        assert total == 2 * len(edge_set)


class TestGatherRows:
    def test_matches_per_row_slices(self):
        indptr, indices = build_csr(
            5, np.array([[0, 1], [0, 2], [1, 2], [3, 4]])
        )
        rows = np.array([2, 0, 2, 4], dtype=np.int64)
        expected = np.concatenate(
            [indices[indptr[u] : indptr[u + 1]] for u in rows]
        )
        assert np.array_equal(gather_rows(indptr, indices, rows), expected)

    def test_empty_rows_and_empty_subset(self):
        indptr, indices = build_csr(4, np.array([[0, 1]]))
        assert gather_rows(indptr, indices, np.array([2, 3])).size == 0
        assert gather_rows(
            indptr, indices, np.empty(0, dtype=np.int64)
        ).size == 0

    @given(edge_lists(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50)
    def test_random_subsets_match_loop(self, case, seed):
        n, edges = case
        indptr, indices = build_csr(n, edges)
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, n, size=rng.integers(0, 2 * n))
        expected = (
            np.concatenate([indices[indptr[u] : indptr[u + 1]] for u in rows])
            if rows.size
            else np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(gather_rows(indptr, indices, rows), expected)


class TestUniqueNodes:
    def test_matches_numpy_unique(self):
        ids = np.array([7, 3, 3, 0, 7, 12, 0])
        assert np.array_equal(unique_nodes(ids), np.unique(ids))

    def test_empty_and_singleton(self):
        assert unique_nodes(np.empty(0, dtype=np.int64)).size == 0
        assert unique_nodes(np.array([4])).tolist() == [4]

    def test_result_is_new_array(self):
        ids = np.array([5])
        out = unique_nodes(ids)
        out[0] = 9
        assert ids[0] == 5

    @given(
        st.lists(st.integers(0, 40), max_size=200),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=80)
    def test_random_arrays_match_numpy_unique(self, values, seed):
        ids = np.asarray(values, dtype=np.int64)
        np.random.default_rng(seed).shuffle(ids)
        assert np.array_equal(unique_nodes(ids), np.unique(ids))


class TestSegmentedRandomPick:
    def test_unmasked_picks_are_neighbors(self):
        indptr, indices = triangle_csr()
        rng = np.random.default_rng(0)
        for _ in range(20):
            pick = segmented_random_pick(indptr, indices, rng)
            for u in range(3):
                assert pick[u] in indices[indptr[u] : indptr[u + 1]]

    def test_inactive_rows_get_minus_one(self):
        indptr, indices = triangle_csr()
        rng = np.random.default_rng(0)
        active = np.array([True, False, True])
        pick = segmented_random_pick(indptr, indices, rng, active=active)
        assert pick[1] == -1
        assert pick[0] != -1 and pick[2] != -1

    def test_isolated_row_gets_minus_one(self):
        indptr, indices = build_csr(3, np.array([[0, 1]]))
        rng = np.random.default_rng(0)
        pick = segmented_random_pick(indptr, indices, rng)
        assert pick[2] == -1

    def test_neighbor_mask_respected(self):
        indptr, indices = triangle_csr()
        rng = np.random.default_rng(0)
        mask = np.array([False, True, False])  # only vertex 1 eligible
        for _ in range(10):
            pick = segmented_random_pick(indptr, indices, rng, neighbor_mask=mask)
            assert pick[0] == 1
            assert pick[2] == 1
            assert pick[1] == -1  # vertex 1 has no eligible neighbor

    def test_flat_mask_respected(self):
        indptr, indices = triangle_csr()
        rng = np.random.default_rng(0)
        # Allow only the entry 0->2 (row 0 = [1, 2]).
        flat = np.zeros(indices.size, dtype=bool)
        flat[1] = True
        pick = segmented_random_pick(indptr, indices, rng, flat_mask=flat)
        assert pick[0] == 2
        assert pick[1] == -1 and pick[2] == -1

    def test_flat_mask_shape_checked(self):
        indptr, indices = triangle_csr()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            segmented_random_pick(
                indptr, indices, rng, flat_mask=np.ones(2, dtype=bool)
            )

    def test_masked_pick_roughly_uniform(self):
        # Star center 0 with leaves 1..4, only 1..3 eligible.
        indptr, indices = build_csr(5, np.array([[0, i] for i in range(1, 5)]))
        rng = np.random.default_rng(1)
        mask = np.array([False, True, True, True, False])
        counts = np.zeros(5, dtype=int)
        trials = 3000
        for _ in range(trials):
            pick = segmented_random_pick(indptr, indices, rng, neighbor_mask=mask)
            counts[pick[0]] += 1
        assert counts[4] == 0 and counts[0] == 0
        for leaf in (1, 2, 3):
            assert abs(counts[leaf] / trials - 1 / 3) < 0.05

    @given(edge_lists(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50)
    def test_mask_and_flat_agree(self, case, seed):
        """neighbor_mask and the equivalent flat_mask give identical support."""
        n, edges = case
        indptr, indices = build_csr(n, edges)
        rng1 = np.random.default_rng(seed)
        rng2 = np.random.default_rng(seed)
        mask = np.random.default_rng(seed + 1).random(n) < 0.5
        flat = mask[indices]
        a = segmented_random_pick(indptr, indices, rng1, neighbor_mask=mask)
        b = segmented_random_pick(indptr, indices, rng2, flat_mask=flat)
        assert np.array_equal(a, b)


class TestSegmentedUniformAccept:
    def test_single_proposal_accepted(self):
        acc = segmented_uniform_accept(
            np.array([3]), np.array([1]), 5, np.random.default_rng(0)
        )
        assert acc[1] == 3
        assert (acc[[0, 2, 3, 4]] == -1).all()

    def test_empty(self):
        acc = segmented_uniform_accept(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), 4,
            np.random.default_rng(0),
        )
        assert (acc == -1).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            segmented_uniform_accept(
                np.array([1]), np.array([1, 2]), 4, np.random.default_rng(0)
            )

    def test_each_target_accepts_one_of_its_proposers(self):
        senders = np.array([0, 1, 2, 3, 4])
        targets = np.array([5, 5, 5, 6, 6])
        rng = np.random.default_rng(0)
        for _ in range(50):
            acc = segmented_uniform_accept(senders, targets, 7, rng)
            assert acc[5] in (0, 1, 2)
            assert acc[6] in (3, 4)
            assert (acc[:5] == -1).all()

    def test_acceptance_roughly_uniform(self):
        senders = np.array([0, 1, 2])
        targets = np.array([3, 3, 3])
        rng = np.random.default_rng(7)
        counts = np.zeros(3, dtype=int)
        trials = 3000
        for _ in range(trials):
            counts[segmented_uniform_accept(senders, targets, 4, rng)[3]] += 1
        for s in range(3):
            assert abs(counts[s] / trials - 1 / 3) < 0.05
