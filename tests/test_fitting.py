"""Tests for repro.analysis.fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fitting import PowerLawFit, fit_constant, fit_power_law


class TestFitConstant:
    def test_exact_multiple(self):
        bound = [10.0, 40.0, 90.0]
        measured = [x * 2.5 for x in bound]
        assert fit_constant(measured, bound) == pytest.approx(2.5)

    def test_geometric_compromise(self):
        # Ratios 2 and 8: geometric mean 4.
        assert fit_constant([2.0, 8.0], [1.0, 1.0]) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_constant([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_constant([0.0], [1.0])


class TestFitPowerLaw:
    def test_exact_square_law(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [3 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.exponent_ci_low <= 2.0 <= fit.exponent_ci_high

    def test_predict(self):
        fit = PowerLawFit(2.0, 3.0, 1.0, 2.0, 2.0)
        assert fit.predict(10.0) == pytest.approx(300.0)

    def test_noisy_ci_brackets_truth(self):
        rng = np.random.default_rng(0)
        xs = np.array([2.0, 4.0, 8.0, 16.0, 32.0, 64.0])
        ys = 5 * xs**1.5 * np.exp(rng.normal(0, 0.1, xs.size))
        fit = fit_power_law(xs, ys, seed=1)
        assert 1.2 < fit.exponent < 1.8
        assert fit.exponent_ci_low < fit.exponent < fit.exponent_ci_high
        assert fit.exponent_ci_high - fit.exponent_ci_low < 1.0

    def test_deterministic_given_seed(self):
        xs, ys = [1.0, 2.0, 4.0], [1.0, 3.9, 16.5]
        a = fit_power_law(xs, ys, seed=7)
        b = fit_power_law(xs, ys, seed=7)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0, -1.0], [1.0, 2.0, 3.0])

    def test_matches_experiment_e3_shape(self):
        """The fit applied to real E3-style data recovers the Δ² exponent."""
        # Measured medians from the standard-profile E3 run (double star).
        deltas = [5.0, 9.0, 17.0, 33.0, 65.0]
        rounds = [33.0, 100.5, 243.5, 1002.0, 3972.0]
        fit = fit_power_law(deltas, rounds, seed=0)
        assert 1.5 < fit.exponent < 2.3
        assert fit.exponent_ci_low < 2.0 < fit.exponent_ci_high + 0.3


class TestTableCsv:
    def test_roundtrip_via_csv_module(self):
        import csv
        import io

        from repro.harness.tables import Table

        t = Table(title="T", columns=["a", "b"])
        t.add_row(1, "x,y")
        t.add_row(2.5, True)
        rows = list(csv.reader(io.StringIO(t.to_csv())))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "x,y"]  # comma survives quoting


class TestTraceAnalytics:
    def test_counts_and_cut_connections(self):
        import numpy as np

        from repro.core.trace import RoundRecord, Trace

        tr = Trace()
        tr.append(
            RoundRecord(
                round_index=1,
                proposals=np.array([[0, 1], [2, 1]]),
                connections=np.array([[0, 1]]),
                tags=np.zeros(4, dtype=np.int64),
                active=np.ones(4, dtype=bool),
            )
        )
        tr.append(
            RoundRecord(
                round_index=2,
                proposals=np.empty((0, 2), dtype=np.int64),
                connections=np.array([[2, 3]]),
                tags=np.zeros(4, dtype=np.int64),
                active=np.ones(4, dtype=bool),
            )
        )
        assert tr.connections_per_round().tolist() == [1, 1]
        assert tr.proposals_per_round().tolist() == [2, 0]
        # Cut {0, 2}: round-1 connection (0,1) crosses; round-2 (2,3) crosses.
        mask = np.array([True, False, True, False])
        assert tr.cut_connections(mask).tolist() == [1, 1]
        # Cut {0, 1}: round-1 inside, round-2 outside — no crossings.
        mask2 = np.array([True, True, False, False])
        assert tr.cut_connections(mask2).tolist() == [0, 0]
