"""Property-based tests of whole-model invariants (hypothesis-driven).

These cut across modules: any algorithm on any topology under any churn
must respect the mobile telephone model's structural rules, and the
monotone quantities each algorithm's analysis relies on must hold on
randomly generated executions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.bit_convergence import (
    BitConvergenceConfig,
    BitConvergenceVectorized,
)
from repro.algorithms.blind_gossip import BlindGossipVectorized, make_blind_gossip_nodes
from repro.algorithms.ppush import PPushVectorized
from repro.core.engine import ReferenceEngine
from repro.core.monitor import all_leaders_are
from repro.core.payload import UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.dynamic import (
    PeriodicRelabelDynamicGraph,
    ScheduleDynamicGraph,
    StaticDynamicGraph,
)
from repro.graphs.validation import check_stability_contract
from repro.harness.experiments import uid_keys_random


@st.composite
def small_topologies(draw):
    """A connected topology from a random family at a random small size."""
    kind = draw(st.sampled_from(["clique", "ring", "star", "double_star", "regular", "gnp"]))
    seed = draw(st.integers(0, 10_000))
    if kind == "clique":
        return families.clique(draw(st.integers(3, 12)))
    if kind == "ring":
        return families.ring(draw(st.integers(3, 12)))
    if kind == "star":
        return families.star(draw(st.integers(3, 12)))
    if kind == "double_star":
        return families.double_star(draw(st.integers(1, 5)))
    if kind == "regular":
        n = draw(st.sampled_from([6, 8, 10, 12]))
        return families.random_regular(n, 3, seed=seed)
    return families.connected_erdos_renyi(draw(st.integers(4, 10)), 0.5, seed=seed)


class TestTraceInvariantsEverywhere:
    @given(small_topologies(), st.integers(0, 1000))
    @settings(max_examples=25)
    def test_blind_gossip_trace_obeys_model(self, graph, seed):
        us = UIDSpace(graph.n, seed=seed)
        nodes = make_blind_gossip_nodes(us)
        eng = ReferenceEngine(
            StaticDynamicGraph(graph), nodes, seed=seed, collect_trace=True
        )
        eng.run(15, lambda ps: False)
        assert eng.trace.connection_participants_ok()
        for rec in eng.trace.rounds:
            # Proposals go to neighbors; proposers never accept.
            proposers = set(int(s) for s, _ in rec.proposals)
            for s, t in rec.proposals:
                assert graph.has_edge(int(s), int(t))
            for s, t in rec.connections:
                assert int(t) not in proposers

    @given(small_topologies(), st.integers(0, 1000), st.integers(1, 4))
    @settings(max_examples=20)
    def test_relabel_churn_preserves_contract(self, graph, seed, tau):
        dg = PeriodicRelabelDynamicGraph(graph, tau, seed=seed)
        check_stability_contract(dg, 4 * tau + 3)


class TestMinUidMonotonicityEverywhere:
    @given(small_topologies(), st.integers(0, 1000))
    @settings(max_examples=20)
    def test_blind_gossip_converges_and_is_absorbing(self, graph, seed):
        n = graph.n
        keys = uid_keys_random(n, seed)
        algo = BlindGossipVectorized(keys)
        eng = VectorizedEngine(StaticDynamicGraph(graph), algo, seed=seed)
        res = eng.run(500_000)
        assert res.stabilized
        eng.step(res.rounds + 1)
        assert algo.converged(eng.state)

    @given(small_topologies(), st.integers(0, 1000))
    @settings(max_examples=15)
    def test_ppush_informed_set_monotone(self, graph, seed):
        algo = PPushVectorized(np.array([0]))
        eng = VectorizedEngine(StaticDynamicGraph(graph), algo, seed=seed)
        prev = 1
        for r in range(1, 300):
            eng.step(r)
            cur = algo.informed_count(eng.state)
            assert cur >= prev
            prev = cur
            if cur == graph.n:
                break


class TestBitConvergenceEverywhere:
    @given(small_topologies(), st.integers(0, 1000))
    @settings(max_examples=12)
    def test_converges_with_unique_tags(self, graph, seed):
        n = graph.n
        keys = uid_keys_random(n, seed)
        cfg = BitConvergenceConfig(
            n_upper=max(n, 4), delta_bound=graph.max_degree, beta=2.0
        )
        algo = BitConvergenceVectorized(keys, cfg, tag_seed=seed, unique_tags=True)
        eng = VectorizedEngine(StaticDynamicGraph(graph), algo, seed=seed)
        res = eng.run(500_000)
        assert res.stabilized

    @given(small_topologies(), st.integers(0, 1000))
    @settings(max_examples=10)
    def test_max_difference_bit_monotone_under_schedule_churn(self, graph, seed):
        n = graph.n
        rng = np.random.default_rng(seed)
        variants = [graph.relabel(rng.permutation(n)) for _ in range(3)]
        dg = ScheduleDynamicGraph(variants, tau=2, cycle=True)
        keys = uid_keys_random(n, seed)
        cfg = BitConvergenceConfig(
            n_upper=max(n, 4), delta_bound=graph.max_degree, beta=1.5
        )
        algo = BitConvergenceVectorized(keys, cfg, tag_seed=seed, unique_tags=True)
        eng = VectorizedEngine(dg, algo, seed=seed)
        prev = 0
        for r in range(1, 600):
            eng.step(r)
            if r % cfg.phase_len:
                continue
            b = algo.max_difference_bit(eng.state)
            if b is None:
                break
            assert b >= prev
            prev = b
