"""Tests for the shared-memory graph plane (repro.util.shm).

Lifecycle discipline is the core contract: every segment a campaign
publishes is unlinked when the owning store cleans up — on normal exit,
after worker SIGKILL (workers never own segments), and on
KeyboardInterrupt (covered with the pooled campaign in
``test_campaign_parallel.py``).  The memo contract: identical
``(family, args, seed)`` calls build once and share; unseeded calls
never memoize.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.graphs import families
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph
from repro.graphs.static import Graph
from repro.util import shm

pytestmark = pytest.mark.skipif(
    not shm.shared_memory_supported(), reason="no /dev/shm on this platform"
)


@pytest.fixture
def store():
    store = shm.SharedGraphStore.create()
    try:
        yield store
    finally:
        store.cleanup()


def leaked(prefix: str) -> list[str]:
    return sorted(p.name for p in shm.SHM_DIR.glob(prefix + "-*"))


class TestSegments:
    def test_graph_roundtrip_zero_copy(self, store):
        g = families.random_regular(256, 4, seed=7)
        name = store.publish_graph(g)
        assert name is not None and name.startswith(store.prefix)
        attach = shm.SharedGraphStore(store.prefix, owner=False)
        loaded = attach.load_graph(name)
        assert loaded == g
        assert np.array_equal(loaded.indptr, g.indptr)
        assert np.array_equal(loaded.indices, g.indices)
        assert not loaded.indptr.flags.writeable  # mmap'd read-only view
        assert not loaded.indices.flags.writeable
        # Same process, same name -> same cached object.
        assert attach.load_graph(name) is loaded

    def test_publish_is_content_addressed(self, store):
        g1 = families.random_regular(128, 4, seed=3)
        g2 = families.random_regular(128, 4, seed=3)
        assert g1 is not g2  # no active store: built independently
        assert store.publish_graph(g1) == store.publish_graph(g2)
        assert len(store.segment_names()) == 1

    def test_array_roundtrip(self, store):
        arr = np.arange(24, dtype=np.int64).reshape(4, 6)
        name = store.publish_array(("blocks", 1), arr)
        attach = shm.SharedGraphStore(store.prefix, owner=False)
        out = attach.load_array(name)
        assert np.array_equal(out, arr)
        assert out.shape == (4, 6)

    def test_cleanup_unlinks_everything(self):
        store = shm.SharedGraphStore.create()
        store.publish_graph(families.ring(32))
        store.publish_array(("a",), np.arange(5, dtype=np.int64))
        assert len(leaked(store.prefix)) == 2
        removed = store.cleanup()
        assert removed == 2
        assert leaked(store.prefix) == []

    def test_attach_mode_cleanup_never_deletes(self, store):
        store.publish_graph(families.ring(32))
        attach = shm.SharedGraphStore(store.prefix, owner=False)
        assert attach.cleanup() == 0
        assert len(leaked(store.prefix)) == 1

    def test_segment_cap_stops_publishing_not_building(self):
        store = shm.SharedGraphStore.create(max_segments=2)
        try:
            graphs = [
                families.random_regular(64, 4, seed=s) for s in range(4)
            ]
            names = [store.publish_graph(g) for g in graphs]
            assert names[0] is not None and names[1] is not None
            assert names[2] is None and names[3] is None  # over cap: fall back
            assert len(store.segment_names()) == 2
        finally:
            store.cleanup()


class TestFamilyMemo:
    def test_seeded_build_shared_across_stores(self, store):
        with shm.use_graph_store(store):
            g1 = families.random_regular(256, 4, seed=11)
            g2 = families.random_regular(256, 4, seed=11)
        assert g1 is g2
        assert (store.hits, store.misses) == (1, 1)
        # A different process attaching by prefix maps the same build.
        attach = shm.SharedGraphStore(store.prefix, owner=False)
        with shm.use_graph_store(attach):
            g3 = families.random_regular(256, 4, seed=11)
        assert (attach.hits, attach.misses) == (1, 0)
        assert g3 == g1

    def test_different_args_different_graphs(self, store):
        with shm.use_graph_store(store):
            a = families.random_regular(128, 4, seed=1)
            b = families.random_regular(128, 4, seed=2)
            c = families.random_regular(128, 6, seed=1)
        assert a != b and a != c
        assert store.misses == 3

    def test_unseeded_calls_stay_random(self, store):
        with shm.use_graph_store(store):
            a = families.erdos_renyi(40, 0.3)
            b = families.erdos_renyi(40, 0.3)
        assert a is not b  # memoizing would freeze the sampler
        assert store.hits == 0

    def test_deterministic_families_memoize(self, store):
        with shm.use_graph_store(store):
            a = families.hypercube(5)
            b = families.hypercube(5)
        assert a is b
        assert (store.hits, store.misses) == (1, 1)

    def test_no_store_no_memo(self):
        a = families.hypercube(4)
        b = families.hypercube(4)
        assert a is not b and a == b


class TestPickling:
    def test_graph_pickles_as_segment_reference(self, store):
        g = families.random_regular(512, 8, seed=5)
        with shm.use_graph_store(store):
            blob = pickle.dumps(g)
        assert len(blob) < 1024  # a reference, not the CSR payload
        out = pickle.loads(blob)  # in-process: resolves through the cache
        assert out == g

    def test_graph_pickles_plainly_without_store(self):
        g = families.random_regular(128, 4, seed=9)
        out = pickle.loads(pickle.dumps(g))
        assert out == g
        assert np.array_equal(out.indptr, g.indptr)
        assert not out.indptr.flags.writeable
        assert not out.edges.flags.writeable

    def test_from_csr_trusts_arrays(self):
        g = families.ring(16)
        h = Graph._from_csr(g.n, g.indptr, g.indices, g.edges)
        assert h == g and h.neighbors(0).tolist() == g.neighbors(0).tolist()

    def test_relabel_dynamic_graph_blocks_travel_by_reference(self, store):
        base = families.random_regular(128, 4, seed=2)
        dyn = PeriodicRelabelDynamicGraph(base, tau=1, seed=3)
        p5 = dyn.permutation_at(5).copy()  # forces block generation
        with shm.use_graph_store(store):
            blob = pickle.dumps(dyn)
        out = pickle.loads(blob)
        assert out._perm_blocks  # shipped via segments, not regenerated
        assert np.array_equal(out.permutation_at(5), p5)
        assert out.graph_at(5) == dyn.graph_at(5)

    def test_relabel_dynamic_graph_plain_pickle_regenerates(self):
        base = families.random_regular(64, 4, seed=2)
        dyn = PeriodicRelabelDynamicGraph(base, tau=2, seed=7)
        p9 = dyn.permutation_at(9).copy()
        out = pickle.loads(pickle.dumps(dyn))
        assert out._perm_blocks == {}  # dropped; deterministic regeneration
        assert np.array_equal(out.permutation_at(9), p9)
