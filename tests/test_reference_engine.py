"""Tests for the reference engine: literal model semantics of Section III."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import ModelViolation, ReferenceEngine
from repro.core.payload import Message, UID, UIDSpace
from repro.core.protocol import NodeProtocol, RoundView
from repro.graphs import families
from repro.graphs.dynamic import StaticDynamicGraph


class AlwaysSend(NodeProtocol):
    """Proposes to a uniformly random neighbor every round."""

    tag_length = 0

    def __init__(self, node_id, uid):
        super().__init__(node_id, uid)
        self.received_from: list[int] = []
        self.rounds_seen = 0

    def decide(self, view: RoundView):
        self.rounds_seen += 1
        if view.neighbors.size == 0:
            return None
        return int(view.neighbors[view.rng.integers(0, view.neighbors.size)])

    def compose(self, peer):
        return Message(data=("hello", self.node_id))

    def deliver(self, peer, message):
        self.received_from.append(peer)


class AlwaysListen(AlwaysSend):
    """Only receives."""

    def decide(self, view):
        self.rounds_seen += 1
        return None


class BadTag(AlwaysListen):
    tag_length = 1

    def choose_tag(self, local_round, rng):
        return 2  # outside 1 bit


class BadTarget(AlwaysSend):
    def decide(self, view):
        return 10**6  # not a neighbor


class FatMessage(AlwaysSend):
    def compose(self, peer):
        return Message(uids=tuple(UID(i) for i in range(100)))


def make_engine(proto_cls, graph, seed=0, **kw):
    us = UIDSpace(graph.n, seed=seed)
    protos = [proto_cls(v, us.uid_of(v)) for v in range(graph.n)]
    return (
        ReferenceEngine(StaticDynamicGraph(graph), protos, seed=seed, **kw),
        protos,
        us,
    )


class TestRoundMechanics:
    def test_one_connection_per_node_per_round(self):
        eng, _, _ = make_engine(AlwaysSend, families.clique(8), collect_trace=True)
        eng.run(30, lambda ps: False)
        assert eng.trace.connection_participants_ok()

    def test_connections_follow_edges(self):
        g = families.ring(8)
        eng, _, _ = make_engine(AlwaysSend, g, collect_trace=True)
        eng.run(20, lambda ps: False)
        for rec in eng.trace.rounds:
            for s, t in rec.connections:
                assert g.has_edge(int(s), int(t))

    def test_proposer_cannot_receive(self):
        # All nodes send every round => nobody listens => no connections.
        eng, _, _ = make_engine(AlwaysSend, families.clique(6), collect_trace=True)
        eng.run(10, lambda ps: False)
        # On a clique with everyone proposing, every proposal targets a
        # proposer, so no connection can form.
        assert eng.trace.total_connections() == 0

    def test_listener_accepts_exactly_one(self):
        # Star: leaves always send (their only neighbor is the hub); hub
        # always listens. Each round: exactly one connection.
        g = families.star(6)

        class LeafSendsHubListens(AlwaysSend):
            def decide(self, view):
                if self.node_id == 0:
                    return None
                return 0

        eng, protos, _ = make_engine(LeafSendsHubListens, g, collect_trace=True)
        eng.run(15, lambda ps: False)
        for rec in eng.trace.rounds:
            assert rec.connections.shape[0] == 1
            assert rec.connections[0, 1] == 0  # hub is the acceptor

    def test_messages_delivered_both_ways(self):
        g = families.path(2)

        class ZeroSendsOneListens(AlwaysSend):
            def decide(self, view):
                return 1 if self.node_id == 0 else None

        eng, protos, _ = make_engine(ZeroSendsOneListens, g)
        eng.run(3, lambda ps: False)
        assert protos[0].received_from and set(protos[0].received_from) == {1}
        assert protos[1].received_from and set(protos[1].received_from) == {0}


class TestModelEnforcement:
    def test_tag_width_enforced(self):
        eng, _, _ = make_engine(BadTag, families.ring(4))
        with pytest.raises(ModelViolation):
            eng.run(2, lambda ps: False)

    def test_nonzero_tag_at_b0_enforced(self):
        class SneakyTag(AlwaysListen):
            tag_length = 0

            def choose_tag(self, local_round, rng):
                return 1

        eng, _, _ = make_engine(SneakyTag, families.ring(4))
        with pytest.raises(ModelViolation):
            eng.run(2, lambda ps: False)

    def test_propose_to_non_neighbor_enforced(self):
        eng, _, _ = make_engine(BadTarget, families.ring(4))
        with pytest.raises(ModelViolation):
            eng.run(2, lambda ps: False)

    def test_payload_budget_enforced(self):
        class HalfListen(FatMessage):
            def decide(self, view):
                # Even ids send, odd ids listen, so connections happen.
                if self.node_id % 2 == 1:
                    return None
                return super().decide(view)

        eng, _, _ = make_engine(HalfListen, families.clique(6))
        from repro.core.payload import BudgetExceeded

        with pytest.raises(BudgetExceeded):
            eng.run(10, lambda ps: False)

    def test_protocol_count_checked(self):
        g = families.ring(5)
        us = UIDSpace(4, seed=0)
        protos = [AlwaysListen(v, us.uid_of(v)) for v in range(4)]
        with pytest.raises(ValueError):
            ReferenceEngine(StaticDynamicGraph(g), protos)


class TestActivation:
    def test_inactive_nodes_invisible(self):
        g = families.path(3)

        class Recorder(AlwaysListen):
            def __init__(self, node_id, uid):
                super().__init__(node_id, uid)
                self.seen_neighbors: list[list[int]] = []

            def decide(self, view):
                self.seen_neighbors.append([int(x) for x in view.neighbors])
                return None

        us = UIDSpace(3, seed=0)
        protos = [Recorder(v, us.uid_of(v)) for v in range(3)]
        eng = ReferenceEngine(
            StaticDynamicGraph(g), protos, seed=0, activation_rounds=[1, 3, 1]
        )
        eng.run(4, lambda ps: False)
        # Round 1-2: node 1 inactive, so node 0 and 2 see nobody.
        assert protos[0].seen_neighbors[0] == []
        assert protos[0].seen_neighbors[1] == []
        # Round 3 on: node 1 active and visible.
        assert protos[0].seen_neighbors[2] == [1]
        # Node 1 was never called before its activation round.
        assert len(protos[1].seen_neighbors) == 2

    def test_local_round_counters(self):
        g = families.path(2)

        class LocalRoundRecorder(AlwaysListen):
            def __init__(self, node_id, uid):
                super().__init__(node_id, uid)
                self.local_rounds: list[int] = []

            def decide(self, view):
                self.local_rounds.append(view.local_round)
                return None

        us = UIDSpace(2, seed=0)
        protos = [LocalRoundRecorder(v, us.uid_of(v)) for v in range(2)]
        eng = ReferenceEngine(
            StaticDynamicGraph(g), protos, seed=0, activation_rounds=[1, 3]
        )
        eng.run(5, lambda ps: False)
        assert protos[0].local_rounds == [1, 2, 3, 4, 5]
        assert protos[1].local_rounds == [1, 2, 3]

    def test_rounds_after_last_activation(self):
        g = families.path(2)
        us = UIDSpace(2, seed=0)
        protos = [AlwaysListen(v, us.uid_of(v)) for v in range(2)]
        eng = ReferenceEngine(
            StaticDynamicGraph(g), protos, seed=0, activation_rounds=[1, 4]
        )
        res = eng.run(10, lambda ps: False)
        assert res.rounds == 10
        assert res.rounds_after_last_activation == 7

    def test_activation_validation(self):
        g = families.path(2)
        us = UIDSpace(2, seed=0)
        protos = [AlwaysListen(v, us.uid_of(v)) for v in range(2)]
        with pytest.raises(ValueError):
            ReferenceEngine(
                StaticDynamicGraph(g), protos, activation_rounds=[0, 1]
            )


class TestRunLoop:
    def test_stop_predicate_halts(self):
        eng, protos, _ = make_engine(AlwaysListen, families.ring(4))
        res = eng.run(100, lambda ps: ps[0].rounds_seen >= 5)
        assert res.stabilized and res.rounds == 5

    def test_check_every_quantizes(self):
        eng, protos, _ = make_engine(AlwaysListen, families.ring(4))
        res = eng.run(100, lambda ps: ps[0].rounds_seen >= 5, check_every=4)
        assert res.stabilized and res.rounds == 8

    def test_horizon_reached(self):
        eng, _, _ = make_engine(AlwaysListen, families.ring(4))
        res = eng.run(7, lambda ps: False)
        assert not res.stabilized and res.rounds == 7

    def test_deterministic_given_seed(self):
        def run_once():
            eng, protos, _ = make_engine(AlwaysSend, families.clique(6), seed=9)
            eng.run(10, lambda ps: False)
            return [tuple(p.received_from) for p in protos]

        assert run_once() == run_once()

    def test_max_rounds_validation(self):
        eng, _, _ = make_engine(AlwaysListen, families.ring(4))
        with pytest.raises(ValueError):
            eng.run(0, lambda ps: False)
