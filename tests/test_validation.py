"""Tests for repro.graphs.validation: contract checkers."""

from __future__ import annotations

import math

import pytest

from repro.graphs import families
from repro.graphs.dynamic import (
    DynamicGraph,
    ScheduleDynamicGraph,
    StaticDynamicGraph,
)
from repro.graphs.static import Graph
from repro.graphs.validation import (
    StabilityViolation,
    check_connected,
    check_stability_contract,
    observed_change_rounds,
)


class _LyingDynamicGraph(DynamicGraph):
    """Claims tau but changes faster — used to exercise the validators."""

    def __init__(self, graphs, claimed_tau):
        self._graphs = graphs
        self.n = graphs[0].n
        self.tau = claimed_tau

    def graph_at(self, r: int) -> Graph:
        return self._graphs[(r - 1) % len(self._graphs)]


class TestObservedChangeRounds:
    def test_static_no_changes(self):
        dg = StaticDynamicGraph(families.ring(5))
        assert observed_change_rounds(dg, 10) == []

    def test_schedule_changes_at_epoch_boundaries(self):
        dg = ScheduleDynamicGraph(
            [families.ring(6), families.path(6), families.star(6)], tau=3
        )
        assert observed_change_rounds(dg, 9) == [4, 7]


class TestStabilityContract:
    def test_static_ok(self):
        check_stability_contract(StaticDynamicGraph(families.ring(5)), 20)

    def test_schedule_ok(self):
        dg = ScheduleDynamicGraph([families.ring(6), families.path(6)], tau=5)
        check_stability_contract(dg, 20)

    def test_violation_detected(self):
        liar = _LyingDynamicGraph([families.ring(6), families.path(6)], claimed_tau=5)
        with pytest.raises(StabilityViolation):
            check_stability_contract(liar, 10)

    def test_static_liar_detected(self):
        liar = _LyingDynamicGraph([families.ring(6), families.path(6)], math.inf)
        with pytest.raises(StabilityViolation):
            check_stability_contract(liar, 10)


class TestCheckConnected:
    def test_connected_ok(self):
        check_connected(StaticDynamicGraph(families.ring(5)), 10)

    def test_disconnected_detected(self):
        bad = Graph(4, [(0, 1), (2, 3)])
        liar = _LyingDynamicGraph([bad], claimed_tau=1)
        with pytest.raises(ValueError):
            check_connected(liar, 5)
