"""Tests for result persistence."""

from __future__ import annotations

import json
import math

import pytest

from repro.harness.persistence import (
    ResultLoadError,
    atomic_write_text,
    decode_nonfinite,
    encode_nonfinite,
    load_document,
    load_table,
    quarantine_file,
    save_table,
    strict_json_loads,
)
from repro.harness.tables import Table


def sample_table() -> Table:
    t = Table(title="T", columns=["x", "rounds", "ok"], notes=["a note"])
    t.add_row(1, 12.5, True)
    t.add_row(2, 50.0, False)
    return t


class TestRoundTrip:
    def test_table_roundtrip(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E3", profile="quick")
        loaded = load_table(path)
        original = sample_table()
        assert loaded.title == original.title
        assert list(loaded.columns) == list(original.columns)
        assert [list(r) for r in loaded.rows] == [list(r) for r in original.rows]
        assert loaded.notes == original.notes
        assert loaded.render() == original.render()

    def test_metadata(self, tmp_path):
        import repro

        path = tmp_path / "res.json"
        save_table(
            sample_table(), path, exp_id="E7", profile="standard",
            extra={"seed": 42},
        )
        doc = load_document(path)
        assert doc.exp_id == "E7"
        assert doc.profile == "standard"
        assert doc.package_version == repro.__version__
        assert doc.extra == {"seed": 42}
        assert doc.created_at > 0

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        assert path.exists()

    def test_format_version_checked(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        doc = json.loads(path.read_text())
        doc["format_version"] = 999
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            load_document(path)

    def test_registry_output_is_serializable(self, tmp_path):
        """Every cell type the registry produces survives the round trip."""
        from repro.harness.experiments import run_experiment

        table = run_experiment("E1", "quick", n_small=6, random_graphs=1)
        path = tmp_path / "e1.json"
        save_table(table, path, exp_id="E1", profile="quick")
        assert load_table(path).render() == table.render()


class TestDurability:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, "hello")
        atomic_write_text(path, "world")
        assert path.read_text() == "world"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_truncated_file_raises_result_load_error(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # simulate a mid-write crash
        with pytest.raises(ResultLoadError) as exc_info:
            load_document(path)
        assert str(path) in str(exc_info.value)
        assert load_document(path, strict=False) is None

    def test_missing_file_raises_result_load_error(self, tmp_path):
        with pytest.raises(ResultLoadError, match="nope.json"):
            load_document(tmp_path / "nope.json")
        assert load_document(tmp_path / "nope.json", strict=False) is None

    def test_missing_keys_raise_result_load_error(self, tmp_path):
        path = tmp_path / "res.json"
        path.write_text(json.dumps({"format_version": 1}))
        with pytest.raises(ResultLoadError):
            load_document(path)

    def test_content_hash_detects_tampering(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        doc = json.loads(path.read_text())
        doc["table"]["rows"][0][1] = 999.0  # silent bit-flip
        path.write_text(json.dumps(doc))
        with pytest.raises(ResultLoadError, match="hash"):
            load_document(path)

    def test_saved_document_carries_hash(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        assert "content_sha256" in json.loads(path.read_text())
        assert load_document(path) is not None  # hash verifies

    def test_quarantine_file_preserves_content(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{corrupt")
        q1 = quarantine_file(path)
        assert not path.exists()
        assert q1.name == "bad.json.quarantined"
        assert q1.read_text() == "{corrupt"
        path.write_text("{corrupt again")
        q2 = quarantine_file(path)
        assert q2.name == "bad.json.quarantined.1"

    def test_load_error_is_value_error(self, tmp_path):
        """Backwards compatibility: pre-existing callers catch ValueError."""
        assert issubclass(ResultLoadError, ValueError)


def nonfinite_table() -> Table:
    """A table shaped like the tournament leaderboard's worst case."""
    t = Table(title="NF", columns=["adversary", "inflation", "score"])
    t.add_row("crash", math.inf, 0.5)
    t.add_row("drop", math.nan, -math.inf)
    return t


class TestNonFinite:
    def test_roundtrip_render_bit_identical(self, tmp_path):
        path = tmp_path / "nf.json"
        save_table(nonfinite_table(), path, exp_id="T1", profile="quick")
        loaded = load_table(path)
        assert loaded.render() == nonfinite_table().render()
        assert loaded.rows[0][1] == math.inf
        assert math.isnan(loaded.rows[1][1])
        assert loaded.rows[1][2] == -math.inf
        # Re-save the loaded table: the file bytes (hash aside, which
        # covers a timestamp) must encode identically.
        path2 = tmp_path / "nf2.json"
        save_table(loaded, path2, exp_id="T1", profile="quick")
        assert json.loads(path.read_text())["table"] == (
            json.loads(path2.read_text())["table"]
        )

    def test_on_disk_bytes_are_strict_rfc8259(self, tmp_path):
        path = tmp_path / "nf.json"
        save_table(
            nonfinite_table(), path, exp_id="T1", profile="quick",
            extra={"worst": math.inf, "nested": {"cells": [math.nan]}},
        )
        text = path.read_text()
        strict_json_loads(text)  # must not raise
        assert "Infinity" not in text and "NaN" not in text

    def test_strict_json_loads_rejects_tokens(self):
        with pytest.raises(ValueError, match="RFC 8259"):
            strict_json_loads('{"x": Infinity}')
        with pytest.raises(ValueError, match="RFC 8259"):
            strict_json_loads("[NaN]")
        assert strict_json_loads('{"x": 1.5}') == {"x": 1.5}

    def test_encode_identity_on_finite_payloads(self, tmp_path):
        """Finite-only tables hash identically to the pre-encoding format."""
        doc = {"rows": [[1, 2.5, "s", True, None]], "extra": {"k": [0.1]}}
        assert encode_nonfinite(doc) == doc
        assert decode_nonfinite(doc) == doc
        path = tmp_path / "finite.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        assert "__nonfinite__" not in path.read_text()

    def test_encode_decode_inverse(self):
        value = {"a": math.inf, "b": [math.nan, -math.inf, 3.0], "c": "x"}
        encoded = encode_nonfinite(value)
        assert encoded["a"] == {"__nonfinite__": "inf"}
        decoded = decode_nonfinite(encoded)
        assert decoded["a"] == math.inf
        assert math.isnan(decoded["b"][0])
        assert decoded["b"][1:] == [-math.inf, 3.0]
        with pytest.raises(ValueError, match="unknown non-finite token"):
            decode_nonfinite({"__nonfinite__": "huge"})

    def test_hand_corrupted_nonfinite_file(self, tmp_path):
        """A raw Infinity token edited into a saved file fails the hash
        check loudly under ``strict=True`` and quarantines cleanly."""
        path = tmp_path / "nf.json"
        save_table(nonfinite_table(), path, exp_id="T1", profile="quick")
        text = path.read_text().replace('{\n          "__nonfinite__": "inf"\n        }', "Infinity", 1)
        assert "Infinity" in text
        path.write_text(text)
        with pytest.raises(ResultLoadError, match="hash"):
            load_document(path)
        assert load_document(path, strict=False) is None
        quarantined = quarantine_file(path)
        assert not path.exists() and quarantined.exists()

    def test_legacy_infinity_file_still_loads(self, tmp_path):
        """Checkpoints written before the portable encoding (raw
        ``Infinity``/``NaN`` tokens) parse and hash-verify unchanged."""
        from repro.harness.persistence import _payload_hash, _table_to_json

        doc = {
            "format_version": 1,
            "exp_id": "T1",
            "profile": "quick",
            "created_at": 1.0,
            "package_version": "legacy",
            "extra": {"worst": math.inf},
            "table": _table_to_json(nonfinite_table()),
        }
        doc["content_sha256"] = _payload_hash(doc)
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(doc, indent=2))  # allow_nan default
        assert "Infinity" in path.read_text()
        loaded = load_document(path)
        assert loaded.extra == {"worst": math.inf}
        assert loaded.table.rows[0][1] == math.inf
        assert math.isnan(loaded.table.rows[1][1])
