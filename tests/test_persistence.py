"""Tests for result persistence."""

from __future__ import annotations

import json

import pytest

from repro.harness.persistence import (
    ResultLoadError,
    atomic_write_text,
    load_document,
    load_table,
    quarantine_file,
    save_table,
)
from repro.harness.tables import Table


def sample_table() -> Table:
    t = Table(title="T", columns=["x", "rounds", "ok"], notes=["a note"])
    t.add_row(1, 12.5, True)
    t.add_row(2, 50.0, False)
    return t


class TestRoundTrip:
    def test_table_roundtrip(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E3", profile="quick")
        loaded = load_table(path)
        original = sample_table()
        assert loaded.title == original.title
        assert list(loaded.columns) == list(original.columns)
        assert [list(r) for r in loaded.rows] == [list(r) for r in original.rows]
        assert loaded.notes == original.notes
        assert loaded.render() == original.render()

    def test_metadata(self, tmp_path):
        import repro

        path = tmp_path / "res.json"
        save_table(
            sample_table(), path, exp_id="E7", profile="standard",
            extra={"seed": 42},
        )
        doc = load_document(path)
        assert doc.exp_id == "E7"
        assert doc.profile == "standard"
        assert doc.package_version == repro.__version__
        assert doc.extra == {"seed": 42}
        assert doc.created_at > 0

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        assert path.exists()

    def test_format_version_checked(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        doc = json.loads(path.read_text())
        doc["format_version"] = 999
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            load_document(path)

    def test_registry_output_is_serializable(self, tmp_path):
        """Every cell type the registry produces survives the round trip."""
        from repro.harness.experiments import run_experiment

        table = run_experiment("E1", "quick", n_small=6, random_graphs=1)
        path = tmp_path / "e1.json"
        save_table(table, path, exp_id="E1", profile="quick")
        assert load_table(path).render() == table.render()


class TestDurability:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, "hello")
        atomic_write_text(path, "world")
        assert path.read_text() == "world"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_truncated_file_raises_result_load_error(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # simulate a mid-write crash
        with pytest.raises(ResultLoadError) as exc_info:
            load_document(path)
        assert str(path) in str(exc_info.value)
        assert load_document(path, strict=False) is None

    def test_missing_file_raises_result_load_error(self, tmp_path):
        with pytest.raises(ResultLoadError, match="nope.json"):
            load_document(tmp_path / "nope.json")
        assert load_document(tmp_path / "nope.json", strict=False) is None

    def test_missing_keys_raise_result_load_error(self, tmp_path):
        path = tmp_path / "res.json"
        path.write_text(json.dumps({"format_version": 1}))
        with pytest.raises(ResultLoadError):
            load_document(path)

    def test_content_hash_detects_tampering(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        doc = json.loads(path.read_text())
        doc["table"]["rows"][0][1] = 999.0  # silent bit-flip
        path.write_text(json.dumps(doc))
        with pytest.raises(ResultLoadError, match="hash"):
            load_document(path)

    def test_saved_document_carries_hash(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        assert "content_sha256" in json.loads(path.read_text())
        assert load_document(path) is not None  # hash verifies

    def test_quarantine_file_preserves_content(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{corrupt")
        q1 = quarantine_file(path)
        assert not path.exists()
        assert q1.name == "bad.json.quarantined"
        assert q1.read_text() == "{corrupt"
        path.write_text("{corrupt again")
        q2 = quarantine_file(path)
        assert q2.name == "bad.json.quarantined.1"

    def test_load_error_is_value_error(self, tmp_path):
        """Backwards compatibility: pre-existing callers catch ValueError."""
        assert issubclass(ResultLoadError, ValueError)
