"""Tests for result persistence."""

from __future__ import annotations

import json

import pytest

from repro.harness.persistence import load_document, load_table, save_table
from repro.harness.tables import Table


def sample_table() -> Table:
    t = Table(title="T", columns=["x", "rounds", "ok"], notes=["a note"])
    t.add_row(1, 12.5, True)
    t.add_row(2, 50.0, False)
    return t


class TestRoundTrip:
    def test_table_roundtrip(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E3", profile="quick")
        loaded = load_table(path)
        original = sample_table()
        assert loaded.title == original.title
        assert list(loaded.columns) == list(original.columns)
        assert [list(r) for r in loaded.rows] == [list(r) for r in original.rows]
        assert loaded.notes == original.notes
        assert loaded.render() == original.render()

    def test_metadata(self, tmp_path):
        import repro

        path = tmp_path / "res.json"
        save_table(
            sample_table(), path, exp_id="E7", profile="standard",
            extra={"seed": 42},
        )
        doc = load_document(path)
        assert doc.exp_id == "E7"
        assert doc.profile == "standard"
        assert doc.package_version == repro.__version__
        assert doc.extra == {"seed": 42}
        assert doc.created_at > 0

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        assert path.exists()

    def test_format_version_checked(self, tmp_path):
        path = tmp_path / "res.json"
        save_table(sample_table(), path, exp_id="E1", profile="quick")
        doc = json.loads(path.read_text())
        doc["format_version"] = 999
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            load_document(path)

    def test_registry_output_is_serializable(self, tmp_path):
        """Every cell type the registry produces survives the round trip."""
        from repro.harness.experiments import run_experiment

        table = run_experiment("E1", "quick", n_small=6, random_graphs=1)
        path = tmp_path / "e1.json"
        save_table(table, path, exp_id="E1", profile="quick")
        assert load_table(path).render() == table.render()
