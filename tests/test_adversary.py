"""Tests for the adaptive adversary (repro.graphs.adversary)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.push_pull import PushPullVectorized, make_push_pull_nodes
from repro.core.engine import ReferenceEngine
from repro.core.monitor import rumor_complete
from repro.core.payload import UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.graphs import families
from repro.graphs.adversary import PackingAdversary, packing_order_for
from repro.graphs.dynamic import StaticDynamicGraph


class TestPackingOrder:
    def test_is_permutation(self):
        for g in (families.double_star(4), families.line_of_stars(3, 3)):
            order = packing_order_for(g)
            assert sorted(order.tolist()) == list(range(g.n))

    def test_double_star_prefixes_have_unit_cut_matching(self):
        from repro.analysis.matching import cut_matching_size

        g = families.double_star(6)
        order = packing_order_for(g)
        for size in range(1, g.n):
            assert cut_matching_size(g, order[:size].tolist()) <= 2

    def test_leaves_before_hubs(self):
        g = families.double_star(5)
        order = packing_order_for(g)
        # The first entries are degree-1 leaves of the same star.
        assert all(g.degree(int(v)) == 1 for v in order[:4])

    def test_line_of_stars_prefixes_small_cut_matching(self):
        from repro.analysis.matching import cut_matching_size

        g = families.line_of_stars(4, 4)
        order = packing_order_for(g)
        for size in range(1, g.n):
            assert cut_matching_size(g, order[:size].tolist()) <= 3


class TestPackingAdversary:
    def test_preserves_alpha_delta(self):
        base = families.double_star(5)
        adv = PackingAdversary(base, tau=1)
        rng = np.random.default_rng(0)
        for r in range(1, 10):
            adv.observe(r, rng.random(base.n) < 0.5)
            g = adv.graph_at(r)
            assert sorted(g.degrees.tolist()) == sorted(base.degrees.tolist())
            assert g.num_edges == base.num_edges
            assert g.is_connected()

    def test_informed_nodes_packed_behind_small_cut(self):
        from repro.analysis.matching import cut_matching_size

        base = families.double_star(8)
        adv = PackingAdversary(base, tau=1)
        mask = np.zeros(base.n, dtype=bool)
        mask[[3, 7, 11]] = True  # arbitrary informed nodes
        adv.observe(1, mask)
        g = adv.graph_at(1)
        informed = np.flatnonzero(mask).tolist()
        assert cut_matching_size(g, informed) == 1

    def test_respects_tau(self):
        base = families.double_star(4)
        adv = PackingAdversary(base, tau=3)
        masks = [np.random.default_rng(s).random(base.n) < 0.5 for s in range(9)]
        graphs = []
        for r in range(1, 10):
            adv.observe(r, masks[r - 1])
            graphs.append(adv.graph_at(r))
        # Stable within each epoch of 3 rounds.
        assert graphs[0] == graphs[1] == graphs[2]
        assert graphs[3] == graphs[4] == graphs[5]

    def test_forward_only(self):
        base = families.double_star(4)
        adv = PackingAdversary(base, tau=1)
        adv.observe(3, None)
        with pytest.raises(ValueError):
            adv.observe(3, None)
        with pytest.raises(ValueError):
            adv.observe(2, None)

    def test_none_observation_keeps_graph(self):
        base = families.double_star(4)
        adv = PackingAdversary(base, tau=1)
        adv.observe(1, None)
        g1 = adv.graph_at(1)
        adv.observe(2, None)
        assert adv.graph_at(2) == g1

    def test_bad_observation_shape(self):
        adv = PackingAdversary(families.double_star(4), tau=1)
        with pytest.raises(ValueError):
            adv.observe(1, np.zeros(3, dtype=bool))

    def test_bad_packing_order(self):
        with pytest.raises(ValueError):
            PackingAdversary(
                families.double_star(4), packing_order=np.zeros(10, dtype=np.int64)
            )


class TestAdversaryEndToEnd:
    def test_rumor_still_completes_vectorized(self):
        base = families.double_star(8)
        adv = PackingAdversary(base, tau=1)
        eng = VectorizedEngine(adv, PushPullVectorized(np.array([2])), seed=0)
        res = eng.run(500_000)
        assert res.stabilized

    def test_rumor_still_completes_reference(self):
        base = families.double_star(4)
        us = UIDSpace(base.n, seed=0)
        nodes = make_push_pull_nodes(us, sources={2})
        adv = PackingAdversary(base, tau=1)
        eng = ReferenceEngine(adv, nodes, seed=1)
        res = eng.run(200_000, rumor_complete)
        assert res.stabilized

    def test_adaptive_slower_than_static(self):
        base = families.double_star(16)
        adaptive = np.median(
            [
                VectorizedEngine(
                    PackingAdversary(base, tau=1),
                    PushPullVectorized(np.array([2])),
                    seed=t,
                ).run(10**6).rounds
                for t in range(5)
            ]
        )
        from repro.graphs.dynamic import PeriodicRelabelDynamicGraph

        oblivious = np.median(
            [
                VectorizedEngine(
                    PeriodicRelabelDynamicGraph(base, 1, seed=t),
                    PushPullVectorized(np.array([2])),
                    seed=t,
                ).run(10**6).rounds
                for t in range(5)
            ]
        )
        assert adaptive > oblivious
