"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_run_args(self):
        args = build_parser().parse_args(
            ["experiments", "run", "E3", "--profile", "standard"]
        )
        assert args.exp_id == "E3" and args.profile == "standard"

    def test_graph_args(self):
        args = build_parser().parse_args(["graph", "double_star", "5"])
        assert args.family == "double_star" and args.params == [5]

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["graph", "mystery"])


class TestExperimentsCommand:
    def test_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "A3" in out and "Lemma V.1" in out

    def test_run_tiny(self, capsys, tmp_path):
        save = tmp_path / "e1.txt"
        code = main(
            ["experiments", "run", "e1", "--profile", "quick", "--save", str(save)]
        )
        assert code == 0
        assert "Lemma V.1" in capsys.readouterr().out
        assert save.exists() and "gamma" in save.read_text()

    def test_run_unknown_id(self):
        with pytest.raises(KeyError):
            main(["experiments", "run", "E99"])


class TestGraphCommand:
    def test_small_graph_report(self, capsys):
        assert main(["graph", "double_star", "4"]) == 0
        out = capsys.readouterr().out
        assert "n          : 10" in out
        assert "gamma" in out  # small enough for exact gamma

    def test_large_graph_skips_gamma(self, capsys):
        assert main(["graph", "clique", "24"]) == 0
        out = capsys.readouterr().out
        assert "gamma" not in out
        assert "sweep upper bound" in out

    def test_wrong_param_count(self):
        with pytest.raises(SystemExit):
            main(["graph", "grid", "3"])

    def test_default_params(self, capsys):
        assert main(["graph", "hypercube"]) == 0
        assert "n          : 16" in capsys.readouterr().out


class TestSimulateCommand:
    @pytest.mark.parametrize(
        "algo", ["blind_gossip", "bit_convergence", "push_pull", "ppush"]
    )
    def test_algorithms_stabilize(self, algo, capsys):
        code = main(
            ["simulate", algo, "--family", "random_regular", "--params", "16", "4"]
        )
        assert code == 0
        assert "stabilized" in capsys.readouterr().out

    def test_with_churn(self, capsys):
        code = main(
            [
                "simulate", "blind_gossip",
                "--family", "double_star", "--params", "4",
                "--tau", "1",
            ]
        )
        assert code == 0

    def test_horizon_failure_exit_code(self, capsys):
        code = main(
            [
                "simulate", "blind_gossip",
                "--family", "double_star", "--params", "16",
                "--max-rounds", "2",
            ]
        )
        assert code == 1
        assert "did not stabilize" in capsys.readouterr().out


class TestReportCommand:
    def test_assembles_saved_results(self, capsys, tmp_path):
        from repro.harness.persistence import save_table
        from repro.harness.tables import Table

        t = Table(title="E1 sample", columns=["x"])
        t.add_row(1)
        save_table(t, tmp_path / "E1.json", exp_id="E1", profile="quick")
        out_file = tmp_path / "report.md"
        code = main(
            ["report", "--results", str(tmp_path), "--output", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        assert "## E1" in out_file.read_text()


class TestBoundsCommand:
    def test_outputs_all_bounds(self, capsys):
        code = main(["bounds", "--n", "64", "--alpha", "0.5", "--delta", "8"])
        assert code == 0
        out = capsys.readouterr().out
        for needle in ("Thm VI.1", "Thm VII.2", "Thm VIII.2", "tau_hat"):
            assert needle in out
