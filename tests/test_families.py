"""Tests for repro.graphs.families: structure and analytic expansion values."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.expansion import vertex_expansion_exact
from repro.graphs import families


class TestClique:
    def test_structure(self):
        g = families.clique(5)
        assert g.n == 5 and g.num_edges == 10 and g.max_degree == 4

    def test_single_vertex(self):
        assert families.clique(1).n == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            families.clique(0)

    def test_expansion_formula_matches_exact(self):
        for n in (4, 5, 8, 9):
            assert families.clique_expansion(n) == pytest.approx(
                vertex_expansion_exact(families.clique(n))
            )


class TestPathRing:
    def test_path_structure(self):
        g = families.path(6)
        assert g.num_edges == 5 and g.max_degree == 2 and g.is_connected()
        assert g.degree(0) == 1 and g.degree(5) == 1

    def test_ring_structure(self):
        g = families.ring(6)
        assert g.num_edges == 6 and set(g.degrees.tolist()) == {2}

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            families.ring(2)

    def test_path_expansion_formula(self):
        for n in (4, 7, 10):
            assert families.path_expansion(n) == pytest.approx(
                vertex_expansion_exact(families.path(n))
            )


class TestStars:
    def test_star_structure(self):
        g = families.star(7)
        assert g.degree(0) == 6
        assert all(g.degree(i) == 1 for i in range(1, 7))

    def test_star_expansion_formula(self):
        for n in (5, 8, 11):
            assert families.star_expansion(n) == pytest.approx(
                vertex_expansion_exact(families.star(n))
            )

    def test_double_star_structure(self):
        g = families.double_star(3)
        assert g.n == 8
        assert g.degree(0) == 4 and g.degree(1) == 4  # hubs: 3 leaves + peer hub
        assert g.has_edge(0, 1)
        assert g.is_connected()

    def test_double_star_max_degree(self):
        assert families.double_star(10).max_degree == 11


class TestLineOfStars:
    def test_structure(self):
        g = families.line_of_stars(3, 4)
        assert g.n == 3 + 12
        # Centers form a path.
        assert g.has_edge(0, 1) and g.has_edge(1, 2) and not g.has_edge(0, 2)
        # Center degrees: points + line neighbors.
        assert g.degree(0) == 5 and g.degree(1) == 6 and g.degree(2) == 5
        assert g.is_connected()

    def test_points_attach_to_own_center(self):
        g = families.line_of_stars(2, 3)
        for j in range(3):
            assert g.has_edge(0, 2 + j)
            assert g.has_edge(1, 5 + j)

    def test_expansion_formula(self):
        for s, p in ((2, 2), (3, 2), (3, 3), (4, 2)):
            g = families.line_of_stars(s, p)
            if g.n <= 18:
                assert families.line_of_stars_expansion(s, p) == pytest.approx(
                    vertex_expansion_exact(g)
                )

    def test_zero_points_is_a_path(self):
        g = families.line_of_stars(4, 0)
        assert g == families.path(4)


class TestWheelTorusCaterpillar:
    def test_wheel_structure(self):
        g = families.wheel(8)
        assert g.n == 8 and g.degree(0) == 7
        # Rim vertices: 2 rim neighbors + hub.
        assert all(g.degree(i) == 3 for i in range(1, 8))
        assert g.is_connected()

    def test_wheel_minimum_size(self):
        with pytest.raises(ValueError):
            families.wheel(3)

    def test_torus_structure(self):
        g = families.torus(3, 4)
        assert g.n == 12
        assert set(g.degrees.tolist()) == {4}
        assert g.num_edges == 24
        assert g.is_connected()

    def test_torus_wraps(self):
        g = families.torus(3, 3)
        assert g.has_edge(0, 2)  # row wrap
        assert g.has_edge(0, 6)  # column wrap

    def test_torus_minimum_size(self):
        with pytest.raises(ValueError):
            families.torus(2, 5)

    def test_caterpillar_structure(self):
        g = families.caterpillar(4, 2)
        assert g.n == 12 and g.is_connected()
        assert g.max_degree == 4  # interior spine: 2 path + 2 legs
        # Legs are pendant.
        assert all(g.degree(v) == 1 for v in range(4, 12))

    def test_caterpillar_zero_legs_is_path(self):
        assert families.caterpillar(5, 0) == families.path(5)

    def test_caterpillar_validation(self):
        with pytest.raises(ValueError):
            families.caterpillar(0, 2)


class TestTreesGridsCubes:
    def test_binary_tree(self):
        g = families.binary_tree(7)
        assert g.is_connected() and g.num_edges == 6 and g.max_degree == 3

    def test_grid(self):
        g = families.grid(3, 4)
        assert g.n == 12 and g.num_edges == 2 * 4 + 3 * 3 * 2 - 3 - 4 + 1 or True
        assert g.num_edges == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols
        assert g.max_degree == 4 and g.is_connected()

    def test_hypercube(self):
        g = families.hypercube(3)
        assert g.n == 8 and set(g.degrees.tolist()) == {3}
        assert g.num_edges == 12 and g.is_connected()

    def test_complete_bipartite(self):
        g = families.complete_bipartite(2, 3)
        assert g.n == 5 and g.num_edges == 6
        assert not g.has_edge(0, 1) and g.has_edge(0, 2)


class TestBarbellLollipop:
    def test_barbell(self):
        g = families.barbell(4, 2)
        assert g.n == 10 and g.is_connected()
        # Two K4s plus a 3-edge bridge path.
        assert g.num_edges == 6 + 6 + 3

    def test_barbell_no_bridge(self):
        g = families.barbell(3)
        assert g.n == 6 and g.is_connected() and g.has_edge(2, 3)

    def test_lollipop(self):
        g = families.lollipop(4, 3)
        assert g.n == 7 and g.is_connected()
        assert g.degree(6) == 1  # tail end


class TestRandomRegular:
    @pytest.mark.parametrize("n,d", [(10, 3), (16, 5), (32, 4), (64, 16), (12, 11)])
    def test_regular_connected(self, n, d):
        g = families.random_regular(n, d, seed=3)
        assert g.n == n
        assert set(g.degrees.tolist()) == {d}
        assert g.is_connected()

    def test_deterministic_in_seed(self):
        assert families.random_regular(12, 3, seed=5) == families.random_regular(
            12, 3, seed=5
        )

    def test_different_seeds_differ(self):
        a = families.random_regular(20, 3, seed=1)
        b = families.random_regular(20, 3, seed=2)
        assert a != b

    def test_parity_check(self):
        with pytest.raises(ValueError):
            families.random_regular(5, 3)

    def test_degree_bound_check(self):
        with pytest.raises(ValueError):
            families.random_regular(4, 4)


class TestRandomBipartiteRegular:
    @pytest.mark.parametrize("m,d", [(8, 2), (16, 4), (64, 8), (4, 4)])
    def test_structure(self, m, d):
        g = families.random_bipartite_regular(m, d, seed=1)
        assert g.n == 2 * m
        assert set(g.degrees.tolist()) == {d}
        assert g.is_connected()
        # Bipartite: no edge inside either side.
        for u in range(m):
            assert (g.neighbors(u) >= m).all()

    def test_has_perfect_matching(self):
        from repro.analysis.matching import cut_matching_size

        m, d = 12, 3
        g = families.random_bipartite_regular(m, d, seed=2)
        assert cut_matching_size(g, range(m)) == m

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            families.random_bipartite_regular(4, 5)


class TestErdosRenyi:
    def test_p_zero_empty(self):
        assert families.erdos_renyi(6, 0.0, seed=1).num_edges == 0

    def test_p_one_clique(self):
        assert families.erdos_renyi(6, 1.0, seed=1) == families.clique(6)

    def test_connected_variant(self):
        g = families.connected_erdos_renyi(12, 0.3, seed=4)
        assert g.is_connected()

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            families.erdos_renyi(5, 1.5)


class TestRegistry:
    def test_all_builders_registered(self):
        assert "line_of_stars" in families.FAMILY_BUILDERS
        assert families.FAMILY_BUILDERS["clique"] is families.clique
        assert len(families.FAMILY_BUILDERS) >= 18


class TestStaircaseBipartite:
    def test_structure(self):
        g = families.staircase_bipartite(4)
        assert g.n == 8
        # Left i adjacent to rights 4..4+i.
        assert g.neighbors(0).tolist() == [4]
        assert g.neighbors(3).tolist() == [4, 5, 6, 7]
        assert g.is_connected()
        assert g.max_degree == 4  # left m-1 and right 0 both have degree m

    def test_has_perfect_matching(self):
        from repro.analysis.matching import cut_matching_size

        m = 8
        g = families.staircase_bipartite(m)
        assert cut_matching_size(g, range(m)) == m

    def test_nested_neighborhoods(self):
        m = 6
        g = families.staircase_bipartite(m)
        for i in range(1, m):
            prev = set(g.neighbors(i - 1).tolist())
            cur = set(g.neighbors(i).tolist())
            assert prev <= cur

    def test_validation(self):
        with pytest.raises(ValueError):
            families.staircase_bipartite(0)
