"""The algorithm × adversary robustness tournament (T-series)."""

import math

import pytest

from repro.harness.campaign import CampaignConfig, checkpoint_path, run_campaign
from repro.harness.experiments import EXPERIMENTS
from repro.harness.persistence import load_document
from repro.harness.tournament import (
    ADVERSARIES,
    TOURNAMENT_EXP_IDS,
    exp_tournament,
    run_tournament_trial,
    tournament_leaderboard,
)
from repro.harness.verify import verify_experiment

#: A grid small enough for CI but covering every adversary and two taus.
TINY = dict(n=12, degree=4, taus=(1, 2), trials=2, max_rounds=250,
            assassin_period=6, assassin_kills=2, churn_events=6, churn_last=20)


class TestTrialRunner:
    def test_trial_deterministic(self):
        a = run_tournament_trial("blind_gossip", "openworld", 2, n=12, degree=4,
                                 max_rounds=250, trial_seed=11)
        b = run_tournament_trial("blind_gossip", "openworld", 2, n=12, degree=4,
                                 max_rounds=250, trial_seed=11)
        assert a == b

    def test_faultless_trial_survives(self):
        for algo in ("blind_gossip", "push_pull", "ppush"):
            r = run_tournament_trial(algo, "none", 2, n=12, degree=4,
                                     max_rounds=400, trial_seed=3)
            assert r is not None and r >= 1

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown tournament algorithm"):
            run_tournament_trial("raft", "none", 1, n=8, degree=3,
                                 max_rounds=10, trial_seed=0)


class TestGridTable:
    def test_grid_shape_and_determinism(self):
        a = exp_tournament("push_pull", **TINY)
        b = exp_tournament("push_pull", **TINY)
        assert a.rows == b.rows
        assert len(a.rows) == len(ADVERSARIES) * 2  # two taus
        assert set(a.column("adversary")) == set(ADVERSARIES)

    def test_baseline_rows_anchor_inflation(self):
        table = exp_tournament("ppush", **TINY)
        for row in table.rows:
            cells = dict(zip(table.columns, row))
            if cells["adversary"] == "none":
                assert cells["survival"] == 1.0
                assert math.isclose(float(cells["inflation"]), 1.0)
            assert 0.0 <= float(cells["survival"]) <= 1.0
            if float(cells["survival"]) > 0.0:
                assert math.isfinite(float(cells["inflation"]))

    def test_verifier_passes_on_tiny_grid(self):
        table = exp_tournament("blind_gossip", **TINY)
        results = verify_experiment("T1", table)
        assert all(r.passed for r in results)

    def test_grid_requires_baseline(self):
        with pytest.raises(ValueError, match="'none' baseline"):
            exp_tournament("ppush", adversaries=("relabel",), **TINY)

    def test_registered_in_experiments(self):
        for exp_id in TOURNAMENT_EXP_IDS:
            assert exp_id in EXPERIMENTS
            assert EXPERIMENTS[exp_id].quick  # has a quick profile
            assert EXPERIMENTS[exp_id].standard


class TestLeaderboard:
    def test_leaderboard_ranks_and_covers_pairs(self):
        tables = {
            "T2": exp_tournament("push_pull", **TINY),
            "T3": exp_tournament("ppush", **TINY),
        }
        board = tournament_leaderboard(tables)
        assert len(board.rows) == 2 * len(ADVERSARIES)
        ranks = board.column("rank")
        assert ranks == list(range(1, len(board.rows) + 1))
        surv = [float(s) for s in board.column("survival")]
        assert surv == sorted(surv, reverse=True)
        algos = set(board.column("algorithm"))
        assert algos == {"push_pull", "ppush"}


class TestTournamentCampaign:
    def _config(self, tmp_path, **kw):
        overrides = {eid: dict(TINY) for eid in TOURNAMENT_EXP_IDS}
        return CampaignConfig(
            checkpoint_dir=tmp_path / "ckpt",
            profile="quick",
            exp_ids=list(TOURNAMENT_EXP_IDS),
            overrides=overrides,
            **kw,
        )

    def test_campaign_checkpoints_resume_and_pool_parity(self, tmp_path):
        serial = run_campaign(self._config(tmp_path))
        assert serial.ok
        docs = {
            eid: load_document(checkpoint_path(tmp_path / "ckpt", eid, "quick"))
            for eid in TOURNAMENT_EXP_IDS
        }
        # Resume touches nothing.
        resumed = run_campaign(self._config(tmp_path, resume=True))
        assert resumed.ok and all(c.status == "resumed" for c in resumed.cells)
        # A pooled run of the same grids is bit-identical, table for table.
        pooled_dir = tmp_path / "pooled"
        pooled_cfg = CampaignConfig(
            checkpoint_dir=pooled_dir,
            profile="quick",
            exp_ids=list(TOURNAMENT_EXP_IDS),
            overrides={eid: dict(TINY) for eid in TOURNAMENT_EXP_IDS},
            pool_workers=2,
        )
        assert run_campaign(pooled_cfg).ok
        for eid in TOURNAMENT_EXP_IDS:
            pdoc = load_document(checkpoint_path(pooled_dir, eid, "quick"))
            assert pdoc.table.rows == docs[eid].table.rows
        board = tournament_leaderboard({e: d.table for e, d in docs.items()})
        assert len(board.rows) == len(TOURNAMENT_EXP_IDS) * len(ADVERSARIES)


class TestStrictJsonOutputs:
    """Everything the tournament writes must be strict RFC 8259 JSON."""

    def test_campaign_checkpoints_strict_parse(self, tmp_path):
        from repro.harness.persistence import strict_json_loads

        config = CampaignConfig(
            checkpoint_dir=tmp_path / "ckpt",
            profile="quick",
            exp_ids=["T1"],
            overrides={"T1": dict(TINY)},
        )
        assert run_campaign(config).ok
        written = sorted((tmp_path / "ckpt").rglob("*.json"))
        assert written  # the campaign checkpointed something
        for path in written:
            strict_json_loads(path.read_text())  # Infinity/NaN would raise

    def test_leaderboard_inf_sentinel_roundtrips(self, tmp_path):
        """A no-survivor pairing's ``inf`` inflation survives save/load
        through the checkpoint document format, byte-strictly."""
        from repro.harness.persistence import (
            load_table,
            save_table,
            strict_json_loads,
        )
        from repro.harness.tables import Table

        grid = Table(title="T", columns=["adversary", "tau", "survival", "inflation"])
        grid.add_row("none", 1, 1.0, 1.0)
        grid.add_row("assassin", 1, 0.0, math.inf)
        board = tournament_leaderboard({"T1": grid})
        assert math.inf in [row[4] for row in board.rows]
        path = tmp_path / "leaderboard.json"
        save_table(board, path, exp_id="TOURNAMENT", profile="quick")
        strict_json_loads(path.read_text())  # on-disk bytes are portable
        loaded = load_table(path)
        assert loaded.render() == board.render()
        assert math.inf in [row[4] for row in loaded.rows]

    def test_cli_output_json_uses_document_format(self, tmp_path, monkeypatch, capsys):
        """``repro tournament --output X.json`` writes the checkpoint
        document format, so the inf sentinel round-trips portably."""
        from repro.cli import main
        from repro.harness import campaign as campaign_mod
        from repro.harness import tournament as tournament_mod
        from repro.harness.persistence import (
            load_document,
            save_table,
            strict_json_loads,
        )
        from repro.harness.tables import Table

        grid = Table(title="T", columns=["adversary", "tau", "survival", "inflation"])
        grid.add_row("none", 1, 1.0, 1.0)
        grid.add_row("assassin", 1, 0.0, math.inf)
        ckpt_dir = tmp_path / "ckpt"
        save_table(
            grid,
            campaign_mod.checkpoint_path(ckpt_dir, "T1", "quick"),
            exp_id="T1",
            profile="quick",
        )

        class _Report:
            ok = True

            def summary(self):
                return "stub campaign: 1/1 resumed"

        monkeypatch.setattr(campaign_mod, "run_campaign", lambda *a, **kw: _Report())
        monkeypatch.setattr(tournament_mod, "TOURNAMENT_EXP_IDS", ("T1",))
        out = tmp_path / "board.json"
        status = main([
            "tournament", "--checkpoint-dir", str(ckpt_dir), "--output", str(out),
        ])
        assert status == 0
        strict_json_loads(out.read_text())
        doc = load_document(out)
        assert doc.exp_id == "TOURNAMENT"
        assert math.inf in [row[4] for row in doc.table.rows]
        assert "T1" in doc.extra["grids"]
