"""Tests for repro.analysis.matching: Hopcroft-Karp and Lemma V.1 quantities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.expansion import vertex_expansion_exact
from repro.analysis.matching import (
    cut_matching,
    cut_matching_size,
    gamma_exact,
    hopcroft_karp,
)
from repro.graphs import families
from repro.graphs.static import Graph


class TestHopcroftKarp:
    def test_perfect_matching(self):
        # Two disjoint edges: 0-0', 1-1'.
        size, ml, mr = hopcroft_karp(2, 2, [[0], [1]])
        assert size == 2
        assert ml.tolist() == [0, 1] and mr.tolist() == [0, 1]

    def test_star_contention(self):
        # All left vertices want the single right vertex.
        size, ml, _ = hopcroft_karp(3, 1, [[0], [0], [0]])
        assert size == 1
        assert sum(1 for x in ml if x >= 0) == 1

    def test_augmenting_path_needed(self):
        # Greedy left-to-right matching fails without augmentation:
        # L0-{R0,R1}, L1-{R0}: L0 must take R1.
        size, ml, _ = hopcroft_karp(2, 2, [[0, 1], [0]])
        assert size == 2
        assert ml[1] == 0 and ml[0] == 1

    def test_empty_adjacency(self):
        size, ml, mr = hopcroft_karp(3, 3, [[], [], []])
        assert size == 0
        assert (ml == -1).all() and (mr == -1).all()

    def test_matching_is_consistent(self):
        size, ml, mr = hopcroft_karp(4, 4, [[0, 1], [1, 2], [2, 3], [0, 3]])
        assert size == 4
        for u, v in enumerate(ml):
            if v >= 0:
                assert mr[v] == u

    @st.composite
    @staticmethod
    def bipartite_adj(draw):
        nl = draw(st.integers(1, 7))
        nr = draw(st.integers(1, 7))
        adj = [
            sorted(
                draw(
                    st.lists(st.integers(0, nr - 1), unique=True, max_size=nr)
                )
            )
            for _ in range(nl)
        ]
        return nl, nr, adj

    @given(bipartite_adj())
    @settings(max_examples=80)
    def test_matches_networkx_size(self, case):
        import networkx as nx

        nl, nr, adj = case
        g = nx.Graph()
        g.add_nodes_from(range(nl), bipartite=0)
        g.add_nodes_from(range(nl, nl + nr), bipartite=1)
        for u, vs in enumerate(adj):
            for v in vs:
                g.add_edge(u, nl + v)
        expected = len(nx.bipartite.maximum_matching(g, top_nodes=range(nl))) // 2
        size, _, _ = hopcroft_karp(nl, nr, adj)
        assert size == expected

    @given(bipartite_adj())
    @settings(max_examples=50)
    def test_output_is_valid_matching(self, case):
        nl, nr, adj = case
        size, ml, mr = hopcroft_karp(nl, nr, adj)
        used_r = set()
        count = 0
        for u, v in enumerate(ml):
            if v >= 0:
                assert v in adj[u]
                assert v not in used_r
                used_r.add(int(v))
                count += 1
        assert count == size


class TestCutMatching:
    def test_star_cut(self):
        g = families.star(7)
        # Leaves {1,2,3}: only the hub is on the other side of any edge.
        assert cut_matching_size(g, [1, 2, 3]) == 1

    def test_clique_cut(self):
        g = families.clique(8)
        assert cut_matching_size(g, range(4)) == 4

    def test_pairs_are_edges_across_cut(self):
        g = families.random_regular(12, 3, seed=0)
        s = list(range(5))
        pairs = cut_matching(g, s)
        sset = set(s)
        seen = set()
        for u, v in pairs:
            assert u in sset and v not in sset
            assert g.has_edge(u, v)
            assert u not in seen and v not in seen
            seen.update((u, v))

    def test_empty_s(self):
        assert cut_matching(families.ring(5), []) == []

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            cut_matching(families.ring(5), [7])


class TestGammaExact:
    def test_lemma_v1_on_families(self, small_graphs):
        for name, g in small_graphs:
            if g.n > 14:
                continue
            alpha = vertex_expansion_exact(g)
            gamma = gamma_exact(g)
            assert gamma >= alpha / 4 - 1e-12, name
            # gamma is also never larger than alpha (a matching endpoint
            # outside S is a boundary vertex).
            assert gamma <= alpha + 1e-12, name

    def test_path_gamma(self):
        # Prefix of size n//2 has one crossing edge.
        g = families.path(8)
        assert gamma_exact(g) == pytest.approx(1 / 4)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            gamma_exact(families.clique(20))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_lemma_v1_random_graphs(self, seed):
        g = families.connected_erdos_renyi(9, 0.4, seed=seed)
        assert gamma_exact(g) >= vertex_expansion_exact(g) / 4 - 1e-12
