"""Larger-scale sanity runs (kept under a few seconds via the vectorized engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    AsyncBitConvergenceVectorized,
    BitConvergenceConfig,
    BitConvergenceVectorized,
    BlindGossipVectorized,
    PPushVectorized,
)
from repro.core import VectorizedEngine
from repro.graphs import PeriodicRelabelDynamicGraph, StaticDynamicGraph, families
from repro.harness.experiments import uid_keys_random


@pytest.mark.slow
class TestScale:
    N = 512
    DEGREE = 8

    def _graph(self):
        return families.random_regular(self.N, self.DEGREE, seed=0)

    def test_blind_gossip_at_512(self):
        keys = uid_keys_random(self.N, 0)
        eng = VectorizedEngine(
            StaticDynamicGraph(self._graph()), BlindGossipVectorized(keys), seed=1
        )
        res = eng.run(100_000)
        assert res.stabilized
        # Well-connected: polylog-ish rounds, far below the Delta^2 bound.
        assert res.rounds < 500

    def test_ppush_at_512(self):
        eng = VectorizedEngine(
            StaticDynamicGraph(self._graph()),
            PPushVectorized(np.array([0])),
            seed=1,
        )
        res = eng.run(100_000)
        assert res.stabilized
        assert res.rounds < 200

    def test_bit_convergence_at_512_under_churn(self):
        keys = uid_keys_random(self.N, 0)
        cfg = BitConvergenceConfig(
            n_upper=self.N, delta_bound=self.DEGREE, beta=1.0
        )
        eng = VectorizedEngine(
            PeriodicRelabelDynamicGraph(self._graph(), 1, seed=2),
            BitConvergenceVectorized(keys, cfg, tag_seed=3, unique_tags=True),
            seed=1,
        )
        res = eng.run(200_000)
        assert res.stabilized

    def test_async_bit_convergence_at_512_staggered(self):
        keys = uid_keys_random(self.N, 0)
        cfg = BitConvergenceConfig(
            n_upper=self.N, delta_bound=self.DEGREE, beta=1.0
        )
        act = (np.arange(self.N) % 50) + 1
        eng = VectorizedEngine(
            StaticDynamicGraph(self._graph()),
            AsyncBitConvergenceVectorized(keys, cfg, tag_seed=3, unique_tags=True),
            seed=1,
            activation_rounds=act,
        )
        res = eng.run(500_000)
        assert res.stabilized
