"""Routing a :class:`~repro.faults.plan.FaultPlan` onto real sockets.

The live tier injects the plan's faults as *network* events rather than
simulator mask updates:

* **crash windows** — the coordinator directs the victim to hard-close
  every data socket (peers read a real EOF) and, at the window's end,
  to re-dial its live neighbors (with a protocol ``reset()`` when the
  window asks for one);
* **connection drops** — both endpoints of an established connection
  evaluate the same seed-derived verdict and eat the payload frames, so
  the drop needs no negotiation and both sides stay in lockstep.

Everything else a plan can express (tag corruption, mass state
corruption, open-world membership) manipulates *simulator* state that a
real transport has no hook for; such plans are rejected loudly rather
than silently half-applied.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import FaultPlan
from repro.util.rng import make_rng

__all__ = ["LiveFaultError", "LiveFaultModel", "validate_live_plan", "connection_dropped"]


class LiveFaultError(ValueError):
    """The fault plan asks for something real transport cannot inject."""


def validate_live_plan(plan: FaultPlan | None, n: int) -> FaultPlan | None:
    """Check ``plan`` uses only live-injectable fault models.

    Returns the plan (normalized to ``None`` when empty); raises
    :class:`LiveFaultError` naming every unsupported feature.
    """
    if plan is None or plan.is_empty():
        return None
    plan.validate_for(n)
    unsupported = []
    if plan.tag_corruption is not None and not plan.tag_corruption.is_empty():
        unsupported.append("tag_corruption")
    if plan.state_corruption:
        unsupported.append("state_corruption")
    if plan.membership is not None and not plan.membership.is_empty():
        unsupported.append("membership")
    if unsupported:
        raise LiveFaultError(
            "the live tier routes crash and connection-drop faults only; "
            f"this plan also carries: {', '.join(unsupported)}"
        )
    return plan


def connection_dropped(seed: int | None, r: int, s: int, t: int, p: float) -> bool:
    """Symmetric per-connection drop verdict for round ``r``.

    Both endpoints of the connection ``(s, t)`` call this with identical
    arguments and get the same answer — a deterministic function of the
    run seed and the connection identity — so a dropped payload never
    leaves one side waiting for frames the other will not send.
    """
    if p <= 0.0:
        return False
    return bool(make_rng(seed, "live-drop", r, s, t).random() < p)


class LiveFaultModel:
    """Round-indexed view of a live-validated plan for the coordinator."""

    def __init__(self, plan: FaultPlan | None, n: int, seed: int | None):
        self.plan = validate_live_plan(plan, n)
        self.n = n
        self.seed = seed
        crashes = self.plan.crashes if self.plan is not None else None
        self._crashes = crashes if crashes is not None and not crashes.is_empty() else None
        self._resets = self._crashes.rejoin_resets() if self._crashes else {}
        self.gate = self.plan.quiesce_round if self.plan is not None else 0
        self.drop_p = (
            self.plan.connection_drop.p
            if self.plan is not None
            and self.plan.connection_drop is not None
            and not self.plan.connection_drop.is_empty()
            else 0.0
        )
        perma = np.zeros(n, dtype=bool)
        if self._crashes is not None:
            for window in self._crashes.windows:
                if window.end is None:
                    perma[window.node] = True
        #: Nodes crashed forever (``end=None`` windows): excluded from
        #: stabilization predicates, exactly like the reference engine.
        self.perma_down = perma if perma.any() else None

    def down_at(self, r: int) -> frozenset[int]:
        """Nodes inside a crash window during round ``r``."""
        if self._crashes is None:
            return frozenset()
        return frozenset(np.flatnonzero(self._crashes.down_at(r, self.n)).tolist())

    def resets_at(self, r: int) -> frozenset[int]:
        """Nodes whose rejoin at round ``r`` carries a state reset."""
        return frozenset(self._resets.get(r, ()))
