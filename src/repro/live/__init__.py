"""Live-transport deployment tier: the simulators' protocols over real
sockets.

Each node of a run is a real asyncio task on localhost with its own
listener and one TCP channel per graph edge, speaking the length-prefixed
frame protocol of :mod:`repro.live.wire` (HELLO / PROPOSE / ACCEPT /
PAYLOAD / BYE).  A barrier coordinator (:mod:`repro.live.coordinator`)
enforces the mobile telephone model's round structure — one connection
per node per round, ``b``-bit tags — over the real transport, and
assembles the shared :class:`~repro.core.trace.Trace` so the conformance
harness can check live runs exactly like simulated ones.  Crash and
connection-drop faults from a :class:`~repro.faults.plan.FaultPlan` are
injected as *network* events: closed sockets and eaten frames.

Entry point: :func:`repro.live.run.run_live` (CLI: ``repro live run``).
"""

from repro.live.run import (
    LIVE_ALGORITHMS,
    LIVE_FAMILIES,
    LiveRunConfig,
    LiveRunReport,
    build_bundle,
    build_graph,
    reference_result,
    run_live,
    trial_config,
)
from repro.live.faults import LiveFaultError, validate_live_plan

__all__ = [
    "LIVE_ALGORITHMS",
    "LIVE_FAMILIES",
    "LiveRunConfig",
    "LiveRunReport",
    "LiveFaultError",
    "build_bundle",
    "build_graph",
    "reference_result",
    "run_live",
    "trial_config",
    "validate_live_plan",
]
