"""Length-prefixed wire protocol for the live transport tier.

Every frame on a live socket — node↔node data plane and node↔coordinator
control plane alike — is ``!IB`` (4-byte body length, 1-byte kind)
followed by the body: one value in a small tagged binary encoding that
covers exactly the types the round protocol ships (scalars, containers,
and the :mod:`repro.core.payload` value objects ``UID`` / ``IDPair`` /
``Message``).  The codec is hand-rolled rather than pickle so a live peer
can never smuggle arbitrary objects into a node, and rather than JSON so
``UID`` opacity survives the wire (the key travels as an integer field of
a ``UID`` value, not as inspectable structure).

Data-plane kinds (:data:`HELLO` … :data:`BYE`) mirror one model round:
advertise, propose-or-decline, accept-or-reject, bounded payload
exchange, goodbye.  Control-plane kinds carry the barrier coordinator's
round synchronization and fault directives.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.payload import IDPair, Message, UID

__all__ = [
    "WireError",
    "encode",
    "decode",
    "frame_bytes",
    "read_frame",
    "kind_name",
    "MAX_FRAME",
    "IDENT",
    "HELLO",
    "PROPOSE",
    "NOPROPOSE",
    "ACCEPT",
    "PAYLOAD",
    "BYE",
    "WELCOME",
    "READY",
    "ROUND",
    "DONE",
    "CRASH",
    "REJOIN",
    "STOP",
]

# -- frame kinds ---------------------------------------------------------------

#: First frame on any dialed connection: who is calling.
IDENT = 1
#: Phase A: advertise this round's ``b``-bit tag to a neighbor.
HELLO = 2
#: Phase B: "I propose a connection to you this round."
PROPOSE = 3
#: Phase B: "I will not propose to you this round" (keeps phase B at
#: exactly one frame per direction per live edge, so phases self-delimit
#: over TCP's per-channel FIFO without extra barriers).
NOPROPOSE = 4
#: Phase C: accept (``ok=True``) or reject one incoming proposal.
ACCEPT = 5
#: Phase D: one budget-checked :class:`~repro.core.payload.Message`.
PAYLOAD = 6
#: Graceful end-of-run close of a data channel.
BYE = 7

#: Coordinator → node: full peer table + initial adjacency.
WELCOME = 8
#: Node → coordinator: setup / crash / rejoin directive acknowledged.
READY = 9
#: Coordinator → node: start global round ``r`` (barrier release).
ROUND = 10
#: Node → coordinator: round report (tag, proposal, acceptance).
DONE = 11
#: Coordinator → node: close your data sockets now (crash fault).
CRASH = 12
#: Coordinator → node: come back up, re-dial your live neighbors.
REJOIN = 13
#: Coordinator → node: the run is over.
STOP = 14

_KIND_NAMES = {
    IDENT: "IDENT",
    HELLO: "HELLO",
    PROPOSE: "PROPOSE",
    NOPROPOSE: "NOPROPOSE",
    ACCEPT: "ACCEPT",
    PAYLOAD: "PAYLOAD",
    BYE: "BYE",
    WELCOME: "WELCOME",
    READY: "READY",
    ROUND: "ROUND",
    DONE: "DONE",
    CRASH: "CRASH",
    REJOIN: "REJOIN",
    STOP: "STOP",
}


def kind_name(kind: int) -> str:
    """Human-readable name of a frame kind, for error messages."""
    return _KIND_NAMES.get(kind, f"kind#{kind}")


class WireError(RuntimeError):
    """A frame could not be encoded or decoded."""


#: Upper bound on a frame body; far above any budgeted payload, low
#: enough that a corrupt length prefix cannot trigger a giant read.
MAX_FRAME = 1 << 20

_HEADER = struct.Struct("!IB")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")


# -- value codec ---------------------------------------------------------------

_T_NONE = b"Z"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"
_T_FLOAT = b"f"
_T_STR = b"s"
_T_BYTES = b"b"
_T_LIST = b"l"
_T_TUPLE = b"t"
_T_DICT = b"d"
_T_UID = b"U"
_T_IDPAIR = b"P"
_T_MESSAGE = b"M"


def _enc_int(value: int, out: bytearray) -> None:
    out += _T_INT
    raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
    if len(raw) > 255:
        raise WireError(f"integer too large for the wire ({len(raw)} bytes)")
    out.append(len(raw))
    out += raw


def _enc(obj, out: bytearray) -> None:
    if obj is None:
        out += _T_NONE
    elif obj is True:
        out += _T_TRUE
    elif obj is False:
        out += _T_FALSE
    elif isinstance(obj, (bool, np.bool_)):
        out += _T_TRUE if obj else _T_FALSE
    elif isinstance(obj, (int, np.integer)):
        _enc_int(int(obj), out)
    elif isinstance(obj, (float, np.floating)):
        out += _T_FLOAT
        out += _F64.pack(float(obj))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out += _T_STR
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(obj, bytes):
        out += _T_BYTES
        out += _U32.pack(len(obj))
        out += obj
    elif isinstance(obj, list):
        out += _T_LIST
        out += _U32.pack(len(obj))
        for item in obj:
            _enc(item, out)
    elif isinstance(obj, tuple):
        out += _T_TUPLE
        out += _U32.pack(len(obj))
        for item in obj:
            _enc(item, out)
    elif isinstance(obj, dict):
        out += _T_DICT
        out += _U32.pack(len(obj))
        for key, value in obj.items():
            _enc(key, out)
            _enc(value, out)
    elif isinstance(obj, UID):
        out += _T_UID
        _enc_int(obj._key, out)
    elif isinstance(obj, IDPair):
        out += _T_IDPAIR
        _enc(obj.uid, out)
        _enc_int(int(obj.tag), out)
    elif isinstance(obj, Message):
        out += _T_MESSAGE
        _enc(tuple(obj.uids), out)
        _enc_int(int(obj.extra_bits), out)
        _enc(obj.data, out)
    else:
        raise WireError(f"cannot encode {type(obj).__name__} for the wire")


def encode(obj) -> bytes:
    """Serialize one value to the tagged binary encoding."""
    out = bytearray()
    _enc(obj, out)
    return bytes(out)


def _need(buf: bytes, pos: int, count: int) -> None:
    if pos + count > len(buf):
        raise WireError("truncated frame body")


def _dec_int(buf: bytes, pos: int) -> tuple[int, int]:
    tag = buf[pos : pos + 1]
    if tag != _T_INT:
        raise WireError(f"expected an integer, got tag {tag!r}")
    pos += 1
    _need(buf, pos, 1)
    length = buf[pos]
    pos += 1
    _need(buf, pos, length)
    value = int.from_bytes(buf[pos : pos + length], "big", signed=True)
    return value, pos + length


def _dec(buf: bytes, pos: int):
    _need(buf, pos, 1)
    tag = buf[pos : pos + 1]
    if tag == _T_NONE:
        return None, pos + 1
    if tag == _T_TRUE:
        return True, pos + 1
    if tag == _T_FALSE:
        return False, pos + 1
    if tag == _T_INT:
        return _dec_int(buf, pos)
    pos += 1
    if tag == _T_FLOAT:
        _need(buf, pos, 8)
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag in (_T_STR, _T_BYTES):
        _need(buf, pos, 4)
        length = _U32.unpack_from(buf, pos)[0]
        pos += 4
        _need(buf, pos, length)
        raw = buf[pos : pos + length]
        return (raw.decode("utf-8") if tag == _T_STR else raw), pos + length
    if tag in (_T_LIST, _T_TUPLE):
        _need(buf, pos, 4)
        count = _U32.unpack_from(buf, pos)[0]
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _dec(buf, pos)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), pos
    if tag == _T_DICT:
        _need(buf, pos, 4)
        count = _U32.unpack_from(buf, pos)[0]
        pos += 4
        out = {}
        for _ in range(count):
            key, pos = _dec(buf, pos)
            value, pos = _dec(buf, pos)
            out[key] = value
        return out, pos
    if tag == _T_UID:
        key, pos = _dec_int(buf, pos)
        return UID(key), pos
    if tag == _T_IDPAIR:
        uid, pos = _dec(buf, pos)
        tag_value, pos = _dec_int(buf, pos)
        if not isinstance(uid, UID):
            raise WireError("IDPair.uid must decode to a UID")
        return IDPair(uid=uid, tag=tag_value), pos
    if tag == _T_MESSAGE:
        uids, pos = _dec(buf, pos)
        extra_bits, pos = _dec_int(buf, pos)
        data, pos = _dec(buf, pos)
        if not isinstance(uids, tuple) or not all(isinstance(u, UID) for u in uids):
            raise WireError("Message.uids must decode to a tuple of UIDs")
        return Message(uids=uids, extra_bits=extra_bits, data=data), pos
    raise WireError(f"unknown wire tag {tag!r}")


def decode(buf: bytes):
    """Deserialize one value; the buffer must hold exactly one value."""
    obj, pos = _dec(buf, 0)
    if pos != len(buf):
        raise WireError(f"{len(buf) - pos} trailing bytes after value")
    return obj


# -- frames --------------------------------------------------------------------


def frame_bytes(kind: int, obj=None) -> bytes:
    """One length-prefixed frame, ready to write."""
    body = encode(obj)
    if len(body) > MAX_FRAME:
        raise WireError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME}")
    return _HEADER.pack(len(body), kind) + body


async def read_frame(reader) -> tuple[int, object]:
    """Read one frame; raises ``asyncio.IncompleteReadError`` on EOF."""
    header = await reader.readexactly(_HEADER.size)
    length, kind = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"incoming frame of {length} bytes exceeds {MAX_FRAME}")
    body = await reader.readexactly(length)
    return kind, decode(body)
