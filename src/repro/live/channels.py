"""Per-edge TCP channels and the per-node listener (data plane).

Each graph edge maps to exactly one TCP connection, shared full-duplex
by both endpoints.  The dialing side introduces itself with an ``IDENT``
frame; the accepting side registers the channel under that peer id.  A
background pump per channel reads frames into an inbox queue, so node
logic can ``expect`` exactly the frames a protocol phase owes it — the
phases of a round are self-delimiting because every phase sends a fixed
number of frames per live edge and TCP preserves per-channel order.

Channel loss is an *event*, not an error: a closed socket (crash fault,
or a peer that went away) marks the channel down and wakes any reader
with an EOF sentinel.  Whether that is expected (the coordinator
announced the crash) or a protocol violation is the node's call.
"""

from __future__ import annotations

import asyncio

from repro.live import wire

__all__ = ["ChannelError", "EdgeChannel", "ChannelSet"]

#: Inbox sentinel posted by the pump when the underlying socket closes.
_EOF = (None, None)

#: Listen backlog: a clique hub can receive every initial dial at once.
_BACKLOG = 512


class ChannelError(RuntimeError):
    """A data channel broke the live framing contract."""


class EdgeChannel:
    """One live edge: a framed, full-duplex connection to one peer."""

    def __init__(self, peer: int, reader, writer):
        self.peer = peer
        self.reader = reader
        self.writer = writer
        self.up = True
        self.inbox: asyncio.Queue = asyncio.Queue()
        self.frames_sent = 0
        self._pump_task = asyncio.create_task(self._pump())

    async def _pump(self) -> None:
        try:
            while True:
                kind, obj = await wire.read_frame(self.reader)
                if kind == wire.BYE:
                    break
                self.inbox.put_nowait((kind, obj))
        except (asyncio.IncompleteReadError, ConnectionError, wire.WireError):
            pass
        finally:
            self.up = False
            self.inbox.put_nowait(_EOF)

    async def send(self, kind: int, obj=None) -> bool:
        """Write one frame; ``False`` (not an error) if the peer is gone.

        Sends to a just-crashed peer are best-effort by design: the
        sender learns about the crash from its own read of the closed
        channel (or the coordinator's round message), not from the write.
        """
        if not self.up:
            return False
        try:
            self.writer.write(wire.frame_bytes(kind, obj))
            await self.writer.drain()
        except (ConnectionError, RuntimeError):
            self.up = False
            return False
        self.frames_sent += 1
        return True

    async def expect(self, kinds: tuple[int, ...], r: int):
        """Receive the next frame, which must be one of ``kinds`` for
        round ``r``; returns ``(kind, body)`` or ``None`` on EOF."""
        kind, obj = await self.inbox.get()
        if kind is None:
            return None
        if kind not in kinds:
            raise ChannelError(
                f"peer {self.peer} sent {wire.kind_name(kind)} while "
                f"{'/'.join(wire.kind_name(k) for k in kinds)} was due in round {r}"
            )
        if isinstance(obj, dict) and obj.get("r") != r:
            raise ChannelError(
                f"peer {self.peer} sent {wire.kind_name(kind)} for round "
                f"{obj.get('r')} during round {r}"
            )
        return kind, obj

    def abort(self) -> None:
        """Hard-close: cancel the pump and drop the socket (crash fault)."""
        self.up = False
        self._pump_task.cancel()
        try:
            self.writer.close()
        except RuntimeError:
            pass

    async def close(self) -> None:
        """Graceful close: say ``BYE``, then drop the socket."""
        await self.send(wire.BYE)
        self.abort()


class ChannelSet:
    """One node's data-plane endpoint: listener plus per-peer channels."""

    def __init__(self, node_id: int, host: str):
        self.node_id = node_id
        self.host = host
        self.port: int | None = None
        self.channels: dict[int, EdgeChannel] = {}
        self._up_waiters: dict[int, asyncio.Event] = {}
        self._server: asyncio.Server | None = None
        self._frames_retired = 0

    async def start(self) -> int:
        """Open the listener on an ephemeral port; returns the port."""
        self._server = await asyncio.start_server(
            self._on_connect, host=self.host, port=0, backlog=_BACKLOG
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _on_connect(self, reader, writer) -> None:
        try:
            kind, obj = await wire.read_frame(reader)
        except (asyncio.IncompleteReadError, ConnectionError, wire.WireError):
            writer.close()
            return
        if kind != wire.IDENT or not isinstance(obj, dict):
            writer.close()
            return
        self._register(int(obj["node"]), reader, writer)

    def _register(self, peer: int, reader, writer) -> None:
        stale = self.channels.pop(peer, None)
        if stale is not None:
            stale.abort()
        self.channels[peer] = EdgeChannel(peer, reader, writer)
        waiter = self._up_waiters.pop(peer, None)
        if waiter is not None:
            waiter.set()

    async def dial(self, peer: int, host: str, port: int) -> EdgeChannel:
        """Connect to ``peer`` and introduce ourselves."""
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(wire.frame_bytes(wire.IDENT, {"node": self.node_id}))
        await writer.drain()
        self._register(peer, reader, writer)
        return self.channels[peer]

    async def await_up(self, peer: int) -> EdgeChannel:
        """Wait until ``peer``'s (re-)dial lands; never times out — the
        caller only waits for dials the coordinator has sequenced."""
        while True:
            channel = self.channels.get(peer)
            if channel is not None and channel.up:
                return channel
            waiter = asyncio.Event()
            self._up_waiters[peer] = waiter
            await waiter.wait()

    def drop(self, peer: int) -> None:
        """Hard-drop the channel to ``peer`` if one exists."""
        channel = self.channels.pop(peer, None)
        if channel is not None:
            self._frames_retired += channel.frames_sent
            channel.abort()

    def crash(self) -> None:
        """Crash fault: hard-close every data socket (peers read EOF)."""
        for peer in list(self.channels):
            self.drop(peer)

    @property
    def frames_sent(self) -> int:
        return self._frames_retired + sum(
            ch.frames_sent for ch in self.channels.values()
        )

    async def shutdown(self) -> None:
        """Graceful end-of-run teardown (``BYE`` on every live channel)."""
        for channel in list(self.channels.values()):
            await channel.close()
            self._frames_retired += channel.frames_sent
        self.channels.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
