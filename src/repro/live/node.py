"""A live network node: one asyncio task running a ``NodeProtocol``.

The node owns real sockets (a listener plus one TCP channel per live
edge) and executes the mobile telephone model's round structure over
them, phase by phase:

* **A — advertise/scan:** send ``HELLO(r, tag)`` on every live edge,
  collect one ``HELLO`` per live neighbor;
* **B — propose:** run the protocol's ``decide`` on the scanned view,
  then send exactly one frame per live edge — ``PROPOSE`` to the chosen
  target, ``NOPROPOSE`` everywhere else — and collect the same;
* **C — accept:** a node that proposed awaits one ``ACCEPT`` verdict
  (a proposer can never accept — it rejects all suitors); a listener
  with incoming proposals accepts exactly one, chosen uniformly from
  its own seeded stream, and rejects the rest;
* **D — exchange:** both endpoints of the established connection send
  one budget-validated ``PAYLOAD`` and deliver the peer's.

Because every phase owes a *fixed* number of frames per live edge and
TCP preserves per-channel order, the phases self-delimit: no
per-phase barrier round-trips are needed, only the coordinator's
round-boundary barrier.  The protocol object underneath is the exact
class the simulators run — ``choose_tag``/``decide``/``compose``/
``deliver``/``end_round`` — which is the transport-independence claim
this tier exists to prove.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core.engine import ModelViolation
from repro.core.payload import Message, PayloadBudget
from repro.core.protocol import NodeProtocol, RoundView
from repro.live import wire
from repro.live.channels import ChannelError, ChannelSet
from repro.live.faults import connection_dropped

__all__ = ["LiveNode"]


class LiveNode:
    """One node of the live deployment: sockets + an unchanged protocol."""

    def __init__(
        self,
        node_id: int,
        protocol: NodeProtocol,
        *,
        seed: int | None,
        host: str,
        coordinator_port: int,
        rng,
        accept_rng,
        budget: PayloadBudget,
        drop_p: float = 0.0,
    ):
        self.node_id = node_id
        self.protocol = protocol
        self.seed = seed
        self.host = host
        self.coordinator_port = coordinator_port
        self.rng = rng
        self.accept_rng = accept_rng
        self.budget = budget
        self.drop_p = drop_p
        self.channels = ChannelSet(node_id, host)
        self.frames_sent = 0
        self._neighbors: list[int] = []
        self._peers: dict[int, int] = {}
        self._cwriter = None

    # -- control-plane helpers ------------------------------------------------

    async def _ctrl_send(self, kind: int, obj=None) -> None:
        self._cwriter.write(wire.frame_bytes(kind, obj))
        await self._cwriter.drain()
        self.frames_sent += 1

    def _tag_ok(self, tag: int) -> bool:
        b = self.protocol.tag_length
        return tag == 0 if b == 0 else 0 <= tag < (1 << b)

    # -- wiring ---------------------------------------------------------------

    async def _establish(
        self, peers: list[int], down: frozenset[int], rejoining: frozenset[int]
    ) -> None:
        """Bring up any missing channels to live neighbors.

        Exactly one endpoint of each missing edge dials: a rejoining peer
        dials out (it knows it came back; its stable neighbors only learn
        from the coordinator's round message), ties between two rejoiners
        and fresh topology edges go to the higher id.  Every wait below
        is for a dial the coordinator has already sequenced, so none can
        hang.
        """
        for v in self._neighbors:
            if v in down:
                continue
            channel = self.channels.channels.get(v)
            if channel is not None and channel.up:
                continue
            if v in rejoining:
                await self.channels.await_up(v)
            elif self.node_id > v:
                await self.channels.dial(v, self.host, self._peers[v])
            else:
                await self.channels.await_up(v)

    async def _rejoin(self, msg: dict) -> None:
        """Handle a REJOIN directive: optional reset, then re-dial."""
        if msg["reset"]:
            self.protocol.reset()
        self._neighbors = [int(v) for v in msg["neighbors"]]
        down = frozenset(msg["down"])
        rejoining = frozenset(msg["rejoining"])
        for v in self._neighbors:
            if v in down:
                continue
            if v not in rejoining or v < self.node_id:
                await self.channels.dial(v, self.host, self._peers[v])
            # A fellow rejoiner with the higher id dials us; its channel
            # lands before the coordinator releases the round barrier.

    # -- one round ------------------------------------------------------------

    async def _round(self, msg: dict) -> dict:
        r = int(msg["r"])
        if msg.get("neighbors") is not None:
            new = [int(v) for v in msg["neighbors"]]
            for v in set(self._neighbors) - set(new):
                self.channels.drop(v)
            self._neighbors = new
        down = frozenset(msg["down"])
        rejoining = frozenset(msg["rejoining"])
        for v in self._neighbors:
            if v in down:
                # The peer's FIN is already queued behind the last round's
                # frames (the coordinator sequenced its crash before
                # releasing this round); close our side proactively.
                self.channels.drop(v)
        await self._establish(self._neighbors, down, rejoining)

        proto = self.protocol
        local_round = r  # every live node activates in round 1

        # Phase A: advertise + scan.
        tag = int(proto.choose_tag(local_round, self.rng))
        if not self._tag_ok(tag):
            raise ModelViolation(
                f"node {self.node_id} advertised tag {tag} outside "
                f"{proto.tag_length} bits"
            )
        live = [v for v in self._neighbors if v not in down]
        hello = {"r": r, "tag": tag}
        for v in live:
            await self.channels.channels[v].send(wire.HELLO, hello)
        tags: dict[int, int] = {}
        for v in live:
            got = await self.channels.channels[v].expect((wire.HELLO,), r)
            if got is None:
                raise ChannelError(
                    f"node {self.node_id}: channel to live neighbor {v} "
                    f"closed during round {r} scan"
                )
            peer_tag = int(got[1]["tag"])
            if not self._tag_ok(peer_tag):
                raise ModelViolation(
                    f"node {self.node_id} received tag {peer_tag} from {v} "
                    f"outside {proto.tag_length} bits"
                )
            tags[v] = peer_tag

        # Phase B: decide, then propose-or-decline on every live edge.
        view = RoundView(
            local_round=local_round,
            neighbors=np.asarray(live, dtype=np.int64),
            neighbor_tags=np.asarray([tags[v] for v in live], dtype=np.int64),
            rng=self.rng,
        )
        target = proto.decide(view)
        if target is not None:
            target = int(target)
            if target not in tags:
                raise ModelViolation(
                    f"node {self.node_id} proposed to {target}, not a live "
                    f"neighbor in round {r}"
                )
        body = {"r": r}
        for v in live:
            kind = wire.PROPOSE if v == target else wire.NOPROPOSE
            await self.channels.channels[v].send(kind, body)
        proposers = []
        for v in live:
            got = await self.channels.channels[v].expect(
                (wire.PROPOSE, wire.NOPROPOSE), r
            )
            if got is None:
                raise ChannelError(
                    f"node {self.node_id}: channel to live neighbor {v} "
                    f"closed during round {r} proposals"
                )
            if got[0] == wire.PROPOSE:
                proposers.append(v)
        proposers.sort()

        # Phase C: one acceptance verdict per incoming proposal.
        accepted_from = None
        connection = None
        if target is not None:
            for v in proposers:  # a proposer cannot accept (model rule)
                await self.channels.channels[v].send(
                    wire.ACCEPT, {"r": r, "ok": False}
                )
            got = await self.channels.channels[target].expect((wire.ACCEPT,), r)
            if got is None:
                raise ChannelError(
                    f"node {self.node_id}: channel to proposal target {target} "
                    f"closed during round {r} acceptance"
                )
            if got[1]["ok"]:
                connection = (self.node_id, target)
        elif proposers:
            winner = proposers[int(self.accept_rng.integers(0, len(proposers)))]
            for v in proposers:
                await self.channels.channels[v].send(
                    wire.ACCEPT, {"r": r, "ok": v == winner}
                )
            accepted_from = winner
            connection = (winner, self.node_id)

        # Phase D: budgeted symmetric exchange (unless the drop fault
        # eats the connection — both endpoints compute the same verdict).
        if connection is not None:
            s, t = connection
            if connection_dropped(self.seed, r, s, t, self.drop_p):
                # The connection vanishes: no payload, no delivery, and
                # the acceptor does not report it (matching the
                # simulators, whose traces record only survivors).
                accepted_from = None
            else:
                peer = t if self.node_id == s else s
                out = proto.compose(peer)
                if not isinstance(out, Message):
                    raise ModelViolation(
                        f"node {self.node_id} composed a non-Message"
                    )
                self.budget.validate(out)
                await self.channels.channels[peer].send(
                    wire.PAYLOAD, {"r": r, "msg": out}
                )
                got = await self.channels.channels[peer].expect((wire.PAYLOAD,), r)
                if got is None:
                    raise ChannelError(
                        f"node {self.node_id}: connection peer {peer} closed "
                        f"during round {r} payload exchange"
                    )
                incoming = got[1]["msg"]
                if not isinstance(incoming, Message):
                    raise ModelViolation(
                        f"node {self.node_id} received a non-Message from {peer}"
                    )
                self.budget.validate(incoming)  # enforced over transport too
                proto.deliver(peer, incoming)

        proto.end_round()
        return {"r": r, "tag": tag, "proposed": target, "accepted": accepted_from}

    # -- lifecycle ------------------------------------------------------------

    async def run(self) -> None:
        port = await self.channels.start()
        creader, self._cwriter = await asyncio.open_connection(
            self.host, self.coordinator_port
        )
        try:
            await self._ctrl_send(wire.IDENT, {"node": self.node_id, "port": port})
            kind, welcome = await wire.read_frame(creader)
            if kind != wire.WELCOME:
                raise ChannelError(f"expected WELCOME, got {wire.kind_name(kind)}")
            self._peers = {int(v): int(p) for v, p in welcome["peers"].items()}
            self._neighbors = [int(v) for v in welcome["neighbors"]]
            # Initial wiring: the higher id dials each edge.
            for v in self._neighbors:
                if self.node_id > v:
                    await self.channels.dial(v, self.host, self._peers[v])
            for v in self._neighbors:
                if v > self.node_id:
                    await self.channels.await_up(v)
            await self._ctrl_send(wire.READY, {"node": self.node_id})

            while True:
                kind, msg = await wire.read_frame(creader)
                if kind == wire.STOP:
                    break
                if kind == wire.CRASH:
                    self.channels.crash()  # real socket closes: peers see EOF
                    await self._ctrl_send(wire.READY, {"node": self.node_id})
                elif kind == wire.REJOIN:
                    await self._rejoin(msg)
                    await self._ctrl_send(wire.READY, {"node": self.node_id})
                elif kind == wire.ROUND:
                    report = await self._round(msg)
                    await self._ctrl_send(wire.DONE, report)
                else:
                    raise ChannelError(
                        f"unexpected control frame {wire.kind_name(kind)}"
                    )
        finally:
            self.frames_sent += self.channels.frames_sent
            await self.channels.shutdown()
            if self._cwriter is not None:
                self._cwriter.close()
