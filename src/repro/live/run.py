"""Orchestrating a live localhost run end to end.

:func:`run_live` builds the network (graph family → static peer table),
wires every node as an asyncio task with real sockets, drives the
barrier coordinator to completion, and returns the familiar
:class:`~repro.core.trace.RunResult` plus the shared ``Trace`` — the
same result shape every simulator tier produces, so the conformance
invariants and cross-checks consume live runs unmodified.

The run is a deterministic function of ``(config, seed)``: node streams
are ``spawn_rngs(seed, n, "node")`` exactly like the reference engine,
acceptance draws come from a dedicated per-node ``"live-accept"``
stream over the *sorted* proposer list, and drop verdicts are shared
seed-derived functions — so two live runs with one seed produce
bit-identical traces even though socket scheduling differs.
:func:`reference_result` runs the same wiring through
``ReferenceEngine`` for statistical cross-checks (the two tiers draw
acceptance from different streams, so equality is distributional, not
per-trace).
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.core.engine import ReferenceEngine
from repro.core.monitor import all_leaders_are, rumor_complete
from repro.core.payload import PayloadBudget, UIDSpace
from repro.core.protocol import NodeProtocol
from repro.core.trace import RunResult, Trace
from repro.faults.plan import FaultPlan
from repro.graphs.dynamic import (
    PeriodicRelabelDynamicGraph,
    StaticDynamicGraph,
    validate_tau,
)
from repro.graphs.families import clique, path, random_regular, ring, star, wheel
from repro.graphs.static import Graph
from repro.live.coordinator import RoundCoordinator
from repro.live.faults import LiveFaultModel
from repro.live.node import LiveNode
from repro.util.rng import make_rng, spawn_rngs

__all__ = [
    "LIVE_ALGORITHMS",
    "LIVE_FAMILIES",
    "LiveRunConfig",
    "LiveRunReport",
    "build_graph",
    "build_bundle",
    "run_live",
    "reference_result",
    "trial_config",
]

LIVE_ALGORITHMS = ("blind_gossip", "push_pull", "ppush", "bit_convergence")
LIVE_FAMILIES = ("clique", "ring", "path", "star", "wheel", "random_regular")


@dataclass(frozen=True)
class LiveRunConfig:
    """Everything that determines a live run (and its reference twin)."""

    algorithm: str = "blind_gossip"
    family: str = "clique"
    n: int = 16
    degree: int = 8  # random_regular only
    tau: float = math.inf
    seed: int | None = 0
    max_rounds: int = 10_000
    #: Run exactly this many rounds, ignoring stabilization (bench mode).
    fixed_rounds: int | None = None
    fault_plan: FaultPlan | None = None
    collect_trace: bool = True
    check_every: int = 1
    host: str = "127.0.0.1"
    #: Hard wall-clock bound on the whole run (None = unbounded).
    wall_clock_limit: float | None = None


@dataclass
class LiveRunReport:
    """A live run's result plus transport-level statistics."""

    result: RunResult
    trace: Trace | None
    rounds_per_sec: float
    connections_made: int
    frames_sent: int
    elapsed: float


@dataclass
class _Bundle:
    protocols: list[NodeProtocol]
    stop_when: Callable[[Sequence[NodeProtocol]], bool]
    tag_length: int
    uids: UIDSpace


def build_graph(cfg: LiveRunConfig) -> Graph:
    """Build the run's topology from its graph-family config."""
    if cfg.family == "clique":
        return clique(cfg.n)
    if cfg.family == "ring":
        return ring(cfg.n)
    if cfg.family == "path":
        return path(cfg.n)
    if cfg.family == "star":
        return star(cfg.n)
    if cfg.family == "wheel":
        return wheel(cfg.n)
    if cfg.family == "random_regular":
        return random_regular(cfg.n, cfg.degree, seed=cfg.seed)
    raise ValueError(
        f"unknown live family {cfg.family!r} (choose from {LIVE_FAMILIES})"
    )


def build_bundle(cfg: LiveRunConfig, graph: Graph) -> _Bundle:
    """Fresh protocol instances + stop predicate for one run.

    Mirrors the differential fuzzer's per-algorithm wiring so live runs
    and reference runs elect over identical UID spaces and sources.
    """
    from repro.algorithms.bit_convergence import (
        BitConvergenceConfig,
        BitConvergenceNode,
        draw_id_tags,
    )
    from repro.algorithms.blind_gossip import make_blind_gossip_nodes
    from repro.algorithms.ppush import make_ppush_nodes
    from repro.algorithms.push_pull import make_push_pull_nodes

    n = cfg.n
    uids = UIDSpace(n, seed=cfg.seed)
    if cfg.algorithm == "blind_gossip":
        return _Bundle(
            protocols=make_blind_gossip_nodes(uids),
            stop_when=all_leaders_are(uids.min_uid()),
            tag_length=0,
            uids=uids,
        )
    if cfg.algorithm == "push_pull":
        return _Bundle(
            protocols=make_push_pull_nodes(uids, sources={0}),
            stop_when=rumor_complete,
            tag_length=0,
            uids=uids,
        )
    if cfg.algorithm == "ppush":
        return _Bundle(
            protocols=make_ppush_nodes(uids, sources={0}),
            stop_when=rumor_complete,
            tag_length=1,
            uids=uids,
        )
    if cfg.algorithm == "bit_convergence":
        bc_cfg = BitConvergenceConfig(
            n_upper=max(n, 2), delta_bound=graph.max_degree, beta=1.0
        )
        tag_seed = int(make_rng(cfg.seed, "live-tags").integers(0, 2**31 - 1))
        tags = draw_id_tags(n, bc_cfg, tag_seed, unique=True)
        nodes = [
            BitConvergenceNode(v, uids.uid_of(v), int(tags[v]), bc_cfg)
            for v in range(n)
        ]
        winner = min(nodes, key=lambda nd: nd.committed_pair).uid
        return _Bundle(
            protocols=nodes,
            stop_when=all_leaders_are(winner),
            tag_length=1,
            uids=uids,
        )
    raise ValueError(
        f"unknown live algorithm {cfg.algorithm!r} "
        f"(choose from {LIVE_ALGORITHMS})"
    )


def _dynamic_graph(cfg: LiveRunConfig, graph: Graph):
    tau = validate_tau(cfg.tau)
    if math.isinf(tau):
        return StaticDynamicGraph(graph)
    return PeriodicRelabelDynamicGraph(graph, tau, seed=cfg.seed)


def _observed(
    protocols: list[NodeProtocol], faults: LiveFaultModel
) -> list[NodeProtocol]:
    """Predicate population: everyone except permanently crashed nodes."""
    if faults.perma_down is None:
        return protocols
    return [protocols[v] for v in np.flatnonzero(~faults.perma_down)]


def _unwrap(exc: BaseException) -> BaseException:
    """First real (non-cancellation) leaf of a TaskGroup exception tree."""
    if isinstance(exc, BaseExceptionGroup):
        for sub in exc.exceptions:
            leaf = _unwrap(sub)
            if not isinstance(leaf, asyncio.CancelledError):
                return leaf
        return exc.exceptions[0]
    return exc


def run_live(cfg: LiveRunConfig) -> LiveRunReport:
    """Execute one live localhost run; see the module docstring."""
    if cfg.n < 2:
        raise ValueError("a live network needs at least 2 nodes")
    if cfg.max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    graph = build_graph(cfg)
    bundle = build_bundle(cfg, graph)
    dg = _dynamic_graph(cfg, graph)
    faults = LiveFaultModel(cfg.fault_plan, cfg.n, cfg.seed)
    budget = PayloadBudget(n_upper=max(cfg.n, 2))
    node_rngs = spawn_rngs(cfg.seed, cfg.n, "node")
    accept_rngs = spawn_rngs(cfg.seed, cfg.n, "live-accept")
    observed = _observed(bundle.protocols, faults)
    gate = faults.gate

    def on_round(r: int, record) -> bool:
        if cfg.fixed_rounds is not None:
            return r >= cfg.fixed_rounds
        if r % cfg.check_every != 0 or r < gate:
            return False
        return bool(bundle.stop_when(observed))

    coordinator = RoundCoordinator(
        dynamic_graph=dg,
        tau=validate_tau(cfg.tau),
        faults=faults,
        tag_length=bundle.tag_length,
        host=cfg.host,
        collect_trace=cfg.collect_trace,
        on_round=on_round,
    )
    max_rounds = cfg.fixed_rounds if cfg.fixed_rounds is not None else cfg.max_rounds

    async def _main() -> None:
        await coordinator.start()
        nodes = [
            LiveNode(
                v,
                bundle.protocols[v],
                seed=cfg.seed,
                host=cfg.host,
                coordinator_port=coordinator.port,
                rng=node_rngs[v],
                accept_rng=accept_rngs[v],
                budget=budget,
                drop_p=faults.drop_p,
            )
            for v in range(cfg.n)
        ]
        try:
            async with asyncio.TaskGroup() as tg:
                for node in nodes:
                    tg.create_task(node.run())
                await coordinator.run_rounds(max_rounds)
        finally:
            await coordinator.shutdown()
        coordinator.frames_sent += sum(node.frames_sent for node in nodes)

    async def _bounded() -> None:
        if cfg.wall_clock_limit is None:
            await _main()
        else:
            await asyncio.wait_for(_main(), timeout=cfg.wall_clock_limit)

    started = time.perf_counter()
    try:
        asyncio.run(_bounded())
    except BaseExceptionGroup as group:
        raise _unwrap(group) from None
    elapsed = time.perf_counter() - started

    rounds = coordinator.rounds_executed
    stabilized = cfg.fixed_rounds is None and bool(bundle.stop_when(observed))
    result = RunResult(
        stabilized=stabilized,
        rounds=rounds,
        rounds_after_last_activation=rounds,
        trace=coordinator.trace,
    )
    return LiveRunReport(
        result=result,
        trace=coordinator.trace,
        rounds_per_sec=rounds / elapsed if elapsed > 0 else float(rounds),
        connections_made=coordinator.connections_made,
        frames_sent=coordinator.frames_sent,
        elapsed=elapsed,
    )


def reference_result(cfg: LiveRunConfig, *, collect_trace: bool = False) -> RunResult:
    """Run the identical configuration through ``ReferenceEngine``.

    Same graph, UID space, protocols, fault plan, and node streams —
    only the transport differs — so live-vs-reference stabilization
    comparisons are apples to apples.
    """
    graph = build_graph(cfg)
    bundle = build_bundle(cfg, graph)
    dg = _dynamic_graph(cfg, graph)
    engine = ReferenceEngine(
        dg,
        bundle.protocols,
        seed=cfg.seed,
        collect_trace=collect_trace,
        fault_plan=cfg.fault_plan,
    )
    return engine.run(cfg.max_rounds, bundle.stop_when, check_every=cfg.check_every)


def trial_config(cfg: LiveRunConfig, index: int) -> LiveRunConfig:
    """Derive the ``index``-th trial of a comparison batch from ``cfg``."""
    seed = int(make_rng(cfg.seed, "live-trial", index).integers(0, 2**31 - 1))
    return replace(cfg, seed=seed)
