"""The round synchronizer: barrier coordinator, discovery registrar,
trace assembler, and model-rule referee of a live run.

The coordinator is the only component with a global view.  Per round it

1. sequences fault directives — ``CRASH`` victims hard-close their
   sockets and ack *before* the round barrier releases, so every peer's
   EOF is already queued when the round starts (no flaky timeouts);
   rejoining nodes re-dial and ack the same way;
2. releases the barrier with one ``ROUND`` frame per live node, carrying
   the authoritative down/rejoining sets and (on a τ epoch boundary) the
   node's new adjacency;
3. collects one ``DONE`` report per live node, cross-checks the model
   rules over the reports (tag width, proposals-on-live-edges,
   acceptor-really-proposed-to, at most one connection per node), and
   assembles the shared :class:`~repro.core.trace.RoundRecord`;
4. asks the runner's callback whether to stop.

Discovery is a static peer table seeded from the graph family: every
node registers ``(id, port)`` on startup and receives the full table in
its ``WELCOME`` — the moral equivalent of the related repos' peer-table
middleware, kept deliberately simple because the membership is the graph
family's vertex set.
"""

from __future__ import annotations

import asyncio
from typing import Callable

import numpy as np

from repro.core.engine import ModelViolation
from repro.core.trace import RoundRecord, Trace
from repro.graphs.dynamic import DynamicGraph, epoch_of_round
from repro.live import wire
from repro.live.channels import ChannelError
from repro.live.faults import LiveFaultModel

__all__ = ["RoundCoordinator"]


class _NodeHandle:
    def __init__(self, reader, writer, port: int):
        self.reader = reader
        self.writer = writer
        self.port = port


class RoundCoordinator:
    """TCP barrier coordinator for one live run."""

    def __init__(
        self,
        *,
        dynamic_graph: DynamicGraph,
        tau: float,
        faults: LiveFaultModel,
        tag_length: int,
        host: str,
        collect_trace: bool = True,
        on_round: Callable[[int, RoundRecord], bool] | None = None,
    ):
        self.dg = dynamic_graph
        self.n = dynamic_graph.n
        self.tau = tau
        self.faults = faults
        self.tag_length = tag_length
        self.host = host
        self.trace = Trace() if collect_trace else None
        self.on_round = on_round or (lambda r, record: False)
        self.port: int | None = None
        self.rounds_executed = 0
        self.connections_made = 0
        self.frames_sent = 0
        self._handles: dict[int, _NodeHandle] = {}
        self._registered = asyncio.Event()
        self._server: asyncio.Server | None = None

    # -- registration ---------------------------------------------------------

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._on_connect, host=self.host, port=0, backlog=512
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _on_connect(self, reader, writer) -> None:
        try:
            kind, obj = await wire.read_frame(reader)
        except (asyncio.IncompleteReadError, ConnectionError, wire.WireError):
            writer.close()
            return
        if kind != wire.IDENT or not isinstance(obj, dict):
            writer.close()
            return
        node = int(obj["node"])
        self._handles[node] = _NodeHandle(reader, writer, int(obj["port"]))
        if len(self._handles) == self.n:
            self._registered.set()

    # -- control-plane helpers ------------------------------------------------

    async def _send(self, node: int, kind: int, obj=None) -> None:
        handle = self._handles[node]
        handle.writer.write(wire.frame_bytes(kind, obj))
        await handle.writer.drain()
        self.frames_sent += 1

    async def _expect(self, node: int, kind: int) -> dict:
        got_kind, obj = await wire.read_frame(self._handles[node].reader)
        if got_kind != kind:
            raise ChannelError(
                f"coordinator expected {wire.kind_name(kind)} from node "
                f"{node}, got {wire.kind_name(got_kind)}"
            )
        return obj

    def _tag_ok(self, tag: int) -> bool:
        if self.tag_length == 0:
            return tag == 0
        return 0 <= tag < (1 << self.tag_length)

    # -- run loop -------------------------------------------------------------

    async def run_rounds(self, max_rounds: int) -> None:
        await self._registered.wait()
        peers = {v: handle.port for v, handle in self._handles.items()}
        graph = self.dg.graph_at(1)
        adjacency = {v: graph.neighbors(v).tolist() for v in range(self.n)}
        for v in range(self.n):
            await self._send(
                v, wire.WELCOME, {"peers": peers, "neighbors": adjacency[v]}
            )
        await asyncio.gather(
            *(self._expect(v, wire.READY) for v in range(self.n))
        )

        down_prev: frozenset[int] = frozenset()
        for r in range(1, max_rounds + 1):
            down = self.faults.down_at(r)
            crashed_now = sorted(down - down_prev)
            rejoining = sorted(down_prev - down)
            epoch_changed = (
                r > 1
                and not np.isinf(self.tau)
                and epoch_of_round(r, self.tau) != epoch_of_round(r - 1, self.tau)
            )
            if epoch_changed:
                graph = self.dg.graph_at(r)
                adjacency = {v: graph.neighbors(v).tolist() for v in range(self.n)}

            # Fault directives first, each acked before the barrier
            # releases: a victim's socket FIN is then queued at every
            # peer before any ROUND frame arrives (happens-before chain).
            for v in crashed_now:
                await self._send(v, wire.CRASH, {"r": r})
            for v in crashed_now:
                await self._expect(v, wire.READY)
            resets = self.faults.resets_at(r)
            for v in rejoining:
                await self._send(
                    v,
                    wire.REJOIN,
                    {
                        "r": r,
                        "reset": v in resets,
                        "down": sorted(down),
                        "rejoining": rejoining,
                        "neighbors": adjacency[v],
                    },
                )
            for v in rejoining:
                await self._expect(v, wire.READY)

            live = [v for v in range(self.n) if v not in down]
            for v in live:
                await self._send(
                    v,
                    wire.ROUND,
                    {
                        "r": r,
                        "down": sorted(down),
                        "rejoining": rejoining,
                        "neighbors": adjacency[v] if epoch_changed else None,
                    },
                )
            reports = dict(
                zip(
                    live,
                    await asyncio.gather(
                        *(self._expect(v, wire.DONE) for v in live)
                    ),
                )
            )

            record = self._assemble(r, live, down, adjacency, reports)
            if self.trace is not None:
                self.trace.append(record)
            self.rounds_executed = r
            self.connections_made += record.connections.shape[0]
            if self.on_round(r, record) or r == max_rounds:
                break
            down_prev = down

        for v in range(self.n):
            await self._send(v, wire.STOP)

    # -- report validation + trace assembly -----------------------------------

    def _assemble(
        self,
        r: int,
        live: list[int],
        down: frozenset[int],
        adjacency: dict[int, list[int]],
        reports: dict[int, dict],
    ) -> RoundRecord:
        tags = np.full(self.n, -1, dtype=np.int64)
        proposals: list[tuple[int, int]] = []
        proposed_to: dict[int, int] = {}
        for v in live:
            report = reports[v]
            if report["r"] != r:
                raise ChannelError(
                    f"node {v} reported round {report['r']} during round {r}"
                )
            tag = int(report["tag"])
            if not self._tag_ok(tag):
                raise ModelViolation(
                    f"node {v} reported tag {tag} outside {self.tag_length} bits"
                )
            tags[v] = tag
            target = report["proposed"]
            if target is not None:
                target = int(target)
                if target in down or target not in adjacency[v]:
                    raise ModelViolation(
                        f"node {v} proposed to {target}, not a live neighbor "
                        f"in round {r}"
                    )
                proposals.append((v, target))
                proposed_to[v] = target

        connections: list[tuple[int, int]] = []
        endpoint_seen: set[int] = set()
        for t in live:
            s = reports[t]["accepted"]
            if s is None:
                continue
            s = int(s)
            if proposed_to.get(s) != t:
                raise ModelViolation(
                    f"node {t} accepted {s}, which never proposed to it "
                    f"in round {r}"
                )
            if t in proposed_to:
                raise ModelViolation(
                    f"node {t} both proposed and accepted in round {r}"
                )
            for endpoint in (s, t):
                if endpoint in endpoint_seen:
                    raise ModelViolation(
                        f"node {endpoint} joined two connections in round {r}"
                    )
                endpoint_seen.add(endpoint)
            connections.append((s, t))

        active = np.ones(self.n, dtype=bool)
        for v in down:
            active[v] = False
        return RoundRecord(
            round_index=r,
            proposals=np.asarray(proposals, dtype=np.int64).reshape(-1, 2),
            connections=np.asarray(connections, dtype=np.int64).reshape(-1, 2),
            tags=tags,
            active=active,
        )

    async def shutdown(self) -> None:
        for handle in self._handles.values():
            try:
                handle.writer.close()
            except RuntimeError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
