"""Live-vs-reference cross-check: does real transport change the model?

The live tier claims to execute the *same* round semantics as the
simulators, just over sockets.  This module audits that claim the same
way the differential fuzzer audits engine tiers against each other:

* every live trace must pass the full invariant checkers
  (:func:`~repro.conformance.invariants.check_trace`) — connection
  exclusivity, tag width, proposals-on-live-edges, τ stability,
  activation consistency;
* the live stabilization-round distribution must be statistically
  consistent with :class:`~repro.core.engine.ReferenceEngine` on the
  identical configuration (same graph, UID space, protocols, fault
  plan).  The two tiers draw acceptance from different streams, so
  per-trace equality is impossible by construction; instead the
  median-stabilization ratio must fall inside the fuzzer's
  :data:`~repro.conformance.differential.TIER_RATIO_BAND` — the exact
  tolerance the fuzzer applies between simulator tiers;
* live acceptance choices feed the fuzzer's pooled uniform-acceptance
  z-test (:class:`~repro.conformance.invariants.AcceptanceStats`), so a
  biased live acceptor would be flagged just like a biased engine.

Live trials are expensive (real sockets), so the check runs a few live
trials against a larger reference sample; the band is wide enough that
the small live sample cannot false-positive under honest execution.
"""

from __future__ import annotations

import statistics
from dataclasses import replace

from repro.conformance.differential import TIER_RATIO_BAND
from repro.conformance.invariants import AcceptanceStats, check_trace
from repro.live.run import (
    LiveRunConfig,
    _dynamic_graph,
    build_bundle,
    build_graph,
    reference_result,
    run_live,
    trial_config,
)

__all__ = ["live_reference_check", "LIVE_TRIALS", "REFERENCE_TRIALS"]

#: Default trial counts: live runs cost real wall-clock, reference runs
#: are cheap, and the median of the larger sample anchors the ratio.
LIVE_TRIALS = 4
REFERENCE_TRIALS = 12


def live_reference_check(
    cfg: LiveRunConfig,
    *,
    live_trials: int = LIVE_TRIALS,
    reference_trials: int = REFERENCE_TRIALS,
    acceptance: AcceptanceStats | None = None,
    log=None,
) -> list[str]:
    """Run the live-vs-reference conformance check for one configuration.

    Returns a list of human-readable mismatch/violation strings (empty =
    conformant).  Every live trace is invariant-checked; stabilization
    medians are compared inside :data:`TIER_RATIO_BAND`.
    """
    mismatches: list[str] = []
    base = replace(cfg, collect_trace=True)
    acceptance_pool = acceptance if acceptance is not None else AcceptanceStats()

    live_rounds: list[int] = []
    for i in range(live_trials):
        trial = trial_config(base, i)
        report = run_live(trial)
        if not report.result.stabilized:
            mismatches.append(
                f"live trial {i} (seed {trial.seed}) did not stabilize "
                f"within {trial.max_rounds} rounds"
            )
            continue
        live_rounds.append(report.result.rounds)
        graph = build_graph(trial)
        bundle = build_bundle(trial, graph)
        violations = check_trace(
            report.trace,
            _dynamic_graph(trial, graph),
            tag_length=bundle.tag_length,
            fault_plan=trial.fault_plan,
            acceptance_stats=acceptance_pool,
        )
        mismatches.extend(
            f"live trial {i} (seed {trial.seed}): {v}" for v in violations
        )
        if log:
            log(f"live trial {i}: stabilized in {report.result.rounds} rounds")

    ref_rounds: list[int] = []
    for i in range(reference_trials):
        trial = trial_config(base, i)
        result = reference_result(trial)
        if not result.stabilized:
            mismatches.append(
                f"reference trial {i} (seed {trial.seed}) did not stabilize "
                f"within {trial.max_rounds} rounds"
            )
            continue
        ref_rounds.append(result.rounds)

    if live_rounds and ref_rounds:
        live_med = statistics.median(live_rounds)
        ref_med = statistics.median(ref_rounds)
        ratio = live_med / max(ref_med, 1e-9)
        lo, hi = TIER_RATIO_BAND
        if not (lo <= ratio <= hi):
            mismatches.append(
                f"live/reference median stabilization ratio {ratio:.3f} "
                f"(live {live_med:g} vs reference {ref_med:g}) outside "
                f"[{lo}, {hi}]"
            )
        if log:
            log(
                f"median stabilization: live {live_med:g}, reference "
                f"{ref_med:g} (ratio {ratio:.3f})"
            )

    if acceptance is None:
        pooled = acceptance_pool.violation()
        if pooled is not None:
            mismatches.append(f"live acceptance pool: {pooled}")
    return mismatches
