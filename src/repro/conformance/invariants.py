"""Model-invariant checkers for execution traces.

Each checker validates one hard constraint of the mobile telephone model
(paper Section III) against a recorded :class:`~repro.core.trace.Trace`
— the same record format for all three engine tiers, so one suite audits
the reference, vectorized, and batched engines alike:

================================  =============================================
rule slug                         paper constraint
================================  =============================================
``connection-exclusivity``        a node joins at most one connection per round
``send-xor-receive``              a proposer cannot accept; an acceptor cannot
                                  have proposed; every connection pairs an
                                  actual proposer with its proposed target
``proposals-on-edges``            proposals go only along edges of ``G_r``,
                                  between distinct active nodes
``tag-width``                     advertised tags fit in ``b`` bits; inactive
                                  nodes advertise nothing (recorded as ``-1``)
``tau-stability``                 the topology is constant within each
                                  ``τ``-round epoch
``activation-consistency``        the per-round active mask equals
                                  "activated and not crashed" under the
                                  attached :class:`~repro.faults.plan.FaultPlan`
``uniform-acceptance``            a listener with ``k`` incoming proposals
                                  accepts each with probability ``1/k``
                                  (pooled z-test over the whole trace)
``scheduler-fairness``            (async tier) every scheduled event is
                                  delivered within ``[1, Δ]`` ticks of
                                  becoming pending
``membership-silence``            (open world) an absent slot neither
                                  proposes, accepts, nor advertises a tag
``membership-cap``                (open world) the live population stays in
                                  ``[1, max_live]`` every recorded round
``join-state-freshness``          (open world) every join / clean departure
                                  is covered by the engines' reset stream
================================  =============================================

The asynchronous event tier (:mod:`repro.asyncsim`) buckets its trace by
virtual-time tick — one :class:`~repro.core.trace.RoundRecord` per tick —
and :func:`check_async_trace` runs the structural rules unchanged over
those buckets.  Two rules change meaning there: uniform-acceptance is
*not* checked (connection attempts are accepted first-come first-served,
an order bias that is a feature of the async model, not a bug of the
engine), and send-xor-receive drops its "listener must accept" half
(attempts that reach a reserved node are legitimately rejected), exactly
as it does for sync traces with a connection-drop fault model.

Checkers return :class:`Violation` records rather than raising, so the
differential fuzzer can collect every problem of a run and shrink the
configuration that produced it.

The uniform-acceptance rule is statistical: one trace rarely holds enough
multi-proposal rounds to power a test, so :class:`AcceptanceStats` pools
samples across traces and only flags at ``N ≥ 200`` samples with
``|z| > 5`` — vanishingly unlikely under the null, persistent under any
real bias (e.g. always accepting the lowest sender id).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.trace import BatchedTrace, Trace
from repro.graphs.dynamic import DynamicGraph, epoch_of_round

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.faults.plan import FaultPlan

__all__ = [
    "Violation",
    "AcceptanceStats",
    "check_trace",
    "check_async_trace",
    "check_batched_trace",
    "check_join_freshness",
    "check_membership_round",
    "check_scheduler_fairness",
    "check_tau_stability",
]

#: Pooled-sample floor below which the uniform-acceptance test stays silent.
ACCEPTANCE_MIN_SAMPLES = 200
#: |z| threshold for flagging acceptance bias (~2.9e-7 false-positive rate).
ACCEPTANCE_Z_THRESHOLD = 5.0


@dataclass(frozen=True)
class Violation:
    """One broken model rule, attributable to a round of a trace."""

    rule: str
    round_index: int | None
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        where = f"round {self.round_index}" if self.round_index else "trace"
        return f"[{self.rule}] {where}: {self.detail}"


class AcceptanceStats:
    """Pooled z-test for uniform acceptance among incoming proposals.

    For a connection whose receiver had ``k ≥ 2`` incoming proposals, the
    accepted sender's rank ``i`` (0-based, among senders in ascending
    id order) yields the sample ``(i + 0.5) / k`` with mean ``1/2`` and
    variance ``(k² − 1) / (12 k²)`` under the uniform-acceptance null.
    Summing over samples gives ``z = (S − N/2) / sqrt(Σ var)``; any
    systematic preference (lowest id, highest id, first proposer…)
    drives ``|z|`` without bound as samples accumulate.
    """

    def __init__(self) -> None:
        self.count = 0
        self._sum = 0.0
        self._var = 0.0

    def add_sample(self, rank: int, k: int) -> None:
        if k < 2:
            return  # k = 1 is forced, carries no information
        self.count += 1
        self._sum += (rank + 0.5) / k
        self._var += (k * k - 1.0) / (12.0 * k * k)

    def add_trace(self, trace: Trace) -> None:
        for rec in trace.rounds:
            add_acceptance_samples(self, rec.proposals, rec.connections)

    def z(self) -> float:
        if self._var <= 0.0:
            return 0.0
        return (self._sum - 0.5 * self.count) / math.sqrt(self._var)

    def violation(self) -> Violation | None:
        """A violation if the pooled evidence rejects uniformity."""
        if self.count < ACCEPTANCE_MIN_SAMPLES:
            return None
        z = self.z()
        if abs(z) > ACCEPTANCE_Z_THRESHOLD:
            return Violation(
                rule="uniform-acceptance",
                round_index=None,
                detail=(
                    f"acceptance rank bias z={z:.2f} over {self.count} "
                    f"multi-proposal connections (|z| > "
                    f"{ACCEPTANCE_Z_THRESHOLD} rejects uniform acceptance)"
                ),
            )
        return None


def add_acceptance_samples(
    stats: AcceptanceStats, proposals: np.ndarray, connections: np.ndarray
) -> None:
    """Feed one round's acceptance ranks into ``stats``.

    A receiver's incoming proposals are those targeting it from the
    round's proposal list (proposers never receive, so proposals to
    proposers are excluded); the accepted sender's rank is its position
    among those senders in ascending id order.
    """
    if connections.size == 0:
        return
    proposed = set(int(s) for s in proposals[:, 0])
    incoming: dict[int, list[int]] = {}
    for s, t in proposals:
        if int(t) not in proposed:
            incoming.setdefault(int(t), []).append(int(s))
    for s, t in connections:
        senders = incoming.get(int(t))
        if senders is None or len(senders) < 2:
            continue
        # Proposals are recorded in ascending proposer order, so the
        # per-receiver sender lists are already sorted.
        stats.add_sample(senders.index(int(s)), len(senders))


# -- per-round checkers -------------------------------------------------------


def _check_round(
    rec,
    graph,
    tag_length: int,
    expected_active: np.ndarray | None,
    has_drop_model: bool,
    out: list[Violation],
) -> None:
    r = rec.round_index
    proposals = rec.proposals
    connections = rec.connections
    active = rec.active

    # activation-consistency: the recorded mask must match the expected
    # "activated and not crashed" mask reconstructed from the run config.
    if expected_active is not None and not np.array_equal(active, expected_active):
        diff = np.flatnonzero(active != expected_active)
        out.append(
            Violation(
                rule="activation-consistency",
                round_index=r,
                detail=(
                    f"active mask disagrees with activation schedule + fault "
                    f"plan at nodes {diff.tolist()[:8]}"
                ),
            )
        )

    # tag-width: active nodes advertise within b bits, inactive nodes -1.
    tags = rec.tags
    hi = 1 << tag_length
    bad = np.flatnonzero(active & ((tags < 0) | (tags >= hi)))
    if bad.size:
        out.append(
            Violation(
                rule="tag-width",
                round_index=r,
                detail=(
                    f"node {int(bad[0])} advertised tag {int(tags[bad[0]])} "
                    f"outside {tag_length} bits ({bad.size} node(s) total)"
                ),
            )
        )
    bad = np.flatnonzero(~active & (tags != -1))
    if bad.size:
        out.append(
            Violation(
                rule="tag-width",
                round_index=r,
                detail=f"inactive node {int(bad[0])} advertised tag "
                f"{int(tags[bad[0]])} (must be recorded as -1)",
            )
        )

    # proposals-on-edges: distinct active endpoints joined by an edge of G_r.
    for s, t in proposals:
        s, t = int(s), int(t)
        if s == t:
            out.append(
                Violation(
                    rule="proposals-on-edges",
                    round_index=r,
                    detail=f"node {s} proposed to itself",
                )
            )
            continue
        if not active[s] or not active[t]:
            out.append(
                Violation(
                    rule="proposals-on-edges",
                    round_index=r,
                    detail=f"proposal {s}->{t} involves an inactive node",
                )
            )
            continue
        row = graph.indices[graph.indptr[s] : graph.indptr[s + 1]]
        pos = int(np.searchsorted(row, t))
        if pos == row.size or int(row[pos]) != t:
            out.append(
                Violation(
                    rule="proposals-on-edges",
                    round_index=r,
                    detail=f"proposal {s}->{t} is not an edge of G_{r}",
                )
            )

    # A node proposes at most once per round.
    if proposals.size:
        senders = proposals[:, 0]
        if np.unique(senders).size != senders.size:
            out.append(
                Violation(
                    rule="proposals-on-edges",
                    round_index=r,
                    detail="a node issued more than one proposal",
                )
            )

    # connection-exclusivity: each node in at most one connection.
    if connections.size:
        flat = connections.ravel()
        if np.unique(flat).size != flat.size:
            out.append(
                Violation(
                    rule="connection-exclusivity",
                    round_index=r,
                    detail="a node participates in more than one connection",
                )
            )

    # send-xor-receive: every connection pairs a recorded proposer with its
    # proposed target, the receiver must not itself have proposed, and —
    # absent a connection-drop fault model — every listener with incoming
    # proposals must accept exactly one.
    proposed = set((int(s), int(t)) for s, t in proposals)
    proposers = set(int(s) for s in proposals[:, 0]) if proposals.size else set()
    receivers = set(int(t) for t in connections[:, 1]) if connections.size else set()
    for s, t in connections:
        s, t = int(s), int(t)
        if (s, t) not in proposed:
            out.append(
                Violation(
                    rule="send-xor-receive",
                    round_index=r,
                    detail=f"connection {s}->{t} without a matching proposal",
                )
            )
        if t in proposers:
            out.append(
                Violation(
                    rule="send-xor-receive",
                    round_index=r,
                    detail=f"node {t} both proposed and accepted",
                )
            )
    if not has_drop_model:
        listeners = set(int(t) for _, t in proposed if int(t) not in proposers)
        missed = listeners - receivers
        if missed:
            out.append(
                Violation(
                    rule="send-xor-receive",
                    round_index=r,
                    detail=(
                        f"listener {min(missed)} had incoming proposals but "
                        f"accepted none ({len(missed)} listener(s) total)"
                    ),
                )
            )


# -- trace-level entry points -------------------------------------------------


def check_tau_stability(
    dg: DynamicGraph, horizon: int, out: list[Violation] | None = None
) -> list[Violation]:
    """Verify ``dg`` holds its topology constant within each τ-epoch.

    Walks rounds ``1..horizon`` comparing consecutive topologies; a
    change between two rounds of the same epoch breaks the stability
    contract the algorithms' guarantees are conditioned on.
    """
    violations = out if out is not None else []
    tau = dg.tau
    prev = dg.graph_at(1)
    for r in range(2, horizon + 1):
        g = dg.graph_at(r)
        same_epoch = (
            math.isinf(tau) or epoch_of_round(r, tau) == epoch_of_round(r - 1, tau)
        )
        if same_epoch and g != prev:
            violations.append(
                Violation(
                    rule="tau-stability",
                    round_index=r,
                    detail=(
                        f"topology changed between rounds {r - 1} and {r} "
                        f"inside one tau={tau} epoch"
                    ),
                )
            )
        prev = g
    return violations


def _expected_active(
    r: int,
    n: int,
    activation: np.ndarray | None,
    fault_plan: "FaultPlan | None",
) -> np.ndarray | None:
    if activation is None and fault_plan is None:
        return None
    base = (
        np.ones(n, dtype=bool)
        if activation is None
        else (np.asarray(activation, dtype=np.int64) <= r)
    )
    if fault_plan is not None and fault_plan.crashes is not None:
        base = base & ~fault_plan.crashes.down_at(r, n)
    if fault_plan is not None and fault_plan.membership is not None:
        base = base & ~fault_plan.membership.down_at(r, n)
    return base


def _plan_membership(fault_plan: "FaultPlan | None"):
    if fault_plan is None or fault_plan.membership is None:
        return None
    return None if fault_plan.membership.is_empty() else fault_plan.membership


def check_membership_round(
    rec, membership, n: int, out: list[Violation]
) -> None:
    """Audit one round record against an open-world membership schedule.

    ``membership-silence``: a slot the schedule marks absent in round
    ``r`` must be invisible — no proposal endpoint, no connection
    endpoint, tag recorded as ``-1``.  ``membership-cap``: the live
    population (present slots) stays within ``[1, max_live or n]``, and
    the recorded active mask never exceeds the schedule's presence.
    """
    r = rec.round_index
    down = membership.down_at(r, n)
    if not down.any():
        live = n
    else:
        live = int(n - down.sum())
        for arr, what in ((rec.proposals, "proposal"), (rec.connections, "connection")):
            if arr.size == 0:
                continue
            bad = down[arr.ravel()]
            if bad.any():
                slot = int(arr.ravel()[np.flatnonzero(bad)[0]])
                out.append(
                    Violation(
                        rule="membership-silence",
                        round_index=r,
                        detail=f"absent slot {slot} appears in a {what}",
                    )
                )
        bad_tags = np.flatnonzero(down & (rec.tags != -1))
        if bad_tags.size:
            out.append(
                Violation(
                    rule="membership-silence",
                    round_index=r,
                    detail=(
                        f"absent slot {int(bad_tags[0])} advertised tag "
                        f"{int(rec.tags[bad_tags[0]])} (must be -1)"
                    ),
                )
            )
        active_on_down = np.flatnonzero(rec.active & down)
        if active_on_down.size:
            out.append(
                Violation(
                    rule="membership-silence",
                    round_index=r,
                    detail=(
                        f"absent slot {int(active_on_down[0])} recorded as "
                        f"active ({active_on_down.size} slot(s) total)"
                    ),
                )
            )
    cap = membership.max_live if membership.max_live is not None else n
    if not 1 <= live <= cap:
        out.append(
            Violation(
                rule="membership-cap",
                round_index=r,
                detail=f"live population {live} outside [1, {cap}]",
            )
        )
    recorded = int(np.count_nonzero(rec.active))
    if recorded > cap:
        out.append(
            Violation(
                rule="membership-cap",
                round_index=r,
                detail=f"{recorded} active slots exceed the declared cap {cap}",
            )
        )


def check_join_freshness(
    fault_plan: "FaultPlan", n: int, out: list[Violation] | None = None
) -> list[Violation]:
    """Every join / clean departure must reset the slot's protocol state.

    Audits the fault-state plumbing the engines actually consume
    (rule ``join-state-freshness``): the merged ``rejoin_resets`` stream
    of :class:`~repro.faults.apply.SingleFaultState` must cover every
    ``join`` and ``depart_clean`` event of the plan's membership
    schedule, so a returning slot can never carry state from a previous
    incarnation.
    """
    from repro.faults.apply import SingleFaultState
    from repro.util.rng import make_rng

    violations = out if out is not None else []
    membership = _plan_membership(fault_plan)
    if membership is None:
        return violations
    state = SingleFaultState(fault_plan, n, make_rng(0, "conformance-freshness"))
    for ev in membership.events:
        if ev.kind == "depart":
            continue  # crash-like: state freezes, by design
        if ev.slot not in state.rejoin_resets(ev.round):
            violations.append(
                Violation(
                    rule="join-state-freshness",
                    round_index=ev.round,
                    detail=(
                        f"slot {ev.slot} {ev.kind}s at round {ev.round} "
                        "without a state reset in the fault stream"
                    ),
                )
            )
    return violations


def check_trace(
    trace: Trace,
    dynamic_graph: DynamicGraph,
    *,
    tag_length: int = 0,
    activation_rounds: Sequence[int] | np.ndarray | None = None,
    fault_plan: "FaultPlan | None" = None,
    acceptance_stats: AcceptanceStats | None = None,
    check_topology_stability: bool = True,
) -> list[Violation]:
    """Validate one trace against every model rule.

    Parameters mirror the engine construction that produced the trace;
    the checkers reconstruct what the model *allows* from them
    (``G_r`` via ``dynamic_graph.graph_at``, the legal active mask via
    ``activation_rounds`` + the plan's crash schedule) and compare.

    ``acceptance_stats`` pools uniform-acceptance samples across calls
    (the fuzzer's use); when omitted, a per-trace pool is used and its
    verdict — usually silent for short traces — is included directly.
    """
    violations: list[Violation] = []
    n = dynamic_graph.n
    activation = (
        None
        if activation_rounds is None
        else np.asarray(activation_rounds, dtype=np.int64)
    )
    has_drop = (
        fault_plan is not None
        and fault_plan.connection_drop is not None
        and not fault_plan.connection_drop.is_empty()
    )
    local_stats = acceptance_stats if acceptance_stats is not None else AcceptanceStats()

    membership = _plan_membership(fault_plan)
    for rec in trace.rounds:
        r = rec.round_index
        graph = dynamic_graph.graph_at(r)
        expected = _expected_active(r, n, activation, fault_plan)
        _check_round(rec, graph, tag_length, expected, has_drop, violations)
        if membership is not None:
            check_membership_round(rec, membership, n, violations)
        add_acceptance_samples(local_stats, rec.proposals, rec.connections)

    if check_topology_stability and trace.rounds:
        check_tau_stability(
            dynamic_graph, trace.rounds[-1].round_index, violations
        )
    if membership is not None:
        check_join_freshness(fault_plan, n, violations)

    if acceptance_stats is None:
        v = local_stats.violation()
        if v is not None:
            violations.append(v)
    return violations


def check_scheduler_fairness(
    events: Sequence,
    delta: int,
    out: list[Violation] | None = None,
) -> list[Violation]:
    """Audit an async event log against the bounded-delay guarantee.

    ``events`` is the engine's recorded log of scheduled events
    (:class:`~repro.asyncsim.engine.EventRecord`); each must have been
    delivered within ``[1, Δ]`` ticks of becoming pending.  This checks
    the *scheduler* (including user-supplied ones) the way the other
    rules check the engines: an adversary may be arbitrarily mean inside
    the band, never outside it.
    """
    violations = out if out is not None else []
    for ev in events:
        d = ev.deliver - ev.pending
        if d < 1 or d > delta:
            violations.append(
                Violation(
                    rule="scheduler-fairness",
                    round_index=int(ev.deliver),
                    detail=(
                        f"{ev.kind} event for node {ev.node} pended "
                        f"{d} tick(s), outside [1, {delta}]"
                    ),
                )
            )
    return violations


def check_async_trace(
    trace: Trace,
    dynamic_graph: DynamicGraph,
    *,
    tag_length: int = 0,
    activation_rounds: Sequence[int] | np.ndarray | None = None,
    fault_plan: "FaultPlan | None" = None,
    delta: int = 1,
    events: Sequence | None = None,
    check_topology_stability: bool = True,
) -> list[Violation]:
    """Validate a tick-bucketed trace from the asynchronous event tier.

    The structural rules (connection-exclusivity, proposals-on-edges,
    tag-width, activation-consistency, tau-stability) apply per tick
    bucket exactly as they do per round.  Send-xor-receive runs in its
    drop-model form — a reserved node legitimately rejects attempts — and
    uniform-acceptance is skipped entirely: first-come acceptance is the
    async model's semantics, so rank bias is expected, not a violation.
    When the engine's event log is supplied, the bounded-delay guarantee
    is audited via :func:`check_scheduler_fairness`.

    ``activation_rounds`` and the fault plan's windows are interpreted in
    ticks, matching how :class:`~repro.asyncsim.engine.EventSimEngine`
    consumes them.
    """
    violations: list[Violation] = []
    n = dynamic_graph.n
    activation = (
        None
        if activation_rounds is None
        else np.asarray(activation_rounds, dtype=np.int64)
    )
    for rec in trace.rounds:
        r = rec.round_index
        graph = dynamic_graph.graph_at(r)
        expected = _expected_active(r, n, activation, fault_plan)
        _check_round(rec, graph, tag_length, expected, True, violations)

    if check_topology_stability and trace.rounds:
        check_tau_stability(
            dynamic_graph, trace.rounds[-1].round_index, violations
        )
    if events is not None:
        check_scheduler_fairness(events, delta, violations)
    return violations


def check_batched_trace(
    btrace: BatchedTrace,
    dynamic_graph: DynamicGraph | Sequence[DynamicGraph],
    *,
    tag_length: int = 0,
    activation_rounds: Sequence[int] | np.ndarray | None = None,
    fault_plan: "FaultPlan | None" = None,
    acceptance_stats: AcceptanceStats | None = None,
) -> list[Violation]:
    """Validate every replica of a batched trace.

    ``dynamic_graph`` is either the one graph shared by all replicas or a
    per-replica sequence, exactly as the batched engine accepts it.
    Violations are tagged with their replica in the detail text.
    """
    if isinstance(dynamic_graph, DynamicGraph):
        dgs: list[DynamicGraph] = [dynamic_graph] * btrace.replicas
        stability_targets = [(0, dynamic_graph)]
    else:
        dgs = list(dynamic_graph)
        if len(dgs) != btrace.replicas:
            raise ValueError(
                f"need one dynamic graph per replica: got {len(dgs)} "
                f"for {btrace.replicas} replicas"
            )
        stability_targets = list(enumerate(dgs))

    violations: list[Violation] = []
    for t in range(btrace.replicas):
        per = check_trace(
            btrace.replica(t),
            dgs[t],
            tag_length=tag_length,
            activation_rounds=activation_rounds,
            fault_plan=fault_plan,
            acceptance_stats=acceptance_stats
            if acceptance_stats is not None
            else AcceptanceStats(),
            check_topology_stability=False,
        )
        violations.extend(
            Violation(v.rule, v.round_index, f"replica {t}: {v.detail}")
            for v in per
        )
    if len(btrace):
        horizon = btrace.round_indices[-1]
        for t, dg in stability_targets:
            per2: list[Violation] = []
            check_tau_stability(dg, horizon, per2)
            violations.extend(
                Violation(v.rule, v.round_index, f"replica {t}: {v.detail}")
                for v in per2
            )
    return violations
