"""Cross-engine conformance: model-invariant checking and differential fuzzing.

The paper's guarantees hold only under the mobile telephone model's hard
constraints (Section III).  This package audits that every engine tier
still obeys them after optimization work:

* :mod:`repro.conformance.invariants` — checkers that validate a
  recorded :class:`~repro.core.trace.Trace` (any tier) against the
  model rules;
* :mod:`repro.conformance.differential` — a seeded fuzzer that samples
  configurations, cross-checks engine tiers against each other, runs
  the invariant checkers on every trace, and shrinks failures to a
  minimal replayable JSON repro;
* :mod:`repro.conformance.livecheck` — the live-transport tier's
  cross-check: invariant-checks live traces and compares their
  stabilization distribution against the reference engine.
"""

from repro.conformance.differential import (
    ConfigReport,
    FuzzConfig,
    FuzzSummary,
    fuzz,
    replay_file,
    run_config,
    shrink,
)
from repro.conformance.livecheck import live_reference_check
from repro.conformance.invariants import (
    AcceptanceStats,
    Violation,
    check_async_trace,
    check_batched_trace,
    check_scheduler_fairness,
    check_trace,
)

__all__ = [
    "AcceptanceStats",
    "ConfigReport",
    "FuzzConfig",
    "FuzzSummary",
    "Violation",
    "check_async_trace",
    "check_batched_trace",
    "check_scheduler_fairness",
    "check_trace",
    "fuzz",
    "live_reference_check",
    "replay_file",
    "run_config",
    "shrink",
]
