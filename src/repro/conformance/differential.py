"""Differential fuzzing across the three engine tiers.

The fuzzer samples small configurations — graph family × ``n`` ×
algorithm × τ × fault plan × activation schedule — and runs each through
the reference, vectorized, and batched engines with full trace capture,
checking:

* **invariants** — every trace passes the model-rule checkers of
  :mod:`repro.conformance.invariants` (uniform-acceptance evidence is
  pooled across the whole fuzz session);
* **bit-exactness** — traced runs are bit-identical to untraced runs of
  the same engine and seed; traced reruns reproduce the identical trace;
  on forced-dynamics configurations (PPUSH over a path: every proposal
  and acceptance is forced) the reference and vectorized traces must
  match *bit for bit*, the strongest cross-engine statement their
  disjoint RNG streams allow;
* **cross-tier agreement** — per configuration, the tiers must agree on
  whether runs stabilize, and the vectorized-vs-batched median rounds
  must agree within a generous factor; across the session, the pooled
  reference-vs-vectorized log-median-ratio must stay near zero (the
  engines cannot be compared trace-for-trace on random dynamics — their
  RNG consumption orders differ — so the distributional check is the
  cross-tier ground truth, as in ``tests/test_cross_validation.py``).

A slice of the sampled configurations additionally exercise the
**asynchronous event tier** (``engine="async"``): the event simulator
runs the configuration under a sampled scheduler × delay bound Δ, its
virtual-time trace must pass :func:`check_async_trace` (including the
scheduler-fairness rule on the raw event log), identical
``(seed, Δ, scheduler)`` must reproduce a bit-identical event schedule
and trace, and the tick count must stay within a Δ-scaled band of the
synchronous vectorized tier's round count.

Every failing configuration is **shrunk**: the fuzzer greedily retries
simpler variants (fall back to the synchronous engine, drop the fault
plan, make the topology static, reduce ``n``, simplify the family,
Δ → 1, adversarial → random) while the failure persists, and reports
the minimal still-failing configuration as replayable JSON
(``repro conformance replay FILE``).  Shrinking is deterministic — the
whole fuzz session is a pure function of ``(budget, seed)``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.asyncsim.algorithms import blind_gossip_setup, push_pull_setup
from repro.asyncsim.engine import EventSimEngine
from repro.asyncsim.scheduler import SCHEDULER_NAMES
from repro.conformance.invariants import AcceptanceStats, Violation, check_async_trace, check_trace
from repro.core.batched import BatchedVectorizedEngine
from repro.core.engine import ReferenceEngine
from repro.core.monitor import all_leaders_are, rumor_complete
from repro.core.payload import UIDSpace
from repro.core.trace import traces_equal
from repro.core.vectorized import VectorizedEngine
from repro.faults.plan import (
    CrashSchedule,
    CrashWindow,
    ConnectionDropModel,
    FaultPlan,
    TagCorruptionModel,
    leader_assassin_schedule,
    random_membership_schedule,
)
from repro.graphs import families
from repro.graphs.dynamic import PeriodicRelabelDynamicGraph, StaticDynamicGraph
from repro.harness.runner import trial_seeds_for
from repro.util.rng import make_rng

__all__ = ["FuzzConfig", "ConfigReport", "FuzzSummary", "run_config", "fuzz", "shrink", "replay_file"]

#: Vectorized trials / batched replicas per configuration.
TRIALS = 6
#: Reference trials per configuration (the slow tier).
REF_TRIALS = 2
#: Traces fully invariant-checked per tier per configuration (the rest
#: still feed the pooled acceptance statistics).
CHECKED_TRACES = 2
#: Simpler-first family order; shrinking moves left.
FAMILY_ORDER = ("clique", "star", "wheel", "ring", "path")
#: Per-algorithm run horizon (generous: every sampled configuration
#: stabilizes w.h.p. well inside it).
HORIZONS = {
    "blind_gossip": 6000,
    "push_pull": 4000,
    "ppush": 4000,
    "bit_convergence": 60000,
}
#: Families slow-spreading blind gossip is allowed on (low-expansion
#: families would need far larger horizons).
BLIND_GOSSIP_FAMILIES = ("clique", "star", "wheel")
#: |mean log(ref/vec median-rounds ratio)| ceiling for the pooled
#: cross-tier distributional check (factor 2 overall).
POOLED_LOG_RATIO_MAX = math.log(2.0)
#: Per-config vectorized-vs-batched median-rounds ratio band.
TIER_RATIO_BAND = (0.25, 4.0)
#: Algorithms with an event-tier form (native async node classes).
ASYNC_ALGORITHMS = ("blind_gossip", "push_pull")
#: Event-tier trials per async configuration (each trial replays the
#: whole event schedule, so fewer than the vectorized tier).
ASYNC_TRIALS = 4
#: Async median-ticks vs sync median-rounds band: the ratio must lie in
#: ``(lo, hi_per_delta * delta)`` — at Δ=1 the tiers are near lock-step,
#: and maximal dilation stretches virtual time by at most ~Δ.
ASYNC_SYNC_RATIO_LO = 0.2
ASYNC_SYNC_RATIO_HI_PER_DELTA = 8.0


@dataclass(frozen=True)
class FuzzConfig:
    """One sampled configuration (pure data, JSON round-trippable).

    ``fault`` is an abstract spec (kind + parameters), materialized into
    a concrete :class:`~repro.faults.plan.FaultPlan` inside
    :func:`run_config` — deterministically from the config — so repro
    files stay small and replay exactly.
    """

    family: str
    n: int
    algorithm: str
    tau: int | None  # None = static topology
    fault: dict | None
    activation: str  # "sync" | "staggered"
    seed: int
    engine: str = "sync"  # "sync" | "async" (event tier)
    delta: int = 1  # async delay bound Δ (ignored for engine="sync")
    scheduler: str = "random"  # async scheduler name

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "n": self.n,
            "algorithm": self.algorithm,
            "tau": self.tau,
            "fault": self.fault,
            "activation": self.activation,
            "seed": self.seed,
            "engine": self.engine,
            "delta": self.delta,
            "scheduler": self.scheduler,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzConfig":
        return cls(
            family=str(data["family"]),
            n=int(data["n"]),
            algorithm=str(data["algorithm"]),
            tau=None if data.get("tau") is None else int(data["tau"]),
            fault=data.get("fault"),
            activation=str(data.get("activation", "sync")),
            seed=int(data["seed"]),
            engine=str(data.get("engine", "sync")),
            delta=int(data.get("delta", 1)),
            scheduler=str(data.get("scheduler", "random")),
        )


@dataclass
class ConfigReport:
    """Everything one configuration run produced."""

    config: FuzzConfig
    violations: list[Violation] = field(default_factory=list)
    mismatches: list[str] = field(default_factory=list)
    #: log(ref median / vec median), when both tiers fully stabilized.
    log_ratio: float | None = None

    @property
    def failed(self) -> bool:
        return bool(self.violations or self.mismatches)

    def failure_lines(self) -> list[str]:
        return [str(v) for v in self.violations] + list(self.mismatches)


@dataclass
class FuzzSummary:
    configs: int
    failures: list[ConfigReport]
    acceptance: AcceptanceStats
    pooled_log_ratio: float
    pooled_samples: int

    @property
    def ok(self) -> bool:
        return not self.failures


# -- configuration materialization -------------------------------------------


def _build_graph(cfg: FuzzConfig):
    builders = {
        "clique": families.clique,
        "star": families.star,
        "wheel": families.wheel,
        "ring": families.ring,
        "path": families.path,
    }
    return builders[cfg.family](cfg.n)


def _build_fault_plan(cfg: FuzzConfig, protected: set[int]) -> FaultPlan | None:
    """Materialize the abstract fault spec for a concrete network.

    Permanent crashes take a *rank* rather than a node id: the victim is
    the ``rank``-th node outside ``protected`` (the rumor source or the
    eventual winner — crashing those before they spread makes the
    stabilization target itself unreachable, which is a property of the
    configuration, not an engine bug).
    """
    spec = cfg.fault
    if spec is None:
        return None
    kind = spec["kind"]
    if kind == "drop":
        return FaultPlan(connection_drop=ConnectionDropModel(p=float(spec["p"])))
    if kind == "tagflip":
        return FaultPlan(tag_corruption=TagCorruptionModel(q=float(spec["q"])))
    reset = bool(spec.get("reset", True))
    if kind == "crash":
        windows = tuple(
            CrashWindow(node=int(v) % cfg.n, start=int(s), end=int(e), reset_on_rejoin=reset)
            for v, s, e in spec["windows"]
        )
        return FaultPlan(crashes=CrashSchedule(windows))
    if kind == "perma":
        eligible = [v for v in range(cfg.n) if v not in protected]
        victim = eligible[int(spec["rank"]) % len(eligible)]
        return FaultPlan(
            crashes=CrashSchedule(
                (CrashWindow(node=victim, start=int(spec["start"]), end=None),)
            )
        )
    if kind == "mixed":
        windows = tuple(
            CrashWindow(node=int(v) % cfg.n, start=int(s), end=int(e), reset_on_rejoin=reset)
            for v, s, e in spec["windows"]
        )
        return FaultPlan(
            crashes=CrashSchedule(windows),
            connection_drop=ConnectionDropModel(p=float(spec["p"])),
        )
    if kind == "membership":
        # Open-world churn.  Protected slots (the rumor source / eventual
        # winner) are pinned live: their permanent departure would make
        # the stabilization target unreachable by construction.
        schedule = random_membership_schedule(
            cfg.n,
            int(spec["events"]),
            first_round=2,
            last_round=int(spec["last"]),
            seed=cfg.seed,
            initial_absent=int(spec.get("absent", 0)),
            clean_fraction=float(spec.get("clean", 0.5)),
            min_live=2,
            protect=tuple(sorted(protected)),
        )
        return FaultPlan(membership=schedule, n=cfg.n)
    if kind == "assassin":
        # Keys are recomputed exactly as _AlgoBundle derives them, so the
        # schedule targets the same UIDs the algorithms run with.  Every
        # victim rejoins after one period (finite down_for), keeping the
        # closed-world convergence targets reachable after quiesce.
        uids = UIDSpace(cfg.n, seed=cfg.seed)
        keys = np.array([uids.uid_of(v)._key for v in range(cfg.n)], dtype=np.int64)
        period = int(spec["period"])
        schedule = leader_assassin_schedule(
            keys,
            period=period,
            kills=int(spec["kills"]),
            first_round=3,
            down_for=period,
        )
        return FaultPlan(membership=schedule, n=cfg.n)
    raise ValueError(f"unknown fault kind {kind!r}")


def _activation_rounds(cfg: FuzzConfig) -> np.ndarray | None:
    if cfg.activation == "sync":
        return None
    rng = make_rng(cfg.seed, "conformance-activation")
    return rng.integers(1, 6, size=cfg.n).astype(np.int64)


class _AlgoBundle:
    """The three per-tier forms of one algorithm for one configuration."""

    def __init__(self, cfg: FuzzConfig):
        from repro.algorithms.bit_convergence import (
            BitConvergenceBatched,
            BitConvergenceConfig,
            BitConvergenceNode,
            BitConvergenceVectorized,
            draw_id_tags,
        )
        from repro.algorithms.blind_gossip import (
            BlindGossipBatched,
            BlindGossipVectorized,
            make_blind_gossip_nodes,
        )
        from repro.algorithms.ppush import PPushBatched, PPushVectorized, make_ppush_nodes
        from repro.algorithms.push_pull import (
            PushPullBatched,
            PushPullVectorized,
            make_push_pull_nodes,
        )

        n = cfg.n
        uids = UIDSpace(n, seed=cfg.seed)
        keys = np.array([uids.uid_of(v)._key for v in range(n)], dtype=np.int64)
        self.uids = uids
        self.keys = keys
        g = _build_graph(cfg)
        self.graph = g
        src = np.array([0])

        if cfg.algorithm == "blind_gossip":
            self.tag_length = 0
            self.protected = {int(np.argmin(keys))}
            self.make_vec = lambda: BlindGossipVectorized(keys)
            self.make_batched = lambda: BlindGossipBatched(keys)
            self.make_protocols = lambda: make_blind_gossip_nodes(uids)
            self.stop_when = all_leaders_are(uids.min_uid())
        elif cfg.algorithm == "push_pull":
            self.tag_length = 0
            self.protected = {0}
            self.make_vec = lambda: PushPullVectorized(src)
            self.make_batched = lambda: PushPullBatched(src)
            self.make_protocols = lambda: make_push_pull_nodes(uids, sources={0})
            self.stop_when = rumor_complete
        elif cfg.algorithm == "ppush":
            self.tag_length = 1
            self.protected = {0}
            self.make_vec = lambda: PPushVectorized(src)
            self.make_batched = lambda: PPushBatched(src)
            self.make_protocols = lambda: make_ppush_nodes(uids, sources={0})
            self.stop_when = rumor_complete
        elif cfg.algorithm == "bit_convergence":
            bc_cfg = BitConvergenceConfig(
                n_upper=max(n, 2), delta_bound=g.max_degree, beta=1.0
            )
            self.tag_length = 1
            self.protected = set()
            self.make_vec_seeded = lambda ts: BitConvergenceVectorized(
                keys, bc_cfg, tag_seed=ts, unique_tags=True
            )
            self.make_vec = None
            self.make_batched = lambda: BitConvergenceBatched(
                keys, bc_cfg, unique_tags=True
            )

            def protocols_for(ts: int):
                tags = draw_id_tags(n, bc_cfg, ts, unique=True)
                return [
                    BitConvergenceNode(v, uids.uid_of(v), int(tags[v]), bc_cfg)
                    for v in range(n)
                ]

            self.make_protocols_seeded = protocols_for
            self.stop_when = None  # per-seed winner, computed at run time
        else:
            raise ValueError(f"unknown algorithm {cfg.algorithm!r}")

    def vec_algo(self, ts: int):
        if self.make_vec is not None:
            return self.make_vec()
        return self.make_vec_seeded(ts)

    def protocols(self, ts: int):
        if hasattr(self, "make_protocols_seeded"):
            return self.make_protocols_seeded(ts)
        return self.make_protocols()

    def stop_for(self, protocols):
        if self.stop_when is not None:
            return self.stop_when
        # Bit convergence: the winner is the minimum committed (tag, key)
        # pair of this seed's initial state.
        winner = min(protocols, key=lambda nd: nd.committed_pair).uid
        return all_leaders_are(winner)


def _int_seed(seed: int, *labels: str | int) -> int:
    """A deterministic integer seed for ``(seed, *labels)``."""
    return int(make_rng(seed, *labels).integers(0, 2**31 - 1))


def _dg_for(cfg: FuzzConfig, graph, label: int):
    """The dynamic graph of one trial (``label`` keeps seeds distinct)."""
    if cfg.tau is None:
        return StaticDynamicGraph(graph)
    return PeriodicRelabelDynamicGraph(
        graph, cfg.tau, seed=_int_seed(cfg.seed, "conformance-churn", label)
    )


# -- single-configuration runner ----------------------------------------------


def run_config(
    cfg: FuzzConfig, acceptance: AcceptanceStats | None = None
) -> ConfigReport:
    """Run one configuration through all tiers and collect every problem."""
    report = ConfigReport(config=cfg)
    try:
        _run_config_inner(cfg, report, acceptance)
    except Exception as exc:  # noqa: BLE001 - a crash is a finding, not an abort
        report.mismatches.append(f"exception: {type(exc).__name__}: {exc}")
    return report


def _async_setup_for(cfg: FuzzConfig, uids: UIDSpace):
    """Fresh event-tier nodes + stop predicate for one trial."""
    if cfg.algorithm == "blind_gossip":
        return blind_gossip_setup(uids)
    if cfg.algorithm == "push_pull":
        return push_pull_setup(uids, sources={0})
    raise ValueError(f"algorithm {cfg.algorithm!r} has no event-tier form")


def _run_async_config(cfg: FuzzConfig, report: ConfigReport) -> None:
    """Event-tier leg: invariants, fairness, determinism, sync anchor."""
    if cfg.delta < 1:
        raise ValueError("delta must be >= 1")
    bundle = _AlgoBundle(cfg)
    plan = _build_fault_plan(cfg, bundle.protected)
    activation = _activation_rounds(cfg)
    # Virtual time dilates by at most Δ; faults push the quiesce gate.
    horizon = HORIZONS[cfg.algorithm] * cfg.delta
    if plan is not None:
        horizon += plan.quiesce_round
    seeds = trial_seeds_for(cfg.seed, ASYNC_TRIALS)
    graph = bundle.graph

    def one_run(trial: int, ts: int):
        dg = _dg_for(cfg, graph, trial)
        setup = _async_setup_for(cfg, bundle.uids)
        eng = EventSimEngine(
            dg,
            setup.nodes,
            seed=ts,
            delta=cfg.delta,
            scheduler=cfg.scheduler,
            activation_rounds=activation,
            fault_plan=plan,
            collect_trace=True,
            collect_events=True,
        )
        return eng, dg, setup, eng.run_until(horizon, setup.stop_when, check_every=4)

    results = []
    for i, ts in enumerate(seeds):
        eng, dg, setup, res = one_run(i, int(ts))
        results.append(res)
        if i < CHECKED_TRACES:
            for v in check_async_trace(
                res.trace,
                dg,
                tag_length=setup.tag_length,
                activation_rounds=activation,
                fault_plan=plan,
                delta=cfg.delta,
                events=eng.event_log,
            ):
                report.violations.append(
                    Violation(v.rule, v.round_index, f"async seed {ts}: {v.detail}")
                )
        if i == 0:
            eng2, _, _, res2 = one_run(i, int(ts))
            if (res.stabilized, res.rounds) != (res2.stabilized, res2.rounds):
                report.mismatches.append(
                    f"async rerun outcome differs for seed {ts}: "
                    f"{(res.stabilized, res.rounds)} vs {(res2.stabilized, res2.rounds)}"
                )
            if eng.event_log != eng2.event_log:
                report.mismatches.append(
                    f"async event schedule not deterministic for seed {ts}"
                )
            if not traces_equal(res.trace, res2.trace):
                report.mismatches.append(
                    f"async trace not deterministic for seed {ts}"
                )

    oks = [r.stabilized for r in results]
    if not all(oks):
        report.mismatches.append(
            f"async tier failed to stabilize within {horizon} ticks "
            f"({sum(oks)}/{len(oks)} trials, delta={cfg.delta}, "
            f"scheduler={cfg.scheduler})"
        )
        return

    # Sync anchor: the vectorized tier on the same configuration.  Tick
    # counts and round counts are only comparable up to the Δ dilation,
    # so the band scales with Δ.
    sync_horizon = HORIZONS[cfg.algorithm]
    if plan is not None:
        sync_horizon += plan.quiesce_round
    vec_results = []
    for i, ts in enumerate(seeds):
        dg = _dg_for(cfg, graph, i)
        vec_results.append(
            VectorizedEngine(
                dg,
                bundle.vec_algo(int(ts)),
                seed=int(ts),
                activation_rounds=activation,
                fault_plan=plan,
            ).run(sync_horizon)
        )
    if all(r.stabilized for r in vec_results):
        amed = float(np.median([r.rounds for r in results]))
        vmed = float(np.median([r.rounds for r in vec_results]))
        ratio = amed / max(vmed, 1e-9)
        lo, hi = ASYNC_SYNC_RATIO_LO, ASYNC_SYNC_RATIO_HI_PER_DELTA * cfg.delta
        if not lo < ratio < hi:
            report.mismatches.append(
                f"async/sync median ratio {ratio:.2f} outside ({lo}, {hi}): "
                f"async ticks={amed}, sync rounds={vmed}, delta={cfg.delta}"
            )


def _run_config_inner(
    cfg: FuzzConfig, report: ConfigReport, acceptance: AcceptanceStats | None
) -> None:
    if cfg.engine == "async":
        _run_async_config(cfg, report)
        return
    if cfg.engine != "sync":
        raise ValueError(f"unknown engine {cfg.engine!r}")
    bundle = _AlgoBundle(cfg)
    plan = _build_fault_plan(cfg, bundle.protected)
    activation = _activation_rounds(cfg)
    horizon = HORIZONS[cfg.algorithm]
    if plan is not None:
        horizon += plan.quiesce_round
    seeds = trial_seeds_for(cfg.seed, TRIALS)
    graph = bundle.graph

    def check(trace, dg, label: str) -> None:
        for v in check_trace(
            trace,
            dg,
            tag_length=bundle.tag_length,
            activation_rounds=activation,
            fault_plan=plan,
            acceptance_stats=acceptance,
        ):
            report.violations.append(
                Violation(v.rule, v.round_index, f"{label}: {v.detail}")
            )

    # -- vectorized tier: traced == untraced, deterministic, invariant-clean
    vec_results = []
    vec_dgs = []
    for i, ts in enumerate(seeds):
        dg = _dg_for(cfg, graph, i)
        vec_dgs.append(dg)
        kw = dict(seed=int(ts), activation_rounds=activation, fault_plan=plan)
        traced = VectorizedEngine(dg, bundle.vec_algo(int(ts)), collect_trace=True, **kw).run(horizon)
        plain = VectorizedEngine(dg, bundle.vec_algo(int(ts)), **kw).run(horizon)
        if (traced.stabilized, traced.rounds) != (plain.stabilized, plain.rounds):
            report.mismatches.append(
                f"vectorized traced != untraced for seed {ts}: "
                f"{(traced.stabilized, traced.rounds)} vs "
                f"{(plain.stabilized, plain.rounds)}"
            )
        vec_results.append(traced)
        if i < CHECKED_TRACES:
            check(traced.trace, dg, f"vectorized seed {ts}")
        elif acceptance is not None:
            acceptance.add_trace(traced.trace)
        if i == 0:
            again = VectorizedEngine(
                dg, bundle.vec_algo(int(ts)), collect_trace=True, **kw
            ).run(horizon)
            if not traces_equal(traced.trace, again.trace):
                report.mismatches.append(
                    f"vectorized trace not deterministic for seed {ts}"
                )

    # -- batched tier: traced == untraced, per-replica invariant-clean
    if cfg.tau is None:
        bdg = StaticDynamicGraph(graph)
        batched_dgs = bdg
    else:
        # All replicas relabel the same base object, so the batched
        # engine's permutation-native fast path engages.
        batched_dgs = [_dg_for(cfg, graph, i) for i in range(TRIALS)]
        bdg = batched_dgs
    kw = dict(seeds=seeds, activation_rounds=activation, fault_plan=plan)
    btraced = BatchedVectorizedEngine(
        bdg, bundle.make_batched(), collect_trace=True, **kw
    ).run(horizon)
    bplain = BatchedVectorizedEngine(bdg, bundle.make_batched(), **kw).run(horizon)
    if not (
        np.array_equal(btraced.stabilized, bplain.stabilized)
        and np.array_equal(btraced.rounds, bplain.rounds)
    ):
        report.mismatches.append("batched traced != untraced run")
    for t in range(min(CHECKED_TRACES, TRIALS)):
        dg_t = batched_dgs if isinstance(batched_dgs, StaticDynamicGraph) else batched_dgs[t]
        check(btraced.trace.replica(t), dg_t, f"batched replica {t}")

    # -- reference tier: invariant-clean, distributional anchor
    ref_results = []
    for i, ts in enumerate(seeds[:REF_TRIALS]):
        dg = vec_dgs[i]
        protocols = bundle.protocols(int(ts))
        stop = bundle.stop_for(protocols)
        eng = ReferenceEngine(
            dg,
            protocols,
            seed=int(ts),
            activation_rounds=activation,
            fault_plan=plan,
            collect_trace=True,
        )
        res = eng.run(horizon, stop)
        ref_results.append(res)
        check(res.trace, dg, f"reference seed {ts}")
        # Forced dynamics: PPUSH on a static path with no faults has one
        # possible proposal set and acceptance per round, so the reference
        # and vectorized traces must agree bit for bit.
        if (
            cfg.algorithm == "ppush"
            and cfg.family == "path"
            and cfg.tau is None
            and plan is None
            and cfg.activation == "sync"
        ):
            if not traces_equal(res.trace, vec_results[i].trace):
                report.mismatches.append(
                    f"reference vs vectorized PPUSH/path trace differs for seed {ts}"
                )

    # -- cross-tier agreement --------------------------------------------------
    vec_ok = [r.stabilized for r in vec_results]
    bat_ok = btraced.stabilized.tolist()
    ref_ok = [r.stabilized for r in ref_results]
    for name, oks in (("vectorized", vec_ok), ("batched", bat_ok), ("reference", ref_ok)):
        if not all(oks):
            report.mismatches.append(
                f"{name} tier failed to stabilize within {horizon} rounds "
                f"({sum(oks)}/{len(oks)} trials)"
            )
    if all(vec_ok) and all(bat_ok):
        vmed = float(np.median([r.rounds for r in vec_results]))
        bmed = float(np.median(btraced.rounds))
        ratio = bmed / max(vmed, 1e-9)
        lo, hi = TIER_RATIO_BAND
        if not lo < ratio < hi:
            report.mismatches.append(
                f"batched/vectorized median-rounds ratio {ratio:.2f} "
                f"outside ({lo}, {hi}): vec={vmed}, batched={bmed}"
            )
    if all(vec_ok) and all(ref_ok):
        vmed = float(np.median([r.rounds for r in vec_results]))
        rmed = float(np.median([r.rounds for r in ref_results]))
        report.log_ratio = math.log(max(rmed, 1.0) / max(vmed, 1.0))


# -- sampling ------------------------------------------------------------------


def sample_config(seed: int, index: int) -> FuzzConfig:
    """Deterministically sample the ``index``-th configuration."""
    rng = make_rng(seed, "conformance-fuzz", index)
    algorithm = ["blind_gossip", "push_pull", "ppush", "bit_convergence"][
        int(rng.integers(0, 4))
    ]
    if algorithm == "blind_gossip":
        family = BLIND_GOSSIP_FAMILIES[int(rng.integers(0, len(BLIND_GOSSIP_FAMILIES)))]
        n = int(rng.integers(8, 21))
    elif algorithm == "bit_convergence":
        family = FAMILY_ORDER[int(rng.integers(0, len(FAMILY_ORDER)))]
        n = int(rng.integers(8, 17))
    else:
        family = FAMILY_ORDER[int(rng.integers(0, len(FAMILY_ORDER)))]
        n = int(rng.integers(8, 25))
    tau = [None, None, 1, 2, 3, 5][int(rng.integers(0, 6))]

    roll = rng.random()
    fault: dict | None
    if roll < 0.30:
        fault = None
    elif roll < 0.40:
        # Open-world membership: never for bit convergence (no tier
        # implements a reset hook, and a join must bring fresh state).
        if algorithm == "bit_convergence":
            fault = None
        elif rng.random() < 0.5:
            fault = {
                "kind": "membership",
                "events": int(rng.integers(3, 9)),
                "last": int(rng.integers(8, 25)),
                "absent": int(rng.integers(0, max(1, n // 6) + 1)),
                "clean": 0.5,
            }
        else:
            fault = {
                "kind": "assassin",
                "period": int(rng.integers(4, 9)),
                "kills": int(rng.integers(1, 3)),
            }
    elif roll < 0.55:
        fault = {"kind": "drop", "p": float([0.1, 0.3][int(rng.integers(0, 2))])}
    elif roll < 0.65:
        if algorithm in ("ppush", "bit_convergence"):
            fault = {"kind": "tagflip", "q": 0.05}
        else:
            fault = None  # b = 0 algorithms advertise nothing to corrupt
    elif roll < 0.80:
        count = int(rng.integers(1, 3))
        windows = []
        start = int(rng.integers(2, 10))
        for _ in range(count):
            end = start + int(rng.integers(1, 8))
            windows.append([int(rng.integers(0, 8)), start, end])
            # Keep windows disjoint in time: two draws may land on the same
            # node (ids are folded mod n downstream), and overlapping
            # windows for one node are rejected at plan construction.
            start = end + 1 + int(rng.integers(0, 3))
        fault = {"kind": "crash", "windows": windows}
        if algorithm == "bit_convergence":
            # No tier implements a bit-convergence reset hook; rejoin with
            # frozen state instead (safe: the algorithm is monotone).
            fault["reset"] = False
    elif roll < 0.90:
        if algorithm == "bit_convergence":
            # The convergence target is per-seed state a permanently
            # crashed node may hold exclusively; skip.
            fault = None
        else:
            fault = {
                "kind": "perma",
                "rank": int(rng.integers(0, 6)),
                "start": int(rng.integers(2, 7)),
            }
    else:
        start = int(rng.integers(2, 8))
        fault = {
            "kind": "mixed",
            "windows": [[int(rng.integers(0, 8)), start, start + int(rng.integers(2, 6))]],
            "p": 0.1,
        }
        if algorithm == "bit_convergence":
            fault["reset"] = False

    activation = "staggered" if fault is None and rng.random() < 0.25 else "sync"

    engine, delta, scheduler = "sync", 1, "random"
    open_world = fault is not None and fault["kind"] in ("membership", "assassin")
    # The event tier rejects membership plans by contract; keep
    # open-world configurations on the synchronous tiers.
    if algorithm in ASYNC_ALGORITHMS and not open_world and rng.random() < 0.30:
        engine = "async"
        delta = int([1, 2, 4, 8][int(rng.integers(0, 4))])
        scheduler = SCHEDULER_NAMES[int(rng.integers(0, len(SCHEDULER_NAMES)))]
        n = min(n, 16)  # event replays are per-node-per-tick; keep them small

    return FuzzConfig(
        family=family,
        n=n,
        algorithm=algorithm,
        tau=tau,
        fault=fault,
        activation=activation,
        seed=_int_seed(seed, "conformance-config", index),
        engine=engine,
        delta=delta,
        scheduler=scheduler,
    )


# -- shrinking -----------------------------------------------------------------


def _shrink_candidates(cfg: FuzzConfig) -> list[FuzzConfig]:
    """Simpler variants of ``cfg``, most aggressive first."""
    out: list[FuzzConfig] = []

    def variant(**kw) -> None:
        out.append(FuzzConfig(**{**cfg.to_dict(), **kw}))

    if cfg.engine == "async":
        variant(engine="sync", delta=1, scheduler="random")
        if cfg.delta > 1:
            variant(delta=1)
        if cfg.scheduler != "random":
            variant(scheduler="random")
    if cfg.fault is not None:
        variant(fault=None)
        if cfg.fault.get("kind") == "mixed":
            variant(fault={"kind": "drop", "p": cfg.fault["p"]})
            variant(fault={"kind": "crash", "windows": cfg.fault["windows"]})
        if cfg.fault.get("kind") == "crash" and len(cfg.fault["windows"]) > 1:
            variant(fault={"kind": "crash", "windows": cfg.fault["windows"][:1]})
        # Shrink toward the closed world: fewer membership events, no
        # initially absent slots, a single-victim assassin.
        if cfg.fault.get("kind") == "membership":
            if int(cfg.fault.get("absent", 0)) > 0:
                variant(fault={**cfg.fault, "absent": 0})
            if int(cfg.fault["events"]) > 1:
                variant(fault={**cfg.fault, "events": max(1, int(cfg.fault["events"]) // 2)})
        if cfg.fault.get("kind") == "assassin" and int(cfg.fault["kills"]) > 1:
            variant(fault={**cfg.fault, "kills": 1})
    if cfg.tau is not None:
        variant(tau=None)
    if cfg.activation != "sync":
        variant(activation="sync")
    if cfg.n > 8:
        variant(n=8)
        if cfg.n > 12:
            variant(n=max(8, cfg.n // 2))
    fams = (
        BLIND_GOSSIP_FAMILIES if cfg.algorithm == "blind_gossip" else FAMILY_ORDER
    )
    idx = fams.index(cfg.family) if cfg.family in fams else 0
    for simpler in fams[:idx]:
        variant(family=simpler)
    return out


def shrink(
    cfg: FuzzConfig,
    fails: Callable[[FuzzConfig], bool],
    *,
    max_steps: int = 40,
) -> FuzzConfig:
    """Greedy deterministic shrink: adopt any simpler variant that still fails.

    ``fails(config) -> bool`` is the failure oracle (normally
    ``lambda c: run_config(c).failed``); the loop ends when no candidate
    fails or ``max_steps`` oracle calls were spent.
    """
    current = cfg
    budget = max_steps
    improved = True
    while improved and budget > 0:
        improved = False
        for cand in _shrink_candidates(current):
            if budget <= 0:
                break
            budget -= 1
            if fails(cand):
                current = cand
                improved = True
                break
    return current


# -- fuzz session --------------------------------------------------------------


def fuzz(
    budget: int,
    seed: int,
    *,
    log: Callable[[str], None] | None = None,
    shrink_failures: bool = True,
) -> FuzzSummary:
    """Run ``budget`` sampled configurations; shrink and report failures."""
    acceptance = AcceptanceStats()
    failures: list[ConfigReport] = []
    ratios: list[float] = []
    for i in range(budget):
        cfg = sample_config(seed, i)
        report = run_config(cfg, acceptance)
        if report.log_ratio is not None:
            ratios.append(report.log_ratio)
        if report.failed:
            if shrink_failures:
                minimal = shrink(cfg, lambda c: run_config(c).failed)
                report = run_config(minimal)
                if not report.failed:  # flaky boundary: keep the original
                    report = run_config(cfg)
            failures.append(report)
            if log:
                log(f"[{i + 1}/{budget}] FAIL {report.config.to_dict()}")
        elif log and (i + 1) % 25 == 0:
            log(f"[{i + 1}/{budget}] ok")

    pooled = float(np.mean(ratios)) if ratios else 0.0
    v = acceptance.violation()
    if v is not None:
        failures.append(
            ConfigReport(config=sample_config(seed, 0), violations=[v])
        )
    if len(ratios) >= 20 and abs(pooled) > POOLED_LOG_RATIO_MAX:
        failures.append(
            ConfigReport(
                config=sample_config(seed, 0),
                mismatches=[
                    f"pooled reference/vectorized log-median-ratio "
                    f"{pooled:.3f} over {len(ratios)} configs exceeds "
                    f"±{POOLED_LOG_RATIO_MAX:.3f}"
                ],
            )
        )
    return FuzzSummary(
        configs=budget,
        failures=failures,
        acceptance=acceptance,
        pooled_log_ratio=pooled,
        pooled_samples=len(ratios),
    )


def write_repro(report: ConfigReport, path: str | Path) -> None:
    """Write a failing configuration as a replayable JSON repro file."""
    Path(path).write_text(
        json.dumps(
            {"config": report.config.to_dict(), "failures": report.failure_lines()},
            indent=2,
            allow_nan=False,
        )
        + "\n"
    )


def replay_file(path: str | Path) -> ConfigReport:
    """Re-run the configuration of a repro file (fresh acceptance pool)."""
    data = json.loads(Path(path).read_text())
    cfg = FuzzConfig.from_dict(data["config"])
    return run_config(cfg)
