"""Averaging gossip (distributed data aggregation): a future-work extension.

The paper's conclusion lists *data aggregation* among the problems the
mobile telephone model opens.  Pairwise averaging gossip fits the model
natively: the classic protocol averages the values of exactly one pair at
a time — which is precisely what a single-connection round gives us.

* every node holds a real value (a sensor reading, a count);
* connection decisions are blind-gossip style (fair coin; uniform
  neighbor);
* a connected pair replaces both values with their mean — the global sum
  is conserved, so every value converges to the network average;
* we declare convergence when the maximum absolute deviation from the
  true mean drops below a tolerance ``eps``.

Convergence speed is governed by the topology's spectral gap (each
averaging step contracts the value variance along the connected edge), so
experiment E17 measures convergence time against the expansion of the
graph family — reusing the paper's α machinery on a new problem, exactly
as the conclusion proposes.
"""

from __future__ import annotations

import numpy as np

from repro.core.payload import Message, UID
from repro.core.protocol import NodeProtocol, RoundView
from repro.core.vectorized import VectorizedAlgorithm

__all__ = ["AveragingNode", "AveragingVectorized", "make_averaging_nodes"]


class AveragingNode(NodeProtocol):
    """Per-node averaging gossip (reference semantics).

    The paired exchange is implemented symmetrically: both endpoints
    compose their current value, then both adopt the mean on delivery.
    """

    tag_length = 0

    def __init__(self, node_id: int, uid: UID, value: float):
        super().__init__(node_id, uid)
        self.value = float(value)

    def decide(self, view: RoundView) -> int | None:
        if view.neighbors.size == 0 or view.rng.random() < 0.5:
            return None
        return int(view.neighbors[view.rng.integers(0, view.neighbors.size)])

    def compose(self, peer: int) -> Message:
        # A real value fits comfortably in the polylog extra-bit budget at
        # any reasonable quantization; we declare 64 bits.
        return Message(extra_bits=64, data=self.value)

    def deliver(self, peer: int, message: Message) -> None:
        self.value = (self.value + float(message.data)) / 2.0


def make_averaging_nodes(uid_space, values: np.ndarray) -> list[AveragingNode]:
    """One node per vertex holding ``values[v]``."""
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (len(uid_space),):
        raise ValueError("need one value per vertex")
    return [
        AveragingNode(v, uid_space.uid_of(v), float(values[v]))
        for v in range(len(uid_space))
    ]


class AveragingVectorized(VectorizedAlgorithm):
    """Array-kernel averaging gossip.

    Parameters
    ----------
    values
        Initial per-node values.
    eps
        Convergence tolerance: done when ``max|value - mean| < eps``.
    """

    tag_length = 0

    def __init__(self, values: np.ndarray, eps: float = 1e-3):
        self._values = np.asarray(values, dtype=np.float64)
        if self._values.ndim != 1 or self._values.size == 0:
            raise ValueError("values must be a non-empty 1-D array")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = float(eps)

    class State:
        __slots__ = ("values", "mean")

        def __init__(self, values: np.ndarray):
            self.values = values
            self.mean = float(values.mean())

    def init_state(self, n: int, rng: np.random.Generator) -> "AveragingVectorized.State":
        if self._values.shape != (n,):
            raise ValueError("values must have one entry per vertex")
        return self.State(self._values.copy())

    def tags(self, state, local_rounds, active, rng) -> np.ndarray:
        return np.zeros(state.values.shape[0], dtype=np.int64)

    def senders(self, state, tags, local_rounds, active, rng) -> np.ndarray:
        return rng.random(state.values.shape[0]) < 0.5

    def exchange(self, state, proposers: np.ndarray, acceptors: np.ndarray) -> None:
        mean = (state.values[proposers] + state.values[acceptors]) / 2.0
        state.values[proposers] = mean
        state.values[acceptors] = mean

    def converged(self, state) -> bool:
        return bool(np.abs(state.values - state.mean).max() < self.eps)

    def max_deviation(self, state) -> float:
        """Current worst-case error against the true mean."""
        return float(np.abs(state.values - state.mean).max())
