"""Leader-based consensus: a future-work extension.

The paper's conclusion lists *consensus* among the problems the mobile
telephone model opens, and its introduction motivates leader election
precisely as the primitive that "simplif[ies] tasks such as event
ordering, agreement, and synchronization".  This module closes that loop:
single-value consensus built directly on non-synchronized bit convergence.

Construction: each node proposes a value and attaches it to its ID pair;
the smallest-pair state that bit convergence already propagates now
carries ``(tag, UID, proposal)``.  When the network stabilizes on one
pair, every node's *decision* is the proposal attached to it.

Properties (asserted in the test suite):

* **Agreement** — all decisions equal, since they are read off the unique
  stabilized pair;
* **Validity** — the decided value is the winner's original proposal
  (values are only ever copied, never invented);
* **Termination** — inherited from Theorem VIII.2's stabilization bound;
* **Self-stabilization** — state corruption or component merges re-run
  the underlying convergence (failure-injection tests).

Payload cost: one UID + the k-bit tag + the value per connection — within
the Section IV budget for polylog-sized values.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._pairs import pair_less, pair_min_inplace
from repro.algorithms.async_bit_convergence import (
    AsyncBitConvergenceNode,
    AsyncBitConvergenceVectorized,
)
from repro.algorithms.bit_convergence import BitConvergenceConfig, draw_id_tags
from repro.core.payload import IDPair, Message, UID

__all__ = ["ConsensusNode", "ConsensusVectorized", "make_consensus_nodes"]


class ConsensusNode(AsyncBitConvergenceNode):
    """Per-node consensus (reference semantics): a value rides the pair.

    ``decision`` returns the value attached to the currently-held smallest
    pair — meaningful once the underlying election stabilizes.
    """

    def __init__(self, node_id, uid, id_tag, config, proposal):
        super().__init__(node_id, uid, id_tag, config)
        self._carried = proposal

    @property
    def decision(self):
        """The value attached to the currently-held pair."""
        return self._carried

    def compose(self, peer: int) -> Message:
        base = super().compose(peer)
        return Message(
            uids=base.uids,
            extra_bits=base.extra_bits + 64,
            data=(base.data, self._carried),
        )

    def deliver(self, peer: int, message: Message) -> None:
        data = message.data
        if not (isinstance(data, tuple) and len(data) == 2):
            return
        pair, value = data
        if isinstance(pair, IDPair) and pair < self._smallest:
            self._smallest = pair
            self._carried = value


def make_consensus_nodes(
    uid_space,
    config: BitConvergenceConfig,
    proposals,
    seed: int | None = None,
    *,
    unique_tags: bool = False,
) -> list[ConsensusNode]:
    """One node per vertex with freshly drawn ID tags and given proposals."""
    n = len(uid_space)
    proposals = list(proposals)
    if len(proposals) != n:
        raise ValueError("need one proposal per vertex")
    tags = draw_id_tags(n, config, seed, unique=unique_tags)
    return [
        ConsensusNode(v, uid_space.uid_of(v), int(tags[v]), config, proposals[v])
        for v in range(n)
    ]


class ConsensusVectorized(AsyncBitConvergenceVectorized):
    """Array-kernel consensus: async bit convergence carrying proposals.

    Parameters
    ----------
    uid_keys
        Simulator-internal UID keys per vertex.
    config
        Shared :class:`~repro.algorithms.bit_convergence.BitConvergenceConfig`.
    proposals
        One value per vertex (any numeric dtype); the decision is the
        proposal of the node whose pair wins the election.
    tag_seed, unique_tags
        As in the base algorithm.
    """

    def __init__(
        self,
        uid_keys: np.ndarray,
        config: BitConvergenceConfig,
        proposals: np.ndarray,
        *,
        tag_seed: int | None = None,
        unique_tags: bool = False,
    ):
        super().__init__(
            uid_keys, config, tag_seed=tag_seed, unique_tags=unique_tags
        )
        self._proposals = np.asarray(proposals).copy()
        if self._proposals.ndim != 1:
            raise ValueError("proposals must be a 1-D array")

    class State(AsyncBitConvergenceVectorized.State):
        __slots__ = ("carried",)

        def __init__(self, ctag, ckey, pos, target_tag, target_key, carried=None):
            super().__init__(ctag, ckey, pos, target_tag, target_key)
            # ``None`` only transiently, while the base init_state builds
            # the pair state; init_state below attaches the proposals.
            self.carried = carried

    def init_state(self, n: int, rng: np.random.Generator):
        if self._proposals.shape != (n,):
            raise ValueError("need one proposal per vertex")
        state = super().init_state(n, rng)  # builds self.State (carried=None)
        state.carried = self._proposals.copy()
        return state

    def exchange(self, state, proposers: np.ndarray, acceptors: np.ndarray) -> None:
        # Carry the attached value alongside the pair: whoever adopts the
        # other endpoint's (smaller) pair adopts its value too.
        ptag, pkey = state.ctag[proposers].copy(), state.ckey[proposers].copy()
        pval = state.carried[proposers].copy()
        atag, akey = state.ctag[acceptors].copy(), state.ckey[acceptors].copy()
        aval = state.carried[acceptors].copy()

        adopt_a = pair_less(ptag, pkey, atag, akey)  # acceptors adopting proposers'
        sel = acceptors[adopt_a]
        state.ctag[sel] = ptag[adopt_a]
        state.ckey[sel] = pkey[adopt_a]
        state.carried[sel] = pval[adopt_a]

        adopt_p = pair_less(atag, akey, ptag, pkey)
        sel = proposers[adopt_p]
        state.ctag[sel] = atag[adopt_p]
        state.ckey[sel] = akey[adopt_p]
        state.carried[sel] = aval[adopt_p]

    def decisions(self, state) -> np.ndarray:
        """Current decision per node (meaningful once converged)."""
        return state.carried

    def decided(self, state) -> bool:
        """Alias of :meth:`converged` in consensus vocabulary."""
        return self.converged(state)
