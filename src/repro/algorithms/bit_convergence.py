"""Bit convergence leader election (paper Section VII; ``b = 1``, any ``τ ≥ 1``).

Structure (verbatim from the paper):

* each node ``u`` draws a random **ID tag** ``t_u`` of ``k = ⌈β·log n⌉``
  bits and forms the *ID pair* ``(I_u, t_u)`` with its UID;
* rounds are partitioned into **groups** of ``2·log Δ`` rounds, and groups
  into **phases** of ``k`` groups (group ``i`` of a phase is mapped to bit
  position ``i`` of the ID tags, most significant first);
* at the beginning of each phase a node commits the smallest ID pair it
  has encountered (ordered by tag, ties by UID) and sets
  ``leader ← committed.uid``;
* during group ``i``, a node advertises bit ``i`` of its committed tag and
  runs PPUSH with the 0-bit nodes as senders: a 0-node proposes to a
  uniformly random neighbor advertising 1; connected nodes trade committed
  ID pairs; received pairs are buffered and only committed at the next
  phase boundary.

Theorem VII.2: stabilizes in ``O((1/α)·Δ^{1/τ̂}·τ̂·log⁵ n)`` rounds w.h.p.,
``τ̂ = min(τ, log Δ)``.  The algorithm needs no knowledge of ``τ``; it
*does* assume synchronized starts (all nodes activate in round 1) — the
Section VIII variant (:mod:`repro.algorithms.async_bit_convergence`)
removes that assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.algorithms._pairs import pair_less, pair_min_inplace
from repro.analysis.bounds import group_length, tag_bits
from repro.core.batched import BatchedAlgorithm
from repro.core.payload import IDPair, Message, UID, UIDSpace
from repro.core.protocol import LeaderElectionProtocol, RoundView
from repro.core.vectorized import VectorizedAlgorithm
from repro.util.bits import bit_at
from repro.util.rng import make_rng

__all__ = [
    "BitConvergenceConfig",
    "BitConvergenceNode",
    "BitConvergenceVectorized",
    "BitConvergenceBatched",
    "make_bit_convergence_nodes",
    "draw_id_tags",
]


@dataclass(frozen=True)
class BitConvergenceConfig:
    """Static parameters of the bit convergence algorithms.

    Parameters
    ----------
    n_upper
        The polynomial upper bound ``N`` on the network size every node is
        given (paper Section IV).
    delta_bound
        Upper bound on the maximum degree ``Δ``, used for the group length
        ``2·log Δ``.  ``N`` is always a valid (loose) choice.
    beta
        Tag-width multiplier: ``k = ⌈β·log N⌉`` bits.
    group_multiplier
        Group length is ``group_multiplier · log Δ`` rounds.  The paper
        fixes 2 (guaranteeing a ``τ̂``-stable stretch inside every group);
        other values exist solely for the ablation experiment A1.
    """

    n_upper: int
    delta_bound: int
    beta: float = 2.0
    group_multiplier: int = 2

    def __post_init__(self):
        if self.n_upper < 2:
            raise ValueError("n_upper must be >= 2")
        if self.delta_bound < 1:
            raise ValueError("delta_bound must be >= 1")
        if self.group_multiplier < 1:
            raise ValueError("group_multiplier must be >= 1")
        if self.k > 62:
            raise ValueError("tag width k > 62 bits unsupported by int64 kernels")

    @property
    def k(self) -> int:
        """Tag width in bits: ``⌈β·log N⌉``."""
        return tag_bits(self.n_upper, self.beta)

    @property
    def group_len(self) -> int:
        """Rounds per group: ``group_multiplier · log Δ`` (paper: 2·log Δ)."""
        base = group_length(self.delta_bound) // 2  # = log Δ (>= 1)
        return max(2, self.group_multiplier * base)

    @property
    def phase_len(self) -> int:
        """Rounds per phase: ``k`` groups."""
        return self.k * self.group_len

    def position(self, local_round: int) -> int:
        """Bit position (1-indexed, MSB first) active in ``local_round``."""
        if local_round < 1:
            raise ValueError("rounds are 1-indexed")
        group_index = (local_round - 1) // self.group_len
        return (group_index % self.k) + 1

    def is_phase_end(self, local_round: int) -> bool:
        """True when ``local_round`` is the last round of a phase."""
        return local_round % self.phase_len == 0


def draw_id_tags(
    n: int, config: BitConvergenceConfig, seed: int | None, *, unique: bool = False
) -> np.ndarray:
    """Uniform random ``k``-bit ID tags for ``n`` nodes.

    The paper draws tags from ``1..n^β``; we use the bit-equivalent
    ``[0, 2^k)`` universe.

    With ``unique=False`` (the algorithm as written) tag collisions are
    possible.  A collision *at the minimum tag value* is fatal to bit
    convergence: the colliding pairs have identical bits in every
    position, so the 1-bit advertisements can never separate them and the
    losing holder never learns the winning pair.  The paper folds this
    into its failure probability — its analysis explicitly "begin[s] by
    assuming that at the beginning of the execution each node selects a
    unique ID tag", an event whose probability is controlled by ``β``.
    ``unique=True`` samples *distinct* tags (a uniform random subset),
    i.e. conditions on exactly that event; the experiment harness uses it
    so that no measurement is contaminated by the (well-understood)
    collision failure mode.
    """
    rng = make_rng(seed, "id-tags")
    space = 1 << config.k
    if not unique:
        return rng.integers(0, space, size=n, dtype=np.int64)
    if n > space:
        raise ValueError(f"cannot draw {n} unique tags from a {space}-tag space")
    if space <= 1 << 24:
        return rng.choice(space, size=n, replace=False).astype(np.int64)
    # Large spaces: rejection-sample distinct values.
    seen: set[int] = set()
    out = np.empty(n, dtype=np.int64)
    filled = 0
    while filled < n:
        cand = rng.integers(0, space, size=2 * (n - filled), dtype=np.int64)
        for c in cand:
            ci = int(c)
            if ci not in seen:
                seen.add(ci)
                out[filled] = ci
                filled += 1
                if filled == n:
                    break
    return out


class BitConvergenceNode(LeaderElectionProtocol):
    """Per-node bit convergence state machine (reference semantics)."""

    tag_length = 1

    def __init__(self, node_id: int, uid: UID, id_tag: int, config: BitConvergenceConfig):
        super().__init__(node_id, uid)
        self.config = config
        if not 0 <= id_tag < (1 << config.k):
            raise ValueError(f"id_tag {id_tag} does not fit in k={config.k} bits")
        self._committed = IDPair(uid, int(id_tag))
        self._pending = self._committed  # best pair seen, applied at phase end
        self._local_round = 0

    @property
    def leader(self) -> UID:
        return self._committed.uid

    @property
    def committed_pair(self) -> IDPair:
        """The currently committed smallest ID pair ``(Î_u, t̂_u)``."""
        return self._committed

    @property
    def pending_pair(self) -> IDPair:
        """Best pair encountered so far (commits at the next phase boundary)."""
        return self._pending

    def _current_bit(self, local_round: int) -> int:
        i = self.config.position(local_round)
        return bit_at(self._committed.tag, i, self.config.k)

    def choose_tag(self, local_round: int, rng: np.random.Generator) -> int:
        self._local_round = local_round
        return self._current_bit(local_round)

    def decide(self, view: RoundView) -> int | None:
        if self._current_bit(view.local_round) == 1:
            return None  # 1-advertisers only receive
        candidates = view.neighbors[view.neighbor_tags == 1]
        if candidates.size == 0:
            return None
        return int(candidates[view.rng.integers(0, candidates.size)])

    def compose(self, peer: int) -> Message:
        return Message(
            uids=(self._committed.uid,),
            extra_bits=self.config.k,
            data=self._committed,
        )

    def deliver(self, peer: int, message: Message) -> None:
        pair = message.data
        if isinstance(pair, IDPair) and pair < self._pending:
            self._pending = pair

    def end_round(self) -> None:
        # Commit at the phase boundary: the paper's "beginning of each
        # phase" update is equivalently applied at the end of the last
        # round of the previous phase.
        if self.config.is_phase_end(self._local_round):
            self._committed = self._pending


def make_bit_convergence_nodes(
    uid_space: UIDSpace,
    config: BitConvergenceConfig,
    seed: int | None = None,
    *,
    unique_tags: bool = False,
) -> list[BitConvergenceNode]:
    """One node per vertex with freshly drawn ID tags."""
    tags = draw_id_tags(len(uid_space), config, seed, unique=unique_tags)
    return [
        BitConvergenceNode(v, uid_space.uid_of(v), int(tags[v]), config)
        for v in range(len(uid_space))
    ]


class BitConvergenceVectorized(VectorizedAlgorithm):
    """Array-kernel bit convergence for the vectorized engine."""

    tag_length = 1

    def __init__(
        self,
        uid_keys: np.ndarray,
        config: BitConvergenceConfig,
        *,
        tag_seed: int | None = None,
        unique_tags: bool = False,
    ):
        self._keys = np.asarray(uid_keys, dtype=np.int64)
        if np.unique(self._keys).size != self._keys.size:
            raise ValueError("UID keys must be unique")
        self.config = config
        self._tag_seed = tag_seed
        self._unique_tags = unique_tags

    class State:
        __slots__ = ("ctag", "ckey", "ptag", "pkey", "target_tag", "target_key")

        def __init__(self, ctag, ckey, target_tag, target_key):
            self.ctag = ctag
            self.ckey = ckey
            self.ptag = ctag.copy()
            self.pkey = ckey.copy()
            self.target_tag = target_tag
            self.target_key = target_key

    def init_state(self, n: int, rng: np.random.Generator):
        if self._keys.shape != (n,):
            raise ValueError("uid_keys must have one key per vertex")
        tags = draw_id_tags(n, self.config, self._tag_seed, unique=self._unique_tags)
        # The eventual winner is the lexicographically smallest (tag, key).
        order = np.lexsort((self._keys, tags))
        win = order[0]
        return self.State(
            tags.copy(), self._keys.copy(), int(tags[win]), int(self._keys[win])
        )

    # -- round hooks -----------------------------------------------------

    def _positions(self, local_rounds: np.ndarray) -> np.ndarray:
        gl, k = self.config.group_len, self.config.k
        group_index = (np.maximum(local_rounds, 1) - 1) // gl
        return (group_index % k) + 1

    def tags(self, state, local_rounds, active, rng) -> np.ndarray:
        i = self._positions(local_rounds)
        return (state.ctag >> (self.config.k - i)) & 1

    def senders(self, state, tags, local_rounds, active, rng) -> np.ndarray:
        return tags == 0

    def eligible_flat(self, state, tags, graph, sender_mask, local_rounds):
        # 0-bit senders target neighbors currently advertising 1.
        return tags[graph.indices] == 1

    def exchange(self, state, proposers: np.ndarray, acceptors: np.ndarray) -> None:
        # Both endpoints receive the other's *committed* pair into pending.
        pair_min_inplace(
            state.ptag, state.pkey, acceptors, state.ctag[proposers], state.ckey[proposers]
        )
        pair_min_inplace(
            state.ptag, state.pkey, proposers, state.ctag[acceptors], state.ckey[acceptors]
        )

    def end_round(self, state, round_index, local_rounds, active) -> None:
        boundary = active & (local_rounds % self.config.phase_len == 0)
        if np.any(boundary):
            state.ctag[boundary] = state.ptag[boundary]
            state.ckey[boundary] = state.pkey[boundary]

    def converged(self, state) -> bool:
        t, k = state.target_tag, state.target_key
        return bool(
            ((state.ctag == t) & (state.ckey == k)).all()
            and ((state.ptag == t) & (state.pkey == k)).all()
        )

    def node_done(self, state) -> np.ndarray:
        t, k = state.target_tag, state.target_key
        return (
            (state.ctag == t) & (state.ckey == k)
            & (state.ptag == t) & (state.pkey == k)
        )

    def observable(self, state):
        # An adaptive adversary may watch who already committed the
        # eventual winner's pair.
        return (state.ctag == state.target_tag) & (state.ckey == state.target_key)

    # -- instrumentation ---------------------------------------------------

    def leaders(self, state) -> np.ndarray:
        """Current leader key per node."""
        return state.ckey

    def max_difference_bit(self, state) -> int | None:
        """The paper's ``b_i``: most significant differing committed-tag bit.

        Returns ``None`` (the paper's ``⊥``) when all committed tags agree.
        """
        from repro.util.bits import msb_difference_position

        return msb_difference_position(state.ctag, self.config.k)

    def zero_set_size(self, state) -> int | None:
        """``|S_i|``: nodes with a 0 in position ``b_i`` of their committed tag.

        ``None`` when ``b_i = ⊥``.
        """
        bi = self.max_difference_bit(state)
        if bi is None:
            return None
        bits = (state.ctag >> (self.config.k - bi)) & 1
        return int((bits == 0).sum())


class BitConvergenceBatched(BatchedAlgorithm):
    """Replica-batched bit convergence for the batched engine.

    Replica ``t`` draws its ID tags from trial seed ``seeds[t]`` exactly
    as a single :class:`BitConvergenceVectorized` built with
    ``tag_seed=seeds[t]`` would, so initial states match the per-trial
    engines bit for bit.  Because tags differ per replica, the eventual
    winner (and hence the convergence target) is per-replica state.
    """

    tag_length = 1

    def __init__(
        self,
        uid_keys: np.ndarray,
        config: BitConvergenceConfig,
        *,
        unique_tags: bool = False,
    ):
        self._keys = np.asarray(uid_keys, dtype=np.int64)
        if np.unique(self._keys).size != self._keys.size:
            raise ValueError("UID keys must be unique")
        self.config = config
        self._unique_tags = unique_tags

    class State:
        __slots__ = ("ctag", "ckey", "ptag", "pkey", "target_tag", "target_key")

        def __init__(self, ctag, ckey, target_tag, target_key):
            self.ctag = ctag
            self.ckey = ckey
            self.ptag = ctag.copy()
            self.pkey = ckey.copy()
            self.target_tag = target_tag
            self.target_key = target_key

    def init_state(self, n: int, seeds: np.ndarray) -> "BitConvergenceBatched.State":
        if self._keys.shape != (n,):
            raise ValueError("uid_keys must have one key per vertex")
        T = len(seeds)
        ctag = np.empty((T, n), dtype=np.int64)
        for t in range(T):
            ctag[t] = draw_id_tags(
                n, self.config, int(seeds[t]), unique=self._unique_tags
            )
        ckey = np.tile(self._keys, (T, 1))
        # Per replica, the eventual winner is the lexicographically
        # smallest (tag, key): minimum tag, then minimum key among ties.
        target_tag = ctag.min(axis=1)
        key_of_min = np.where(
            ctag == target_tag[:, None], ckey, np.iinfo(np.int64).max
        )
        target_key = key_of_min.min(axis=1)
        return self.State(ctag, ckey, target_tag, target_key)

    def _positions(self, local_rounds: np.ndarray) -> np.ndarray:
        gl, k = self.config.group_len, self.config.k
        group_index = (np.maximum(local_rounds, 1) - 1) // gl
        return (group_index % k) + 1

    def tags(self, state, local_rounds, active, rng) -> np.ndarray:
        i = self._positions(local_rounds)  # (n,), shared by all replicas
        return (state.ctag >> (self.config.k - i)[None, :]) & 1

    def senders(self, state, tags, local_rounds, active, rng) -> np.ndarray:
        return tags == 0

    def receiver_mask(self, state, tags) -> np.ndarray:
        # 0-bit senders target vertices currently advertising 1.
        return tags == 1

    def exchange(self, state, rep, proposers, acceptors) -> None:
        # Both endpoints receive the other's *committed* pair into
        # pending.  Flat (replica, vertex) indices let the shared
        # pair kernels run over the whole batch at once.
        n = state.ctag.shape[1]
        fp = rep * n + proposers
        fa = rep * n + acceptors
        ptag, pkey = state.ptag.reshape(-1), state.pkey.reshape(-1)
        ctag, ckey = state.ctag.reshape(-1), state.ckey.reshape(-1)
        pair_min_inplace(ptag, pkey, fa, ctag[fp], ckey[fp])
        pair_min_inplace(ptag, pkey, fp, ctag[fa], ckey[fa])

    def end_round(self, state, round_index, local_rounds, active, live) -> None:
        # Committing in a converged replica copies the target over
        # itself, so no live-mask is needed for correctness.
        boundary = active & (local_rounds % self.config.phase_len == 0)
        if np.any(boundary):
            state.ctag[:, boundary] = state.ptag[:, boundary]
            state.ckey[:, boundary] = state.pkey[:, boundary]

    def converged(self, state) -> np.ndarray:
        t = state.target_tag[:, None]
        k = state.target_key[:, None]
        return (
            ((state.ctag == t) & (state.ckey == k)).all(axis=1)
            & ((state.ptag == t) & (state.pkey == k)).all(axis=1)
        )

    def node_done(self, state) -> np.ndarray:
        t = state.target_tag[:, None]
        k = state.target_key[:, None]
        return (
            (state.ctag == t) & (state.ckey == k)
            & (state.ptag == t) & (state.pkey == k)
        )

    def observable(self, state) -> np.ndarray:
        return (state.ctag == state.target_tag[:, None]) & (
            state.ckey == state.target_key[:, None]
        )

    def leaders(self, state) -> np.ndarray:
        """Current leader key per node per replica."""
        return state.ckey
