"""Non-synchronized bit convergence (paper Section VIII).

Removes the synchronized-start assumption of Section VII at the price of a
slightly wider advertisement: ``b = ⌈log k⌉ + 1 = log log n + O(1)`` bits.

Structure (verbatim from the paper):

* nodes keep the random ``k``-bit ID tags and smallest-ID-pair tracking of
  the original algorithm, but group boundaries follow each node's *local*
  round counter (groups of ``2·log Δ`` local rounds) and are not aligned
  across nodes;
* at the beginning of each of its groups, a node picks a bit position
  ``i ∈ [k]`` uniformly at random and, for the whole group, advertises
  ``i`` together with the bit in position ``i`` of the tag of its current
  smallest ID pair;
* a node advertising a 1-bit only receives; a node advertising a 0-bit
  proposes, each round, to a uniformly random neighbor that is advertising
  *the same position* with bit 1 (if any);
* connected nodes trade smallest ID pairs and adopt the received pair
  immediately if smaller (no phase-boundary buffering — there are no
  global phases).

Theorem VIII.2: stabilizes in ``O((1/α)·Δ^{1/τ̂}·τ̂·log⁸ n)`` rounds after
the last activation.  The algorithm is *self-stabilizing*: joining
components that ran for arbitrary durations still converge in the same
time, which the constructor's ``initial_pairs`` hook lets experiments set
up directly.

Implementation note: the paper says a node "advertises the position i, as
well as the value of the bit in position i of the ID tag of its current
smallest ID pair".  We read "current" as *live* — the advertised bit
tracks the node's smallest pair within a group if it changes mid-group
(the position stays fixed).  Lemma VIII.1 (settled prefix bits never
regress) makes the two readings equivalent for the bits the analysis
tracks; the live reading only speeds up propagation of fresher bits.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms._pairs import pair_less, pair_min_inplace
from repro.algorithms.bit_convergence import BitConvergenceConfig, draw_id_tags
from repro.core.payload import IDPair, Message, UID, UIDSpace
from repro.core.protocol import LeaderElectionProtocol, RoundView
from repro.core.vectorized import VectorizedAlgorithm
from repro.util.bits import bit_at

__all__ = [
    "async_tag_length",
    "AsyncBitConvergenceNode",
    "AsyncBitConvergenceVectorized",
    "make_async_bit_convergence_nodes",
]


def async_tag_length(k: int) -> int:
    """Bits needed to advertise ``(position, bit)``: ``⌈log(2k)⌉ = ⌈log k⌉+1``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return max(1, math.ceil(math.log2(2 * k)))


def _encode_tag(position: int, bit: int) -> int:
    """Pack a 1-indexed position and a bit into the advertised tag."""
    return (position - 1) * 2 + bit


def _decode_positions(tags: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unpack advertised tags into (1-indexed positions, bits)."""
    return (tags >> 1) + 1, tags & 1


class AsyncBitConvergenceNode(LeaderElectionProtocol):
    """Per-node non-synchronized bit convergence (reference semantics)."""

    def __init__(self, node_id: int, uid: UID, id_tag: int, config: BitConvergenceConfig):
        super().__init__(node_id, uid)
        self.config = config
        self.tag_length = async_tag_length(config.k)
        if not 0 <= id_tag < (1 << config.k):
            raise ValueError(f"id_tag {id_tag} does not fit in k={config.k} bits")
        self._smallest = IDPair(uid, int(id_tag))
        self._position = 1  # bit position advertised this group

    @property
    def leader(self) -> UID:
        return self._smallest.uid

    @property
    def smallest_pair(self) -> IDPair:
        """The node's current smallest ID pair."""
        return self._smallest

    def _my_bit(self) -> int:
        return bit_at(self._smallest.tag, self._position, self.config.k)

    def choose_tag(self, local_round: int, rng: np.random.Generator) -> int:
        if (local_round - 1) % self.config.group_len == 0:
            self._position = int(rng.integers(1, self.config.k + 1))
        return _encode_tag(self._position, self._my_bit())

    def decide(self, view: RoundView) -> int | None:
        if self._my_bit() == 1:
            return None  # 1-advertisers only receive
        n_pos, n_bit = _decode_positions(view.neighbor_tags)
        candidates = view.neighbors[(n_pos == self._position) & (n_bit == 1)]
        if candidates.size == 0:
            return None
        return int(candidates[view.rng.integers(0, candidates.size)])

    def compose(self, peer: int) -> Message:
        return Message(
            uids=(self._smallest.uid,),
            extra_bits=self.config.k,
            data=self._smallest,
        )

    def deliver(self, peer: int, message: Message) -> None:
        pair = message.data
        if isinstance(pair, IDPair) and pair < self._smallest:
            self._smallest = pair  # immediate adoption; no phase buffering


def make_async_bit_convergence_nodes(
    uid_space: UIDSpace,
    config: BitConvergenceConfig,
    seed: int | None = None,
    *,
    unique_tags: bool = False,
) -> list[AsyncBitConvergenceNode]:
    """One node per vertex with freshly drawn ID tags."""
    tags = draw_id_tags(len(uid_space), config, seed, unique=unique_tags)
    return [
        AsyncBitConvergenceNode(v, uid_space.uid_of(v), int(tags[v]), config)
        for v in range(len(uid_space))
    ]


class AsyncBitConvergenceVectorized(VectorizedAlgorithm):
    """Array-kernel non-synchronized bit convergence.

    Parameters
    ----------
    uid_keys
        Simulator-internal UID keys per vertex.
    config
        Shared :class:`~repro.algorithms.bit_convergence.BitConvergenceConfig`.
    tag_seed
        Seed for drawing fresh ID tags (ignored if ``initial_pairs`` given).
    unique_tags
        Draw distinct ID tags, conditioning on the paper's w.h.p.
        uniqueness event (see
        :func:`repro.algorithms.bit_convergence.draw_id_tags`).
    initial_pairs
        Optional ``(tags, keys)`` arrays representing each node's current
        smallest ID pair from an arbitrary prior execution — the
        self-stabilization entry point used by experiment E9.
    """

    def __init__(
        self,
        uid_keys: np.ndarray,
        config: BitConvergenceConfig,
        *,
        tag_seed: int | None = None,
        initial_pairs: tuple[np.ndarray, np.ndarray] | None = None,
        unique_tags: bool = False,
    ):
        self._keys = np.asarray(uid_keys, dtype=np.int64)
        self.config = config
        self.tag_length = async_tag_length(config.k)
        self._tag_seed = tag_seed
        self._initial_pairs = initial_pairs
        self._unique_tags = unique_tags

    class State:
        __slots__ = ("ctag", "ckey", "pos", "target_tag", "target_key")

        def __init__(self, ctag, ckey, pos, target_tag, target_key):
            self.ctag = ctag
            self.ckey = ckey
            self.pos = pos
            self.target_tag = target_tag
            self.target_key = target_key

    def init_state(self, n: int, rng: np.random.Generator):
        if self._keys.shape != (n,):
            raise ValueError("uid_keys must have one key per vertex")
        if self._initial_pairs is not None:
            ctag = np.asarray(self._initial_pairs[0], dtype=np.int64).copy()
            ckey = np.asarray(self._initial_pairs[1], dtype=np.int64).copy()
            if ctag.shape != (n,) or ckey.shape != (n,):
                raise ValueError("initial_pairs must provide n tags and n keys")
        else:
            ctag = draw_id_tags(n, self.config, self._tag_seed, unique=self._unique_tags)
            ckey = self._keys.copy()
        order = np.lexsort((ckey, ctag))
        win = order[0]
        pos = np.ones(n, dtype=np.int64)
        return self.State(ctag, ckey, pos, int(ctag[win]), int(ckey[win]))

    # -- round hooks --------------------------------------------------------

    def tags(self, state, local_rounds, active, rng) -> np.ndarray:
        gl, k = self.config.group_len, self.config.k
        new_group = active & ((np.maximum(local_rounds, 1) - 1) % gl == 0)
        cnt = int(new_group.sum())
        if cnt:
            state.pos[new_group] = rng.integers(1, k + 1, size=cnt)
        bit = (state.ctag >> (k - state.pos)) & 1
        return (state.pos - 1) * 2 + bit

    def senders(self, state, tags, local_rounds, active, rng) -> np.ndarray:
        return (tags & 1) == 0

    def eligible_flat(self, state, tags, graph, sender_mask, local_rounds):
        # Target must advertise the sender's position with bit 1.
        n_pos, n_bit = _decode_positions(tags[graph.indices])
        row_pos = np.repeat(state.pos, graph.degrees)
        return (n_bit == 1) & (n_pos == row_pos)

    def exchange(self, state, proposers: np.ndarray, acceptors: np.ndarray) -> None:
        # Snapshot both sides first: adoption is immediate and symmetric,
        # so each endpoint must see the other's *pre-round* pair.
        ptag, pkey = state.ctag[proposers].copy(), state.ckey[proposers].copy()
        atag, akey = state.ctag[acceptors].copy(), state.ckey[acceptors].copy()
        pair_min_inplace(state.ctag, state.ckey, acceptors, ptag, pkey)
        pair_min_inplace(state.ctag, state.ckey, proposers, atag, akey)

    def converged(self, state) -> bool:
        t, k = state.target_tag, state.target_key
        return bool(((state.ctag == t) & (state.ckey == k)).all())

    def node_done(self, state) -> np.ndarray:
        t, k = state.target_tag, state.target_key
        return (state.ctag == t) & (state.ckey == k)

    def corrupt_state(self, state, victims, rng) -> None:
        """Give victims adversarial pairs from a fictional prior execution.

        Victims receive *distinct* fresh ID tags not held by any survivor
        — corruption models joining nodes from an arbitrary prior run
        (Section VIII's self-stabilization setting), and the paper's
        w.h.p. tag-uniqueness event is what makes stabilization
        guaranteed rather than merely likely (duplicate tags can make
        position-matched proposals starve).  Keys are fresh draws on the
        simulator's ``[0, 10n)`` scale; the convergence target is
        recomputed over the corrupted state.  (No crash/rejoin
        ``reset_nodes`` is provided: the algorithm is self-stabilizing,
        so "rebooted with arbitrary state" is this same hook.)
        """
        n = state.ctag.shape[0]
        k = self.config.k
        mask = np.zeros(n, dtype=bool)
        mask[victims] = True
        taken = set(state.ctag[~mask].tolist())
        fresh = [t for t in rng.permutation(1 << k).tolist() if t not in taken]
        if len(fresh) < victims.size:
            raise ValueError(
                f"cannot draw {victims.size} distinct fresh tags at k={k}"
            )
        state.ctag[victims] = np.asarray(fresh[: victims.size], dtype=np.int64)
        state.ckey[victims] = rng.integers(0, 10 * n, size=victims.size)
        order = np.lexsort((state.ckey, state.ctag))
        win = order[0]
        state.target_tag = int(state.ctag[win])
        state.target_key = int(state.ckey[win])

    def observable(self, state):
        # An adaptive adversary may watch who already holds the eventual
        # winner's pair.
        return (state.ctag == state.target_tag) & (state.ckey == state.target_key)

    # -- instrumentation ------------------------------------------------------

    def leaders(self, state) -> np.ndarray:
        """Current leader key per node."""
        return state.ckey

    def settled_prefix(self, state) -> int:
        """Longest tag prefix (in bits) on which all nodes agree with the target.

        The quantity Lemma VIII.1 proves monotone: once every node matches
        the minimum tag ``t̂`` on its first ``i`` bits, that agreement is
        permanent.
        """
        k = self.config.k
        for i in range(1, k + 1):
            shift = k - i
            if not ((state.ctag >> shift) == (state.target_tag >> shift)).all():
                return i - 1
        return k
