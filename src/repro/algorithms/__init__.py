"""The paper's algorithms, each in per-node and vectorized form.

===========================  ===========  =====================  ==========
Algorithm                    Tag bits b   Problem                Section
===========================  ===========  =====================  ==========
Blind gossip                 0            leader election        VI
PUSH-PULL                    0            rumor spreading        VI (Cor 6)
PPUSH                        1            rumor spreading        V
Bit convergence              1            leader election        VII
Async bit convergence        log log n    leader election        VIII
Classical PUSH-PULL          —            baselines (classical   related
                                          telephone model)       work
k-gossip (extension)         0            all-to-all gossip      conclusion
Averaging (extension)        0            data aggregation       conclusion
Consensus (extension)        log log n    single-value consensus conclusion
===========================  ===========  =====================  ==========
"""

from repro.algorithms.blind_gossip import (
    BlindGossipNode,
    BlindGossipVectorized,
    BlindGossipBatched,
    make_blind_gossip_nodes,
)
from repro.algorithms.push_pull import (
    PushPullNode,
    PushPullVectorized,
    PushPullBatched,
    make_push_pull_nodes,
)
from repro.algorithms.ppush import (
    PPushNode,
    PPushVectorized,
    PPushBatched,
    make_ppush_nodes,
)
from repro.algorithms.bit_convergence import (
    BitConvergenceConfig,
    BitConvergenceNode,
    BitConvergenceVectorized,
    BitConvergenceBatched,
    make_bit_convergence_nodes,
    draw_id_tags,
)
from repro.algorithms.async_bit_convergence import (
    AsyncBitConvergenceNode,
    AsyncBitConvergenceVectorized,
    make_async_bit_convergence_nodes,
    async_tag_length,
)
from repro.algorithms.k_gossip import (
    KGossipNode,
    KGossipVectorized,
    make_k_gossip_nodes,
)
from repro.algorithms.averaging import (
    AveragingNode,
    AveragingVectorized,
    make_averaging_nodes,
)
from repro.algorithms.consensus import ConsensusVectorized

__all__ = [
    "BlindGossipNode",
    "BlindGossipVectorized",
    "BlindGossipBatched",
    "make_blind_gossip_nodes",
    "PushPullNode",
    "PushPullVectorized",
    "PushPullBatched",
    "make_push_pull_nodes",
    "PPushNode",
    "PPushVectorized",
    "PPushBatched",
    "make_ppush_nodes",
    "BitConvergenceConfig",
    "BitConvergenceNode",
    "BitConvergenceVectorized",
    "BitConvergenceBatched",
    "make_bit_convergence_nodes",
    "draw_id_tags",
    "AsyncBitConvergenceNode",
    "AsyncBitConvergenceVectorized",
    "make_async_bit_convergence_nodes",
    "async_tag_length",
    "KGossipNode",
    "KGossipVectorized",
    "make_k_gossip_nodes",
    "AveragingNode",
    "AveragingVectorized",
    "make_averaging_nodes",
    "ConsensusVectorized",
]
