"""Lexicographic (tag, key) pair operations shared by the bit convergence kernels.

A *smallest ID pair* compares by tag first, tie-breaking by UID key —
exactly the ordering of :class:`repro.core.payload.IDPair`, applied here
to parallel NumPy arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pair_less", "pair_min_inplace", "pairs_all_equal"]


def pair_less(
    tag_a: np.ndarray, key_a: np.ndarray, tag_b: np.ndarray, key_b: np.ndarray
) -> np.ndarray:
    """Elementwise ``(tag_a, key_a) < (tag_b, key_b)`` lexicographically."""
    return (tag_a < tag_b) | ((tag_a == tag_b) & (key_a < key_b))


def pair_min_inplace(
    dst_tag: np.ndarray,
    dst_key: np.ndarray,
    idx: np.ndarray,
    src_tag: np.ndarray,
    src_key: np.ndarray,
) -> None:
    """``dst[idx] = min(dst[idx], src)`` under the pair ordering.

    ``src_tag``/``src_key`` are aligned with ``idx`` (one candidate pair per
    destination index).  ``idx`` must not contain duplicates.
    """
    better = pair_less(src_tag, src_key, dst_tag[idx], dst_key[idx])
    sel = idx[better]
    dst_tag[sel] = src_tag[better]
    dst_key[sel] = src_key[better]


def pairs_all_equal(tag: np.ndarray, key: np.ndarray, t: int, k: int) -> bool:
    """True when every (tag, key) pair equals ``(t, k)``."""
    return bool(((tag == t) & (key == k)).all())
