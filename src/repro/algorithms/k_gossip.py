"""k-gossip (all-to-all rumor spreading): a future-work extension.

The paper's conclusion names gossip among the problems "the model itself
… can be used to study".  This module implements the natural b=0 gossip
strategy in the mobile telephone model:

* every node starts with its own rumor;
* each round every node coin-flips between proposing (to a uniformly
  random neighbor) and receiving, exactly like blind gossip;
* a connection carries **one rumor per direction** — each endpoint picks a
  uniformly random rumor from the set it currently knows (the model's
  O(1)-rumors-per-connection budget);
* complete when every node knows all ``n`` rumors.

This is the classic *random-gossip* dissemination process restricted to
single-connection rounds.  Total rumor copies needed are ``n·(n-1)`` and
each round moves at most ``n`` rumors (≤ n/2 connections × 2 directions),
so ``n - 1`` rounds are an immediate lower bound even on a clique; random
coupon-collector effects and the topology's expansion set the actual
completion time (experiment E16 measures the scaling).
"""

from __future__ import annotations

import numpy as np

from repro.core.payload import Message, UID
from repro.core.protocol import NodeProtocol, RoundView
from repro.core.vectorized import VectorizedAlgorithm

__all__ = ["KGossipNode", "KGossipVectorized", "make_k_gossip_nodes"]


class KGossipNode(NodeProtocol):
    """Per-node k-gossip state machine (reference semantics).

    Rumors are identified by their origin vertex id; the payload ships one
    rumor id plus the origin's UID (within the O(1)-UIDs budget).
    """

    tag_length = 0

    def __init__(self, node_id: int, uid: UID, n: int):
        super().__init__(node_id, uid)
        self.known: set[int] = {node_id}
        self._n = n
        self._rng = np.random.default_rng(abs(hash((node_id, "kgossip"))) % (2**32))

    @property
    def complete(self) -> bool:
        """Whether this node knows every rumor."""
        return len(self.known) == self._n

    def decide(self, view: RoundView) -> int | None:
        if view.neighbors.size == 0 or view.rng.random() < 0.5:
            return None
        return int(view.neighbors[view.rng.integers(0, view.neighbors.size)])

    def compose(self, peer: int) -> Message:
        # One uniformly random known rumor per connection direction.
        pick = int(self._rng.choice(sorted(self.known)))
        return Message(uids=(self.uid,), extra_bits=0, data=("rumor", pick))

    def deliver(self, peer: int, message: Message) -> None:
        data = message.data
        if isinstance(data, tuple) and len(data) == 2 and data[0] == "rumor":
            self.known.add(int(data[1]))


def make_k_gossip_nodes(uid_space) -> list[KGossipNode]:
    """One node per vertex, each starting with its own rumor."""
    n = len(uid_space)
    return [KGossipNode(v, uid_space.uid_of(v), n) for v in range(n)]


class KGossipVectorized(VectorizedAlgorithm):
    """Array-kernel k-gossip for the vectorized engine.

    State is the boolean knowledge matrix ``known[u, r]`` (node ``u``
    knows rumor ``r``), so memory is ``n²`` bits — fine for the sweep
    sizes the experiments use.
    """

    tag_length = 0

    class State:
        __slots__ = ("known", "rng")

        def __init__(self, known: np.ndarray, rng: np.random.Generator):
            self.known = known
            self.rng = rng  # private stream for the per-connection rumor picks

    def init_state(self, n: int, rng: np.random.Generator) -> "KGossipVectorized.State":
        return self.State(np.eye(n, dtype=bool), rng)

    def tags(self, state, local_rounds, active, rng) -> np.ndarray:
        return np.zeros(state.known.shape[0], dtype=np.int64)

    def senders(self, state, tags, local_rounds, active, rng) -> np.ndarray:
        return rng.random(state.known.shape[0]) < 0.5

    @staticmethod
    def _pick_random_known(known: np.ndarray, rows: np.ndarray, rng) -> np.ndarray:
        """One uniformly random known rumor id per row of ``rows``."""
        sub = known[rows]
        counts = sub.sum(axis=1)
        # j-th known rumor per row via the cumulative-rank trick.
        csum = np.cumsum(sub, axis=1)
        j = rng.integers(0, counts)  # counts >= 1 always (own rumor)
        # First column where csum > j.
        return (csum > j[:, None]).argmax(axis=1)

    def exchange(self, state, proposers: np.ndarray, acceptors: np.ndarray) -> None:
        # Snapshot-free: both picks read pre-exchange knowledge because
        # the writes touch disjoint (row, column) pairs per connection.
        from_p = self._pick_random_known(state.known, proposers, state.rng)
        from_a = self._pick_random_known(state.known, acceptors, state.rng)
        state.known[acceptors, from_p] = True
        state.known[proposers, from_a] = True

    def converged(self, state) -> bool:
        return bool(state.known.all())

    def knowledge_count(self, state) -> int:
        """Total (node, rumor) pairs known — monotone progress measure."""
        return int(state.known.sum())
