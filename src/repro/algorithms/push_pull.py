"""PUSH-PULL rumor spreading at ``b = 0`` (paper Section VI, Corollary VI.6).

As the paper notes, blind gossip "directly applied to solve the rumor
spreading problem … describes the classical PUSH-PULL strategy" in the
mobile telephone model with no advertising bits: each node coin-flips
between sending and receiving, sends to a uniform neighbor, and a
connection transfers the rumor in whichever direction helps (PUSH if the
proposer knows it, PULL if the acceptor does).

Corollary VI.6 (the open question from Ghaffari-Newport resolved by this
paper): PUSH-PULL completes w.h.p. in ``O((1/α)·Δ²·log² n)`` rounds with
``b = 0`` and any ``τ ≥ 1``.
"""

from __future__ import annotations

import numpy as np

from repro.core.batched import BatchedAlgorithm
from repro.core.payload import Message, UID
from repro.core.protocol import RoundView, RumorProtocol
from repro.core.vectorized import VectorizedAlgorithm

__all__ = [
    "PushPullNode",
    "PushPullVectorized",
    "PushPullBatched",
    "make_push_pull_nodes",
]


#: Rumor transfer directions: over a connection (proposer, acceptor),
#: "push" lets the rumor cross proposer→acceptor only, "pull" lets it
#: cross acceptor→proposer only, "both" is full PUSH-PULL.
DIRECTIONS = ("both", "push", "pull")


def _check_direction(direction: str) -> str:
    if direction not in DIRECTIONS:
        raise ValueError(f"direction must be one of {DIRECTIONS}, got {direction!r}")
    return direction


class PushPullNode(RumorProtocol):
    """Per-node b=0 PUSH-PULL state machine (reference semantics).

    ``direction`` restricts which way the rumor may cross a connection —
    the PUSH-only / PULL-only ablation (A3); the paper's strategy is
    ``"both"``.
    """

    tag_length = 0

    def __init__(self, node_id: int, uid: UID, informed: bool, direction: str = "both"):
        super().__init__(node_id, uid)
        self._informed = bool(informed)
        self._source = bool(informed)  # initial status, for fault resets
        self._direction = _check_direction(direction)
        self._proposed_to: int | None = None

    @property
    def informed(self) -> bool:
        return self._informed

    def decide(self, view: RoundView) -> int | None:
        self._proposed_to = None
        if view.neighbors.size == 0 or view.rng.random() < 0.5:
            return None
        target = int(view.neighbors[view.rng.integers(0, view.neighbors.size)])
        self._proposed_to = target
        return target

    def compose(self, peer: int) -> Message:
        # The wire always carries the status bit; the *receiver* decides
        # whether its direction permits adopting it.
        return Message(extra_bits=1, data=self._informed)

    def deliver(self, peer: int, message: Message) -> None:
        if message.data is not True:
            return
        i_proposed = self._proposed_to == peer
        if self._direction == "push" and i_proposed:
            return  # push-only: an informed acceptor cannot inform its proposer
        if self._direction == "pull" and not i_proposed:
            return  # pull-only: an informed proposer cannot inform its acceptor
        self._informed = True

    # -- fault hooks -------------------------------------------------------

    def reset(self) -> None:
        self._informed = self._source

    def corrupt(self, rng: np.random.Generator, n: int) -> None:
        # A rumor bit has no arbitrary value to corrupt *to* that keeps
        # "everyone informed" well-defined; corruption knocks the node
        # back to its initial status (sources re-seed the rumor).
        self._informed = self._source


def make_push_pull_nodes(
    uid_space, sources: set[int], direction: str = "both"
) -> list[PushPullNode]:
    """One node per vertex; vertices in ``sources`` start informed."""
    return [
        PushPullNode(v, uid_space.uid_of(v), informed=v in sources, direction=direction)
        for v in range(len(uid_space))
    ]


class PushPullVectorized(VectorizedAlgorithm):
    """Array-kernel b=0 PUSH-PULL for the vectorized engine.

    ``direction`` restricts rumor flow over a connection (the A3
    ablation): ``"both"`` (the paper's PUSH-PULL), ``"push"``
    (proposer→acceptor only), or ``"pull"`` (acceptor→proposer only).
    """

    tag_length = 0

    def __init__(self, sources: np.ndarray, direction: str = "both"):
        self._sources = np.asarray(sources, dtype=np.int64)
        if self._sources.size == 0:
            raise ValueError("need at least one source")
        self._direction = _check_direction(direction)

    class State:
        __slots__ = ("informed",)

        def __init__(self, informed: np.ndarray):
            self.informed = informed

    def init_state(self, n: int, rng: np.random.Generator) -> "PushPullVectorized.State":
        informed = np.zeros(n, dtype=bool)
        informed[self._sources] = True
        return self.State(informed)

    def tags(self, state, local_rounds, active, rng) -> np.ndarray:
        return np.zeros(active.shape[0], dtype=np.int64)

    def senders(self, state, tags, local_rounds, active, rng) -> np.ndarray:
        return rng.random(active.shape[0]) < 0.5

    def exchange(self, state, proposers: np.ndarray, acceptors: np.ndarray) -> None:
        if self._direction in ("both", "push"):
            # PUSH: informed proposers inform their acceptors.
            state.informed[acceptors[state.informed[proposers]]] = True
        if self._direction in ("both", "pull"):
            # PULL: informed acceptors inform their proposers.  Note the
            # pre-exchange snapshot is irrelevant here: under "both" a
            # newly-pushed acceptor was informed either way, and under
            # "pull" the push branch never ran.
            state.informed[proposers[state.informed[acceptors]]] = True

    def converged(self, state) -> bool:
        return bool(state.informed.all())

    def node_done(self, state) -> np.ndarray:
        return state.informed

    def corrupt_state(self, state, victims, rng) -> None:
        # Corruption knocks victims back to their initial status (see
        # PushPullNode.corrupt): sources re-seed, others forget.
        state.informed[victims] = np.isin(victims, self._sources)

    def reset_nodes(self, state, nodes, rng) -> None:
        state.informed[nodes] = np.isin(nodes, self._sources)

    def observable(self, state):
        # An adaptive adversary may watch who is informed.
        return state.informed

    def informed_count(self, state) -> int:
        """Number of informed nodes (for per-round progress metrics)."""
        return int(state.informed.sum())


class PushPullBatched(BatchedAlgorithm):
    """Replica-batched b=0 PUSH-PULL for the batched engine.

    ``direction`` restricts rumor flow exactly as in
    :class:`PushPullVectorized`.
    """

    tag_length = 0

    def __init__(self, sources: np.ndarray, direction: str = "both"):
        self._sources = np.asarray(sources, dtype=np.int64)
        if self._sources.size == 0:
            raise ValueError("need at least one source")
        self._direction = _check_direction(direction)

    class State:
        __slots__ = ("informed",)

        def __init__(self, informed: np.ndarray):
            self.informed = informed

    def init_state(self, n: int, seeds: np.ndarray) -> "PushPullBatched.State":
        informed = np.zeros((len(seeds), n), dtype=bool)
        informed[:, self._sources] = True
        return self.State(informed)

    # tags: inherited None (b = 0, no advertising).

    def senders(self, state, tags, local_rounds, active, rng) -> np.ndarray:
        return rng.random(state.informed.shape) < 0.5

    def exchange(self, state, rep, proposers, acceptors) -> None:
        if self._direction in ("both", "push"):
            sel = state.informed[rep, proposers]
            state.informed[rep[sel], acceptors[sel]] = True
        if self._direction in ("both", "pull"):
            sel = state.informed[rep, acceptors]
            state.informed[rep[sel], proposers[sel]] = True

    def converged(self, state) -> np.ndarray:
        return state.informed.all(axis=1)

    def node_done(self, state) -> np.ndarray:
        return state.informed

    def corrupt_state(self, state, victims, rng) -> None:
        rows = np.arange(victims.shape[0])[:, None]
        state.informed[rows, victims] = np.isin(victims, self._sources)

    def reset_nodes(self, state, nodes, rng) -> None:
        state.informed[:, nodes] = np.isin(nodes, self._sources)[None, :]

    def observable(self, state) -> np.ndarray:
        return state.informed

    def informed_count(self, state) -> np.ndarray:
        """Informed nodes per replica (for per-round progress metrics)."""
        return state.informed.sum(axis=1)
