"""Blind gossip leader election (paper Section VI; ``b = 0``, any ``τ ≥ 1``).

The algorithm, verbatim from the paper: each round, every node flips a
fair coin to decide whether to *send* or *receive* connection proposals.
A sender picks a neighbor uniformly at random; a receiver accepts one
incoming proposal uniformly at random (model behavior).  Connected nodes
trade the smallest UIDs they have seen so far and both keep the minimum,
which is also their ``leader`` variable.

Theorem VI.1: stabilizes in ``O((1/α)·Δ²·log² n)`` rounds w.h.p., even
with ``τ = 1``.  Section VI also shows a stable network (the line of
stars) where this algorithm needs ``Ω(Δ²/√α)`` rounds.

Because no advertising is available (``b = 0``) and the rule is symmetric,
this protocol also makes no assumption about synchronized starts — its
analysis carries over to asynchronous activations (paper footnote 2).
"""

from __future__ import annotations

import numpy as np

from repro.core.batched import BatchedAlgorithm
from repro.core.payload import Message, UID, UIDSpace
from repro.core.protocol import LeaderElectionProtocol, RoundView
from repro.core.vectorized import VectorizedAlgorithm

__all__ = [
    "BlindGossipNode",
    "BlindGossipVectorized",
    "BlindGossipBatched",
    "make_blind_gossip_nodes",
]


class BlindGossipNode(LeaderElectionProtocol):
    """Per-node blind gossip state machine (reference semantics)."""

    tag_length = 0

    def __init__(self, node_id: int, uid: UID):
        super().__init__(node_id, uid)
        self._best = uid  # smallest UID received so far, including our own

    @property
    def leader(self) -> UID:
        return self._best

    def decide(self, view: RoundView) -> int | None:
        # Fair coin: heads → send to a uniform neighbor, tails → receive.
        if view.neighbors.size == 0 or view.rng.random() < 0.5:
            return None
        return int(view.neighbors[view.rng.integers(0, view.neighbors.size)])

    def compose(self, peer: int) -> Message:
        return Message(uids=(self._best,), data=self._best)

    def deliver(self, peer: int, message: Message) -> None:
        received = message.data
        if isinstance(received, UID) and received < self._best:
            self._best = received

    # -- fault hooks -------------------------------------------------------

    def reset(self) -> None:
        self._best = self.uid

    def corrupt(self, rng: np.random.Generator, n: int) -> None:
        self._best = UID(int(rng.integers(0, 10 * n)))


def make_blind_gossip_nodes(uid_space: UIDSpace) -> list[BlindGossipNode]:
    """One :class:`BlindGossipNode` per vertex of ``uid_space``."""
    return [BlindGossipNode(v, uid_space.uid_of(v)) for v in range(len(uid_space))]


class BlindGossipVectorized(VectorizedAlgorithm):
    """Array-kernel blind gossip for the vectorized engine.

    Operates on the simulator-internal integer UID keys (the black-box
    abstraction is a property of the *protocol* API; engine-level kernels
    are trusted simulator code).
    """

    tag_length = 0
    # Doneness (best == target) is absorbing, decided per node, and only
    # changes through exchanges; exchanges between done nodes are no-ops.
    sparse_compatible = True
    quiescent_when_done = True

    def __init__(self, uid_keys: np.ndarray):
        self._keys = np.asarray(uid_keys, dtype=np.int64)
        if np.unique(self._keys).size != self._keys.size:
            raise ValueError("UID keys must be unique")

    class State:
        __slots__ = ("best", "target")

        def __init__(self, best: np.ndarray, target: int):
            self.best = best
            self.target = target

    def init_state(self, n: int, rng: np.random.Generator) -> "BlindGossipVectorized.State":
        if self._keys.shape != (n,):
            raise ValueError("uid_keys must have one key per vertex")
        return self.State(self._keys.copy(), int(self._keys.min()))

    def tags(self, state, local_rounds, active, rng) -> np.ndarray:
        return np.zeros(active.shape[0], dtype=np.int64)

    def senders(self, state, tags, local_rounds, active, rng) -> np.ndarray:
        return rng.random(active.shape[0]) < 0.5

    def sparse_senders(self, state, rows, rng) -> np.ndarray:
        return rng.random(rows.shape[0]) < 0.5

    def node_done_subset(self, state, nodes) -> np.ndarray:
        return state.best[nodes] == state.target

    def exchange(self, state, proposers: np.ndarray, acceptors: np.ndarray) -> None:
        lo = np.minimum(state.best[proposers], state.best[acceptors])
        state.best[proposers] = lo
        state.best[acceptors] = lo

    def converged(self, state) -> bool:
        return bool((state.best == state.target).all())

    def node_done(self, state) -> np.ndarray:
        return state.best == state.target

    def corrupt_state(self, state, victims, rng) -> None:
        state.best[victims] = rng.integers(0, 10 * self._keys.size, size=victims.size)
        # The eventual winner is the min over the *corrupted* state.
        state.target = int(state.best.min())

    def reset_nodes(self, state, nodes, rng) -> None:
        state.best[nodes] = self._keys[nodes]
        state.target = int(state.best.min())

    def observable(self, state):
        # An adaptive adversary may watch who already holds the minimum.
        return state.best == state.target

    def leaders(self, state) -> np.ndarray:
        """Current leader key per node (for instrumentation)."""
        return state.best


class BlindGossipBatched(BatchedAlgorithm):
    """Replica-batched blind gossip for the batched engine.

    Same kernel as :class:`BlindGossipVectorized` with a leading replica
    axis; every replica shares the UID assignment (the trial axis varies
    only the randomness, exactly as ``run_trials`` does).
    """

    tag_length = 0
    # Same absorbing per-node doneness as the vectorized kernel, replica-wise.
    sparse_compatible = True

    def __init__(self, uid_keys: np.ndarray):
        self._keys = np.asarray(uid_keys, dtype=np.int64)
        if np.unique(self._keys).size != self._keys.size:
            raise ValueError("UID keys must be unique")

    class State:
        __slots__ = ("best", "target")

        def __init__(self, best: np.ndarray, target: int):
            self.best = best
            self.target = target

    def init_state(self, n: int, seeds: np.ndarray) -> "BlindGossipBatched.State":
        if self._keys.shape != (n,):
            raise ValueError("uid_keys must have one key per vertex")
        best = np.tile(self._keys, (len(seeds), 1))
        return self.State(best, int(self._keys.min()))

    # tags: inherited None (b = 0, no advertising).

    def senders(self, state, tags, local_rounds, active, rng) -> np.ndarray:
        return rng.random(state.best.shape) < 0.5

    def sparse_senders_flat(self, state, flat_rows, rng) -> np.ndarray:
        return rng.random(flat_rows.shape[0]) < 0.5

    def node_done_subset_flat(self, state, flat_rows, n) -> np.ndarray:
        best = state.best.reshape(-1)[flat_rows]
        target = state.target
        if isinstance(target, np.ndarray):
            # Post-corruption per-replica (T, 1) targets.
            return best == np.broadcast_to(target, state.best.shape).reshape(-1)[flat_rows]
        return best == target

    def exchange(self, state, rep, proposers, acceptors) -> None:
        lo = np.minimum(state.best[rep, proposers], state.best[rep, acceptors])
        state.best[rep, proposers] = lo
        state.best[rep, acceptors] = lo

    def converged(self, state) -> np.ndarray:
        return (state.best == state.target).all(axis=1)

    def node_done(self, state) -> np.ndarray:
        return state.best == state.target

    def corrupt_state(self, state, victims, rng) -> None:
        rows = np.arange(victims.shape[0])[:, None]
        state.best[rows, victims] = rng.integers(
            0, 10 * self._keys.size, size=victims.shape
        )
        # Per-replica winner: (T, 1) broadcasts in `converged`.
        state.target = state.best.min(axis=1, keepdims=True)

    def reset_nodes(self, state, nodes, rng) -> None:
        state.best[:, nodes] = self._keys[nodes]
        state.target = state.best.min(axis=1, keepdims=True)

    def observable(self, state) -> np.ndarray:
        return state.best == state.target

    def leaders(self, state) -> np.ndarray:
        """Current leader key per node per replica (for instrumentation)."""
        return state.best
