"""PPUSH ("productive PUSH") rumor spreading at ``b = 1`` (paper Section V).

The strategy from Ghaffari-Newport that the bit convergence algorithms
deploy as a subroutine: at the beginning of each round a node advertises
tag 0 if it knows the rumor and tag 1 otherwise.  A 1-advertiser only
receives.  A 0-advertiser (informed) chooses a neighbor advertising 1 (if
any) uniformly at random and proposes; a successful connection transfers
the rumor.

Theorem V.2 bounds its short-term productivity: across a cut with a
matching of size ``m``, ``r ≤ log Δ`` stable rounds inform at least
``m / f(r)`` new nodes with constant probability, where
``f(r) = Δ^{1/r}·c·r·log n``.
"""

from __future__ import annotations

import numpy as np

from repro.core.batched import BatchedAlgorithm
from repro.core.payload import Message, UID
from repro.core.protocol import RoundView, RumorProtocol
from repro.core.vectorized import VectorizedAlgorithm

__all__ = ["PPushNode", "PPushVectorized", "PPushBatched", "make_ppush_nodes"]

#: Tag advertised by informed nodes (paper: informed → 0, uninformed → 1).
TAG_INFORMED = 0
TAG_UNINFORMED = 1


class PPushNode(RumorProtocol):
    """Per-node PPUSH state machine (reference semantics)."""

    tag_length = 1

    def __init__(self, node_id: int, uid: UID, informed: bool):
        super().__init__(node_id, uid)
        self._informed = bool(informed)
        self._source = bool(informed)  # initial status, for fault resets

    @property
    def informed(self) -> bool:
        return self._informed

    def choose_tag(self, local_round: int, rng: np.random.Generator) -> int:
        return TAG_INFORMED if self._informed else TAG_UNINFORMED

    def decide(self, view: RoundView) -> int | None:
        if not self._informed:
            return None  # 1-advertisers only receive
        candidates = view.neighbors[view.neighbor_tags == TAG_UNINFORMED]
        if candidates.size == 0:
            return None
        return int(candidates[view.rng.integers(0, candidates.size)])

    def compose(self, peer: int) -> Message:
        return Message(extra_bits=1, data=self._informed)

    def deliver(self, peer: int, message: Message) -> None:
        if message.data is True:
            self._informed = True

    # -- fault hooks -------------------------------------------------------

    def reset(self) -> None:
        self._informed = self._source

    def corrupt(self, rng: np.random.Generator, n: int) -> None:
        # Corruption knocks the node back to its initial status (see
        # PushPullNode.corrupt for the rationale).
        self._informed = self._source


def make_ppush_nodes(uid_space, sources: set[int]) -> list[PPushNode]:
    """One node per vertex; vertices in ``sources`` start informed."""
    return [
        PPushNode(v, uid_space.uid_of(v), informed=v in sources)
        for v in range(len(uid_space))
    ]


class PPushVectorized(VectorizedAlgorithm):
    """Array-kernel PPUSH for the vectorized engine."""

    tag_length = 1

    def __init__(self, sources: np.ndarray):
        self._sources = np.asarray(sources, dtype=np.int64)
        if self._sources.size == 0:
            raise ValueError("need at least one source")

    class State:
        __slots__ = ("informed",)

        def __init__(self, informed: np.ndarray):
            self.informed = informed

    def init_state(self, n: int, rng: np.random.Generator) -> "PPushVectorized.State":
        informed = np.zeros(n, dtype=bool)
        informed[self._sources] = True
        return self.State(informed)

    def tags(self, state, local_rounds, active, rng) -> np.ndarray:
        return np.where(state.informed, TAG_INFORMED, TAG_UNINFORMED).astype(np.int64)

    def senders(self, state, tags, local_rounds, active, rng) -> np.ndarray:
        return state.informed.copy()

    def eligible_flat(self, state, tags, graph, sender_mask, local_rounds):
        # Informed senders target only neighbors advertising "uninformed".
        return tags[graph.indices] == TAG_UNINFORMED

    def exchange(self, state, proposers: np.ndarray, acceptors: np.ndarray) -> None:
        # Proposers are informed by construction; acceptors learn the rumor.
        state.informed[acceptors] = True

    def converged(self, state) -> bool:
        return bool(state.informed.all())

    def node_done(self, state) -> np.ndarray:
        return state.informed

    def corrupt_state(self, state, victims, rng) -> None:
        state.informed[victims] = np.isin(victims, self._sources)

    def reset_nodes(self, state, nodes, rng) -> None:
        state.informed[nodes] = np.isin(nodes, self._sources)

    def observable(self, state):
        # An adaptive adversary may watch who is informed.
        return state.informed

    def informed_count(self, state) -> int:
        """Number of informed nodes (for per-round progress metrics)."""
        return int(state.informed.sum())


class PPushBatched(BatchedAlgorithm):
    """Replica-batched PPUSH for the batched engine."""

    tag_length = 1

    def __init__(self, sources: np.ndarray):
        self._sources = np.asarray(sources, dtype=np.int64)
        if self._sources.size == 0:
            raise ValueError("need at least one source")

    class State:
        __slots__ = ("informed",)

        def __init__(self, informed: np.ndarray):
            self.informed = informed

    def init_state(self, n: int, seeds: np.ndarray) -> "PPushBatched.State":
        informed = np.zeros((len(seeds), n), dtype=bool)
        informed[:, self._sources] = True
        return self.State(informed)

    def tags(self, state, local_rounds, active, rng) -> np.ndarray:
        return np.where(state.informed, TAG_INFORMED, TAG_UNINFORMED).astype(np.int64)

    def senders(self, state, tags, local_rounds, active, rng) -> np.ndarray:
        return state.informed.copy()

    def receiver_mask(self, state, tags) -> np.ndarray:
        # Informed senders target only vertices advertising "uninformed".
        return tags == TAG_UNINFORMED

    def exchange(self, state, rep, proposers, acceptors) -> None:
        # Proposers are informed by construction; acceptors learn the rumor.
        state.informed[rep, acceptors] = True

    def converged(self, state) -> np.ndarray:
        return state.informed.all(axis=1)

    def node_done(self, state) -> np.ndarray:
        return state.informed

    def corrupt_state(self, state, victims, rng) -> None:
        rows = np.arange(victims.shape[0])[:, None]
        state.informed[rows, victims] = np.isin(victims, self._sources)

    def reset_nodes(self, state, nodes, rng) -> None:
        state.informed[:, nodes] = np.isin(nodes, self._sources)[None, :]

    def observable(self, state) -> np.ndarray:
        return state.informed

    def informed_count(self, state) -> np.ndarray:
        """Informed nodes per replica (for per-round progress metrics)."""
        return state.informed.sum(axis=1)
