"""Immutable static graph representation.

A :class:`Graph` is an undirected simple graph over vertices ``0..n-1``
stored in CSR form.  It is the unit the round engines consume: a dynamic
graph (see :mod:`repro.graphs.dynamic`) is a round-indexed sequence of
these.

Instances are immutable; all mutation-like operations return new graphs.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.util.csrops import build_csr, csr_degrees, gather_rows

__all__ = ["Graph"]


class Graph:
    """Undirected simple graph in CSR form.

    Parameters
    ----------
    n
        Number of vertices.
    edges
        Iterable of ``(u, v)`` undirected edges.  Self-loops and duplicates
        are rejected.
    """

    __slots__ = ("_n", "_indptr", "_indices", "_edges")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] | np.ndarray):
        if n <= 0:
            raise ValueError(f"graph must have at least one vertex, got n={n}")
        edge_arr = np.asarray(
            [(u, v) for (u, v) in edges] if not isinstance(edges, np.ndarray) else edges,
            dtype=np.int64,
        ).reshape(-1, 2)
        # Canonicalize edge orientation (min, max) and sort for stable equality.
        if edge_arr.size:
            lo = np.minimum(edge_arr[:, 0], edge_arr[:, 1])
            hi = np.maximum(edge_arr[:, 0], edge_arr[:, 1])
            edge_arr = np.stack([lo, hi], axis=1)
            edge_arr = edge_arr[np.lexsort((edge_arr[:, 1], edge_arr[:, 0]))]
        self._n = int(n)
        self._indptr, self._indices = build_csr(self._n, edge_arr)
        self._edges = edge_arr
        self._edges.setflags(write=False)
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)

    @classmethod
    def _from_csr(
        cls,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        edges: np.ndarray,
    ) -> "Graph":
        """Rehydrate from already-built CSR arrays, trusting them.

        Used by unpickling and the shared-memory plane: the arrays were
        produced by ``__init__`` once, so re-canonicalizing and rebuilding
        the CSR here would only burn time.  Arrays are frozen (mmap-backed
        shared segments arrive read-only already).
        """
        graph = object.__new__(cls)
        graph._n = int(n)
        graph._indptr = indptr
        graph._indices = indices
        graph._edges = edges
        for arr in (indptr, indices, edges):
            if arr.flags.writeable:
                arr.setflags(write=False)
        return graph

    def __reduce__(self):
        from repro.util import shm

        store = shm.active_graph_store()
        if store is not None:
            name = store.publish_graph(self)
            if name is not None:
                # Ship a segment reference: the receiving process maps the
                # CSR zero-copy instead of unpickling megabytes of arrays.
                return (shm._load_graph_segment, (store.prefix, name))
        return (Graph._from_csr, (self._n, self._indptr, self._indices, self._edges))

    # -- basic accessors --------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._edges.shape[0]

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointers (read-only)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices (read-only, per-row sorted)."""
        return self._indices

    @property
    def edges(self) -> np.ndarray:
        """Canonical ``(m, 2)`` edge array (read-only, lexicographically sorted)."""
        return self._edges

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor array of vertex ``u`` (a read-only view)."""
        return self._indices[self._indptr[u] : self._indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        return int(self._indptr[u + 1] - self._indptr[u])

    @property
    def degrees(self) -> np.ndarray:
        """Degree array for all vertices."""
        return csr_degrees(self._indptr)

    @property
    def max_degree(self) -> int:
        """Maximum degree Δ (0 for an edgeless graph)."""
        return int(self.degrees.max()) if self._n else 0

    def has_edge(self, u: int, v: int) -> bool:
        """True when ``{u, v}`` is an edge."""
        nb = self.neighbors(u)
        i = np.searchsorted(nb, v)
        return bool(i < nb.size and nb[i] == v)

    # -- structure --------------------------------------------------------

    def is_connected(self) -> bool:
        """True when the graph is connected (single vertex counts as connected)."""
        if self._n == 1:
            return True
        seen = np.zeros(self._n, dtype=bool)
        frontier = np.array([0], dtype=np.int64)
        seen[0] = True
        while frontier.size:
            # Expand the whole frontier at once via CSR gather.
            nxt = gather_rows(self._indptr, self._indices, frontier)
            if nxt.size == 0:
                break
            nxt = nxt[~seen[nxt]]
            if nxt.size == 0:
                break
            nxt = np.unique(nxt)
            seen[nxt] = True
            frontier = nxt
        return bool(seen.all())

    def connected_components(self) -> list[np.ndarray]:
        """Vertex sets of the connected components (each sorted)."""
        comp = np.full(self._n, -1, dtype=np.int64)
        cid = 0
        for root in range(self._n):
            if comp[root] >= 0:
                continue
            comp[root] = cid
            stack = [root]
            while stack:
                u = stack.pop()
                for v in self.neighbors(u):
                    if comp[v] < 0:
                        comp[v] = cid
                        stack.append(int(v))
            cid += 1
        return [np.flatnonzero(comp == c) for c in range(cid)]

    def relabel(self, perm: np.ndarray) -> "Graph":
        """Return the isomorphic graph with vertex ``u`` renamed ``perm[u]``."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self._n,) or not np.array_equal(
            np.sort(perm), np.arange(self._n)
        ):
            raise ValueError("perm must be a permutation of 0..n-1")
        if self._edges.size == 0:
            return Graph(self._n, np.empty((0, 2), dtype=np.int64))
        return Graph(self._n, perm[self._edges])

    def union(self, other: "Graph", bridge_edges: Iterable[tuple[int, int]]) -> "Graph":
        """Disjoint union with ``other`` plus bridging edges.

        Vertices of ``other`` are shifted by ``self.n``; ``bridge_edges`` are
        given as ``(u_in_self, v_in_other)`` pairs.  Used by the
        self-stabilization experiments (paper Section VIII) to join two
        long-running components.
        """
        off = self._n
        shifted = other._edges + off if other._edges.size else other._edges
        bridges = np.asarray(
            [(u, v + off) for (u, v) in bridge_edges], dtype=np.int64
        ).reshape(-1, 2)
        all_edges = np.concatenate(
            [self._edges.reshape(-1, 2), shifted.reshape(-1, 2), bridges]
        )
        return Graph(self._n + other._n, all_edges)

    # -- interop ----------------------------------------------------------

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (used by test oracles)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(map(tuple, self._edges))
        return g

    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Build from a :class:`networkx.Graph` with integer labels ``0..n-1``."""
        n = g.number_of_nodes()
        if sorted(g.nodes) != list(range(n)):
            raise ValueError("networkx graph must be labelled 0..n-1")
        return cls(n, np.asarray(list(g.edges), dtype=np.int64).reshape(-1, 2))

    # -- equality / repr ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and np.array_equal(self._edges, other._edges)

    def __hash__(self) -> int:
        return hash((self._n, self._edges.tobytes()))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self.num_edges}, Δ={self.max_degree})"
