"""Adaptive adversaries: worst-case topology churn.

The model's dynamic graph is adversarial — it may change arbitrarily every
``τ`` rounds subject only to connectivity and the ``(α, Δ)`` the bounds
are stated in.  The oblivious generators in :mod:`repro.graphs.dynamic`
(random relabeling) honour that contract but *mix* state, which measurably
accelerates the algorithms (experiments E6, E11).  To exhibit the
worst-case behaviour the bounds actually pay for, this module provides an
**adaptive** adversary: one that observes algorithm state each round and
relabels the base topology against it.

:class:`PackingAdversary` implements the canonical attack on spreading
processes: given a boolean "has the information" observation, it relabels
the base graph so the informed nodes occupy a prefix of a fixed *packing
order* — an ordering of the base vertices whose every prefix has a tiny
vertex boundary (for a double star: leaves of hub A, then hub A, then
leaves of hub B, then hub B — every prefix has boundary exactly 1).  This
pins ``ν(B(informed))`` to its minimum round after round, throttling
spread to ~one node per round, while preserving ``α`` and ``Δ`` exactly
(the graph stays isomorphic to the base).

Adaptive graphs are stateful: ``graph_at(r)`` reflects the observations
received so far, so they support *forward simulation only* (no
out-of-order access), and the engine must call :meth:`observe` once per
round before ``graph_at`` — both engines do.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.dynamic import (
    BatchedPermutedDynamicGraph,
    DynamicGraph,
    epoch_of_round,
)
from repro.graphs.static import Graph

__all__ = [
    "AdaptiveDynamicGraph",
    "BatchedPackingAdversary",
    "PackingAdversary",
    "packing_order_for",
]


class AdaptiveDynamicGraph(DynamicGraph):
    """A dynamic graph that may observe algorithm state before each round.

    Engines call ``observe(r, observation)`` exactly once per round, in
    order, before requesting ``graph_at(r)``.  What the observation *is*
    comes from the algorithm's ``observable`` hook (vectorized engine) —
    ``None`` when the algorithm exposes nothing.
    """

    def observe(self, r: int, observation: object) -> None:
        """Receive the round-``r`` observation (default: ignore it)."""


def packing_order_for(base: Graph) -> np.ndarray:
    """A vertex ordering of ``base`` whose prefixes have tiny cut matchings.

    What throttles spread in the mobile telephone model is the maximum
    matching across the informed/uninformed cut, ``ν(B(S))`` (Lemma V.1),
    so the adversary wants every prefix of its packing order to have a
    small one.  The Fiedler (spectral) ordering delivers exactly that on
    elongated topologies: on a double star it reads "leaves of hub A,
    hub A, hub B, leaves of hub B" — every prefix's crossing edges share a
    single hub, pinning ``ν`` to 1.
    """
    from repro.analysis.expansion import _fiedler_order

    return np.asarray(_fiedler_order(base), dtype=np.int64)


class PackingAdversary(AdaptiveDynamicGraph):
    """Concentrates "informed" nodes behind a minimal boundary each epoch.

    Parameters
    ----------
    base
        Base topology; every round's graph is isomorphic to it (``α`` and
        ``Δ`` are preserved exactly).
    tau
        Stability factor: the relabeling is recomputed only at epoch
        boundaries, honouring the ``τ`` contract by construction.
    packing_order
        Ordering of base-vertex *roles*; informed nodes are packed into
        its prefix.  Defaults to :func:`packing_order_for`.

    The observation must be a boolean array over nodes (e.g. the informed
    mask of a rumor spreading algorithm, or "knows the minimum UID" for
    blind gossip).  ``None`` observations leave the current graph alone.
    """

    def __init__(
        self,
        base: Graph,
        tau: int = 1,
        *,
        packing_order: np.ndarray | None = None,
    ):
        if tau < 1:
            raise ValueError("tau must be >= 1")
        if not base.is_connected():
            raise ValueError("topology must be connected")
        self._base = base
        self.n = base.n
        self.tau = tau
        self._order = (
            packing_order_for(base)
            if packing_order is None
            else np.asarray(packing_order, dtype=np.int64)
        )
        if sorted(self._order.tolist()) != list(range(self.n)):
            raise ValueError("packing_order must be a permutation of 0..n-1")
        self._current = base
        self._current_epoch = -1
        self._last_round = 0

    def observe(self, r: int, observation: object) -> None:
        if r <= self._last_round:
            raise ValueError("adaptive adversary requires strictly forward rounds")
        self._last_round = r
        e = epoch_of_round(r, self.tau)
        if e == self._current_epoch:
            return  # mid-epoch: the topology must stay stable
        self._current_epoch = e
        if observation is None:
            return
        mask = np.asarray(observation, dtype=bool)
        if mask.shape != (self.n,):
            raise ValueError("observation must be a boolean mask over nodes")
        informed = np.flatnonzero(mask)
        uninformed = np.flatnonzero(~mask)
        nodes = np.concatenate([informed, uninformed])
        # Node nodes[j] takes the structural role order[j]: the relabel
        # permutation renames base vertex order[j] to nodes[j].
        perm = np.empty(self.n, dtype=np.int64)
        perm[self._order] = nodes
        self._current = self._base.relabel(perm)

    def graph_at(self, r: int) -> Graph:
        return self._current

    def max_degree(self, horizon: int) -> int:
        return self._base.max_degree


class BatchedPackingAdversary(BatchedPermutedDynamicGraph):
    """The packing adversary for all ``T`` replicas of a batched run at once.

    Semantically ``T`` independent :class:`PackingAdversary` instances —
    each replica's informed nodes are packed into the prefix of the same
    packing order — but driven by the engine's full ``(T, n)`` observation:
    one stable argsort of the whole observation grid reproduces every
    replica's informed-then-uninformed ordering (``False < True`` on the
    negated mask, ties broken by ascending vertex index, exactly the
    ``flatnonzero`` concatenation the single adversary builds), so there is
    no per-replica Python loop anywhere in :meth:`observe`.

    As a :class:`~repro.graphs.dynamic.BatchedPermutedDynamicGraph` it
    never materializes relabeled ``Graph`` objects either: the engine picks
    through the ``(T, n)`` permutations against the one base CSR.
    """

    def __init__(
        self,
        base: Graph,
        tau: int = 1,
        *,
        replicas: int,
        packing_order: np.ndarray | None = None,
    ):
        if tau < 1:
            raise ValueError("tau must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if not base.is_connected():
            raise ValueError("topology must be connected")
        self.base = base
        self.n = base.n
        self.tau = tau
        self.replicas = replicas
        self._order = (
            packing_order_for(base)
            if packing_order is None
            else np.asarray(packing_order, dtype=np.int64)
        )
        if sorted(self._order.tolist()) != list(range(self.n)):
            raise ValueError("packing_order must be a permutation of 0..n-1")
        self._perms = np.tile(np.arange(self.n, dtype=np.int64), (replicas, 1))
        self._current_epoch = -1
        self._last_round = 0

    def observe(self, r: int, observation: np.ndarray | None) -> None:
        if r <= self._last_round:
            raise ValueError("adaptive adversary requires strictly forward rounds")
        self._last_round = r
        e = epoch_of_round(r, self.tau)
        if e == self._current_epoch:
            return  # mid-epoch: the topology must stay stable
        self._current_epoch = e
        if observation is None:
            return
        mask = np.asarray(observation, dtype=bool)
        if mask.shape != (self.replicas, self.n):
            raise ValueError("observation must be a (T, n) boolean mask")
        # Row t of ``nodes`` is replica t's informed vertices ascending,
        # then its uninformed vertices ascending.
        nodes = np.argsort(~mask, axis=1, kind="stable")
        # Node nodes[t, j] takes the structural role order[j]: the relabel
        # permutation renames base vertex order[j] to nodes[t, j].
        perms = np.empty_like(nodes)
        perms[:, self._order] = nodes
        self._perms = perms  # fresh object: signals the change to the engine

    def permutations_at(self, r: int) -> np.ndarray:
        return self._perms
