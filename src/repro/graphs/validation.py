"""Validators for the model's topology contracts.

These checks are used in tests and at engine start-up (opt-in) to ensure a
dynamic graph honours the formal model of paper Sections II-III:

* every round's topology is a connected undirected graph on the same
  vertex set;
* at least ``τ`` rounds pass between topology changes.
"""

from __future__ import annotations

import math

from repro.graphs.dynamic import DynamicGraph

__all__ = [
    "StabilityViolation",
    "check_connected",
    "check_stability_contract",
    "observed_change_rounds",
]


class StabilityViolation(AssertionError):
    """Raised when a dynamic graph changes faster than its declared ``τ``."""


def check_connected(dg: DynamicGraph, horizon: int) -> None:
    """Assert every epoch topology in ``1..horizon`` is connected.

    Raises
    ------
    ValueError
        On the first disconnected round found.
    """
    step = 1 if math.isinf(dg.tau) else int(dg.tau)
    rounds = [1] if math.isinf(dg.tau) else range(1, horizon + 1, step)
    for r in rounds:
        if not dg.graph_at(r).is_connected():
            raise ValueError(f"topology at round {r} is disconnected")


def observed_change_rounds(dg: DynamicGraph, horizon: int) -> list[int]:
    """Rounds ``r`` in ``2..horizon`` where ``G_r != G_{r-1}``."""
    changes = []
    prev = dg.graph_at(1)
    for r in range(2, horizon + 1):
        cur = dg.graph_at(r)
        if cur != prev:
            changes.append(r)
        prev = cur
    return changes


def check_stability_contract(dg: DynamicGraph, horizon: int) -> None:
    """Assert at least ``τ`` rounds pass between changes within the horizon.

    A change at round ``r`` means ``G_r != G_{r-1}``; the contract requires
    consecutive change rounds to differ by at least ``τ``, and the first
    change to occur no earlier than round ``τ + 1``.

    Raises
    ------
    StabilityViolation
        If the declared ``τ`` is violated.
    """
    if math.isinf(dg.tau):
        changes = observed_change_rounds(dg, horizon)
        if changes:
            raise StabilityViolation(
                f"declared static but changed at rounds {changes[:5]}"
            )
        return
    tau = int(dg.tau)
    changes = observed_change_rounds(dg, horizon)
    prev_change = 1  # the topology "starts" at round 1
    for r in changes:
        if r - prev_change < tau:
            raise StabilityViolation(
                f"changes at rounds {prev_change} and {r} are closer than tau={tau}"
            )
        prev_change = r
