"""Dynamic graphs: round-indexed topology sequences with a stability contract.

Formally (paper Section II) a dynamic graph is a sequence ``G_1, G_2, …``
of static graphs over a fixed vertex set, where ``G_r`` is the topology in
round ``r`` (rounds are 1-indexed, as in the paper).  The *stability
factor* ``τ ≥ 1`` requires at least ``τ`` rounds between topology changes;
``τ = ∞`` (``math.inf``) means the graph never changes.

All implementations here are **deterministic functions of the round
number** (given their seed), so ``graph_at`` may be called out of order and
repeatedly — a property the engines, the validators, and the test suite all
rely on.

The paper's algorithms require *no advance knowledge of τ*; the ``tau``
attribute exists for generators and validators, never for algorithms.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from repro.graphs.static import Graph
from repro.util.rng import make_rng

__all__ = [
    "DynamicGraph",
    "StaticDynamicGraph",
    "ScheduleDynamicGraph",
    "PermutedDynamicGraph",
    "BatchedPermutedDynamicGraph",
    "PeriodicRelabelDynamicGraph",
    "ResampleDynamicGraph",
    "epoch_of_round",
    "first_round_of_epoch",
    "live_subgraph_connected",
    "validate_tau",
]

#: Epoch caches hold at most this many entries before evicting (the
#: newest entry is retained so the in-use epoch never has to be rebuilt).
CACHE_LIMIT = 4096

#: Target element count of one generated permutation block (block length
#: is ``max(1, _PERM_BLOCK_ELEMENTS // n)`` epochs, ~256 KB of int64).
_PERM_BLOCK_ELEMENTS = 32768


def _evict_keep_newest(cache: dict, limit: int) -> None:
    """Clear ``cache`` down to its most recently inserted entry.

    Dropping everything would evict the entry the caller is still using
    (typically the current epoch), forcing an immediate rebuild; dicts
    preserve insertion order, so the last key is the newest.
    """
    if len(cache) < limit:
        return
    newest = next(reversed(cache))
    kept = cache[newest]
    cache.clear()
    cache[newest] = kept


def validate_tau(tau: float) -> int | float:
    """Normalize a stability factor to an ``int`` (or ``math.inf``).

    τ counts whole rounds between topology changes, so a finite τ must be
    an integer ≥ 1; integral floats (``3.0``) normalize to ``int``.
    Anything else — ``2.5``, ``nan``, ``0`` — raises rather than silently
    truncating (``int(2.5)`` would quietly run τ = 2, a different model).
    """
    if isinstance(tau, float):
        if math.isinf(tau) and tau > 0:
            return tau
        if not tau.is_integer():  # also rejects nan
            raise ValueError(
                f"tau must be a whole number of rounds (or inf), got {tau}"
            )
        tau = int(tau)
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    return int(tau)


def epoch_of_round(r: int, tau: float) -> int:
    """Epoch index (0-based) containing 1-indexed round ``r``.

    An epoch is a maximal stretch of rounds with the same topology; epoch
    ``e`` covers rounds ``e·τ + 1 … (e+1)·τ``.
    """
    if r < 1:
        raise ValueError(f"rounds are 1-indexed, got {r}")
    tau = validate_tau(tau)
    if math.isinf(tau):
        return 0
    return (r - 1) // tau


def first_round_of_epoch(e: int, tau: float) -> int:
    """First 1-indexed round of epoch ``e``."""
    tau = validate_tau(tau)
    if math.isinf(tau):
        if e != 0:
            raise ValueError("a static dynamic graph has a single epoch")
        return 1
    return e * tau + 1


def live_subgraph_connected(graph: Graph, live) -> bool:
    """Whether the subgraph induced by the ``live`` mask is connected.

    Under open-world membership the *full* topology stays connected (the
    dynamic-graph contract), but the live population may still induce a
    disconnected subgraph — departures can cut every path between two
    live components, in which case no algorithm can make them agree
    until membership or topology changes.  An empty live set counts as
    connected (vacuously); a single live node always is.
    """
    live = np.asarray(live, dtype=bool)
    if live.shape != (graph.n,):
        raise ValueError(f"live mask must have shape ({graph.n},)")
    nodes = np.flatnonzero(live)
    if nodes.size <= 1:
        return True
    seen = np.zeros(graph.n, dtype=bool)
    stack = [int(nodes[0])]
    seen[nodes[0]] = True
    count = 1
    while stack:
        u = stack.pop()
        for v in graph.neighbors(u):
            v = int(v)
            if live[v] and not seen[v]:
                seen[v] = True
                count += 1
                stack.append(v)
    return count == nodes.size


class DynamicGraph(ABC):
    """Round-indexed sequence of connected static graphs on ``n`` vertices."""

    #: Declared minimum stability between changes (``math.inf`` if static).
    tau: float
    #: Number of vertices (constant over the whole sequence).
    n: int

    @abstractmethod
    def graph_at(self, r: int) -> Graph:
        """Topology of 1-indexed round ``r`` (deterministic in ``r``)."""

    def max_degree(self, horizon: int) -> int:
        """Maximum degree Δ over rounds ``1..horizon``.

        The default implementation inspects one round per epoch; subclasses
        with a known constant Δ override this.
        """
        if math.isinf(self.tau):
            return self.graph_at(1).max_degree
        step = int(self.tau)
        return max(
            self.graph_at(r).max_degree for r in range(1, horizon + 1, step)
        )

    def epochs_in(self, horizon: int) -> int:
        """Number of distinct epochs intersecting rounds ``1..horizon``."""
        if math.isinf(self.tau):
            return 1
        return epoch_of_round(horizon, self.tau) + 1


class StaticDynamicGraph(DynamicGraph):
    """A never-changing topology (``τ = ∞``)."""

    def __init__(self, graph: Graph):
        if not graph.is_connected():
            raise ValueError("topology must be connected")
        self._graph = graph
        self.n = graph.n
        self.tau = math.inf

    def graph_at(self, r: int) -> Graph:
        if r < 1:
            raise ValueError(f"rounds are 1-indexed, got {r}")
        return self._graph

    def max_degree(self, horizon: int) -> int:
        return self._graph.max_degree


class ScheduleDynamicGraph(DynamicGraph):
    """An explicit list of epoch graphs, each held for ``τ`` rounds.

    After the last scheduled epoch the sequence either cycles
    (``cycle=True``) or holds the final graph forever.
    """

    def __init__(self, graphs: Sequence[Graph], tau: int, *, cycle: bool = False):
        if not graphs:
            raise ValueError("need at least one graph")
        tau = validate_tau(tau)
        n = graphs[0].n
        for g in graphs:
            if g.n != n:
                raise ValueError("all graphs must share the vertex set")
            if not g.is_connected():
                raise ValueError("every topology must be connected")
        self._graphs = list(graphs)
        self._cycle = cycle
        self.n = n
        self.tau = tau

    def graph_at(self, r: int) -> Graph:
        e = epoch_of_round(r, self.tau)
        if self._cycle:
            return self._graphs[e % len(self._graphs)]
        return self._graphs[min(e, len(self._graphs) - 1)]


class PermutedDynamicGraph(DynamicGraph):
    """Dynamic graphs where every round is a *relabeling* of one base graph.

    Isomorphic churn never changes edge structure — only vertex labels — so
    a round's topology is fully described by ``(base, permutation)``.  The
    batched engine exploits this: when ``T`` replica graphs share one base
    object, it routes picks through the per-replica permutations against
    the single shared base CSR (see
    :func:`~repro.util.csrops.batched_permuted_pick`) and never builds a
    relabeled ``Graph`` or a stacked CSR at all.
    """

    #: The fixed base graph every round relabels.
    base: Graph

    @abstractmethod
    def permutation_at(self, r: int) -> np.ndarray:
        """Relabel permutation ``p_r`` with ``graph_at(r) == base.relabel(p_r)``.

        ``p_r[u]`` is the round-``r`` label of base vertex ``u``.
        """


class BatchedPermutedDynamicGraph(ABC):
    """``T`` parallel permuted views of one base graph as a single object.

    The batched counterpart of handing the engine a list of ``T``
    :class:`PermutedDynamicGraph` instances: one object produces all
    replicas' permutations at once, so adaptive adversaries can react to
    the engine's full ``(T, n)`` observation without a per-replica Python
    loop.
    """

    #: The fixed base graph every replica's every round relabels.
    base: Graph
    #: Number of vertices.
    n: int
    #: Declared minimum stability between changes.
    tau: float
    #: Number of replicas ``T``.
    replicas: int

    def observe(self, r: int, observation: np.ndarray | None) -> None:
        """Receive the round-``r`` ``(T, n)`` observation (default: ignore)."""

    @abstractmethod
    def permutations_at(self, r: int) -> np.ndarray:
        """``(T, n)`` permutations; row ``t`` relabels replica ``t``'s base.

        Implementations must return a *new* array object whenever the
        permutations change (the engine caches the inverse permutations
        keyed on array identity).
        """


class PeriodicRelabelDynamicGraph(PermutedDynamicGraph):
    """Adversarial isomorphic churn: relabel a base graph every ``τ`` rounds.

    Each epoch applies a fresh uniform permutation to the base graph's
    vertex labels.  This preserves ``α`` and ``Δ`` *exactly* (the theorems'
    parameters stay fixed) while scattering any algorithmic structure tied
    to vertex position — the harshest oblivious churn consistent with fixed
    ``(α, Δ)``.  With ``τ = 1`` this realizes the paper's "topology can
    change arbitrarily in every round" regime.

    Permutations are generated in seeded *blocks* of consecutive epochs
    (one generator constructed per block, one Fisher–Yates shuffle per
    row): at ``τ = 1`` a fresh permutation is needed every round, and
    per-epoch generator construction alone would cost more than the
    batched engine's whole pick phase.
    """

    def __init__(self, base: Graph, tau: int, seed: int | None = None):
        tau = validate_tau(tau)
        if not base.is_connected():
            raise ValueError("topology must be connected")
        self.base = base
        self._base = base
        if seed is None:
            # Draw a concrete root once so permutation blocks stay
            # consistent even after cache eviction.
            seed = int(make_rng(None, "relabel-root").integers(0, 2**31 - 1))
        self._seed = seed
        self.n = base.n
        self.tau = tau
        self._cache: dict[int, Graph] = {}
        self._cache_limit = CACHE_LIMIT
        self._block_len = max(1, _PERM_BLOCK_ELEMENTS // max(base.n, 1))
        self._perm_blocks: dict[int, np.ndarray] = {}

    def permutation_at(self, r: int) -> np.ndarray:
        e = epoch_of_round(r, self.tau)
        b, i = divmod(e, self._block_len)
        block = self._perm_blocks.get(b)
        if block is None:
            rng = make_rng(self._seed, "relabel-epoch-block", b)
            block = rng.permuted(
                np.tile(np.arange(self.n, dtype=np.int64), (self._block_len, 1)),
                axis=1,
            )
            _evict_keep_newest(self._perm_blocks, 8)
            self._perm_blocks[b] = block
        return block[i]

    def graph_at(self, r: int) -> Graph:
        e = epoch_of_round(r, self.tau)
        g = self._cache.get(e)
        if g is None:
            g = self.base.relabel(self.permutation_at(r))
            _evict_keep_newest(self._cache, self._cache_limit)
            self._cache[e] = g
        return g

    def max_degree(self, horizon: int) -> int:
        return self.base.max_degree

    # -- pickling ----------------------------------------------------------
    #
    # The epoch-graph cache never travels (cheap to rebuild, large to
    # ship).  Permutation blocks are seed-deterministic, so dropping them
    # is always safe; under an active shared-memory store they are
    # published as segments instead, so a pool worker maps the
    # already-generated blocks zero-copy rather than re-shuffling.

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_cache"] = {}
        blocks = state.pop("_perm_blocks")
        refs: dict[int, tuple[str, str]] = {}
        from repro.util import shm

        store = shm.active_graph_store()
        if store is not None:
            for b, block in blocks.items():
                name = store.publish_array(
                    ("perm-block", self._seed, self.n, self._block_len, b), block
                )
                if name is not None:
                    refs[b] = (store.prefix, name)
        state["_perm_block_refs"] = refs
        return state

    def __setstate__(self, state):
        refs = state.pop("_perm_block_refs", {})
        state["_perm_blocks"] = {}
        self.__dict__.update(state)
        from repro.util import shm

        for b, (prefix, name) in refs.items():
            try:
                self._perm_blocks[b] = shm._load_array_segment(prefix, name)
            except (OSError, ValueError):
                pass  # block regenerates deterministically on first use


class ResampleDynamicGraph(DynamicGraph):
    """Resample a fresh graph from a family each epoch.

    ``sampler(epoch_seed) -> Graph`` must return a connected graph on a
    fixed vertex count.  Unlike :class:`PeriodicRelabelDynamicGraph`, edge
    *structure* (not just labels) changes between epochs; ``α``/``Δ`` vary
    within the family's concentration.
    """

    def __init__(
        self,
        sampler: Callable[[int], Graph],
        tau: int,
        seed: int | None = None,
    ):
        tau = validate_tau(tau)
        self._sampler = sampler
        self._seed = seed
        self.tau = tau
        first = self._sample(0)
        self.n = first.n
        self._cache: dict[int, Graph] = {0: first}
        self._cache_limit = CACHE_LIMIT

    def _sample(self, e: int) -> Graph:
        epoch_seed = int(
            make_rng(self._seed, "resample-epoch", e).integers(0, 2**31 - 1)
        )
        g = self._sampler(epoch_seed)
        if not g.is_connected():
            raise ValueError("sampler returned a disconnected graph")
        return g

    def graph_at(self, r: int) -> Graph:
        e = epoch_of_round(r, self.tau)
        g = self._cache.get(e)
        if g is None:
            g = self._sample(e)
            if g.n != self.n:
                raise ValueError("sampler changed the vertex count")
            _evict_keep_newest(self._cache, self._cache_limit)
            self._cache[e] = g
        return g
