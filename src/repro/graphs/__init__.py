"""Network topologies: static graphs, generator families, dynamic graphs.

The mobile telephone model describes the topology of each round with a
connected undirected graph; a dynamic graph is a round-indexed sequence of
such graphs obeying a stability contract (at least ``τ`` rounds between
changes).  This subpackage provides:

* :class:`~repro.graphs.static.Graph` — immutable CSR-backed static graph;
* :mod:`~repro.graphs.families` — the graph families the paper reasons
  about, including its explicit lower-bound construction
  (:func:`~repro.graphs.families.line_of_stars`);
* :mod:`~repro.graphs.dynamic` — dynamic-graph generators with
  ``τ``-enforcement;
* :mod:`~repro.graphs.mobility` — random-waypoint mobility;
* :mod:`~repro.graphs.validation` — contract checkers.
"""

from repro.graphs.static import Graph
from repro.graphs.dynamic import (
    DynamicGraph,
    StaticDynamicGraph,
    ScheduleDynamicGraph,
    PeriodicRelabelDynamicGraph,
    ResampleDynamicGraph,
)
from repro.graphs.adversary import AdaptiveDynamicGraph, PackingAdversary
from repro.graphs.mobility import (
    GroupWaypointDynamicGraph,
    RandomWaypointDynamicGraph,
    unit_disk_graph,
)
from repro.graphs import families
from repro.graphs import validation

__all__ = [
    "Graph",
    "DynamicGraph",
    "StaticDynamicGraph",
    "ScheduleDynamicGraph",
    "PeriodicRelabelDynamicGraph",
    "ResampleDynamicGraph",
    "AdaptiveDynamicGraph",
    "PackingAdversary",
    "RandomWaypointDynamicGraph",
    "GroupWaypointDynamicGraph",
    "unit_disk_graph",
    "families",
    "validation",
]
