"""Static graph family generators.

Every generator returns a :class:`repro.graphs.static.Graph`.  Families are
chosen to cover the regimes the paper reasons about:

* **well connected** (``α = O(1)``): clique, hypercube, random regular,
  complete bipartite, dense Erdős–Rényi — where epidemic spreading is fast;
* **poorly connected** (``α = O(1/n)``): path, ring, star, barbell — where
  spreading is slow;
* the paper's explicit **lower-bound construction**: :func:`line_of_stars`,
  a line of ``√n`` stars of ``√n`` points each (Section VI, "Analysis
  Optimality"), on which blind gossip needs ``Ω(Δ²·√n) = Ω(Δ²/√α)`` rounds.

The ``*_expansion`` functions record closed-form vertex expansion values
used to sanity-check the numeric estimators in
:mod:`repro.analysis.expansion`.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.graphs.static import Graph
from repro.util.rng import make_rng

__all__ = [
    "clique",
    "path",
    "ring",
    "star",
    "double_star",
    "line_of_stars",
    "wheel",
    "torus",
    "caterpillar",
    "binary_tree",
    "grid",
    "hypercube",
    "complete_bipartite",
    "barbell",
    "lollipop",
    "random_regular",
    "random_bipartite_regular",
    "staircase_bipartite",
    "erdos_renyi",
    "connected_erdos_renyi",
    "FAMILY_BUILDERS",
    "clique_expansion",
    "path_expansion",
    "star_expansion",
    "line_of_stars_expansion",
]


# ---------------------------------------------------------------------------
# Deterministic families
# ---------------------------------------------------------------------------


def clique(n: int) -> Graph:
    """Complete graph K_n (``α ≈ 1``, ``Δ = n - 1``)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def path(n: int) -> Graph:
    """Path / line graph (``α = Θ(1/n)``, ``Δ = 2``)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def ring(n: int) -> Graph:
    """Cycle C_n (``α = Θ(1/n)``, ``Δ = 2``). Requires ``n >= 3``."""
    if n < 3:
        raise ValueError("ring needs n >= 3")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def star(n: int) -> Graph:
    """Star with one hub (vertex 0) and ``n - 1`` leaves (``Δ = n - 1``)."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    return Graph(n, [(0, i) for i in range(1, n)])


def double_star(leaves_per_hub: int) -> Graph:
    """Two hubs joined by an edge, each with its own leaves.

    The minimal network showing the ``Δ²`` bottleneck of blind gossip: the
    hub-to-hub edge connects with probability ``≈ 1/Δ²`` per round.
    """
    if leaves_per_hub < 1:
        raise ValueError("leaves_per_hub must be >= 1")
    k = leaves_per_hub
    # hubs 0 and 1; leaves of hub0: 2..k+1; leaves of hub1: k+2..2k+1.
    edges = [(0, 1)]
    edges += [(0, 2 + i) for i in range(k)]
    edges += [(1, 2 + k + i) for i in range(k)]
    return Graph(2 * k + 2, edges)


def line_of_stars(num_stars: int, points_per_star: int) -> Graph:
    """The paper's Section VI lower-bound construction.

    ``num_stars`` star centers ``u_1 … u_s`` arranged in a line, each
    connected to its own ``points_per_star`` points.  With
    ``num_stars = points_per_star = √n`` this is the network on which blind
    gossip requires ``Ω(Δ²·√n) ⊆ Ω(Δ²/√α)`` rounds: the smallest UID placed
    at ``u_1`` must cross every hub-to-hub edge, each crossing succeeding
    with probability ``≈ 1/Δ²``.

    Vertex layout: centers are ``0 .. num_stars-1`` (in line order); the
    points of center ``i`` are the ``points_per_star`` vertices starting at
    ``num_stars + i * points_per_star``.
    """
    if num_stars < 1 or points_per_star < 0:
        raise ValueError("num_stars >= 1 and points_per_star >= 0 required")
    s, p = num_stars, points_per_star
    edges: list[tuple[int, int]] = [(i, i + 1) for i in range(s - 1)]
    for i in range(s):
        base = s + i * p
        edges += [(i, base + j) for j in range(p)]
    return Graph(s + s * p, edges)


def wheel(n: int) -> Graph:
    """Wheel W_n: a hub connected to every vertex of an (n-1)-cycle.

    Well connected (``α = Θ(1)``) with one dominant-degree vertex — a
    useful contrast to the star, whose leaves have no rim.
    """
    if n < 4:
        raise ValueError("wheel needs n >= 4")
    rim = n - 1
    edges = [(0, i) for i in range(1, n)]
    edges += [(1 + i, 1 + (i + 1) % rim) for i in range(rim)]
    return Graph(n, edges)


def torus(rows: int, cols: int) -> Graph:
    """2-D torus grid (wrap-around grid; ``Δ = 4``, ``α = Θ(1/√n)``)."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows, cols >= 3")
    edges = set()
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            edges.add((min(u, right), max(u, right)))
            edges.add((min(u, down), max(u, down)))
    return Graph(rows * cols, sorted(edges))


def caterpillar(spine: int, legs_per_vertex: int) -> Graph:
    """Caterpillar: a path with ``legs_per_vertex`` pendant leaves per spine vertex.

    A tunable interpolation between the path (0 legs) and the line of
    stars (many legs); ``Δ = legs_per_vertex + 2``.
    """
    if spine < 1 or legs_per_vertex < 0:
        raise ValueError("spine >= 1 and legs_per_vertex >= 0 required")
    edges = [(i, i + 1) for i in range(spine - 1)]
    for i in range(spine):
        base = spine + i * legs_per_vertex
        edges += [(i, base + j) for j in range(legs_per_vertex)]
    return Graph(spine * (1 + legs_per_vertex), edges)


def binary_tree(n: int) -> Graph:
    """Complete-ish binary tree on ``n`` vertices (heap indexing)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return Graph(n, [((i - 1) // 2, i) for i in range(1, n)])


def grid(rows: int, cols: int) -> Graph:
    """2-D grid (``α = Θ(1/√n)``, ``Δ = 4``)."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    edges = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    return Graph(rows * cols, edges)


def hypercube(dim: int) -> Graph:
    """Boolean hypercube Q_dim (``n = 2^dim``, ``Δ = dim``, ``α = Θ(1/√dim)``)."""
    if dim < 1:
        raise ValueError("dim must be >= 1")
    n = 1 << dim
    edges = [(u, u ^ (1 << b)) for u in range(n) for b in range(dim) if u < (u ^ (1 << b))]
    return Graph(n, edges)


def complete_bipartite(a: int, b: int) -> Graph:
    """Complete bipartite graph K_{a,b}."""
    if a < 1 or b < 1:
        raise ValueError("both sides must be non-empty")
    return Graph(a + b, [(u, a + v) for u in range(a) for v in range(b)])


def barbell(clique_size: int, bridge_len: int = 0) -> Graph:
    """Two cliques of ``clique_size`` joined by a path of ``bridge_len`` vertices.

    A classic low-expansion graph: ``α = Θ(1/clique_size)``.
    """
    if clique_size < 2:
        raise ValueError("clique_size must be >= 2")
    k, b = clique_size, bridge_len
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    edges += [(k + u, k + v) for u in range(k) for v in range(u + 1, k)]
    chain = [k - 1] + [2 * k + i for i in range(b)] + [k]
    edges += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    return Graph(2 * k + b, edges)


def lollipop(clique_size: int, tail_len: int) -> Graph:
    """Clique with a pendant path of ``tail_len`` vertices."""
    if clique_size < 2 or tail_len < 1:
        raise ValueError("clique_size >= 2 and tail_len >= 1 required")
    k = clique_size
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    chain = [k - 1] + [k + i for i in range(tail_len)]
    edges += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    return Graph(k + tail_len, edges)


# ---------------------------------------------------------------------------
# Random families
# ---------------------------------------------------------------------------


def random_regular(n: int, d: int, seed: int | None = None, max_tries: int = 50) -> Graph:
    """Random ``d``-regular simple connected graph.

    Samples a uniform pairing of the ``n·d`` half-edges (configuration
    model) and repairs self-loops and multi-edges with random double-edge
    swaps — rejection alone fails for ``d ≳ 6`` since the probability of a
    simple pairing decays like ``exp(-d²/4)``.  Disconnected results (rare
    for ``d ≥ 3``) trigger a resample.
    """
    if n * d % 2 != 0:
        raise ValueError("n*d must be even")
    if d >= n:
        raise ValueError("d must be < n")
    if d < 1:
        raise ValueError("d must be >= 1")
    rng = make_rng(seed, "random_regular", n, d)
    stubs = np.repeat(np.arange(n), d)
    # Above this edge count the dict-based repair's O(m) Python setup
    # dominates generation (~60 s at n=10^6, d=8); the vectorized repair
    # detects the O(d^2) expected bad edges with array ops instead.  The
    # small-n path is kept verbatim so existing seeds reproduce the exact
    # graphs they always produced.
    large = stubs.size // 2 >= _LARGE_REPAIR_EDGES
    for _ in range(max_tries):
        perm = rng.permutation(stubs)
        u, v = perm[0::2].copy(), perm[1::2].copy()
        repaired = (
            _repair_multigraph_vectorized(u, v, n, rng)
            if large
            else _repair_multigraph(u, v, rng)
        )
        if repaired:
            g = Graph(n, np.stack([u, v], axis=1))
            if g.is_connected():
                return g
    raise RuntimeError(f"failed to sample a connected {d}-regular graph on {n} vertices")


#: Edge-count threshold above which ``random_regular`` switches to the
#: vectorized multigraph repair (same distribution family, different RNG
#: consumption — seeds below the threshold keep their historical graphs).
_LARGE_REPAIR_EDGES = 262_144


def _repair_multigraph_vectorized(
    u: np.ndarray, v: np.ndarray, n: int, rng, max_steps: int = 100_000
) -> bool:
    """Large-m variant of :func:`_repair_multigraph`.

    Self-loops and duplicate edges are found with one sort over the
    canonical edge keys; only the expected-O(d²) offenders then go through
    the Python double-edge-swap loop, with edge-multiset membership served
    by binary search on the sorted keys plus a small delta dict of the
    swaps applied so far.
    """
    m = u.shape[0]
    key = np.minimum(u, v) * n + np.maximum(u, v)
    order = np.argsort(key, kind="stable")
    sorted_keys = key[order]
    # Every occurrence of a duplicated key beyond its first is bad; the
    # first occurrence stays put (rewiring the others makes it unique).
    dup_follow = np.zeros(m, dtype=bool)
    dup_follow[order[1:]] = sorted_keys[1:] == sorted_keys[:-1]
    pending = np.flatnonzero(dup_follow | (u == v)).tolist()
    if not pending:
        return True

    delta: dict[int, int] = {}

    def count(k: int) -> int:
        base = int(
            np.searchsorted(sorted_keys, k, side="right")
            - np.searchsorted(sorted_keys, k, side="left")
        )
        return base + delta.get(k, 0)

    steps = 0
    while pending:
        i = pending[-1]
        a, b = int(u[i]), int(v[i])
        k = min(a, b) * n + max(a, b)
        if a != b and count(k) <= 1:
            # A previous swap already repaired this edge (it was picked as
            # a partner, or its duplicate group shrank to one).
            pending.pop()
            continue
        if steps >= max_steps:
            return False
        steps += 1
        j = int(rng.integers(0, m))
        x, y = int(u[j]), int(v[j])
        if j == i or {a, b} & {x, y}:
            continue
        k1 = min(a, x) * n + max(a, x)
        k2 = min(b, y) * n + max(b, y)
        if k1 == k2 or count(k1) or count(k2):
            continue
        kj = min(x, y) * n + max(x, y)
        delta[k] = delta.get(k, 0) - 1
        delta[kj] = delta.get(kj, 0) - 1
        delta[k1] = delta.get(k1, 0) + 1
        delta[k2] = delta.get(k2, 0) + 1
        u[i], v[i] = a, x
        u[j], v[j] = b, y
        pending.pop()
    return True


def _repair_multigraph(u: np.ndarray, v: np.ndarray, rng, max_steps: int = 100_000) -> bool:
    """Remove self-loops and duplicate edges by random double-edge swaps.

    A swap replaces edges ``(a,b), (x,y)`` with ``(a,x), (b,y)`` when the
    four endpoints are distinct and neither new edge already exists.  This
    preserves every vertex degree, so regularity survives.  Returns True
    once the edge arrays describe a simple graph, False if ``max_steps``
    random swaps did not suffice (caller resamples).
    """
    m = u.shape[0]

    def norm(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    counts: dict[tuple[int, int], int] = {}
    key_to_idx: dict[tuple[int, int], set[int]] = {}
    for i in range(m):
        k = norm(int(u[i]), int(v[i]))
        counts[k] = counts.get(k, 0) + 1
        key_to_idx.setdefault(k, set()).add(i)

    def key_is_bad(k: tuple[int, int]) -> bool:
        c = counts.get(k, 0)
        return c > 0 and (k[0] == k[1] or c > 1)

    bad_keys = {k for k in counts if key_is_bad(k)}

    def detach(i: int) -> None:
        k = norm(int(u[i]), int(v[i]))
        counts[k] -= 1
        key_to_idx[k].discard(i)
        if counts[k] == 0:
            del counts[k]
            del key_to_idx[k]
        if not key_is_bad(k):
            bad_keys.discard(k)

    def attach(i: int) -> None:
        k = norm(int(u[i]), int(v[i]))
        counts[k] = counts.get(k, 0) + 1
        key_to_idx.setdefault(k, set()).add(i)
        if key_is_bad(k):
            bad_keys.add(k)

    for _ in range(max_steps):
        if not bad_keys:
            return True
        kk = next(iter(bad_keys))
        i = next(iter(key_to_idx[kk]))
        j = int(rng.integers(0, m))
        a, b, x, y = int(u[i]), int(v[i]), int(u[j]), int(v[j])
        # Endpoint sets must be disjoint (this still allows repairing a
        # self-loop a==b against a partner edge, and a partner self-loop
        # x==y: the new edges (a,x),(b,y) are then loop-free).
        if j == i or {a, b} & {x, y}:
            continue
        k1, k2 = norm(a, x), norm(b, y)
        if k1 == k2 or counts.get(k1, 0) or counts.get(k2, 0):
            continue
        detach(i)
        detach(j)
        u[i], v[i] = a, x
        u[j], v[j] = b, y
        attach(i)
        attach(j)
    return not bad_keys


def random_bipartite_regular(
    m: int, d: int, seed: int | None = None, max_tries: int = 200
) -> Graph:
    """Random ``d``-regular bipartite graph on sides of size ``m`` each.

    Built as the union of ``d`` random perfect matchings between left
    vertices ``0..m-1`` and right vertices ``m..2m-1``.  A random union
    almost surely contains duplicate edges (≈ ``d²/2`` in expectation), so
    duplicates are repaired by uniform transpositions within the offending
    matching; disconnection triggers a full resample.  By König's theorem a
    ``d``-regular bipartite graph always has a perfect matching of size
    ``m`` — exactly the premise of Theorem V.2, which experiment E2
    exercises.
    """
    if d < 1 or d > m:
        raise ValueError("need 1 <= d <= m")
    if d == m:
        return complete_bipartite(m, m)
    rng = make_rng(seed, "bipartite_regular", m, d)
    for _ in range(max_tries):
        perms = [rng.permutation(m) for _ in range(d)]
        # Swap-repair: while matching j duplicates an edge of an earlier
        # matching at left vertex u, transpose p_j[u] with a random slot.
        ok = False
        for _repair in range(50 * d * d + 100):
            seen: dict[tuple[int, int], int] = {}
            dup: tuple[int, int] | None = None
            for j, p in enumerate(perms):
                for u in range(m):
                    key = (u, int(p[u]))
                    if key in seen:
                        dup = (j, u)
                        break
                    seen[key] = j
                if dup is not None:
                    break
            if dup is None:
                ok = True
                break
            j, u = dup
            w = int(rng.integers(0, m))
            perms[j][u], perms[j][w] = perms[j][w], perms[j][u]
        if not ok:
            continue
        left = np.tile(np.arange(m), d)
        right = np.concatenate(perms)
        g = Graph(2 * m, np.stack([left, right + m], axis=1))
        if g.is_connected():
            return g
    raise RuntimeError(f"failed to sample a connected {d}-regular bipartite graph")


def staircase_bipartite(m: int) -> Graph:
    """Nested-neighborhood bipartite graph: left ``i`` ~ right ``0..i``.

    The classic hard instance for random matching strategies (the
    structure behind Theorem V.2's ``Δ^{1/r}`` factor): the graph has a
    perfect matching of size ``m`` (left ``i`` with right ``i``), but
    random proposals pile onto the low-index right vertices — left vertex
    0 *must* connect to right vertex 0, yet every other left vertex also
    proposes to it with some probability, and the nesting repeats at every
    scale.  Contention resolves only gradually over stable rounds.

    Left vertices are ``0..m-1``; right vertices are ``m..2m-1``; left
    ``i`` is adjacent to rights ``m..m+i``.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    edges = [(i, m + j) for i in range(m) for j in range(i + 1)]
    return Graph(2 * m, edges)


def erdos_renyi(n: int, p: float, seed: int | None = None) -> Graph:
    """Erdős–Rényi G(n, p) (possibly disconnected)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = make_rng(seed, "erdos_renyi", n)
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    return Graph(n, np.stack([iu[mask], ju[mask]], axis=1))


def connected_erdos_renyi(
    n: int, p: float, seed: int | None = None, max_tries: int = 200
) -> Graph:
    """G(n, p) conditioned on connectivity (rejection sampling)."""
    for t in range(max_tries):
        g = erdos_renyi(n, p, seed=None if seed is None else seed + 7919 * t)
        if g.is_connected():
            return g
    raise RuntimeError(f"failed to sample a connected G({n},{p}) graph")


# ---------------------------------------------------------------------------
# Analytic vertex expansion (closed forms used as estimator oracles)
# ---------------------------------------------------------------------------


def clique_expansion(n: int) -> float:
    """Exact α of K_n: minimized at ``|S| = ⌊n/2⌋`` where ``∂S = V \\ S``."""
    if n < 2:
        raise ValueError("expansion needs n >= 2")
    s = n // 2
    return (n - s) / s


def path_expansion(n: int) -> float:
    """Exact α of the path: a prefix of ``⌊n/2⌋`` vertices has one boundary vertex."""
    if n < 2:
        raise ValueError("expansion needs n >= 2")
    return 1.0 / (n // 2)


def star_expansion(n: int) -> float:
    """Exact α of the star: ``⌊n/2⌋`` leaves have only the hub as boundary."""
    if n < 3:
        raise ValueError("star expansion needs n >= 3")
    return 1.0 / (n // 2)


def line_of_stars_expansion(num_stars: int, points_per_star: int) -> float:
    """Exact α of the line-of-stars.

    The minimizing cut takes a prefix of whole stars *plus any number of
    points of the next star*: its boundary is the single next center.
    Since point counts fill every integer size up to ``(s-1)(1+p)+p``, the
    optimum is ``α = 1/⌊n/2⌋`` with ``n = s(1+p)`` — exactly as for the
    path and the star.
    """
    s, p = num_stars, points_per_star
    if s < 2:
        raise ValueError("need at least two stars")
    n = s * (1 + p)
    return 1.0 / (n // 2)


FAMILY_BUILDERS: dict[str, Callable[..., Graph]] = {
    "clique": clique,
    "path": path,
    "ring": ring,
    "star": star,
    "double_star": double_star,
    "line_of_stars": line_of_stars,
    "wheel": wheel,
    "torus": torus,
    "caterpillar": caterpillar,
    "binary_tree": binary_tree,
    "grid": grid,
    "hypercube": hypercube,
    "complete_bipartite": complete_bipartite,
    "barbell": barbell,
    "lollipop": lollipop,
    "random_regular": random_regular,
    "random_bipartite_regular": random_bipartite_regular,
    "staircase_bipartite": staircase_bipartite,
    "erdos_renyi": erdos_renyi,
    "connected_erdos_renyi": connected_erdos_renyi,
}


# ---------------------------------------------------------------------------
# Campaign-wide graph memo
# ---------------------------------------------------------------------------
#
# Under an active shared-memory store (see :mod:`repro.util.shm`) every
# builder call with fully-determined scalar arguments is keyed by
# ``(family, bound args)``: the first caller anywhere in the campaign —
# parent or any pool worker — builds and publishes the CSR; everyone
# else maps it zero-copy.  Calls with ``seed=None`` (fresh random draw
# each time) or non-scalar arguments bypass the memo untouched, as does
# everything outside a campaign (no active store).


def _shared_memoized(name: str, fn: Callable[..., Graph]) -> Callable[..., Graph]:
    import functools
    import inspect

    from repro.util import shm

    sig = inspect.signature(fn)

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        store = shm.active_graph_store()
        if store is None:
            return fn(*args, **kwargs)
        try:
            bound = sig.bind(*args, **kwargs)
        except TypeError:
            return fn(*args, **kwargs)
        bound.apply_defaults()
        items = tuple(sorted(bound.arguments.items()))
        if any(
            not isinstance(value, (bool, int, float, str))
            for _key, value in items
            if value is not None
        ):
            return fn(*args, **kwargs)
        if bound.arguments.get("seed", 0) is None:
            # Unseeded sampling must stay sampling: every call draws fresh.
            return fn(*args, **kwargs)
        return store.get_or_build(
            ("family", name) + items, lambda: fn(*args, **kwargs)
        )

    return wrapper


for _name in list(FAMILY_BUILDERS):
    _wrapped = _shared_memoized(_name, FAMILY_BUILDERS[_name])
    globals()[_name] = _wrapped
    FAMILY_BUILDERS[_name] = _wrapped
del _name, _wrapped
