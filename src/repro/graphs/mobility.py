"""Random-waypoint mobility: a physically-motivated dynamic graph.

The abstract churn generators in :mod:`repro.graphs.dynamic` exercise the
stability contract directly; this module provides the kind of dynamic
graph the paper's motivation describes — *people carrying phones* — as a
random-waypoint model:

* ``n`` devices move in the unit square; each picks a waypoint uniformly
  at random, moves toward it at its speed, then picks a new one;
* the topology of an epoch is the unit-disk graph of radius ``radius`` on
  the positions at the epoch's start, held for ``τ`` rounds;
* because the model requires connected topologies, disconnected unit-disk
  snapshots are *repaired* by linking each component to its nearest other
  component (nearest pair of devices), modelling a minimal relay overlay.

Determinism: positions are a pure function of ``(seed, epoch)`` computed by
advancing the walk epoch-by-epoch from its initial state; epochs are cached
so that ``graph_at`` may be called out of order.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.dynamic import DynamicGraph, epoch_of_round
from repro.graphs.static import Graph
from repro.util.rng import make_rng

__all__ = ["RandomWaypointDynamicGraph", "GroupWaypointDynamicGraph", "unit_disk_graph"]


def unit_disk_graph(positions: np.ndarray, radius: float, *, repair: bool = True) -> Graph:
    """Unit-disk graph of ``positions`` with optional connectivity repair.

    Parameters
    ----------
    positions
        ``(n, 2)`` array of points in the unit square.
    radius
        Connection radius: ``u ~ v`` iff ``|pos_u - pos_v| <= radius``.
    repair
        When true, repeatedly add the shortest edge between the component
        containing vertex 0 and the rest until connected.
    """
    pos = np.asarray(positions, dtype=np.float64)
    n = pos.shape[0]
    d2 = np.sum((pos[:, None, :] - pos[None, :, :]) ** 2, axis=-1)
    iu, ju = np.triu_indices(n, k=1)
    mask = d2[iu, ju] <= radius * radius
    edges = list(zip(iu[mask].tolist(), ju[mask].tolist()))
    g = Graph(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    if not repair or g.is_connected():
        return g
    # Greedy repair: while disconnected, add the globally shortest edge
    # crossing between two components.
    while True:
        comps = g.connected_components()
        if len(comps) == 1:
            return g
        comp_id = np.empty(n, dtype=np.int64)
        for ci, verts in enumerate(comps):
            comp_id[verts] = ci
        cross = comp_id[iu] != comp_id[ju]
        cand = np.flatnonzero(cross)
        best = cand[np.argmin(d2[iu[cand], ju[cand]])]
        edges.append((int(iu[best]), int(ju[best])))
        g = Graph(n, np.asarray(edges, dtype=np.int64))


class GroupWaypointDynamicGraph(DynamicGraph):
    """Clustered mobility: groups share waypoints, members jitter locally.

    Models crowds (protest blocs, tour groups): the network is ``groups``
    clusters of roughly equal size; each cluster follows its own random
    waypoint walk, and each member's position is the cluster anchor plus a
    bounded personal offset re-sampled per epoch.  Intra-cluster topology
    stays dense while inter-cluster contact depends on anchors drifting
    within radio range — producing exactly the merge/split behaviour the
    self-stabilization experiments care about.

    Connectivity is repaired the same way as the base model (minimal
    bridge edges), so the formal model's connected-topology requirement
    always holds.
    """

    def __init__(
        self,
        n: int,
        tau: int,
        *,
        groups: int = 3,
        radius: float = 0.3,
        speed: float = 0.05,
        spread: float = 0.08,
        seed: int | None = None,
    ):
        if n < 2:
            raise ValueError("need at least two devices")
        if tau < 1:
            raise ValueError("tau must be >= 1")
        if not 1 <= groups <= n:
            raise ValueError("groups must be in [1, n]")
        if radius <= 0 or speed < 0 or spread < 0:
            raise ValueError("radius positive; speed and spread non-negative")
        self.n = n
        self.tau = tau
        self._groups = groups
        self._radius = radius
        self._speed = speed
        self._spread = spread
        self._seed = seed
        rng = make_rng(seed, "group-init")
        self._member_group = rng.integers(0, groups, size=n)
        self._anchor0 = rng.random((groups, 2))
        self._way0 = rng.random((groups, 2))
        self._states: dict[int, tuple[np.ndarray, np.ndarray]] = {
            0: (self._anchor0, self._way0)
        }
        self._graphs: dict[int, Graph] = {}
        self._last_epoch = 0

    def _advance(self, pos, way, e):
        rng = make_rng(self._seed, "group-epoch", e)
        delta = way - pos
        dist = np.linalg.norm(delta, axis=1)
        arrive = dist <= self._speed
        newpos = pos.copy()
        moving = ~arrive & (dist > 0)
        newpos[moving] = pos[moving] + delta[moving] * (self._speed / dist[moving, None])
        newpos[arrive] = way[arrive]
        newway = way.copy()
        if np.any(arrive):
            newway[arrive] = rng.random((int(arrive.sum()), 2))
        return newpos, newway

    def _state(self, e: int):
        if e in self._states:
            return self._states[e]
        pos, way = self._states[self._last_epoch]
        for step in range(self._last_epoch, e):
            pos, way = self._advance(pos, way, step + 1)
            self._states[step + 1] = (pos, way)
        self._last_epoch = max(self._last_epoch, e)
        return self._states[e]

    def graph_at(self, r: int) -> Graph:
        e = epoch_of_round(r, self.tau)
        g = self._graphs.get(e)
        if g is None:
            anchors, _ = self._state(e)
            rng = make_rng(self._seed, "group-jitter", e)
            offsets = (rng.random((self.n, 2)) - 0.5) * 2 * self._spread
            positions = np.clip(anchors[self._member_group] + offsets, 0.0, 1.0)
            g = unit_disk_graph(positions, self._radius, repair=True)
            if len(self._graphs) > 4096:
                self._graphs.clear()
            self._graphs[e] = g
        return g


class RandomWaypointDynamicGraph(DynamicGraph):
    """Random-waypoint mobility quantized to ``τ``-stable epochs.

    Parameters
    ----------
    n
        Number of devices.
    tau
        Rounds per epoch (stability factor).
    radius
        Unit-disk connection radius.
    speed
        Distance moved per *epoch* (the walk advances once per epoch so the
        declared stability is honoured exactly).
    seed
        Root seed for initial placement and waypoint choices.
    """

    def __init__(
        self,
        n: int,
        tau: int,
        *,
        radius: float = 0.3,
        speed: float = 0.05,
        seed: int | None = None,
    ):
        if n < 2:
            raise ValueError("need at least two devices")
        if tau < 1:
            raise ValueError("tau must be >= 1")
        if radius <= 0 or speed < 0:
            raise ValueError("radius must be positive and speed non-negative")
        self.n = n
        self.tau = tau
        self._radius = radius
        self._speed = speed
        self._seed = seed
        rng = make_rng(seed, "waypoint-init")
        self._pos0 = rng.random((n, 2))
        self._way0 = rng.random((n, 2))
        # Sequentially-computed epoch states: epoch -> (positions, waypoints).
        self._states: dict[int, tuple[np.ndarray, np.ndarray]] = {
            0: (self._pos0, self._way0)
        }
        self._graphs: dict[int, Graph] = {}
        self._last_epoch = 0

    def _advance(self, pos: np.ndarray, way: np.ndarray, e: int):
        """One epoch step of the waypoint walk (vectorized over devices)."""
        rng = make_rng(self._seed, "waypoint-epoch", e)
        delta = way - pos
        dist = np.linalg.norm(delta, axis=1)
        arrive = dist <= self._speed
        newpos = pos.copy()
        moving = ~arrive & (dist > 0)
        newpos[moving] = pos[moving] + delta[moving] * (self._speed / dist[moving, None])
        newpos[arrive] = way[arrive]
        newway = way.copy()
        if np.any(arrive):
            newway[arrive] = rng.random((int(arrive.sum()), 2))
        return newpos, newway

    def _state(self, e: int) -> tuple[np.ndarray, np.ndarray]:
        if e in self._states:
            return self._states[e]
        # Advance sequentially from the last materialized epoch.
        pos, way = self._states[self._last_epoch]
        for step in range(self._last_epoch, e):
            pos, way = self._advance(pos, way, step + 1)
            self._states[step + 1] = (pos, way)
        self._last_epoch = max(self._last_epoch, e)
        return self._states[e]

    def graph_at(self, r: int) -> Graph:
        e = epoch_of_round(r, self.tau)
        g = self._graphs.get(e)
        if g is None:
            pos, _ = self._state(e)
            g = unit_disk_graph(pos, self._radius, repair=True)
            if len(self._graphs) > 4096:
                self._graphs.clear()
            self._graphs[e] = g
        return g
