"""repro: leader election in a smartphone peer-to-peer network.

A from-scratch reproduction of Calvin Newport, *Leader Election in a
Smartphone Peer-to-Peer Network* (IPDPS 2017): the **mobile telephone
model** simulator, the paper's three leader-election algorithms (blind
gossip, bit convergence, non-synchronized bit convergence), its rumor
spreading results (PUSH-PULL at b=0, PPUSH at b=1), and a harness that
regenerates the shape of every theorem in the paper's evaluation.

Quickstart
----------
>>> from repro.graphs import families, StaticDynamicGraph
>>> from repro.algorithms import BlindGossipVectorized
>>> from repro.core import VectorizedEngine
>>> from repro.harness.experiments import uid_keys_random
>>> g = families.random_regular(64, 4, seed=1)
>>> keys = uid_keys_random(64, seed=1)
>>> engine = VectorizedEngine(StaticDynamicGraph(g),
...                           BlindGossipVectorized(keys), seed=1)
>>> result = engine.run(max_rounds=100_000)
>>> result.stabilized
True

Layout
------
``repro.core``
    The mobile telephone model: round engines (reference + vectorized),
    payload budgets, UID black boxes, the classical-model baseline.
``repro.algorithms``
    Blind gossip, PUSH-PULL, PPUSH, bit convergence, async bit
    convergence — each as a readable per-node protocol and a NumPy kernel.
``repro.graphs``
    Static graph families (including the paper's line-of-stars lower
    bound construction), dynamic graphs with the ``τ`` stability
    contract, and random-waypoint mobility.
``repro.analysis``
    Vertex expansion, cut matchings (Hopcroft-Karp), every closed-form
    bound in the paper, and trial statistics.
``repro.harness``
    Seeded multi-trial running and the per-claim experiment registry.
"""

from repro import algorithms, analysis, core, graphs, harness, util

__version__ = "1.0.0"

__all__ = ["algorithms", "analysis", "core", "graphs", "harness", "util", "__version__"]
