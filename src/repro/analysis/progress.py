"""Round- and phase-level progress instrumentation.

The paper's analyses reason about *progress units*: the growth of the
informed set per round (Sections V-VI) and the classification of bit
convergence phases as **good** (Definition VII.3 — the 0-bit set ``S_i``
grows, or the 1-bit set ``U_i`` shrinks, by a ``1 + α/(4·f(τ̂))`` factor,
or the maximum difference bit advances).  This module measures those
quantities on live executions so experiments can verify the probabilistic
lemmas directly:

* :class:`SpreadCurve` — per-round informed-set counts with growth-rate and
  time-to-fraction queries;
* :class:`PhaseClassifier` — replays a bit convergence execution at phase
  granularity and classifies each phase per Definition VII.3, yielding the
  empirical good-phase frequency that Lemma VII.5 lower-bounds by a
  constant ``p_g``;
* :func:`sparkline` — compact ASCII rendering of a curve for examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.algorithms.bit_convergence import BitConvergenceVectorized
from repro.analysis.bounds import f_approx, tau_hat
from repro.core.vectorized import VectorizedEngine

__all__ = ["SpreadCurve", "PhaseRecord", "PhaseClassifier", "sparkline"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a sequence as a compact ASCII sparkline.

    Values are down-sampled to ``width`` buckets (bucket mean) and mapped
    onto eight block heights; constant series render as a flat line.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * arr.size
    idx = ((arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).round().astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


class SpreadCurve:
    """Per-round counts of a monotone progress quantity.

    Typically fed the informed-set size of a rumor spreading run or the
    winner-holder count of a leader election run.
    """

    def __init__(self) -> None:
        self.counts: list[int] = []

    def record(self, count: int) -> None:
        self.counts.append(int(count))

    def __len__(self) -> int:
        return len(self.counts)

    def time_to_fraction(self, n: int, fraction: float) -> int | None:
        """First 1-indexed round where the count reaches ``fraction·n``."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        threshold = fraction * n
        for r, c in enumerate(self.counts, start=1):
            if c >= threshold:
                return r
        return None

    def growth_factors(self, window: int = 1) -> np.ndarray:
        """Multiplicative growth per ``window`` rounds (the paper's lens)."""
        if window < 1:
            raise ValueError("window must be >= 1")
        arr = np.asarray(self.counts, dtype=np.float64)
        if arr.size <= window:
            return np.empty(0)
        base = arr[:-window]
        nxt = arr[window:]
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(base > 0, nxt / base, np.nan)
        return out

    def spark(self, width: int = 60) -> str:
        """ASCII sparkline of the curve."""
        return sparkline(self.counts, width)


@dataclass(frozen=True)
class PhaseRecord:
    """One bit convergence phase, classified per Definition VII.3.

    Attributes
    ----------
    phase
        1-indexed phase number.
    b_i
        Maximum difference bit at the phase start (``None`` = the paper's
        ``⊥``: all committed tags agree).
    s_size
        ``|S_i|``: nodes with a 0 in position ``b_i`` (``None`` if
        ``b_i = ⊥``).
    advanced
        The maximum difference bit changed (or reached ⊥) by the phase end.
    grew
        The relevant set crossed the Definition VII.3 growth/shrink factor.
    good
        ``advanced or grew`` — Definition VII.3's disjunction.
    """

    phase: int
    b_i: int | None
    s_size: int | None
    advanced: bool
    grew: bool

    @property
    def good(self) -> bool:
        return self.advanced or self.grew


class PhaseClassifier:
    """Runs bit convergence and classifies every phase (Definition VII.3).

    Parameters
    ----------
    engine
        A :class:`~repro.core.vectorized.VectorizedEngine` whose algorithm
        is a :class:`~repro.algorithms.bit_convergence.BitConvergenceVectorized`.
    alpha
        The (dynamic) vertex expansion used in the goodness threshold.
    tau
        Stability factor used for ``τ̂ = min(τ, log Δ)`` in ``f(τ̂)``.
    c
        The unspecified constant in ``f``; Definition VII.3's factor is
        ``1 + α/(4·f(τ̂))``.
    """

    def __init__(
        self,
        engine: VectorizedEngine,
        *,
        alpha: float,
        tau: float,
        c: float = 1.0,
    ):
        if not isinstance(engine.algo, BitConvergenceVectorized):
            raise TypeError("PhaseClassifier requires a BitConvergenceVectorized run")
        self.engine = engine
        self.algo = engine.algo
        self.config = engine.algo.config
        delta = self.config.delta_bound
        th = tau_hat(tau if not math.isinf(tau) else delta, delta)
        n = self.config.n_upper
        self.factor = alpha / (4.0 * f_approx(th, delta, n, c))
        self.records: list[PhaseRecord] = []

    def _snapshot(self):
        b = self.algo.max_difference_bit(self.engine.state)
        s = self.algo.zero_set_size(self.engine.state)
        return b, s

    def run(self, max_phases: int) -> list[PhaseRecord]:
        """Execute up to ``max_phases`` phases, classifying each.

        Stops early when the committed tags converge (``b_i = ⊥``).
        """
        plen = self.config.phase_len
        n = self.engine.n
        r = self.engine.rounds_executed
        for phase in range(1, max_phases + 1):
            b0, s0 = self._snapshot()
            if b0 is None:
                break
            for _ in range(plen):
                r += 1
                self.engine.step(r)
            b1, s1 = self._snapshot()
            advanced = (b1 is None) or (b1 != b0)
            grew = False
            if not advanced and s0 is not None and s1 is not None:
                if s0 <= n / 2:
                    grew = s1 >= (1.0 + self.factor) * s0
                else:
                    u0, u1 = n - s0, n - s1
                    grew = u1 <= (1.0 - self.factor) * u0
            self.records.append(
                PhaseRecord(phase=phase, b_i=b0, s_size=s0, advanced=advanced, grew=grew)
            )
        return self.records

    @property
    def good_fraction(self) -> float:
        """Empirical good-phase frequency (Lemma VII.5's ``p_g`` floor)."""
        if not self.records:
            raise ValueError("no phases recorded; call run() first")
        return sum(rec.good for rec in self.records) / len(self.records)
