"""Trial aggregation and scaling-fit statistics for the harness.

The paper states bounds that hold *with high probability* (≥ 1 - 1/n), so
the natural empirical summary of "rounds to stabilize" over repeated trials
is a high quantile, not the mean.  This module provides:

* :class:`Summary` — mean / median / quantiles / bootstrap CI of a sample;
* :func:`loglog_slope` — least-squares slope in log-log space, used to
  recover empirical scaling exponents (e.g. the ``Δ²`` of Theorem VI.1);
* :func:`ratio_fit` — normalized measured/bound ratio series used to test
  whether a bound's *shape* tracks the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.rng import make_rng

__all__ = ["Summary", "summarize", "loglog_slope", "ratio_fit", "geometric_mean"]


@dataclass(frozen=True)
class Summary:
    """Summary statistics of one experimental cell."""

    count: int
    mean: float
    std: float
    median: float
    q10: float
    q90: float
    max: float
    #: 95% bootstrap confidence interval on the mean.
    ci_low: float
    ci_high: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.1f}±[{self.ci_low:.1f},{self.ci_high:.1f}] "
            f"median={self.median:.1f} q90={self.q90:.1f}"
        )


def summarize(samples: Sequence[float], *, seed: int | None = 0, boot: int = 400) -> Summary:
    """Summarize a sample with a bootstrap CI on the mean."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if arr.size == 1:
        v = float(arr[0])
        return Summary(1, v, 0.0, v, v, v, v, v, v)
    rng = make_rng(seed, "bootstrap")
    idx = rng.integers(0, arr.size, size=(boot, arr.size))
    boot_means = arr[idx].mean(axis=1)
    lo, hi = np.percentile(boot_means, [2.5, 97.5])
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)),
        median=float(np.median(arr)),
        q10=float(np.percentile(arr, 10)),
        q90=float(np.percentile(arr, 90)),
        max=float(arr.max()),
        ci_low=float(lo),
        ci_high=float(hi),
    )


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``log y = slope·log x + intercept``.

    Returns ``(slope, r_squared)``.  The slope is the empirical scaling
    exponent: e.g. measured stabilization rounds growing as ``Δ^2`` yields
    slope ≈ 2 against ``Δ``.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        x = np.log(np.asarray(list(xs), dtype=np.float64))
        y = np.log(np.asarray(list(ys), dtype=np.float64))
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (x, y) points")
    if np.any(~np.isfinite(x)) or np.any(~np.isfinite(y)):
        raise ValueError("inputs must be positive and finite")
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return float(slope), float(r2)


def ratio_fit(measured: Sequence[float], bound: Sequence[float]) -> np.ndarray:
    """Measured/bound ratios normalized by their geometric mean.

    A bound whose *shape* matches the measurement produces ratios close to
    1 after normalization; systematic drift reveals a shape mismatch.
    """
    m = np.asarray(list(measured), dtype=np.float64)
    b = np.asarray(list(bound), dtype=np.float64)
    if m.shape != b.shape or m.size == 0:
        raise ValueError("measured and bound must be equal-length, non-empty")
    if np.any(m <= 0) or np.any(b <= 0):
        raise ValueError("ratios need positive values")
    r = m / b
    return r / geometric_mean(r)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0 or np.any(arr <= 0):
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(arr))))
