"""Maximum bipartite matchings and cut-matching quantities.

Paper Section V connects a graph's vertex expansion to the *edge
independence number* ``ν(B(S))`` of the bipartite cut graph ``B(S)``
(bipartitions ``S`` and ``V \\ S``, crossing edges only):

    Lemma V.1:  γ = min_{S, |S| ≤ n/2}  ν(B(S)) / |S|   ≥   α / 4.

``ν(B(S))`` is the true per-round information capacity across the cut in
the mobile telephone model, since each node joins at most one connection
per round.  This module implements Hopcroft-Karp maximum matching from
scratch (networkx is used only as a test oracle), cut matchings, and the
exact ``γ`` by subset enumeration for small graphs.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from repro.graphs.static import Graph

__all__ = [
    "hopcroft_karp",
    "cut_matching",
    "cut_matching_size",
    "gamma_exact",
    "maximum_matching_pairs",
]

_INF = float("inf")


def hopcroft_karp(
    n_left: int, n_right: int, adj: Sequence[Sequence[int]]
) -> tuple[int, np.ndarray, np.ndarray]:
    """Maximum matching of a bipartite graph via Hopcroft-Karp.

    Parameters
    ----------
    n_left, n_right
        Sizes of the two bipartitions.
    adj
        ``adj[u]`` lists the right-vertices adjacent to left-vertex ``u``.

    Returns
    -------
    size, match_left, match_right
        Matching size; ``match_left[u]`` is the right partner of left
        vertex ``u`` (or -1), and symmetrically ``match_right``.

    Notes
    -----
    Runs in ``O(E·√V)``; phases alternate a BFS layering from free left
    vertices with DFS augmentation along shortest alternating paths.
    """
    match_l = np.full(n_left, -1, dtype=np.int64)
    match_r = np.full(n_right, -1, dtype=np.int64)
    dist = np.zeros(n_left, dtype=np.float64)

    def bfs() -> bool:
        q: deque[int] = deque()
        for u in range(n_left):
            if match_l[u] == -1:
                dist[u] = 0.0
                q.append(u)
            else:
                dist[u] = _INF
        found = False
        while q:
            u = q.popleft()
            for v in adj[u]:
                w = match_r[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1.0
                    q.append(int(w))
        return found

    def dfs(u: int) -> bool:
        for v in adj[u]:
            w = match_r[v]
            if w == -1 or (dist[w] == dist[u] + 1.0 and dfs(int(w))):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = _INF
        return False

    size = 0
    while bfs():
        for u in range(n_left):
            if match_l[u] == -1 and dfs(u):
                size += 1
    return size, match_l, match_r


def cut_matching(g: Graph, s_set: Iterable[int]) -> list[tuple[int, int]]:
    """A maximum matching on ``B(S)`` as ``(u_in_S, v_outside)`` pairs.

    ``B(S)`` is the bipartite graph with bipartitions ``(S, V \\ S)`` and
    the edges of ``g`` crossing the cut (paper Section V).
    """
    s_arr = np.asarray(sorted(set(int(x) for x in s_set)), dtype=np.int64)
    if s_arr.size == 0:
        return []
    if s_arr.min() < 0 or s_arr.max() >= g.n:
        raise ValueError("S contains out-of-range vertices")
    in_s = np.zeros(g.n, dtype=bool)
    in_s[s_arr] = True
    right_verts = np.flatnonzero(~in_s)
    right_index = np.full(g.n, -1, dtype=np.int64)
    right_index[right_verts] = np.arange(right_verts.size)
    adj: list[list[int]] = []
    for u in s_arr:
        nbrs = g.neighbors(int(u))
        adj.append([int(right_index[v]) for v in nbrs if not in_s[v]])
    _, match_l, _ = hopcroft_karp(s_arr.size, right_verts.size, adj)
    return [
        (int(s_arr[i]), int(right_verts[match_l[i]]))
        for i in range(s_arr.size)
        if match_l[i] >= 0
    ]


def cut_matching_size(g: Graph, s_set: Iterable[int]) -> int:
    """``ν(B(S))``: maximum number of concurrent connections across the cut."""
    return len(cut_matching(g, s_set))


def maximum_matching_pairs(g: Graph) -> list[tuple[int, int]]:
    """Maximum matching of an arbitrary graph **restricted to bipartite use**.

    Provided for cut graphs only; raises if ``g`` is not bipartite, since
    Hopcroft-Karp does not handle odd cycles.
    """
    color = np.full(g.n, -1, dtype=np.int64)
    for root in range(g.n):
        if color[root] >= 0:
            continue
        color[root] = 0
        stack = [root]
        while stack:
            u = stack.pop()
            for v in g.neighbors(u):
                if color[v] < 0:
                    color[v] = 1 - color[u]
                    stack.append(int(v))
                elif color[v] == color[u]:
                    raise ValueError("graph is not bipartite")
    left = np.flatnonzero(color == 0)
    return cut_matching(g, left)


def gamma_exact(g: Graph) -> float:
    """Exact ``γ = min_{S, 0 < |S| ≤ n/2} ν(B(S))/|S|`` by enumeration.

    Exponential in ``n``; intended for the Lemma V.1 verification
    experiments (``n ≤ ~14``).
    """
    n = g.n
    if n < 2:
        raise ValueError("gamma needs n >= 2")
    if n > 18:
        raise ValueError("gamma_exact is exponential; use n <= 18")
    best = _INF
    verts = range(n)
    for size in range(1, n // 2 + 1):
        for s in combinations(verts, size):
            nu = cut_matching_size(g, s)
            best = min(best, nu / size)
            if best == 0.0:
                return 0.0
    return float(best)
