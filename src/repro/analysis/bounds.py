"""Closed forms of every bound stated in the paper.

These are the comparison curves the benchmark harness plots measured data
against.  All logarithms are base 2 (the paper assumes ``Δ`` is a power of
two so ``log Δ`` is whole); constants ``c`` default to 1 since the paper's
constants are unspecified — the harness fits/normalizes them.

Bound index
-----------
=========  =================================================================
Thm V.2    PPUSH informs ``≥ m / f(r)`` nodes across a cut of matching size
           ``m`` in ``r ≤ log Δ`` stable rounds, ``f(r) = Δ^{1/r}·c·r·log n``
Thm VI.1   blind gossip: ``O((1/α)·Δ²·log² n)`` rounds (any ``τ ≥ 1``, b=0)
Sec VI     blind gossip lower bound: ``Ω(Δ²/√α)`` on the line of stars
Cor VI.6   PUSH-PULL rumor spreading: same bound as Thm VI.1
Thm VII.2  bit convergence: ``O((1/α)·Δ^{1/τ̂}·τ̂·log⁵ n)``,
           ``τ̂ = min(τ, log Δ)`` (b = 1, synchronized starts)
Thm VIII.2 async bit convergence: ``O((1/α)·Δ^{1/τ̂}·τ̂·log⁸ n)`` after the
           last activation (b = ⌈log k⌉ + 1 = log log n + O(1))
=========  =================================================================
"""

from __future__ import annotations

import math

__all__ = [
    "log2c",
    "tau_hat",
    "f_approx",
    "ppush_informed_lower",
    "blind_gossip_upper",
    "blind_gossip_lower",
    "push_pull_upper",
    "bit_convergence_upper",
    "async_bit_convergence_upper",
    "tag_bits",
    "async_tag_length",
    "group_length",
    "phase_length",
    "t_max_good_phases",
    "classical_push_pull_upper",
]


def log2c(x: float) -> float:
    """``max(1, log2 x)`` — guards the degenerate tiny-parameter cases."""
    return max(1.0, math.log2(max(x, 2.0)))


def tau_hat(tau: float, delta: int) -> float:
    """``τ̂ = min(τ, log Δ)``: stability beyond ``log Δ`` buys nothing."""
    if tau < 1:
        raise ValueError("tau must be >= 1")
    return max(1.0, min(float(tau), log2c(delta)))


def f_approx(r: float, delta: int, n: int, c: float = 1.0) -> float:
    """Theorem V.2 approximation factor ``f(r) = Δ^{1/r} · c · r · log n``."""
    if r < 1:
        raise ValueError("r must be >= 1")
    return (delta ** (1.0 / r)) * c * r * log2c(n)


def ppush_informed_lower(m: int, r: float, delta: int, n: int, c: float = 1.0) -> float:
    """Theorem V.2: expected-new-informed lower bound ``m / f(r)``."""
    return m / f_approx(r, delta, n, c)


def blind_gossip_upper(n: int, alpha: float, delta: int, c: float = 1.0) -> float:
    """Theorem VI.1 upper bound ``c · (1/α) · Δ² · log² n``."""
    if not 0 < alpha <= 1 + 1e-12:
        raise ValueError("alpha must be in (0, 1]")
    return c * (1.0 / alpha) * (delta ** 2) * (log2c(n) ** 2)


def blind_gossip_lower(alpha: float, delta: int, c: float = 1.0) -> float:
    """Section VI lower bound ``c · Δ² / √α`` (line-of-stars construction)."""
    if not 0 < alpha <= 1 + 1e-12:
        raise ValueError("alpha must be in (0, 1]")
    return c * (delta ** 2) / math.sqrt(alpha)


def push_pull_upper(n: int, alpha: float, delta: int, c: float = 1.0) -> float:
    """Corollary VI.6: PUSH-PULL rumor spreading, identical to Thm VI.1."""
    return blind_gossip_upper(n, alpha, delta, c)


def bit_convergence_upper(
    n: int, alpha: float, delta: int, tau: float, c: float = 1.0
) -> float:
    """Theorem VII.2 upper bound ``c · (1/α) · Δ^{1/τ̂} · τ̂ · log⁵ n``."""
    if not 0 < alpha <= 1 + 1e-12:
        raise ValueError("alpha must be in (0, 1]")
    th = tau_hat(tau, delta)
    return c * (1.0 / alpha) * (delta ** (1.0 / th)) * th * (log2c(n) ** 5)


def async_bit_convergence_upper(
    n: int, alpha: float, delta: int, tau: float, c: float = 1.0
) -> float:
    """Theorem VIII.2 upper bound ``c · (1/α) · Δ^{1/τ̂} · τ̂ · log⁸ n``."""
    if not 0 < alpha <= 1 + 1e-12:
        raise ValueError("alpha must be in (0, 1]")
    th = tau_hat(tau, delta)
    return c * (1.0 / alpha) * (delta ** (1.0 / th)) * th * (log2c(n) ** 8)


def classical_push_pull_upper(n: int, alpha: float, c: float = 1.0) -> float:
    """Classical-model / b=1 stable-graph reference: ``c·(1/α)·polylog n``.

    Used only as a comparison curve for E10 (the paper cites this as the
    rate the mobile model with b=0 provably cannot match).
    """
    if not 0 < alpha <= 1 + 1e-12:
        raise ValueError("alpha must be in (0, 1]")
    return c * (1.0 / alpha) * (log2c(n) ** 2)


# ---------------------------------------------------------------------------
# Algorithm structure accounting (Sections VII-VIII)
# ---------------------------------------------------------------------------


def tag_bits(n_upper: int, beta: float = 2.0) -> int:
    """``k = ⌈β·log N⌉``: ID-tag width.

    ``β`` controls the tag-collision probability (``n^{-(β-1)}`` per pair
    union-bounded); β = 2 keeps collisions w.h.p. absent at the paper's
    level while staying cheap to simulate.
    """
    if n_upper < 2:
        raise ValueError("N must be >= 2")
    if beta < 1:
        raise ValueError("beta must be >= 1")
    return max(1, math.ceil(beta * math.log2(n_upper)))


def async_tag_length(k: int) -> int:
    """Section VIII advertising width ``b = ⌈log k⌉ + 1`` bits."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return max(1, math.ceil(math.log2(k))) + 1


def group_length(delta: int) -> int:
    """Group length ``2·log Δ`` rounds (minimum 2).

    A group always contains a stretch of ``τ̂ = min(τ, log Δ)`` consecutive
    stable rounds, which is what Theorem V.2 consumes.
    """
    return max(2, 2 * int(round(log2c(delta))))


def phase_length(delta: int, k: int) -> int:
    """Phase length in rounds: ``k`` groups of ``2·log Δ`` rounds each."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return k * group_length(delta)


def t_max_good_phases(alpha: float, delta: int, tau: float, n: int, c: float = 1.0) -> float:
    """Lemma VII.4 good-phase budget ``t_max = ⌈(1/α)·8·f(τ̂)·log n⌉``."""
    th = tau_hat(tau, delta)
    return math.ceil((1.0 / alpha) * 8.0 * f_approx(th, delta, n, c) * log2c(n))
