"""Exact micro-dynamics: closed-form per-round connection probabilities.

The paper's intuition paragraphs compute per-round probabilities of
specific useful connections ("this occurs with probability ≈ 1/Δ²").
This module derives the *exact* values for the structured topologies the
experiments use, so the engines' randomized semantics can be validated
against pencil-and-paper probability — a much sharper check than
end-to-end round counts.

All formulas assume the blind gossip / b=0 PUSH-PULL decision rule: each
node independently sends with probability 1/2 (choosing a uniform random
neighbor) or receives, and a receiver accepts one incoming proposal
uniformly at random.
"""

from __future__ import annotations

import math

__all__ = [
    "expected_inverse_one_plus_binomial",
    "star_hub_accept_probability",
    "double_star_crossing_probability",
    "blind_pair_good_probability",
]


def expected_inverse_one_plus_binomial(k: int, p: float) -> float:
    """``E[1 / (1 + B)]`` for ``B ~ Binomial(k, p)``.

    Closed form ``(1 - (1-p)^{k+1}) / ((k+1)·p)`` (standard identity, by
    integrating the binomial theorem); ``p = 0`` degenerates to 1.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if p == 0.0:
        return 1.0
    return (1.0 - (1.0 - p) ** (k + 1)) / ((k + 1) * p)


def star_hub_accept_probability(leaves: int) -> float:
    """P(a *specific* leaf connects to the hub of a star in one round).

    The leaf must send (1/2; its only neighbor is the hub), the hub must
    receive (1/2), and the hub must pick this leaf among the other
    ``leaves - 1`` leaves that each independently sent with probability
    1/2: the pick succeeds with ``E[1/(1+B)]``, ``B ~ Bin(leaves-1, 1/2)``.
    """
    if leaves < 1:
        raise ValueError("need at least one leaf")
    return 0.25 * expected_inverse_one_plus_binomial(leaves - 1, 0.5)


def double_star_crossing_probability(leaves: int) -> float:
    """P(the hub-to-hub edge of a double star connects in one round).

    The Δ² bottleneck of Section VI, exactly.  Direction hub-A → hub-B:

    * hub A sends (1/2) and picks hub B among its ``leaves + 1`` neighbors;
    * hub B receives (1/2);
    * hub B accepts A's proposal against ``B ~ Bin(leaves, 1/2)`` competing
      proposals from its own leaves (each leaf's only neighbor is hub B, so
      a sending leaf always targets it): probability ``E[1/(1+B)]``.

    The two directions are mutually exclusive (a connected hub cannot also
    connect the other way), so the total is twice the one-direction term.
    """
    if leaves < 1:
        raise ValueError("need at least one leaf per hub")
    one_way = (
        0.5
        * (1.0 / (leaves + 1))
        * 0.5
        * expected_inverse_one_plus_binomial(leaves, 0.5)
    )
    return 2.0 * one_way


def blind_pair_good_probability(deg_u: int, deg_v: int) -> float:
    """The paper's Definition VI.2 lower bound, exactly: P(edge (u,v) is *good*).

    ``u`` sends (1/2) and picks ``v`` (1/deg(u)); ``v`` receives (1/2) and
    has ``u`` ranked first in its selection permutation (1/deg(v)).  The
    paper lower-bounds this by ``1/(4Δ²)``; the exact value is
    ``1/(4·deg(u)·deg(v))``.
    """
    if deg_u < 1 or deg_v < 1:
        raise ValueError("degrees must be >= 1")
    return 1.0 / (4.0 * deg_u * deg_v)
