"""Fitting measured data against theory curves.

EXPERIMENTS.md compares measurements against the paper's bounds in two
ways: fitting the unspecified leading constant (``measured ≈ c · bound``)
and fitting free-exponent power laws (``measured ≈ a · x^b``) with
bootstrap confidence intervals on the exponent — the quantitative backbone
of every "the slope is ≈ 2" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.statistics import geometric_mean
from repro.util.rng import make_rng

__all__ = ["PowerLawFit", "fit_constant", "fit_power_law"]


def fit_constant(measured: Sequence[float], bound: Sequence[float]) -> float:
    """Least-squares-in-log constant ``c`` minimizing ``|log(measured) - log(c·bound)|²``.

    This is the geometric mean of the ratios — the natural constant for
    multiplicative (big-O style) models.
    """
    m = np.asarray(list(measured), dtype=np.float64)
    b = np.asarray(list(bound), dtype=np.float64)
    if m.shape != b.shape or m.size == 0:
        raise ValueError("measured and bound must be equal-length, non-empty")
    if np.any(m <= 0) or np.any(b <= 0):
        raise ValueError("fit_constant needs positive values")
    return geometric_mean(m / b)


@dataclass(frozen=True)
class PowerLawFit:
    """Result of :func:`fit_power_law`.

    ``measured ≈ prefactor · x^exponent``; the confidence interval on the
    exponent comes from bootstrap resampling of the points.
    """

    exponent: float
    prefactor: float
    r_squared: float
    exponent_ci_low: float
    exponent_ci_high: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted law at ``x``."""
        return self.prefactor * x**self.exponent


def fit_power_law(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    seed: int | None = 0,
    boot: int = 500,
) -> PowerLawFit:
    """Fit ``y = a·x^b`` by least squares in log-log space.

    Returns the exponent, prefactor, R², and a 95% bootstrap CI on the
    exponent.  Requires at least three positive points (with two the fit
    is exact and the CI degenerate).
    """
    x = np.asarray(list(xs), dtype=np.float64)
    y = np.asarray(list(ys), dtype=np.float64)
    if x.shape != y.shape or x.size < 3:
        raise ValueError("need at least three (x, y) points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit needs positive values")
    lx, ly = np.log(x), np.log(y)

    def fit(ix: np.ndarray) -> tuple[float, float]:
        slope, intercept = np.polyfit(lx[ix], ly[ix], 1)
        return float(slope), float(intercept)

    all_ix = np.arange(x.size)
    slope, intercept = fit(all_ix)
    pred = slope * lx + intercept
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot

    rng = make_rng(seed, "power-law-boot")
    slopes = []
    for _ in range(boot):
        ix = rng.integers(0, x.size, size=x.size)
        if np.unique(lx[ix]).size < 2:
            continue  # degenerate resample: all the same x
        slopes.append(fit(ix)[0])
    if slopes:
        lo, hi = np.percentile(slopes, [2.5, 97.5])
    else:  # pragma: no cover - would need pathological duplicate xs
        lo = hi = slope
    return PowerLawFit(
        exponent=slope,
        prefactor=float(np.exp(intercept)),
        r_squared=float(r2),
        exponent_ci_low=float(lo),
        exponent_ci_high=float(hi),
    )
