"""Analysis tools: expansion, cut matchings, paper bounds, statistics.

These modules quantify the graph parameters the paper's theorems are
stated in (``α``, ``Δ``, ``γ``), provide the closed-form bound curves, and
aggregate trial data into the summaries the harness reports.
"""

from repro.analysis.expansion import (
    boundary,
    alpha_of_set,
    spectral_gap,
    vertex_expansion,
    vertex_expansion_exact,
    vertex_expansion_upper,
    vertex_expansion_spectral_lower,
    dynamic_vertex_expansion,
)
from repro.analysis.matching import (
    hopcroft_karp,
    cut_matching,
    cut_matching_size,
    gamma_exact,
)
from repro.analysis.statistics import Summary, summarize, loglog_slope, ratio_fit
from repro.analysis import bounds

__all__ = [
    "boundary",
    "alpha_of_set",
    "spectral_gap",
    "vertex_expansion",
    "vertex_expansion_exact",
    "vertex_expansion_upper",
    "vertex_expansion_spectral_lower",
    "dynamic_vertex_expansion",
    "hopcroft_karp",
    "cut_matching",
    "cut_matching_size",
    "gamma_exact",
    "Summary",
    "summarize",
    "loglog_slope",
    "ratio_fit",
    "bounds",
]
