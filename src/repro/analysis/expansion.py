"""Vertex expansion: exact computation, estimates, and bounds.

Paper Section II defines, for a connected graph ``G = (V, E)``:

    ∂S   = { v ∉ S : N(v) ∩ S ≠ ∅ }          (the boundary of S)
    α(S) = |∂S| / |S|
    α    = min_{S ⊂ V, 0 < |S| ≤ n/2} α(S)    (the vertex expansion)

``α`` ranges from ``Θ(1)`` (well connected) down to ``Θ(1/n)``.  Exact
computation is NP-hard in general; we provide:

* :func:`vertex_expansion_exact` — subset enumeration, ``n ≤ ~18``;
* :func:`vertex_expansion_upper` — the best (smallest) ``α(S)`` over
  randomized BFS-ball sweeps, degree sweeps, and greedy local search; any
  witnessed set gives a valid *upper* bound on ``α``;
* :func:`vertex_expansion_spectral_lower` — a Cheeger-type *lower* bound
  ``α ≥ (λ₂/2)·(δ_min/Δ)`` derived from edge conductance;
* :func:`vertex_expansion` — dispatcher (exact when feasible, else the
  sweep upper bound, which is the standard practical surrogate).
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Iterable

import numpy as np

from repro.graphs.static import Graph
from repro.graphs.dynamic import DynamicGraph
from repro.util.rng import make_rng

__all__ = [
    "boundary",
    "alpha_of_set",
    "vertex_expansion_exact",
    "vertex_expansion_upper",
    "spectral_gap",
    "vertex_expansion_spectral_lower",
    "vertex_expansion",
    "dynamic_vertex_expansion",
]

_EXACT_LIMIT = 18


def boundary(g: Graph, s_set: Iterable[int]) -> np.ndarray:
    """``∂S``: vertices outside ``S`` adjacent to at least one vertex of ``S``."""
    in_s = np.zeros(g.n, dtype=bool)
    s_arr = np.asarray(sorted(set(int(x) for x in s_set)), dtype=np.int64)
    if s_arr.size and (s_arr.min() < 0 or s_arr.max() >= g.n):
        raise ValueError("S contains out-of-range vertices")
    in_s[s_arr] = True
    touched = np.zeros(g.n, dtype=bool)
    for u in s_arr:
        touched[g.neighbors(int(u))] = True
    return np.flatnonzero(touched & ~in_s)


def alpha_of_set(g: Graph, s_set: Iterable[int]) -> float:
    """``α(S) = |∂S| / |S|`` for a non-empty vertex set."""
    s_arr = sorted(set(int(x) for x in s_set))
    if not s_arr:
        raise ValueError("S must be non-empty")
    return boundary(g, s_arr).size / len(s_arr)


def vertex_expansion_exact(g: Graph) -> float:
    """Exact ``α`` by enumerating all subsets with ``|S| ≤ n/2``.

    Exponential; restricted to ``n ≤ 18``.
    """
    n = g.n
    if n < 2:
        raise ValueError("expansion needs n >= 2")
    if n > _EXACT_LIMIT:
        raise ValueError(f"vertex_expansion_exact requires n <= {_EXACT_LIMIT}")
    best = math.inf
    for size in range(1, n // 2 + 1):
        for s in combinations(range(n), size):
            best = min(best, alpha_of_set(g, s))
    return float(best)


def _bfs_order(g: Graph, root: int, *, degree_sorted: bool = False) -> list[int]:
    """Vertices in BFS order from ``root``.

    With ``degree_sorted`` each discovered frontier is visited in ascending
    degree order, which makes prefix sweeps absorb a star's points before
    its center — the minimizing pattern on star-like graphs.
    """
    seen = np.zeros(g.n, dtype=bool)
    seen[root] = True
    order = [root]
    frontier = [root]
    deg = g.degrees
    while frontier:
        nxt: list[int] = []
        for u in frontier:
            for v in g.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    nxt.append(int(v))
        if degree_sorted:
            nxt.sort(key=lambda v: int(deg[v]))
        order.extend(nxt)
        frontier = nxt
    return order


def _fiedler_order(g: Graph) -> list[int]:
    """Vertices sorted by the normalized-Laplacian Fiedler vector.

    Spectral sweep cuts are the classic Cheeger-rounding heuristic; prefix
    cuts of this ordering find low-conductance (and usually low vertex
    expansion) sets on elongated graphs.
    """
    n = g.n
    deg = g.degrees.astype(np.float64)
    if deg.min() == 0:
        return list(range(n))
    a = np.zeros((n, n), dtype=np.float64)
    for u in range(n):
        a[u, g.neighbors(u)] = 1.0
    dinv = 1.0 / np.sqrt(deg)
    lap = np.eye(n) - (dinv[:, None] * a) * dinv[None, :]
    _, vecs = np.linalg.eigh(lap)
    fiedler = vecs[:, 1] * dinv  # back to the D^{-1/2}-weighted embedding
    return [int(i) for i in np.argsort(fiedler)]


def _local_search(g: Graph, s: set[int], max_steps: int = 200) -> tuple[set[int], float]:
    """Greedy vertex swaps that reduce ``α(S)`` while keeping ``|S| ≤ n/2``."""
    half = g.n // 2
    cur = alpha_of_set(g, s)
    for _ in range(max_steps):
        improved = False
        bset = set(boundary(g, s).tolist())
        # Try absorbing a boundary vertex (grows S, often shrinks ∂S).
        for v in list(bset):
            if len(s) >= half:
                break
            cand = s | {v}
            a = alpha_of_set(g, cand)
            if a < cur:
                s, cur = cand, a
                improved = True
                break
        if improved:
            continue
        # Try dropping a vertex of S whose removal keeps the set non-empty.
        for v in list(s):
            if len(s) <= 1:
                break
            cand = s - {v}
            a = alpha_of_set(g, cand)
            if a < cur:
                s, cur = cand, a
                improved = True
                break
        if not improved:
            break
    return s, cur


def vertex_expansion_upper(
    g: Graph, *, seed: int | None = 0, tries: int = 16
) -> float:
    """Best ``α(S)`` found by BFS-ball sweeps plus greedy local search.

    Every candidate ``S`` witnesses ``α ≤ α(S)``, so the return value is a
    certified upper bound on the true expansion (and equals it on the
    structured families used in tests).
    """
    n = g.n
    if n < 2:
        raise ValueError("expansion needs n >= 2")
    half = n // 2
    rng = make_rng(seed, "expansion-upper")
    best = math.inf
    best_set: set[int] = set()

    def sweep(order: list[int]) -> None:
        nonlocal best, best_set
        in_s = np.zeros(n, dtype=bool)
        touched = np.zeros(n, dtype=bool)
        bd = 0  # |∂S| maintained incrementally along the prefix sweep
        for size, u in enumerate(order[:half], start=1):
            in_s[u] = True
            if touched[u]:
                bd -= 1
            for v in g.neighbors(u):
                if not in_s[v] and not touched[v]:
                    touched[v] = True
                    bd += 1
            a = bd / size
            if a < best:
                best = a
                best_set = set(order[:size])

    roots = list(rng.choice(n, size=min(tries, n), replace=False))
    for root in roots:
        # Plain and degree-sorted BFS ball sweeps.
        sweep(_bfs_order(g, int(root)))
        sweep(_bfs_order(g, int(root), degree_sorted=True))
    # Ascending-degree prefix (catches star-like minima).
    sweep([int(x) for x in np.argsort(g.degrees, kind="stable")])
    # Spectral (Fiedler) sweep, both ends.
    if n <= 2048:
        forder = _fiedler_order(g)
        sweep(forder)
        sweep(forder[::-1])
    if best_set:
        _, refined = _local_search(g, best_set)
        best = min(best, refined)
    return float(best)


def spectral_gap(g: Graph) -> float:
    """``λ₂`` of the normalized Laplacian (the spectral gap).

    Controls mixing/diffusion speed: averaging gossip's per-connection
    contraction and the Cheeger bounds both run through this quantity.
    """
    n = g.n
    if n < 2:
        raise ValueError("spectral gap needs n >= 2")
    deg = g.degrees.astype(np.float64)
    if deg.min() == 0:
        return 0.0
    a = np.zeros((n, n), dtype=np.float64)
    for u in range(n):
        a[u, g.neighbors(u)] = 1.0
    dinv = 1.0 / np.sqrt(deg)
    lap = np.eye(n) - (dinv[:, None] * a) * dinv[None, :]
    evals = np.linalg.eigvalsh(lap)
    return float(max(evals[1], 0.0))


def vertex_expansion_spectral_lower(g: Graph) -> float:
    """Cheeger-type lower bound ``α ≥ (λ₂ / 2) · (δ_min / Δ)``.

    Derivation: for any ``S`` with ``|S| ≤ n/2``, the crossing edge count
    satisfies ``e(S, S̄) ≤ |∂S| · Δ`` and the volume ``vol(S) ≥ |S|·δ_min``;
    Cheeger's inequality gives conductance ``φ(S) = e(S,S̄)/vol(S) ≥ λ₂/2``
    with ``λ₂`` the second eigenvalue of the normalized Laplacian.  Chaining
    the three yields the bound.  Weak but certified.
    """
    n = g.n
    if n < 2:
        raise ValueError("expansion needs n >= 2")
    deg = g.degrees.astype(np.float64)
    if deg.min() == 0:
        return 0.0
    lam2 = spectral_gap(g)
    return (lam2 / 2.0) * (float(deg.min()) / float(deg.max()))


def vertex_expansion(g: Graph, *, seed: int | None = 0) -> float:
    """Best available estimate of ``α``.

    Exact for ``n ≤ 18``; otherwise the sweep/local-search upper bound,
    which is exact on the structured families used throughout the paper's
    arguments (prefix cuts are the minimizers there) and the standard
    practical surrogate elsewhere.
    """
    if g.n <= _EXACT_LIMIT:
        return vertex_expansion_exact(g)
    return vertex_expansion_upper(g, seed=seed)


def dynamic_vertex_expansion(dg: DynamicGraph, horizon: int, *, seed: int | None = 0) -> float:
    """``α`` of a dynamic graph: the minimum over its epochs in ``1..horizon``."""
    step = 1 if math.isinf(dg.tau) else int(dg.tau)
    rounds = [1] if math.isinf(dg.tau) else list(range(1, horizon + 1, step))
    return min(vertex_expansion(dg.graph_at(r), seed=seed) for r in rounds)
