"""Declarative fault plans (schema layer).

The mobile telephone model itself has no faults, but the paper's Section
VIII algorithm is *self-stabilizing*, and the smartphone deployments
motivating the model certainly do fail: phones crash and rejoin, Bluetooth
connections drop mid-handshake, advertisements arrive garbled.  A
:class:`FaultPlan` composes seeded fault models into one declarative
object that every engine tier (reference, vectorized, batched) consumes
uniformly:

* :class:`CrashSchedule` — per-node crash/recover windows, including
  permanent crashes and late rejoins with reset state;
* :class:`ConnectionDropModel` — each established connection
  independently fails with probability ``p`` *before* the payload
  exchange (the proposal/acceptance handshake happened, the transfer
  did not);
* :class:`TagCorruptionModel` — each advertised tag bit independently
  flips with probability ``q`` at the advertiser's radio (all observers
  see the same corrupted tag; the advertiser's own logic uses its
  intended tag);
* :class:`StateCorruptionEvent` — at the start of round ``r``, a random
  ``fraction`` of the nodes have their algorithm state overwritten with
  arbitrary values (Section VIII's transient-corruption regime,
  promoted from test-level code to a reusable primitive).

Plans are pure data: deterministic, hashable, JSON round-trippable.  All
randomness (which connection drops, which bits flip, who gets corrupted)
is drawn at run time from a fault RNG stream derived from the engine's
trial seed (see :mod:`repro.faults.apply`), so the same plan + seed
replays identically across processes and engine tiers.

Semantics shared by every engine (the four hook points of a round):

1. **start of round** ``r``: rejoin resets for nodes whose first up
   round is ``r``, then state-corruption events scheduled for ``r``;
2. **activation mask**: crashed nodes are removed from the active set —
   invisible to the scan, unable to propose, accept, or exchange (their
   state is frozen while down);
3. **tag advertisement**: tags flip bits per :class:`TagCorruptionModel`
   after the sender decision, before target eligibility;
4. **connection establishment → payload exchange**: accepted connections
   are dropped i.i.d. with probability ``p`` before the exchange
   (``connections_made`` counts only surviving connections).

Engines suppress convergence checks until :attr:`FaultPlan.quiesce_round`
(the last *scheduled* fault round) so that a plan's transient events
cannot race an absorbing predicate; stationary models (drops, tag flips)
do not gate convergence because they never un-converge absorbed state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.util.rng import make_rng

__all__ = [
    "CrashWindow",
    "CrashSchedule",
    "ConnectionDropModel",
    "TagCorruptionModel",
    "StateCorruptionEvent",
    "FaultPlan",
    "random_crash_schedule",
    "example_plan",
]


@dataclass(frozen=True)
class CrashWindow:
    """One node down for rounds ``start..end`` inclusive (1-indexed).

    ``end=None`` is a permanent crash: the node never rejoins and its
    state stays frozen at the pre-crash value.  With ``reset_on_rejoin``
    (the default) the node rejoins at round ``end + 1`` with its state
    reset to the initial value — a reboot that lost volatile state;
    otherwise it resumes from the frozen pre-crash state.
    """

    node: int
    start: int
    end: int | None = None
    reset_on_rejoin: bool = True

    def __post_init__(self):
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        if self.start < 1:
            raise ValueError(f"start must be >= 1 (1-indexed), got {self.start}")
        if self.end is not None and self.end < self.start:
            raise ValueError(f"end {self.end} precedes start {self.start}")

    def covers(self, r: int) -> bool:
        """Whether the node is down in round ``r``."""
        return self.start <= r and (self.end is None or r <= self.end)


@dataclass(frozen=True)
class CrashSchedule:
    """A set of :class:`CrashWindow` entries (windows may overlap)."""

    windows: tuple[CrashWindow, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "windows", tuple(self.windows))

    def is_empty(self) -> bool:
        return not self.windows

    def max_node(self) -> int:
        return max((w.node for w in self.windows), default=-1)

    def down_at(self, r: int, n: int) -> np.ndarray:
        """Boolean ``(n,)`` mask of nodes down in round ``r``."""
        down = np.zeros(n, dtype=bool)
        for w in self.windows:
            if w.covers(r):
                down[w.node] = True
        return down

    def transition_rounds(self) -> frozenset[int]:
        """Rounds at which the down mask can change (window edges)."""
        edges: set[int] = set()
        for w in self.windows:
            edges.add(w.start)
            if w.end is not None:
                edges.add(w.end + 1)
        return frozenset(edges)

    def rejoin_resets(self) -> dict[int, tuple[int, ...]]:
        """``{round: nodes}`` whose state resets at the start of that round.

        A node resets when a window with ``reset_on_rejoin`` ends at
        ``round - 1`` and no other window still holds the node down at
        ``round`` (overlapping windows delay the rejoin, and the reset
        with it, until the node is actually back up).
        """
        out: dict[int, set[int]] = {}
        for w in self.windows:
            if w.end is None or not w.reset_on_rejoin:
                continue
            rejoin = w.end + 1
            if any(o.covers(rejoin) for o in self.windows if o.node == w.node):
                continue
            out.setdefault(rejoin, set()).add(w.node)
        return {r: tuple(sorted(nodes)) for r, nodes in out.items()}

    def quiesce_round(self) -> int:
        """Last scheduled transition (permanent crashes contribute ``start``)."""
        q = 0
        for w in self.windows:
            q = max(q, w.start if w.end is None else w.end + 1)
        return q


@dataclass(frozen=True)
class ConnectionDropModel:
    """Each established connection independently fails with probability ``p``.

    The drop happens after proposal/acceptance but before the payload
    exchange — the handshake succeeded, the transfer did not — so a
    dropped connection consumes the round without moving any state.
    """

    p: float

    def __post_init__(self):
        if not 0.0 <= self.p < 1.0:
            raise ValueError(f"drop probability must be in [0, 1), got {self.p}")

    def is_empty(self) -> bool:
        return self.p <= 0.0


@dataclass(frozen=True)
class TagCorruptionModel:
    """Each advertised tag bit independently flips with probability ``q``.

    Corruption happens at the advertiser's radio: every observer sees the
    same corrupted tag, while the advertiser's own send/receive logic
    uses the tag it intended.  ``b = 0`` algorithms advertise nothing,
    so the model is a no-op for them.
    """

    q: float

    def __post_init__(self):
        if not 0.0 <= self.q < 1.0:
            raise ValueError(f"flip probability must be in [0, 1), got {self.q}")

    def is_empty(self) -> bool:
        return self.q <= 0.0


@dataclass(frozen=True)
class StateCorruptionEvent:
    """At the start of round ``round``, corrupt a random node subset.

    ``max(1, int(n * fraction))`` victims are drawn uniformly without
    replacement (independently per replica in the batched engine) and
    handed to the algorithm's ``corrupt_state`` hook, which overwrites
    their state with arbitrary values and recomputes its convergence
    target over the corrupted state — Section VIII's transient-fault
    regime.
    """

    round: int
    fraction: float

    def __post_init__(self):
        if self.round < 1:
            raise ValueError(f"round must be >= 1 (1-indexed), got {self.round}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def victim_count(self, n: int) -> int:
        return min(n, max(1, int(n * self.fraction)))


@dataclass(frozen=True)
class FaultPlan:
    """A composition of fault models, consumed uniformly by every engine.

    All fields are optional; an empty plan is behaviourally (and, after
    engine normalization, bit-for-bit) identical to no plan at all.
    """

    crashes: CrashSchedule | None = None
    connection_drop: ConnectionDropModel | None = None
    tag_corruption: TagCorruptionModel | None = None
    state_corruption: tuple[StateCorruptionEvent, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "state_corruption", tuple(self.state_corruption))
        if self.crashes is not None and not isinstance(self.crashes, CrashSchedule):
            raise TypeError("crashes must be a CrashSchedule or None")

    def is_empty(self) -> bool:
        """Whether the plan can inject no fault at all."""
        return (
            (self.crashes is None or self.crashes.is_empty())
            and (self.connection_drop is None or self.connection_drop.is_empty())
            and (self.tag_corruption is None or self.tag_corruption.is_empty())
            and not self.state_corruption
        )

    @property
    def quiesce_round(self) -> int:
        """First round from which convergence checks are meaningful.

        The last *scheduled* fault round: crash-window edges and
        corruption-event rounds.  Stationary probabilistic models (drops,
        tag flips) contribute nothing — they cannot un-converge absorbed
        state.  ``0`` means the plan never gates convergence.
        """
        q = self.crashes.quiesce_round() if self.crashes is not None else 0
        for e in self.state_corruption:
            q = max(q, e.round)
        return q

    def validate_for(self, n: int) -> None:
        """Check node indices fit a network of ``n`` vertices."""
        if self.crashes is not None and self.crashes.max_node() >= n:
            raise ValueError(
                f"crash schedule names node {self.crashes.max_node()} "
                f"but the network has only {n} nodes"
            )

    # -- JSON round-trip -----------------------------------------------------

    def to_dict(self) -> dict:
        out: dict = {}
        if self.crashes is not None and not self.crashes.is_empty():
            out["crashes"] = [
                {
                    "node": w.node,
                    "start": w.start,
                    "end": w.end,
                    "reset_on_rejoin": w.reset_on_rejoin,
                }
                for w in self.crashes.windows
            ]
        if self.connection_drop is not None and not self.connection_drop.is_empty():
            out["connection_drop"] = {"p": self.connection_drop.p}
        if self.tag_corruption is not None and not self.tag_corruption.is_empty():
            out["tag_corruption"] = {"q": self.tag_corruption.q}
        if self.state_corruption:
            out["state_corruption"] = [
                {"round": e.round, "fraction": e.fraction}
                for e in self.state_corruption
            ]
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        known = {"crashes", "connection_drop", "tag_corruption", "state_corruption"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")
        crashes = None
        if data.get("crashes"):
            crashes = CrashSchedule(
                tuple(
                    CrashWindow(
                        node=int(w["node"]),
                        start=int(w["start"]),
                        end=None if w.get("end") is None else int(w["end"]),
                        reset_on_rejoin=bool(w.get("reset_on_rejoin", True)),
                    )
                    for w in data["crashes"]
                )
            )
        drop = None
        if data.get("connection_drop"):
            drop = ConnectionDropModel(p=float(data["connection_drop"]["p"]))
        tags = None
        if data.get("tag_corruption"):
            tags = TagCorruptionModel(q=float(data["tag_corruption"]["q"]))
        events = tuple(
            StateCorruptionEvent(round=int(e["round"]), fraction=float(e["fraction"]))
            for e in data.get("state_corruption", [])
        )
        return cls(
            crashes=crashes,
            connection_drop=drop,
            tag_corruption=tags,
            state_corruption=events,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    def to_file(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    def describe(self) -> str:
        """Human-readable one-paragraph summary (CLI ``faults describe``)."""
        if self.is_empty():
            return "empty plan (no faults)"
        parts = []
        if self.crashes is not None and not self.crashes.is_empty():
            perm = sum(1 for w in self.crashes.windows if w.end is None)
            parts.append(
                f"{len(self.crashes.windows)} crash window(s)"
                + (f" ({perm} permanent)" if perm else "")
            )
        if self.connection_drop is not None and not self.connection_drop.is_empty():
            parts.append(f"connection drop p={self.connection_drop.p}")
        if self.tag_corruption is not None and not self.tag_corruption.is_empty():
            parts.append(f"tag bit-flip q={self.tag_corruption.q}")
        if self.state_corruption:
            rounds = ", ".join(
                f"{e.fraction:.0%} at round {e.round}" for e in self.state_corruption
            )
            parts.append(f"state corruption: {rounds}")
        return "; ".join(parts) + f"; quiesce round {self.quiesce_round}"


def random_crash_schedule(
    n: int,
    count: int,
    *,
    first_round: int,
    last_round: int,
    seed: int,
    min_len: int = 2,
    max_len: int | None = None,
    reset_on_rejoin: bool = True,
) -> CrashSchedule:
    """A seeded schedule of ``count`` distinct nodes crashing once each.

    Every window starts in ``[first_round, last_round]`` and ends by
    ``last_round`` (all nodes rejoin — the convergence-friendly regime
    experiment R3 sweeps).  The schedule is plan-level data: the *same*
    windows apply to every trial, while run-time fault randomness stays
    per-trial-seed.
    """
    if not 0 <= count <= n:
        raise ValueError(f"count must be in [0, {n}], got {count}")
    if first_round < 1 or last_round < first_round:
        raise ValueError("need 1 <= first_round <= last_round")
    max_len = max_len or max(min_len, (last_round - first_round) // 2)
    if min_len < 1 or max_len < min_len:
        raise ValueError("need 1 <= min_len <= max_len")
    rng = make_rng(seed, "crash-schedule")
    nodes = rng.choice(n, size=count, replace=False)
    windows = []
    for node in nodes:
        length = int(rng.integers(min_len, max_len + 1))
        start_hi = max(first_round, last_round - length + 1)
        start = int(rng.integers(first_round, start_hi + 1))
        end = min(start + length - 1, last_round)
        windows.append(
            CrashWindow(
                node=int(node), start=start, end=end, reset_on_rejoin=reset_on_rejoin
            )
        )
    return CrashSchedule(tuple(windows))


def example_plan() -> FaultPlan:
    """The template emitted by ``repro faults template``.

    Every window here ends (set ``"end": null`` for a permanent crash —
    but note a permanently crashed node freezes its state, so the
    standard all-nodes convergence predicate may then never fire).
    """
    return FaultPlan(
        crashes=CrashSchedule(
            (
                CrashWindow(node=3, start=10, end=50, reset_on_rejoin=True),
                CrashWindow(node=7, start=25, end=80, reset_on_rejoin=False),
            )
        ),
        connection_drop=ConnectionDropModel(p=0.2),
        tag_corruption=TagCorruptionModel(q=0.01),
        state_corruption=(StateCorruptionEvent(round=30, fraction=1 / 3),),
    )
