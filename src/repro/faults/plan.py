"""Declarative fault plans (schema layer).

The mobile telephone model itself has no faults, but the paper's Section
VIII algorithm is *self-stabilizing*, and the smartphone deployments
motivating the model certainly do fail: phones crash and rejoin, Bluetooth
connections drop mid-handshake, advertisements arrive garbled.  A
:class:`FaultPlan` composes seeded fault models into one declarative
object that every engine tier (reference, vectorized, batched) consumes
uniformly:

* :class:`CrashSchedule` — per-node crash/recover windows, including
  permanent crashes and late rejoins with reset state;
* :class:`ConnectionDropModel` — each established connection
  independently fails with probability ``p`` *before* the payload
  exchange (the proposal/acceptance handshake happened, the transfer
  did not);
* :class:`TagCorruptionModel` — each advertised tag bit independently
  flips with probability ``q`` at the advertiser's radio (all observers
  see the same corrupted tag; the advertiser's own logic uses its
  intended tag);
* :class:`StateCorruptionEvent` — at the start of round ``r``, a random
  ``fraction`` of the nodes have their algorithm state overwritten with
  arbitrary values (Section VIII's transient-corruption regime,
  promoted from test-level code to a reusable primitive);
* :class:`MembershipSchedule` — **open-world membership** (the regime of
  Augustine et al., "Robust Leader Election in a Fast-Changing World"):
  joins bring *fresh* protocol state into free slots, departures
  (crash-like or clean) free slots, and the live population ``n(r)``
  varies within a declared cap.  The engines keep their arrays at a
  constant slot width ``n``; membership masks slots in and out of it.

Plans are pure data: deterministic, hashable, JSON round-trippable.  All
randomness (which connection drops, which bits flip, who gets corrupted)
is drawn at run time from a fault RNG stream derived from the engine's
trial seed (see :mod:`repro.faults.apply`), so the same plan + seed
replays identically across processes and engine tiers.

Semantics shared by every engine (the four hook points of a round):

1. **start of round** ``r``: rejoin resets for nodes whose first up
   round is ``r``, then state-corruption events scheduled for ``r``;
2. **activation mask**: crashed nodes are removed from the active set —
   invisible to the scan, unable to propose, accept, or exchange (their
   state is frozen while down);
3. **tag advertisement**: tags flip bits per :class:`TagCorruptionModel`
   after the sender decision, before target eligibility;
4. **connection establishment → payload exchange**: accepted connections
   are dropped i.i.d. with probability ``p`` before the exchange
   (``connections_made`` counts only surviving connections).

Engines suppress convergence checks until :attr:`FaultPlan.quiesce_round`
(the last *scheduled* fault round) so that a plan's transient events
cannot race an absorbing predicate; stationary models (drops, tag flips)
do not gate convergence because they never un-converge absorbed state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.util.rng import make_rng

__all__ = [
    "CrashWindow",
    "CrashSchedule",
    "ConnectionDropModel",
    "TagCorruptionModel",
    "StateCorruptionEvent",
    "MembershipEvent",
    "MembershipSchedule",
    "FaultPlan",
    "random_crash_schedule",
    "random_membership_schedule",
    "leader_assassin_schedule",
    "example_plan",
]


@dataclass(frozen=True)
class CrashWindow:
    """One node down for rounds ``start..end`` inclusive (1-indexed).

    ``end=None`` is a permanent crash: the node never rejoins and its
    state stays frozen at the pre-crash value.  With ``reset_on_rejoin``
    (the default) the node rejoins at round ``end + 1`` with its state
    reset to the initial value — a reboot that lost volatile state;
    otherwise it resumes from the frozen pre-crash state.
    """

    node: int
    start: int
    end: int | None = None
    reset_on_rejoin: bool = True

    def __post_init__(self):
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        if self.start < 1:
            raise ValueError(f"start must be >= 1 (1-indexed), got {self.start}")
        if self.end is not None and self.end < self.start:
            raise ValueError(f"end {self.end} precedes start {self.start}")

    def covers(self, r: int) -> bool:
        """Whether the node is down in round ``r``."""
        return self.start <= r and (self.end is None or r <= self.end)


@dataclass(frozen=True)
class CrashSchedule:
    """A set of :class:`CrashWindow` entries.

    Windows for *distinct* nodes may overlap freely; two windows for the
    same node must be disjoint (adjacent is fine: ``[5, 10]`` followed by
    ``[11, 15]`` delays the rejoin to round 16).  Overlapping same-node
    windows are rejected at construction — they describe a contradictory
    schedule ("crash a node that is already down") that previously
    surfaced only as confusing rejoin behaviour deep inside the engines.
    """

    windows: tuple[CrashWindow, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "windows", tuple(self.windows))
        by_node: dict[int, list[CrashWindow]] = {}
        for w in self.windows:
            by_node.setdefault(w.node, []).append(w)
        for node, ws in by_node.items():
            ws.sort(key=lambda w: w.start)
            for a, b in zip(ws, ws[1:]):
                if a.end is None or b.start <= a.end:
                    a_end = "inf" if a.end is None else a.end
                    raise ValueError(
                        f"overlapping crash windows for node {node}: "
                        f"[{a.start}, {a_end}] already covers round {b.start} "
                        f"where a second window starts"
                    )

    def is_empty(self) -> bool:
        return not self.windows

    def max_node(self) -> int:
        return max((w.node for w in self.windows), default=-1)

    def down_at(self, r: int, n: int) -> np.ndarray:
        """Boolean ``(n,)`` mask of nodes down in round ``r``."""
        down = np.zeros(n, dtype=bool)
        for w in self.windows:
            if w.covers(r):
                down[w.node] = True
        return down

    def transition_rounds(self) -> frozenset[int]:
        """Rounds at which the down mask can change (window edges)."""
        edges: set[int] = set()
        for w in self.windows:
            edges.add(w.start)
            if w.end is not None:
                edges.add(w.end + 1)
        return frozenset(edges)

    def rejoin_resets(self) -> dict[int, tuple[int, ...]]:
        """``{round: nodes}`` whose state resets at the start of that round.

        A node resets when a window with ``reset_on_rejoin`` ends at
        ``round - 1`` and no other window still holds the node down at
        ``round`` (overlapping windows delay the rejoin, and the reset
        with it, until the node is actually back up).
        """
        out: dict[int, set[int]] = {}
        for w in self.windows:
            if w.end is None or not w.reset_on_rejoin:
                continue
            rejoin = w.end + 1
            if any(o.covers(rejoin) for o in self.windows if o.node == w.node):
                continue
            out.setdefault(rejoin, set()).add(w.node)
        return {r: tuple(sorted(nodes)) for r, nodes in out.items()}

    def quiesce_round(self) -> int:
        """Last scheduled transition (permanent crashes contribute ``start``)."""
        q = 0
        for w in self.windows:
            q = max(q, w.start if w.end is None else w.end + 1)
        return q


@dataclass(frozen=True)
class ConnectionDropModel:
    """Each established connection independently fails with probability ``p``.

    The drop happens after proposal/acceptance but before the payload
    exchange — the handshake succeeded, the transfer did not — so a
    dropped connection consumes the round without moving any state.
    """

    p: float

    def __post_init__(self):
        if not 0.0 <= self.p < 1.0:
            raise ValueError(f"drop probability must be in [0, 1), got {self.p}")

    def is_empty(self) -> bool:
        return self.p <= 0.0


@dataclass(frozen=True)
class TagCorruptionModel:
    """Each advertised tag bit independently flips with probability ``q``.

    Corruption happens at the advertiser's radio: every observer sees the
    same corrupted tag, while the advertiser's own send/receive logic
    uses the tag it intended.  ``b = 0`` algorithms advertise nothing,
    so the model is a no-op for them.
    """

    q: float

    def __post_init__(self):
        if not 0.0 <= self.q < 1.0:
            raise ValueError(f"flip probability must be in [0, 1), got {self.q}")

    def is_empty(self) -> bool:
        return self.q <= 0.0


@dataclass(frozen=True)
class StateCorruptionEvent:
    """At the start of round ``round``, corrupt a random node subset.

    ``max(1, int(n * fraction))`` victims are drawn uniformly without
    replacement (independently per replica in the batched engine) and
    handed to the algorithm's ``corrupt_state`` hook, which overwrites
    their state with arbitrary values and recomputes its convergence
    target over the corrupted state — Section VIII's transient-fault
    regime.
    """

    round: int
    fraction: float

    def __post_init__(self):
        if self.round < 1:
            raise ValueError(f"round must be >= 1 (1-indexed), got {self.round}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def victim_count(self, n: int) -> int:
        return min(n, max(1, int(n * self.fraction)))


_MEMBERSHIP_KINDS = ("join", "depart", "depart_clean")


@dataclass(frozen=True)
class MembershipEvent:
    """One open-world membership transition for one slot.

    ``join`` brings the slot up at the start of round ``round`` with
    *fresh* protocol state (the algorithm's reset hook runs — a joining
    device knows nothing).  ``depart`` removes it crash-like: the state
    freezes in the slot, invisible to the network.  ``depart_clean``
    removes it gracefully: the slot's state is wiped back to its initial
    value on the way out, so nothing can leak from a clean leaver.
    """

    slot: int
    round: int
    kind: str

    def __post_init__(self):
        if self.slot < 0:
            raise ValueError(f"slot must be >= 0, got {self.slot}")
        if self.round < 1:
            raise ValueError(f"round must be >= 1 (1-indexed), got {self.round}")
        if self.kind not in _MEMBERSHIP_KINDS:
            raise ValueError(
                f"kind must be one of {_MEMBERSHIP_KINDS}, got {self.kind!r}"
            )


@dataclass(frozen=True)
class MembershipSchedule:
    """Open-world membership churn over a fixed slot space.

    The engines keep their arrays at a constant width ``n`` — the *slot
    cap* — and membership varies the live population ``n(r)`` inside it:
    slots listed in ``initial_absent`` start empty, ``join`` events fill
    a free slot with fresh state, departures free it again.  ``max_live``
    optionally declares a cap on the live population below ``n`` (checked
    at validation time and again by the conformance harness against
    traces).

    Events are normalized to ``(round, slot)`` order.  Per slot the
    events must alternate presence — a slot can only join while absent
    and only depart while present — and be at strictly increasing
    rounds; anything else is a contradictory script and is rejected at
    construction.
    """

    events: tuple[MembershipEvent, ...] = ()
    initial_absent: tuple[int, ...] = ()
    max_live: int | None = None

    def __post_init__(self):
        object.__setattr__(
            self,
            "events",
            tuple(sorted(self.events, key=lambda e: (e.round, e.slot))),
        )
        object.__setattr__(
            self, "initial_absent", tuple(sorted(int(s) for s in self.initial_absent))
        )
        if len(set(self.initial_absent)) != len(self.initial_absent):
            raise ValueError("duplicate slots in initial_absent")
        if self.initial_absent and self.initial_absent[0] < 0:
            raise ValueError("initial_absent slots must be >= 0")
        if self.max_live is not None and self.max_live < 1:
            raise ValueError(f"max_live must be >= 1, got {self.max_live}")
        absent0 = set(self.initial_absent)
        present: dict[int, bool] = {}
        last_round: dict[int, int] = {}
        for e in self.events:
            if e.round <= last_round.get(e.slot, 0):
                raise ValueError(
                    f"slot {e.slot} has two membership events in round {e.round}"
                )
            last_round[e.slot] = e.round
            was_present = present.get(e.slot, e.slot not in absent0)
            joining = e.kind == "join"
            if joining == was_present:
                state = "present" if was_present else "absent"
                raise ValueError(
                    f"slot {e.slot} cannot {e.kind} at round {e.round}: "
                    f"it is already {state}"
                )
            present[e.slot] = joining

    def is_empty(self) -> bool:
        return not self.events and not self.initial_absent

    def max_slot(self) -> int:
        m = max((e.slot for e in self.events), default=-1)
        return max(m, max(self.initial_absent, default=-1))

    def down_at(self, r: int, n: int) -> np.ndarray:
        """Boolean ``(n,)`` mask of slots absent in round ``r``."""
        down = np.zeros(n, dtype=bool)
        for s in self.initial_absent:
            down[s] = True
        for e in self.events:  # sorted by round: later events overwrite
            if e.round <= r:
                down[e.slot] = e.kind != "join"
        return down

    def transition_rounds(self) -> frozenset[int]:
        """Rounds at which the absent mask can change (event rounds)."""
        return frozenset(e.round for e in self.events)

    def state_resets(self) -> dict[int, tuple[int, ...]]:
        """``{round: slots}`` wiped to fresh state at the start of that round.

        Joins always reset (a joining device knows nothing of the run so
        far); clean departures reset on the way out; crash-like
        departures freeze the slot's state instead.
        """
        out: dict[int, set[int]] = {}
        for e in self.events:
            if e.kind in ("join", "depart_clean"):
                out.setdefault(e.round, set()).add(e.slot)
        return {r: tuple(sorted(slots)) for r, slots in out.items()}

    def never_return(self) -> frozenset[int]:
        """Slots absent from some round onward (or absent throughout)."""
        final: dict[int, bool] = {s: False for s in self.initial_absent}
        for e in self.events:  # sorted by round: the last event decides
            final[e.slot] = e.kind == "join"
        return frozenset(s for s, present in final.items() if not present)

    def quiesce_round(self) -> int:
        """Last scheduled membership transition."""
        return max((e.round for e in self.events), default=0)

    def validate_for(self, n: int) -> None:
        """Check slot ids and the live-population envelope against ``n``."""
        if self.max_slot() >= n:
            raise ValueError(
                f"membership schedule names slot {self.max_slot()} "
                f"but the network has only {n} slots"
            )
        cap = n if self.max_live is None else self.max_live
        if cap > n:
            raise ValueError(f"max_live {cap} exceeds the slot cap n={n}")
        live = n - len(self.initial_absent)
        if live < 1:
            raise ValueError("at least one slot must be live initially")
        if live > cap:
            raise ValueError(
                f"{live} slots live initially, above the declared cap {cap}"
            )
        i, events = 0, self.events
        while i < len(events):
            r = events[i].round
            while i < len(events) and events[i].round == r:
                live += 1 if events[i].kind == "join" else -1
                i += 1
            if live < 1:
                raise ValueError(
                    f"membership schedule empties the network at round {r}"
                )
            if live > cap:
                raise ValueError(
                    f"live population {live} at round {r} exceeds "
                    f"the declared cap {cap}"
                )


@dataclass(frozen=True)
class FaultPlan:
    """A composition of fault models, consumed uniformly by every engine.

    All fields are optional; an empty plan is behaviourally (and, after
    engine normalization, bit-for-bit) identical to no plan at all.
    """

    crashes: CrashSchedule | None = None
    connection_drop: ConnectionDropModel | None = None
    tag_corruption: TagCorruptionModel | None = None
    state_corruption: tuple[StateCorruptionEvent, ...] = field(default_factory=tuple)
    membership: MembershipSchedule | None = None
    #: Declared network size; when set, node/slot ids are validated
    #: against it at construction time instead of deep inside an engine.
    n: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "state_corruption", tuple(self.state_corruption))
        if self.crashes is not None and not isinstance(self.crashes, CrashSchedule):
            raise TypeError("crashes must be a CrashSchedule or None")
        if self.membership is not None and not isinstance(
            self.membership, MembershipSchedule
        ):
            raise TypeError("membership must be a MembershipSchedule or None")
        if self.n is not None:
            if self.n < 1:
                raise ValueError(f"n must be >= 1, got {self.n}")
            self.validate_for(self.n)

    def is_empty(self) -> bool:
        """Whether the plan can inject no fault at all."""
        return (
            (self.crashes is None or self.crashes.is_empty())
            and (self.connection_drop is None or self.connection_drop.is_empty())
            and (self.tag_corruption is None or self.tag_corruption.is_empty())
            and not self.state_corruption
            and (self.membership is None or self.membership.is_empty())
        )

    @property
    def quiesce_round(self) -> int:
        """First round from which convergence checks are meaningful.

        The last *scheduled* fault round: crash-window edges and
        corruption-event rounds.  Stationary probabilistic models (drops,
        tag flips) contribute nothing — they cannot un-converge absorbed
        state.  ``0`` means the plan never gates convergence.
        """
        q = self.crashes.quiesce_round() if self.crashes is not None else 0
        for e in self.state_corruption:
            q = max(q, e.round)
        if self.membership is not None:
            q = max(q, self.membership.quiesce_round())
        return q

    def validate_for(self, n: int) -> None:
        """Check node indices (and the membership envelope) fit ``n`` vertices."""
        if self.n is not None and self.n != n:
            raise ValueError(
                f"plan was declared for n={self.n} but the network has {n} nodes"
            )
        if self.crashes is not None and self.crashes.max_node() >= n:
            raise ValueError(
                f"crash schedule names node {self.crashes.max_node()} "
                f"but the network has only {n} nodes"
            )
        if self.membership is not None:
            self.membership.validate_for(n)

    # -- JSON round-trip -----------------------------------------------------

    def to_dict(self) -> dict:
        out: dict = {}
        if self.crashes is not None and not self.crashes.is_empty():
            out["crashes"] = [
                {
                    "node": w.node,
                    "start": w.start,
                    "end": w.end,
                    "reset_on_rejoin": w.reset_on_rejoin,
                }
                for w in self.crashes.windows
            ]
        if self.connection_drop is not None and not self.connection_drop.is_empty():
            out["connection_drop"] = {"p": self.connection_drop.p}
        if self.tag_corruption is not None and not self.tag_corruption.is_empty():
            out["tag_corruption"] = {"q": self.tag_corruption.q}
        if self.state_corruption:
            out["state_corruption"] = [
                {"round": e.round, "fraction": e.fraction}
                for e in self.state_corruption
            ]
        if self.membership is not None and not self.membership.is_empty():
            m: dict = {
                "events": [
                    {"slot": e.slot, "round": e.round, "kind": e.kind}
                    for e in self.membership.events
                ]
            }
            if self.membership.initial_absent:
                m["initial_absent"] = list(self.membership.initial_absent)
            if self.membership.max_live is not None:
                m["max_live"] = self.membership.max_live
            out["membership"] = m
        if self.n is not None:
            out["n"] = self.n
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        known = {
            "crashes",
            "connection_drop",
            "tag_corruption",
            "state_corruption",
            "membership",
            "n",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")
        crashes = None
        if data.get("crashes"):
            crashes = CrashSchedule(
                tuple(
                    CrashWindow(
                        node=int(w["node"]),
                        start=int(w["start"]),
                        end=None if w.get("end") is None else int(w["end"]),
                        reset_on_rejoin=bool(w.get("reset_on_rejoin", True)),
                    )
                    for w in data["crashes"]
                )
            )
        drop = None
        if data.get("connection_drop"):
            drop = ConnectionDropModel(p=float(data["connection_drop"]["p"]))
        tags = None
        if data.get("tag_corruption"):
            tags = TagCorruptionModel(q=float(data["tag_corruption"]["q"]))
        events = tuple(
            StateCorruptionEvent(round=int(e["round"]), fraction=float(e["fraction"]))
            for e in data.get("state_corruption", [])
        )
        membership = None
        if data.get("membership"):
            m = data["membership"]
            membership = MembershipSchedule(
                events=tuple(
                    MembershipEvent(
                        slot=int(e["slot"]), round=int(e["round"]), kind=str(e["kind"])
                    )
                    for e in m.get("events", [])
                ),
                initial_absent=tuple(int(s) for s in m.get("initial_absent", [])),
                max_live=None if m.get("max_live") is None else int(m["max_live"]),
            )
        return cls(
            crashes=crashes,
            connection_drop=drop,
            tag_corruption=tags,
            state_corruption=events,
            membership=membership,
            n=None if data.get("n") is None else int(data["n"]),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    def to_file(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    def describe(self) -> str:
        """Human-readable one-paragraph summary (CLI ``faults describe``)."""
        if self.is_empty():
            return "empty plan (no faults)"
        parts = []
        if self.crashes is not None and not self.crashes.is_empty():
            perm = sum(1 for w in self.crashes.windows if w.end is None)
            parts.append(
                f"{len(self.crashes.windows)} crash window(s)"
                + (f" ({perm} permanent)" if perm else "")
            )
        if self.connection_drop is not None and not self.connection_drop.is_empty():
            parts.append(f"connection drop p={self.connection_drop.p}")
        if self.tag_corruption is not None and not self.tag_corruption.is_empty():
            parts.append(f"tag bit-flip q={self.tag_corruption.q}")
        if self.state_corruption:
            rounds = ", ".join(
                f"{e.fraction:.0%} at round {e.round}" for e in self.state_corruption
            )
            parts.append(f"state corruption: {rounds}")
        if self.membership is not None and not self.membership.is_empty():
            joins = sum(1 for e in self.membership.events if e.kind == "join")
            departs = len(self.membership.events) - joins
            clean = sum(
                1 for e in self.membership.events if e.kind == "depart_clean"
            )
            desc = f"open-world membership: {joins} join(s), {departs} departure(s)"
            if clean:
                desc += f" ({clean} clean)"
            if self.membership.initial_absent:
                desc += (
                    f", {len(self.membership.initial_absent)} slot(s) "
                    "initially absent"
                )
            if self.membership.max_live is not None:
                desc += f", live cap {self.membership.max_live}"
            never = len(self.membership.never_return())
            if never:
                desc += f", {never} slot(s) never return"
            parts.append(desc)
        return "; ".join(parts) + f"; quiesce round {self.quiesce_round}"


def random_crash_schedule(
    n: int,
    count: int,
    *,
    first_round: int,
    last_round: int,
    seed: int,
    min_len: int = 2,
    max_len: int | None = None,
    reset_on_rejoin: bool = True,
) -> CrashSchedule:
    """A seeded schedule of ``count`` distinct nodes crashing once each.

    Every window starts in ``[first_round, last_round]`` and ends by
    ``last_round`` (all nodes rejoin — the convergence-friendly regime
    experiment R3 sweeps).  The schedule is plan-level data: the *same*
    windows apply to every trial, while run-time fault randomness stays
    per-trial-seed.
    """
    if not 0 <= count <= n:
        raise ValueError(f"count must be in [0, {n}], got {count}")
    if first_round < 1 or last_round < first_round:
        raise ValueError("need 1 <= first_round <= last_round")
    max_len = max_len or max(min_len, (last_round - first_round) // 2)
    if min_len < 1 or max_len < min_len:
        raise ValueError("need 1 <= min_len <= max_len")
    rng = make_rng(seed, "crash-schedule")
    nodes = rng.choice(n, size=count, replace=False)
    windows = []
    for node in nodes:
        length = int(rng.integers(min_len, max_len + 1))
        start_hi = max(first_round, last_round - length + 1)
        start = int(rng.integers(first_round, start_hi + 1))
        end = min(start + length - 1, last_round)
        windows.append(
            CrashWindow(
                node=int(node), start=start, end=end, reset_on_rejoin=reset_on_rejoin
            )
        )
    return CrashSchedule(tuple(windows))


def random_membership_schedule(
    n: int,
    count: int,
    *,
    first_round: int,
    last_round: int,
    seed: int,
    initial_absent: int = 0,
    clean_fraction: float = 0.5,
    min_live: int = 2,
    max_live: int | None = None,
    protect: tuple[int, ...] = (),
) -> MembershipSchedule:
    """A seeded open-world churn script of up to ``count`` events.

    ``initial_absent`` slots start empty; each scheduled round then
    flips a coin between a join (filling a free slot with fresh state)
    and a departure (clean with probability ``clean_fraction``), always
    keeping the live population in ``[min_live, max_live or n]``.  Like
    :func:`random_crash_schedule` this is plan-level data — the same
    script applies to every trial, while run-time fault randomness stays
    per-trial-seed.  Rounds with no feasible event are skipped, so fewer
    than ``count`` events may come back.

    ``protect`` slots are pinned live: never chosen as initially absent
    and never scheduled to depart (e.g. a rumor source whose removal
    would make every trial unwinnable for reasons unrelated to the
    algorithm under test).
    """
    if not 0 <= initial_absent < n:
        raise ValueError(f"initial_absent must be in [0, {n - 1}], got {initial_absent}")
    if first_round < 1 or last_round < first_round:
        raise ValueError("need 1 <= first_round <= last_round")
    if min_live < 1:
        raise ValueError(f"min_live must be >= 1, got {min_live}")
    cap = n if max_live is None else max_live
    if not min_live <= cap <= n:
        raise ValueError(f"need min_live <= max_live <= n, got cap {cap}")
    if n - initial_absent < min_live or n - initial_absent > cap:
        raise ValueError(
            f"{n - initial_absent} slots live initially falls outside "
            f"[{min_live}, {cap}]"
        )
    pinned = frozenset(int(s) for s in protect)
    if any(s < 0 or s >= n for s in pinned):
        raise ValueError(f"protect slots must be in [0, {n - 1}]")
    if n - len(pinned) < initial_absent:
        raise ValueError(
            f"cannot keep {initial_absent} slots absent with {len(pinned)} protected"
        )
    rng = make_rng(seed, "membership-schedule")
    pool = np.array(sorted(set(range(n)) - pinned), dtype=np.int64)
    absent = set(
        int(s) for s in rng.choice(pool, size=initial_absent, replace=False)
    )
    absent0 = tuple(sorted(absent))
    present = set(range(n)) - absent
    last_event: dict[int, int] = {}
    events: list[MembershipEvent] = []
    rounds = sorted(
        int(r) for r in rng.integers(first_round, last_round + 1, size=count)
    )
    for r in rounds:
        joinable = sorted(s for s in absent if last_event.get(s, 0) < r)
        leavable = sorted(
            s for s in present if last_event.get(s, 0) < r and s not in pinned
        )
        can_join = bool(joinable) and len(present) < cap
        can_leave = bool(leavable) and len(present) > min_live
        if not can_join and not can_leave:
            continue
        join = can_join and (not can_leave or rng.random() < 0.5)
        if join:
            slot = joinable[int(rng.integers(len(joinable)))]
            events.append(MembershipEvent(slot=slot, round=r, kind="join"))
            absent.discard(slot)
            present.add(slot)
        else:
            slot = leavable[int(rng.integers(len(leavable)))]
            kind = "depart_clean" if rng.random() < clean_fraction else "depart"
            events.append(MembershipEvent(slot=slot, round=r, kind=kind))
            present.discard(slot)
            absent.add(slot)
        last_event[slot] = r
    return MembershipSchedule(
        events=tuple(events), initial_absent=absent0, max_live=max_live
    )


def leader_assassin_schedule(
    keys,
    *,
    period: int,
    kills: int,
    first_round: int = 1,
    down_for: int | None = None,
    min_live: int = 2,
    clean: bool = False,
) -> MembershipSchedule:
    """Deterministically remove successive would-be leaders.

    Any algorithm electing the minimum key always has the live slot with
    the smallest key as its (eventual) leader, so departing slots in
    ascending-key order removes the current leader every ``period``
    rounds — an *oblivious* schedule that exactly implements the
    adaptive leader-assassin of the open-world model against min-UID
    election.  ``down_for=None`` makes each assassination permanent;
    otherwise the victim rejoins with fresh state after ``down_for``
    rounds (and, holding the smallest key again, immediately becomes
    the next target of the population's re-agreement).
    """
    keys = np.asarray(keys)
    n = int(keys.shape[0])
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if first_round < 1:
        raise ValueError(f"first_round must be >= 1, got {first_round}")
    if down_for is not None and down_for < 1:
        raise ValueError(f"down_for must be >= 1, got {down_for}")
    if kills < 0:
        raise ValueError(f"kills must be >= 0, got {kills}")
    if down_for is None and kills > n - min_live:
        raise ValueError(
            f"{kills} permanent kills would leave fewer than {min_live} "
            f"live slots out of {n}"
        )
    order = np.argsort(keys, kind="stable")
    depart_kind = "depart_clean" if clean else "depart"
    events: list[MembershipEvent] = []
    for k in range(min(kills, n)):
        slot = int(order[k])
        r = first_round + k * period
        events.append(MembershipEvent(slot=slot, round=r, kind=depart_kind))
        if down_for is not None:
            events.append(
                MembershipEvent(slot=slot, round=r + down_for, kind="join")
            )
    return MembershipSchedule(events=tuple(events))


def example_plan() -> FaultPlan:
    """The template emitted by ``repro faults template``.

    Every window here ends (set ``"end": null`` for a permanent crash —
    but note a permanently crashed node freezes its state, so the
    standard all-nodes convergence predicate may then never fire).
    """
    return FaultPlan(
        crashes=CrashSchedule(
            (
                CrashWindow(node=3, start=10, end=50, reset_on_rejoin=True),
                CrashWindow(node=7, start=25, end=80, reset_on_rejoin=False),
            )
        ),
        connection_drop=ConnectionDropModel(p=0.2),
        tag_corruption=TagCorruptionModel(q=0.01),
        state_corruption=(StateCorruptionEvent(round=30, fraction=1 / 3),),
        membership=MembershipSchedule(
            events=(
                MembershipEvent(slot=9, round=40, kind="join"),
                MembershipEvent(slot=5, round=60, kind="depart_clean"),
            ),
            initial_absent=(9,),
        ),
    )
