"""Run-time fault application (per-engine applicators).

A :class:`~repro.faults.plan.FaultPlan` is pure data; these applicators
hold the mutable run-time side — the fault RNG stream and the cached
crash mask — and expose one method per engine hook point.  Two shapes:

* :class:`SingleFaultState` — ``(n,)`` masks for the reference and
  vectorized engines (both operate on one network);
* :class:`BatchedFaultState` — ``(T, n)`` / flat masks for the batched
  engine, vectorized over replicas to preserve the batch throughput.
  Crash schedules are deterministic plan data shared by every replica
  (exactly like activation rounds), so the up mask stays ``(n,)``;
  probabilistic faults (drops, tag flips, corruption victims) draw
  per-replica.

Seeding hygiene: the fault stream must be handed in by the engine,
derived from the engine's trial seed via :mod:`repro.util.rng` labels
(``"faults"`` for single-network engines, ``"batched-faults"`` keyed on
``seeds[0]`` and the replica count for the batched engine) — never a
module-level RNG.  A separate stream means an engine built with a fault
plan whose models never fire consumes *zero* draws from the algorithm
streams, and the same plan + seed replays identically across
``run_trials(processes=K)`` workers and the batched engine.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import FaultPlan

__all__ = ["SingleFaultState", "BatchedFaultState"]


class _FaultStateBase:
    """Shared crash-mask caching and schedule bookkeeping."""

    def __init__(self, plan: FaultPlan, n: int, rng: np.random.Generator):
        plan.validate_for(n)
        self.plan = plan
        self.n = n
        self.rng = rng
        #: First round from which convergence checks are meaningful.
        self.gate = plan.quiesce_round
        self._schedule = plan.crashes if plan.crashes and not plan.crashes.is_empty() else None
        self._membership = (
            plan.membership
            if plan.membership is not None and not plan.membership.is_empty()
            else None
        )
        transitions = (
            set(self._schedule.transition_rounds()) if self._schedule else set()
        )
        if self._membership is not None:
            transitions |= set(self._membership.transition_rounds())
        self._transitions = frozenset(transitions)
        resets: dict[int, set[int]] = {
            r: set(nodes)
            for r, nodes in (
                self._schedule.rejoin_resets() if self._schedule else {}
            ).items()
        }
        if self._membership is not None:
            # A crash rejoin on a membership-absent slot is moot: the slot
            # stays down, and the eventual join resets it anyway.
            for r in list(resets):
                down = self._membership.down_at(r, n)
                resets[r] = {v for v in resets[r] if not down[v]}
                if not resets[r]:
                    del resets[r]
            for r, slots in self._membership.state_resets().items():
                resets.setdefault(r, set()).update(slots)
        self._rejoins = {r: tuple(sorted(v)) for r, v in resets.items()}
        self._events = {}
        for e in plan.state_corruption:
            self._events.setdefault(e.round, []).append(e)
        drop = plan.connection_drop
        self._drop_p = drop.p if drop is not None and not drop.is_empty() else None
        flips = plan.tag_corruption
        self._flip_q = flips.q if flips is not None and not flips.is_empty() else None
        # Cached up mask; None while every node is up (engine fast path).
        self._up: np.ndarray | None = None
        self._up_round = 0
        #: ``(n,)`` mask of permanently crashed nodes (``end=None`` windows),
        #: or ``None`` when every crash eventually rejoins.  Past the
        #: quiesce gate these nodes are down forever with frozen state, so
        #: stabilization predicates must exclude them (a permanently
        #: crashed node can never adopt the winner).
        perma = np.zeros(n, dtype=bool)
        if self._schedule is not None:
            for w in self._schedule.windows:
                if w.end is None:
                    perma[w.node] = True
        if self._membership is not None:
            for s in self._membership.never_return():
                perma[s] = True
        self.perma_down: np.ndarray | None = perma if perma.any() else None

    def up_mask(self, r: int) -> np.ndarray | None:
        """``(n,)`` mask of live nodes, or ``None`` when all are up.

        A node is down when a crash window covers ``r`` *or* the
        membership schedule has it absent in ``r``.  Recomputed only at
        window edges / membership events; between edges the cached mask
        is reused (rounds must be visited in order, as engines do).
        """
        if self._schedule is None and self._membership is None:
            return None
        if self._up_round == 0 or r in self._transitions:
            if self._schedule is not None:
                down = self._schedule.down_at(r, self.n)
            else:
                down = np.zeros(self.n, dtype=bool)
            if self._membership is not None:
                down |= self._membership.down_at(r, self.n)
            self._up = None if not down.any() else ~down
        self._up_round = r
        return self._up

    def rejoin_resets(self, r: int) -> np.ndarray:
        """Nodes whose state resets at the start of round ``r``.

        Crash rejoins with ``reset_on_rejoin``, membership joins (fresh
        state is what makes a join open-world), and clean departures
        (wiped on the way out) all funnel through this one hook, which is
        how membership lands identically on every engine tier.
        """
        return np.asarray(self._rejoins.get(r, ()), dtype=np.int64)

    def events_at(self, r: int):
        """State-corruption events scheduled for the start of round ``r``."""
        return self._events.get(r, ())

    def connection_keep(self, count: int) -> np.ndarray | None:
        """Survival mask for ``count`` established connections (or ``None``)."""
        if self._drop_p is None or count == 0:
            return None
        return self.rng.random(count) >= self._drop_p

    def _flip_bits(self, tags: np.ndarray, active: np.ndarray, bits: int) -> np.ndarray:
        """Flip each advertised bit with probability ``q`` (in place).

        One ``(shape)`` draw per bit regardless of activity, so the draw
        count is shape-stable; flips land only on active nodes (inactive
        entries may hold sentinels like the reference engine's ``-1``).
        """
        for bit in range(bits):
            flip = (self.rng.random(tags.shape) < self._flip_q) & active
            np.bitwise_xor(tags, 1 << bit, out=tags, where=flip)
        return tags


class SingleFaultState(_FaultStateBase):
    """``(n,)``-shaped applicator for the reference and vectorized engines."""

    def __init__(
        self,
        plan: FaultPlan,
        n: int,
        rng: np.random.Generator,
        *,
        tag_length: int = 0,
    ):
        super().__init__(plan, n, rng)
        self.tag_length = int(tag_length)

    def corruption_victims(self, r: int) -> list[np.ndarray]:
        """One uniformly drawn victim set per event scheduled at ``r``."""
        return [
            self.rng.choice(self.n, size=e.victim_count(self.n), replace=False)
            for e in self.events_at(r)
        ]

    def corrupt_tags(self, tags: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Apply tag bit flips in place (no-op for ``b = 0`` algorithms)."""
        if self._flip_q is None or self.tag_length == 0:
            return tags
        return self._flip_bits(tags, active, self.tag_length)


class BatchedFaultState(_FaultStateBase):
    """``(T, n)``-shaped applicator for the batched engine.

    Deterministic schedule faults (crashes) are shared ``(n,)`` masks;
    probabilistic faults draw per replica so the ``T`` trials stay
    mutually independent, exactly like the batched algorithm streams.
    """

    def __init__(
        self,
        plan: FaultPlan,
        n: int,
        replicas: int,
        rng: np.random.Generator,
        *,
        tag_length: int = 0,
    ):
        super().__init__(plan, n, rng)
        self.replicas = int(replicas)
        self.tag_length = int(tag_length)

    def corruption_victims(self, r: int) -> list[np.ndarray]:
        """One ``(T, k)`` victim array per event scheduled at ``r``.

        Victims are i.i.d. uniform ``k``-subsets per replica (the argsort
        of a random grid — same distribution as ``choice`` without
        replacement, batched over replicas).
        """
        out = []
        for e in self.events_at(r):
            k = e.victim_count(self.n)
            grid = self.rng.random((self.replicas, self.n))
            out.append(np.argsort(grid, axis=1)[:, :k])
        return out

    def corrupt_tags(self, tags: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Apply per-replica tag bit flips in place (``(T, n)`` tags)."""
        if self._flip_q is None or self.tag_length == 0:
            return tags
        # active is (n,): broadcasts across the replica axis.
        return self._flip_bits(tags, active[None, :], self.tag_length)
