"""Declarative fault injection for all engine tiers.

Compose a :class:`~repro.faults.plan.FaultPlan` out of crash schedules,
connection drops, tag corruption, and state-corruption events, then hand
it to any engine (``ReferenceEngine``, ``VectorizedEngine``,
``BatchedVectorizedEngine``) via the ``fault_plan`` constructor argument;
all three apply it at the same round hook points with
distribution-identical behaviour.  See :mod:`repro.faults.plan` for the
schema and the round-semantics contract, :mod:`repro.faults.apply` for
the per-engine run-time applicators, and ``docs/model.md`` ("Faults and
the paper model") for how each model relates to the paper.
"""

from repro.faults.apply import BatchedFaultState, SingleFaultState
from repro.faults.plan import (
    ConnectionDropModel,
    CrashSchedule,
    CrashWindow,
    FaultPlan,
    MembershipEvent,
    MembershipSchedule,
    StateCorruptionEvent,
    TagCorruptionModel,
    example_plan,
    leader_assassin_schedule,
    random_crash_schedule,
    random_membership_schedule,
)

__all__ = [
    "CrashWindow",
    "CrashSchedule",
    "ConnectionDropModel",
    "TagCorruptionModel",
    "StateCorruptionEvent",
    "MembershipEvent",
    "MembershipSchedule",
    "FaultPlan",
    "SingleFaultState",
    "BatchedFaultState",
    "random_crash_schedule",
    "random_membership_schedule",
    "leader_assassin_schedule",
    "example_plan",
]
