"""Algorithm × adversary robustness tournament (the T-series family).

The paper proves bounds against a *worst-case oblivious* dynamic graph;
the open-world model of Augustine et al. ("Robust Leader Election in a
Fast-Changing World") is harsher still — the adversary inserts and
removes nodes, including the current leader, while the run is in flight.
This module ranks the repository's algorithms against the whole adversary
menagerie the graph/fault layers can express, on one seeded grid:

* **algorithms** — blind gossip (min-UID election), PUSH-PULL and PPUSH
  (rumor spreading), each as one registered experiment (T1, T2, T3) so
  the durable campaign scheduler checkpoints, retries, and resumes each
  algorithm's grid as a cell;
* **adversaries** — ``none`` (faultless baseline), ``relabel``
  (oblivious isomorphic churn), ``mobility`` (random-waypoint unit
  disks), ``packing`` (the adaptive spread-throttling relabeler),
  ``assassin`` (open-world leader assassination: the live slot holding
  the smallest key departs every period), and ``openworld`` (seeded
  join/depart churn with initially-absent slots);
* **τ grid** — the stability factor doubles as the open-world
  stabilization requirement: the live population must agree on a live
  leader for ``τ`` consecutive rounds
  (:class:`~repro.core.monitor.LiveAgreementMonitor`).

Every cell is a deterministic function of ``(seed, algorithm, adversary,
τ)`` — cell seeds are derived order-independently, so serial and pooled
campaign runs produce bit-identical tables.  A trial *survives* when the
monitor latches within ``max_rounds``; each table row reports the
survival rate, the median stabilization round over survivors, and the
inflation of that median against the same-τ faultless baseline.
:func:`tournament_leaderboard` folds the per-algorithm tables into the
ranked robustness leaderboard (survival desc, inflation asc).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.algorithms.blind_gossip import BlindGossipVectorized
from repro.algorithms.ppush import PPushVectorized
from repro.algorithms.push_pull import PushPullVectorized
from repro.core.monitor import LiveAgreementMonitor
from repro.core.vectorized import VectorizedEngine
from repro.faults import (
    FaultPlan,
    leader_assassin_schedule,
    random_membership_schedule,
)
from repro.graphs import families
from repro.graphs.adversary import PackingAdversary
from repro.graphs.dynamic import (
    DynamicGraph,
    PeriodicRelabelDynamicGraph,
    StaticDynamicGraph,
)
from repro.graphs.mobility import RandomWaypointDynamicGraph
from repro.harness.runner import trial_seeds_for
from repro.harness.tables import Table
from repro.util.rng import make_rng

__all__ = [
    "ADVERSARIES",
    "TOURNAMENT_ALGORITHMS",
    "TOURNAMENT_EXP_IDS",
    "exp_tournament",
    "run_tournament_trial",
    "tournament_leaderboard",
]

#: Adversary grid, baseline first (the inflation denominator must exist
#: before any other cell of the same τ is scored).
ADVERSARIES = ("none", "relabel", "mobility", "packing", "assassin", "openworld")

#: Algorithms entered in the tournament, keyed by experiment id.
TOURNAMENT_ALGORITHMS: Mapping[str, str] = {
    "T1": "blind_gossip",
    "T2": "push_pull",
    "T3": "ppush",
}

TOURNAMENT_EXP_IDS = tuple(TOURNAMENT_ALGORITHMS)

#: Open-world adversaries implemented as membership fault plans.
_MEMBERSHIP_ADVERSARIES = ("assassin", "openworld")


def _uid_keys(n: int, seed: int) -> np.ndarray:
    # Lazy import: experiments.py imports this module for the registry.
    from repro.harness.experiments import uid_keys_random

    return uid_keys_random(n, seed)


def _adversary_graph(
    adversary: str, base, n: int, tau: int, trial_seed: int
) -> DynamicGraph:
    if adversary == "relabel":
        return PeriodicRelabelDynamicGraph(base, tau=tau, seed=trial_seed)
    if adversary == "mobility":
        return RandomWaypointDynamicGraph(n, tau, seed=trial_seed)
    if adversary == "packing":
        return PackingAdversary(base, tau=tau)
    # none / assassin / openworld attack membership, not topology.
    return StaticDynamicGraph(base)


def _adversary_plan(
    adversary: str,
    keys: np.ndarray,
    n: int,
    trial_seed: int,
    *,
    assassin_period: int,
    assassin_kills: int,
    churn_events: int,
    churn_last: int,
    protect: tuple[int, ...],
) -> FaultPlan | None:
    if adversary == "assassin":
        # Victims rejoin with fresh state after one period — the
        # population must re-absorb every resurrected smallest key.
        schedule = leader_assassin_schedule(
            keys,
            period=assassin_period,
            kills=assassin_kills,
            first_round=3,
            down_for=assassin_period,
        )
        return FaultPlan(membership=schedule, n=n)
    if adversary == "openworld":
        schedule = random_membership_schedule(
            n,
            churn_events,
            first_round=2,
            last_round=churn_last,
            seed=trial_seed,
            initial_absent=max(1, n // 8),
            clean_fraction=0.5,
            min_live=max(2, n // 2),
            protect=protect,
        )
        return FaultPlan(membership=schedule, n=n)
    return None


def run_tournament_trial(
    algorithm: str,
    adversary: str,
    tau: int,
    *,
    n: int,
    degree: int,
    max_rounds: int,
    trial_seed: int,
    assassin_period: int = 8,
    assassin_kills: int = 3,
    churn_events: int = 12,
    churn_last: int = 40,
) -> int | None:
    """One seeded trial; the latched stabilization round, or ``None``.

    Survival means the :class:`~repro.core.monitor.LiveAgreementMonitor`
    certified ``τ`` consecutive rounds of live-population agreement on a
    live leader (election) / full live informedness (rumor) within
    ``max_rounds``.
    """
    base = families.random_regular(n, degree, seed=trial_seed)
    keys = _uid_keys(n, trial_seed)
    source = int(np.argmin(keys))

    if algorithm == "blind_gossip":
        algo = BlindGossipVectorized(keys)
        monitor = LiveAgreementMonitor(tau, leader_keys=keys)
        values = lambda state: state.best  # noqa: E731
        protect: tuple[int, ...] = ()
    elif algorithm == "push_pull":
        algo = PushPullVectorized(np.array([source]))
        monitor = LiveAgreementMonitor(tau)
        values = lambda state: state.informed  # noqa: E731
        # A rumor source that never exists makes the cell unwinnable for
        # reasons independent of the algorithm; keep it in the network.
        protect = (source,)
    elif algorithm == "ppush":
        algo = PPushVectorized(np.array([source]))
        monitor = LiveAgreementMonitor(tau)
        values = lambda state: state.informed  # noqa: E731
        protect = (source,)
    else:
        raise ValueError(f"unknown tournament algorithm {algorithm!r}")

    dg = _adversary_graph(adversary, base, n, tau, trial_seed)
    plan = _adversary_plan(
        adversary,
        keys,
        n,
        trial_seed,
        assassin_period=assassin_period,
        assassin_kills=assassin_kills,
        churn_events=churn_events,
        churn_last=churn_last,
        protect=protect,
    )
    engine = VectorizedEngine(dg, algo, seed=trial_seed, fault_plan=plan)
    for r in range(1, max_rounds + 1):
        engine.step(r)
        live = engine.last_active
        if live is None:
            live = np.ones(n, dtype=bool)
        if monitor.observe(r, values(engine.state), live):
            return monitor.stabilized_round
    return None


def _median(rounds: list[int]) -> float:
    return float(np.median(rounds)) if rounds else math.inf


def exp_tournament(
    algorithm: str,
    *,
    adversaries: Sequence[str] = ADVERSARIES,
    taus: Sequence[int] = (1, 2, 4),
    n: int = 24,
    degree: int = 6,
    trials: int = 4,
    max_rounds: int = 600,
    seed: int = 0,
    assassin_period: int = 8,
    assassin_kills: int = 3,
    churn_events: int = 12,
    churn_last: int = 40,
) -> Table:
    """One algorithm's full adversary × τ grid as a result table.

    Cell seeds derive from ``(seed, algorithm, adversary, τ)`` alone —
    never from execution order — so any scheduling of the cells (serial,
    pooled, resumed) reproduces the table bit for bit.  ``inflation`` is
    the cell's survivor-median divided by the faultless (``none``)
    baseline median at the same τ; ``inf`` marks a cell with no
    survivors.
    """
    if "none" not in adversaries:
        raise ValueError("the adversary grid needs the 'none' baseline")
    table = Table(
        title=f"Tournament grid: {algorithm} vs adversary × tau "
        f"(n={n}, degree={degree})",
        columns=["adversary", "tau", "trials", "survival", "median rounds", "inflation"],
        notes=[
            "Open-world robustness: a trial survives when the live population "
            "agrees on a live leader (election) / is fully informed (rumor) "
            f"for tau consecutive rounds within {max_rounds} rounds.",
            f"Workload: random {degree}-regular base, n={n}; assassin departs "
            f"the {assassin_kills} smallest keys every {assassin_period} rounds "
            f"(rejoining fresh); openworld runs {churn_events} join/depart "
            f"events through round {churn_last} with {max(1, n // 8)} slots "
            "initially absent.",
            "inflation = survivor-median rounds / faultless baseline at the "
            "same tau; inf marks a cell with no survivors.",
        ],
    )
    for tau in taus:
        baselines: dict[int, float] = {}
        ordered = ["none"] + [a for a in adversaries if a != "none"]
        for adversary in ordered:
            cell_seed = int(
                make_rng(seed, "tournament", algorithm, adversary, int(tau)).integers(
                    0, 2**31 - 1
                )
            )
            survived: list[int] = []
            for ts in trial_seeds_for(cell_seed, trials):
                sr = run_tournament_trial(
                    algorithm,
                    adversary,
                    int(tau),
                    n=n,
                    degree=degree,
                    max_rounds=max_rounds,
                    trial_seed=int(ts),
                    assassin_period=assassin_period,
                    assassin_kills=assassin_kills,
                    churn_events=churn_events,
                    churn_last=churn_last,
                )
                if sr is not None:
                    survived.append(sr)
            med = _median(survived)
            if adversary == "none":
                baselines[int(tau)] = med
            baseline = baselines[int(tau)]
            inflation = (
                med / baseline if math.isfinite(med) and baseline > 0 else math.inf
            )
            table.add_row(
                adversary,
                int(tau),
                trials,
                len(survived) / trials,
                med,
                inflation,
            )
    return table


def exp_tournament_blind_gossip(**kw) -> Table:
    return exp_tournament("blind_gossip", **kw)


def exp_tournament_push_pull(**kw) -> Table:
    return exp_tournament("push_pull", **kw)


def exp_tournament_ppush(**kw) -> Table:
    return exp_tournament("ppush", **kw)


def tournament_leaderboard(tables: Mapping[str, Table]) -> Table:
    """Fold per-algorithm grid tables into the ranked robustness leaderboard.

    ``tables`` maps experiment id (or algorithm name) to its grid table.
    One leaderboard row per (algorithm, adversary) pair aggregates the τ
    grid: survival rate averaged over τ, inflation averaged over the τ
    cells where it is finite (``inf`` if no cell has survivors).  Rows
    rank by survival (desc), then mean inflation (asc), then name — most
    robust pairing first.
    """
    entries = []
    for exp_id, table in tables.items():
        algorithm = TOURNAMENT_ALGORITHMS.get(exp_id, exp_id)
        by_adv: dict[str, list[tuple[float, float]]] = {}
        for row in table.rows:
            cells = dict(zip(table.columns, row))
            by_adv.setdefault(str(cells["adversary"]), []).append(
                (float(cells["survival"]), float(cells["inflation"]))
            )
        for adversary, cells in by_adv.items():
            survival = float(np.mean([s for s, _ in cells]))
            finite = [i for _, i in cells if math.isfinite(i)]
            inflation = float(np.mean(finite)) if finite else math.inf
            entries.append((algorithm, adversary, survival, inflation))
    entries.sort(key=lambda e: (-e[2], e[3], e[0], e[1]))
    table = Table(
        title="Robustness leaderboard: algorithm × adversary, ranked",
        columns=["rank", "algorithm", "adversary", "survival", "mean inflation"],
        notes=[
            "survival: fraction of trials reaching tau-stable live-population "
            "agreement, averaged over the tau grid.",
            "mean inflation: survivor-median stabilization / faultless "
            "baseline at the same tau, averaged over cells with survivors "
            "(inf: no cell of the pairing had a survivor).",
            "Ranked by survival (desc), then inflation (asc).",
        ],
    )
    for rank, (algorithm, adversary, survival, inflation) in enumerate(entries, 1):
        table.add_row(rank, algorithm, adversary, survival, inflation)
    return table
