"""Persisting experiment results to disk.

Experiment tables can be saved as JSON documents carrying the full grid
plus reproducibility metadata (experiment id, profile, package version,
timestamp), and reloaded as :class:`~repro.harness.tables.Table` objects.
EXPERIMENTS.md-style archives are regenerated from these documents rather
than by re-running the sweeps.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.harness.tables import Table

__all__ = ["ResultDocument", "save_table", "load_table", "load_document"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ResultDocument:
    """A saved experiment result: the table plus provenance metadata."""

    table: Table
    exp_id: str
    profile: str
    created_at: float
    package_version: str
    format_version: int = _FORMAT_VERSION
    extra: dict = field(default_factory=dict)


def _table_to_json(table: Table) -> dict:
    return {
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
    }


def _table_from_json(doc: dict) -> Table:
    table = Table(
        title=doc["title"], columns=list(doc["columns"]), notes=list(doc["notes"])
    )
    for row in doc["rows"]:
        table.add_row(*row)
    return table


def save_table(
    table: Table,
    path: str | Path,
    *,
    exp_id: str,
    profile: str,
    extra: dict | None = None,
) -> Path:
    """Write ``table`` (with provenance) as a JSON document.

    Cells must be JSON-serializable (the tables produced by the registry
    contain only numbers, strings, and booleans).
    """
    import repro

    path = Path(path)
    doc = {
        "format_version": _FORMAT_VERSION,
        "exp_id": exp_id,
        "profile": profile,
        "created_at": time.time(),
        "package_version": repro.__version__,
        "extra": extra or {},
        "table": _table_to_json(table),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_document(path: str | Path) -> ResultDocument:
    """Load a saved result with its metadata."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format {doc.get('format_version')!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    return ResultDocument(
        table=_table_from_json(doc["table"]),
        exp_id=doc["exp_id"],
        profile=doc["profile"],
        created_at=doc["created_at"],
        package_version=doc["package_version"],
        format_version=doc["format_version"],
        extra=doc.get("extra", {}),
    )


def load_table(path: str | Path) -> Table:
    """Load just the table from a saved result."""
    return load_document(path).table
