"""Persisting experiment results to disk.

Experiment tables can be saved as JSON documents carrying the full grid
plus reproducibility metadata (experiment id, profile, package version,
timestamp), and reloaded as :class:`~repro.harness.tables.Table` objects.
EXPERIMENTS.md-style archives are regenerated from these documents rather
than by re-running the sweeps.

Durability contract (the campaign checkpointer builds on these
primitives):

* every write goes through :func:`atomic_write_text` — temp file in the
  target directory, ``fsync``, ``os.replace``, then a directory
  ``fsync`` — so a crash at any instant leaves either the old document
  or the new one, never a truncated hybrid;
* every document carries a ``content_sha256`` over its canonical payload,
  verified on load, so silent corruption (bit rot, partial copies) is
  detected rather than parsed;
* every load failure — unreadable file, bad JSON, missing keys, version
  or hash mismatch — surfaces as one exception type,
  :class:`ResultLoadError`, naming the offending path;
  ``load_document(..., strict=False)`` instead returns ``None`` so
  callers can quarantine and regenerate.

Non-finite cells (the tournament's ``math.inf`` inflation sentinel, or a
``nan`` from an empty sample) are *not* representable in RFC 8259 JSON —
``json.dump``'s default ``allow_nan=True`` writes the non-standard
``Infinity``/``NaN`` tokens, which ``jq`` and most non-Python consumers
reject.  Documents written here therefore encode every non-finite float
as a portable marker object ``{"__nonfinite__": "inf" | "-inf" | "nan"}``
and serialize with ``allow_nan=False`` so a leak can never reach disk.
``load_document`` decodes the markers back to floats and still accepts
legacy ``Infinity``-bearing files (Python's parser tolerates the tokens),
so existing checkpoints resume; finite-only tables hash identically under
both schemes because the encoding is the identity on finite payloads.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.harness.tables import Table

__all__ = [
    "ResultDocument",
    "ResultLoadError",
    "save_table",
    "load_table",
    "load_document",
    "atomic_write_text",
    "quarantine_file",
    "encode_nonfinite",
    "decode_nonfinite",
    "strict_json_loads",
]

_FORMAT_VERSION = 1

#: Document key holding the payload hash; excluded from the hash itself.
_HASH_KEY = "content_sha256"

#: Marker key for portably-encoded non-finite floats.  Table cells are
#: scalars (numbers, strings, booleans), so a single-key object under
#: this name is unambiguous inside a document payload.
_NONFINITE_KEY = "__nonfinite__"

_NONFINITE_DECODE = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def encode_nonfinite(value):
    """Recursively replace non-finite floats with portable markers.

    ``math.inf`` → ``{"__nonfinite__": "inf"}`` (and ``-inf``/``nan``
    likewise); finite values pass through unchanged, so the encoding is
    the identity on finite-only payloads.  Containers are rebuilt
    (tuples become lists, matching JSON round-tripping).
    """
    if isinstance(value, float) and not math.isfinite(value):
        if value == math.inf:
            return {_NONFINITE_KEY: "inf"}
        if value == -math.inf:
            return {_NONFINITE_KEY: "-inf"}
        return {_NONFINITE_KEY: "nan"}
    if isinstance(value, dict):
        return {key: encode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_nonfinite(item) for item in value]
    return value


def decode_nonfinite(value):
    """Inverse of :func:`encode_nonfinite`; raises ``ValueError`` on a
    marker object carrying an unknown token."""
    if isinstance(value, dict):
        if set(value) == {_NONFINITE_KEY}:
            token = value[_NONFINITE_KEY]
            try:
                return _NONFINITE_DECODE[token]
            except KeyError:
                raise ValueError(
                    f"unknown non-finite token {token!r}"
                ) from None
        return {key: decode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_nonfinite(item) for item in value]
    return value


def _reject_constant(token: str):
    raise ValueError(f"non-standard JSON constant {token!r} is not RFC 8259")


def strict_json_loads(text: str):
    """``json.loads`` that rejects ``Infinity``/``-Infinity``/``NaN``.

    Use this wherever the harness *reads back its own output* — it turns
    any future non-finite leak into an immediate parse failure instead of
    a silently non-portable file.
    """
    return json.loads(text, parse_constant=_reject_constant)


class ResultLoadError(ValueError):
    """A saved result could not be loaded (corrupt, truncated, or wrong
    format).  ``path`` names the offending file."""

    def __init__(self, path: str | Path, reason: str):
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"cannot load result {self.path}: {reason}")


@dataclass(frozen=True)
class ResultDocument:
    """A saved experiment result: the table plus provenance metadata."""

    table: Table
    exp_id: str
    profile: str
    created_at: float
    package_version: str
    format_version: int = _FORMAT_VERSION
    extra: dict = field(default_factory=dict)


def _table_to_json(table: Table) -> dict:
    return {
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
    }


def _table_from_json(doc: dict) -> Table:
    table = Table(
        title=doc["title"], columns=list(doc["columns"]), notes=list(doc["notes"])
    )
    for row in doc["rows"]:
        table.add_row(*row)
    return table


def _payload_hash(doc: dict) -> str:
    payload = {k: v for k, v in doc.items() if k != _HASH_KEY}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` so a crash can never truncate it.

    The text lands in a temp file in the same directory, is fsynced,
    renamed over the target with ``os.replace`` (atomic on POSIX), and
    the directory entry is fsynced so the rename itself is durable.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def quarantine_file(path: str | Path) -> Path:
    """Move a corrupt/partial file aside instead of deleting it.

    Returns the quarantine path (``<name>.quarantined``, numbered when
    that already exists) so operators can inspect what went wrong.
    """
    path = Path(path)
    target = path.with_name(path.name + ".quarantined")
    i = 1
    while target.exists():
        target = path.with_name(f"{path.name}.quarantined.{i}")
        i += 1
    os.replace(path, target)
    return target


def save_table(
    table: Table,
    path: str | Path,
    *,
    exp_id: str,
    profile: str,
    extra: dict | None = None,
) -> Path:
    """Write ``table`` (with provenance) as a crash-safe JSON document.

    Cells must be JSON-serializable (the tables produced by the registry
    contain only numbers, strings, and booleans).  Non-finite floats —
    e.g. the tournament's ``math.inf`` inflation sentinel — are encoded
    as ``{"__nonfinite__": ...}`` markers and the document is serialized
    with ``allow_nan=False``, so the on-disk bytes are always strict
    RFC 8259 JSON.  The write is atomic (temp file + ``os.replace`` +
    fsync) and the document carries a ``content_sha256`` verified on
    load.
    """
    import repro

    path = Path(path)
    doc = {
        "format_version": _FORMAT_VERSION,
        "exp_id": exp_id,
        "profile": profile,
        "created_at": time.time(),
        "package_version": repro.__version__,
        "extra": encode_nonfinite(extra or {}),
        "table": encode_nonfinite(_table_to_json(table)),
    }
    doc[_HASH_KEY] = _payload_hash(doc)
    atomic_write_text(
        path,
        json.dumps(doc, indent=2, sort_keys=True, allow_nan=False) + "\n",
    )
    return path


def load_document(path: str | Path, *, strict: bool = True) -> ResultDocument | None:
    """Load a saved result with its metadata.

    Any failure — unreadable file, invalid JSON, missing keys, format or
    content-hash mismatch — raises :class:`ResultLoadError` naming the
    path.  With ``strict=False`` those failures return ``None`` instead,
    for quarantine-and-regenerate flows.

    Both encodings of non-finite cells load: new-format
    ``{"__nonfinite__": ...}`` markers are decoded back to floats, and
    legacy files bearing raw ``Infinity``/``NaN`` tokens still parse
    (Python's reader accepts them) and still hash-verify, so checkpoints
    written before the portable encoding resume cleanly.
    """
    path = Path(path)
    try:
        raw = path.read_text()
        doc = json.loads(raw)
        if not isinstance(doc, dict):
            raise ResultLoadError(path, f"expected a JSON object, got {type(doc).__name__}")
        if doc.get("format_version") != _FORMAT_VERSION:
            raise ResultLoadError(
                path,
                f"unsupported result format {doc.get('format_version')!r} "
                f"(expected {_FORMAT_VERSION})",
            )
        stored_hash = doc.get(_HASH_KEY)
        if stored_hash is not None and stored_hash != _payload_hash(doc):
            raise ResultLoadError(path, "content hash mismatch (corrupt or tampered)")
        return ResultDocument(
            table=_table_from_json(decode_nonfinite(doc["table"])),
            exp_id=doc["exp_id"],
            profile=doc["profile"],
            created_at=doc["created_at"],
            package_version=doc["package_version"],
            format_version=doc["format_version"],
            extra=decode_nonfinite(doc.get("extra", {})),
        )
    except ResultLoadError:
        if strict:
            raise
        return None
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        if strict:
            raise ResultLoadError(path, f"{type(exc).__name__}: {exc}") from exc
        return None


def load_table(path: str | Path) -> Table:
    """Load just the table from a saved result."""
    return load_document(path).table
